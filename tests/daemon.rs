//! End-to-end tests of the compile daemon: `ompltd --listen=SOCKET` serving
//! `ompltc --remote=SOCKET` clients, plus raw-frame protocol coverage.
//!
//! The central contract is differential: for every job shape the daemon
//! accepts, `ompltc --remote` must produce byte-identical stdout, stderr,
//! and exit code to the in-process driver. Cache behaviour is observed
//! through the `stats` frame (`daemon.cache.*` counters).

use omplt::protocol::{read_frame, write_frame, CacheOutcome, JobRequest, Request};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("omplt-daemon-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

/// `ompltc` with a scrubbed environment so the host's `OMP_SCHEDULE` (if
/// any) cannot leak into differential comparisons.
fn ompltc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ompltc"));
    cmd.env_remove("OMP_SCHEDULE");
    cmd
}

/// An `ompltd --listen` child bound to a per-test socket. Dropping it sends
/// a shutdown frame, then reaps (or kills) the child.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(tag: &str) -> Daemon {
        Daemon::start_with(tag, &[], &[])
    }

    fn start_with(tag: &str, extra_args: &[&str], env: &[(&str, &str)]) -> Daemon {
        let dir = std::env::temp_dir().join("omplt-daemon-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join(format!("{tag}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ompltd"));
        cmd.arg(format!("--listen={}", socket.display()))
            .args(extra_args)
            .env_remove("OMP_SCHEDULE")
            .stderr(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn ompltd");
        for _ in 0..400 {
            if socket.exists() {
                return Daemon { child, socket };
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let _ = child.kill();
        let _ = child.wait();
        panic!("ompltd never bound {}", socket.display());
    }

    fn remote_flag(&self) -> String {
        format!("--remote={}", self.socket.display())
    }

    /// Sends one request frame on a fresh connection and returns the reply
    /// body.
    fn request(&self, body: &str) -> String {
        let mut s = UnixStream::connect(&self.socket).expect("connect");
        write_frame(&mut s, body.as_bytes()).unwrap();
        let reply = read_frame(&mut s)
            .expect("read reply")
            .expect("reply frame");
        String::from_utf8(reply).unwrap()
    }

    /// Reads one `daemon.cache.*` counter out of a `stats` reply.
    fn cache_counter(&self, name: &str) -> u64 {
        let stats = self.request(&Request::Stats.render());
        let needle = format!("\"{name}\":");
        let at = stats
            .find(&needle)
            .unwrap_or_else(|| panic!("{name} missing from stats reply: {stats}"));
        let rest = &stats[at + needle.len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().unwrap()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Ok(mut s) = UnixStream::connect(&self.socket) {
            let _ = write_frame(&mut s, Request::Shutdown.render().as_bytes());
            let _ = read_frame(&mut s);
        }
        for _ in 0..200 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Capture {
    code: i32,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
}

fn run_ompltc(envs: &[(&str, &str)], args: &[&str], file: &Path) -> Capture {
    let mut cmd = ompltc();
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.args(args).arg(file).output().expect("run ompltc");
    Capture {
        code: out.status.code().expect("exit code"),
        stdout: out.stdout,
        stderr: out.stderr,
    }
}

/// The differential oracle: the same invocation locally and via `--remote`
/// must agree on every observable byte.
fn assert_remote_matches_local(
    daemon: &Daemon,
    envs: &[(&str, &str)],
    args: &[&str],
    file: &Path,
    label: &str,
) -> Capture {
    let local = run_ompltc(envs, args, file);
    let remote_flag = daemon.remote_flag();
    let mut remote_args = vec![remote_flag.as_str()];
    remote_args.extend_from_slice(args);
    let remote = run_ompltc(envs, &remote_args, file);
    assert_eq!(local.code, remote.code, "[{label}] exit code");
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout),
        "[{label}] stdout"
    );
    assert_eq!(
        String::from_utf8_lossy(&local.stderr),
        String::from_utf8_lossy(&remote.stderr),
        "[{label}] stderr"
    );
    remote
}

const DEMO: &str = "void print_i64(long v);\n\
    long data[64];\n\
    int main(void) {\n\
      #pragma omp parallel for schedule(static) num_threads(2)\n\
      for (int i = 0; i < 64; i += 1)\n\
        data[i] = i * 3;\n\
      long sum = 0;\n\
      for (int k = 0; k < 64; k += 1)\n\
        sum += data[k];\n\
      print_i64(sum);\n\
      return 0;\n\
    }\n";

const SCHED_RUNTIME: &str = "void print_i64(long v);\n\
    int main(void) {\n\
      #pragma omp parallel num_threads(4)\n\
      {\n\
        #pragma omp for schedule(runtime)\n\
        for (int i = 0; i < 9; i += 1)\n\
          print_i64(i);\n\
      }\n\
      return 0;\n\
    }\n";

#[test]
fn remote_matches_local_for_every_example() {
    let daemon = Daemon::start("examples");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/c");
    let mut ran = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/c exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("c") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        for (leg, args) in [
            ("run", &["--run"][..]),
            ("opt-vm", &["--opt", "--run", "--backend=vm"][..]),
        ] {
            assert_remote_matches_local(&daemon, &[], args, &path, &format!("{name}/{leg}"));
        }
        ran += 1;
    }
    assert!(ran >= 3, "expected the full example corpus, ran {ran}");
}

#[test]
fn remote_matches_local_for_diagnostics_in_both_formats() {
    let daemon = Daemon::start("diags");
    let bad = write_temp("diag.c", "int main(void) {\n  return undeclared_name;\n}\n");
    let text = assert_remote_matches_local(&daemon, &[], &[], &bad, "diag/text");
    assert_eq!(text.code, 1);
    assert!(
        String::from_utf8_lossy(&text.stderr).contains("error"),
        "diagnostic expected"
    );
    let json =
        assert_remote_matches_local(&daemon, &[], &["--diag-format=json"], &bad, "diag/json");
    assert_eq!(json.code, 1);
    assert!(
        String::from_utf8_lossy(&json.stderr).contains("\"level\":\"error\""),
        "JSON diagnostic expected"
    );
}

#[test]
fn warm_hits_skip_the_front_end_and_reordered_flags_still_hit() {
    let daemon = Daemon::start("cacheprops");
    let src = write_temp("cache-a.c", DEMO);
    let remote = daemon.remote_flag();

    let cold = run_ompltc(&[], &[&remote, "--opt", "--run", "--counters-json"], &src);
    assert_eq!(cold.code, 0, "{}", String::from_utf8_lossy(&cold.stderr));
    assert!(
        String::from_utf8_lossy(&cold.stdout).contains("sema."),
        "cold job runs the front end"
    );
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 1);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 0);

    // Same flags spelled in a different order: the options fingerprint is
    // canonical, so this must hit.
    let warm = run_ompltc(&[], &["--run", &remote, "--counters-json", "--opt"], &src);
    assert_eq!(warm.code, 0);
    assert!(
        !String::from_utf8_lossy(&warm.stdout).contains("sema."),
        "warm hit must not re-run lex/parse/sema:\n{}",
        String::from_utf8_lossy(&warm.stdout)
    );
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 1);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 1);

    // Runtime-only flags (thread count, serial execution) are not part of
    // the compiled artifact, so they must not defeat the cache either.
    let serial = run_ompltc(&[], &[&remote, "--opt", "--run", "--serial"], &src);
    assert_eq!(serial.code, 0);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 2);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 1);

    // Mutating a single token of the source must miss.
    let mutated = write_temp("cache-b.c", &DEMO.replace("i * 3", "i * 4"));
    let miss = run_ompltc(&[], &[&remote, "--opt", "--run"], &mutated);
    assert_eq!(miss.code, 0);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 2);

    // And a compile-relevant flag change (optimization pipeline) must miss.
    let unopt = run_ompltc(&[], &[&remote, "--run"], &src);
    assert_eq!(unopt.code, 0);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 3);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 2);
}

#[test]
fn daemon_environment_never_leaks_into_jobs() {
    // The daemon itself is started with a malformed OMP_SCHEDULE. If any
    // job resolved the schedule from the *server's* environment, the
    // malformed-value warning would appear in the reply.
    let daemon = Daemon::start_with("schedenv", &[], &[("OMP_SCHEDULE", "bogus")]);
    let src = write_temp("sched.c", SCHED_RUNTIME);

    // Client env unset: no warning, output identical to a local run.
    let clean = assert_remote_matches_local(
        &daemon,
        &[],
        &["--run", "--serial"],
        &src,
        "sched/clean-env",
    );
    assert_eq!(clean.code, 0);
    assert!(
        !String::from_utf8_lossy(&clean.stderr).contains("OMP_SCHEDULE"),
        "daemon's OMP_SCHEDULE leaked into the job:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Client env malformed: the warning is resolved client-side and must be
    // byte-identical to the local driver's.
    let warned = assert_remote_matches_local(
        &daemon,
        &[("OMP_SCHEDULE", "bogus")],
        &["--run", "--serial"],
        &src,
        "sched/malformed-env",
    );
    assert!(
        String::from_utf8_lossy(&warned.stderr).contains("malformed OMP_SCHEDULE"),
        "client's OMP_SCHEDULE must be honored:\n{}",
        String::from_utf8_lossy(&warned.stderr)
    );

    // Client env valid: schedule behaviour itself travels with the job.
    assert_remote_matches_local(
        &daemon,
        &[("OMP_SCHEDULE", "static,3")],
        &["--run", "--serial"],
        &src,
        "sched/valid-env",
    );
}

#[test]
fn malformed_frames_get_error_replies_and_the_server_survives() {
    let daemon = Daemon::start("malformed");

    // Valid frame, invalid JSON payload.
    let reply = daemon.request("this is not json");
    assert!(reply.contains("\"error\""), "{reply}");

    // Length prefix larger than the frame cap: rejected before allocation.
    {
        let mut s = UnixStream::connect(&daemon.socket).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let reply = read_frame(&mut s).expect("reply").expect("reply frame");
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.contains("exceeds"), "{reply}");
    }

    // Truncated prefix: two bytes then EOF.
    {
        let mut s = UnixStream::connect(&daemon.socket).unwrap();
        s.write_all(&[0x01, 0x02]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let reply = read_frame(&mut s).expect("reply").expect("reply frame");
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.contains("truncated"), "{reply}");
    }

    // Truncated body: the prefix promises more bytes than arrive.
    {
        let mut s = UnixStream::connect(&daemon.socket).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(b"{short}").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let reply = read_frame(&mut s).expect("reply").expect("reply frame");
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.contains("truncated"), "{reply}");
    }

    // After all of that abuse the server still compiles and runs jobs.
    let src = write_temp("after-abuse.c", DEMO);
    let ok = run_ompltc(&[], &[&daemon.remote_flag(), "--run"], &src);
    assert_eq!(ok.code, 0, "{}", String::from_utf8_lossy(&ok.stderr));
    assert_eq!(String::from_utf8_lossy(&ok.stdout), "6048\n");
}

#[test]
fn concurrent_fault_jobs_each_name_their_own_stage() {
    let daemon = Daemon::start_with("faults", &["--workers=4"], &[]);
    let src = write_temp("fault.c", DEMO);

    // A remote ICE renders byte-identically to a local one (the structured
    // stage/message travel in the reply, the client does the rendering).
    let ice = assert_remote_matches_local(
        &daemon,
        &[],
        &["--run", "--inject-fault=parse.panic"],
        &src,
        "fault/differential",
    );
    assert_eq!(ice.code, 3);

    // Two clients injecting faults into different stages, concurrently and
    // repeatedly: each reply must name its own stage, never the peer's.
    // This is the regression test for the old single-slot panic capture.
    let remote = daemon.remote_flag();
    std::thread::scope(|scope| {
        for (site, stage, other) in [
            ("parse.panic", "parse", "codegen"),
            ("codegen.panic", "codegen", "parse"),
        ] {
            let remote = remote.clone();
            let src = src.clone();
            scope.spawn(move || {
                for _ in 0..4 {
                    let fault = format!("--inject-fault={site}");
                    let out = run_ompltc(&[], &[&remote, "--run", &fault], &src);
                    assert_eq!(out.code, 3);
                    let stderr = String::from_utf8_lossy(&out.stderr);
                    assert!(
                        stderr.contains(&format!("internal compiler error in stage '{stage}'")),
                        "[{site}] {stderr}"
                    );
                    assert!(
                        !stderr.contains(&format!("stage '{other}'")),
                        "[{site}] captured the peer's panic: {stderr}"
                    );
                }
            });
        }
    });

    // The poisoned jobs were contained per-job: the server still serves.
    let ok = run_ompltc(&[], &[&remote, "--run"], &src);
    assert_eq!(ok.code, 0, "{}", String::from_utf8_lossy(&ok.stderr));
}

#[test]
fn counters_json_is_identical_solo_and_under_load() {
    let daemon = Daemon::start_with("busy", &["--workers=4"], &[]);
    let remote = daemon.remote_flag();
    let x = write_temp("busy-x.c", DEMO);
    let y = write_temp("busy-y.c", &DEMO.replace("i * 3", "i * 5"));

    // Warm the measured job so both captures replay a cache hit and report
    // runtime-only counters (deterministic under --serial).
    let warm = run_ompltc(&[], &[&remote, "--run", "--serial"], &x);
    assert_eq!(warm.code, 0, "{}", String::from_utf8_lossy(&warm.stderr));
    let args = [remote.as_str(), "--run", "--serial", "--counters-json"];
    let solo = run_ompltc(&[], &args, &x);
    assert_eq!(solo.code, 0);

    // Saturate the pool with unrelated jobs, then re-measure. Trace
    // sessions are attached per job, so the neighbors' counters must not
    // bleed into this reply.
    let mut load: Vec<Child> = (0..6)
        .map(|_| {
            ompltc()
                .arg(&remote)
                .arg("--run")
                .arg(&y)
                .stdout(Stdio::null())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap()
        })
        .collect();
    let busy = run_ompltc(&[], &args, &x);
    for child in load.drain(..) {
        let out = child.wait_with_output().expect("wait for load child");
        assert!(
            out.status.success(),
            "load child failed ({:?}): {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(busy.code, 0);
    assert_eq!(
        String::from_utf8_lossy(&solo.stdout),
        String::from_utf8_lossy(&busy.stdout),
        "counters must be identical solo vs busy pool"
    );
    assert_eq!(
        String::from_utf8_lossy(&solo.stderr),
        String::from_utf8_lossy(&busy.stderr)
    );
}

#[test]
fn fuel_exhaustion_is_a_structured_reply_and_the_server_keeps_serving() {
    let daemon = Daemon::start("fuel");
    let src = write_temp("fuel.c", DEMO);
    let starved = assert_remote_matches_local(
        &daemon,
        &[],
        &["--run", "--fuel=10"],
        &src,
        "fuel/differential",
    );
    assert_eq!(starved.code, 1);
    assert!(
        String::from_utf8_lossy(&starved.stderr).contains("runtime error"),
        "{}",
        String::from_utf8_lossy(&starved.stderr)
    );
    let ok = run_ompltc(&[], &[&daemon.remote_flag(), "--run"], &src);
    assert_eq!(ok.code, 0, "{}", String::from_utf8_lossy(&ok.stderr));
}

#[test]
fn remote_rejects_local_only_modes() {
    let daemon = Daemon::start("reject");
    let src = write_temp("reject.c", DEMO);
    let out = run_ompltc(&[], &[&daemon.remote_flag(), "--analyze"], &src);
    assert_eq!(out.code, 2);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--remote"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn chunk_logs_replay_identically_across_miss_and_hit() {
    // `log_chunks` has no CLI flag, so this leg exercises the service
    // library directly: a cache hit must replay the exact chunk dispatch of
    // the original compile.
    let service = omplt::Service::new(omplt::cache::DEFAULT_CACHE_BYTES);
    let mut job = JobRequest::new(1, "chunks.c", DEMO);
    job.run = true;
    job.optimize = true;
    job.opts.serial = true;
    job.opts.log_chunks = true;
    let cold = service.execute(&job);
    assert_eq!(cold.exit_code, 0, "{}", cold.stderr);
    assert_eq!(cold.cache, CacheOutcome::Miss);
    let log = cold.chunk_log.as_deref().expect("chunk log requested");
    assert!(log.contains(".."), "chunk records expected, got: {log:?}");

    job.id = 2;
    let warm = service.execute(&job);
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.exit_code, cold.exit_code);
    assert_eq!(warm.stdout, cold.stdout);
    assert_eq!(warm.stderr, cold.stderr);
    assert_eq!(warm.chunk_log, cold.chunk_log, "chunk logs must replay");
}

#[test]
fn stdio_transport_serves_the_same_protocol() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ompltd"))
        .arg("--stdio")
        .arg("--workers=1")
        .env_remove("OMP_SCHEDULE")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ompltd --stdio");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = child.stdout.take().unwrap();

    let mut job = JobRequest::new(7, "stdio.c", DEMO);
    job.run = true;
    write_frame(&mut stdin, job.render().as_bytes()).unwrap();
    let reply = read_frame(&mut stdout).expect("reply").expect("frame");
    let resp = omplt::protocol::JobResponse::parse(&String::from_utf8(reply).unwrap())
        .expect("job response");
    assert_eq!(resp.id, 7);
    assert_eq!(resp.exit_code, 0, "{}", resp.stderr);
    assert_eq!(resp.stdout, "6048\n");

    write_frame(&mut stdin, Request::Shutdown.render().as_bytes()).unwrap();
    let reply = read_frame(&mut stdout).expect("reply").expect("frame");
    assert!(String::from_utf8(reply).unwrap().contains("\"ok\":true"));
    drop(stdin);
    let status = child.wait().unwrap();
    assert!(status.success());
}

#[test]
fn health_reports_transport_and_supervisor_state() {
    let daemon = Daemon::start_with("health", &["--workers=2", "--queue-depth=7"], &[]);
    let reply = daemon.request(&Request::Health.render());
    let health = omplt::protocol::HealthReport::parse(&reply).expect("health report");
    assert_eq!(health.workers_configured, 2);
    assert_eq!(health.workers_alive, 2);
    assert_eq!(health.queue_capacity, 7);
    assert_eq!(health.queue_depth, 0);
    assert_eq!(health.running, 0);
    assert!(!health.draining);
    assert_eq!(health.respawns, 0);
    assert!(
        health.cache.iter().any(|(k, _)| k == "daemon.cache.hits"),
        "cache counters travel in the health reply: {reply}"
    );
}

#[test]
fn killed_worker_is_respawned_and_the_job_requeued_once() {
    let daemon = Daemon::start_with("workerkill", &["--workers=2"], &[]);
    let src = write_temp("kill.c", DEMO);

    // One injected kill: the supervisor respawns the worker and requeues
    // the job, whose retry must be byte-identical to a local run.
    let out = assert_remote_matches_local(
        &daemon,
        &[],
        &["--run", "--backend=vm", "--inject-fault=daemon.worker-kill"],
        &src,
        "kill/requeued",
    );
    assert_eq!(out.code, 0);

    // Two kills on the same job: requeued at most once, then abandoned
    // with a structured error — never a hang, never a third attempt.
    let dead = run_ompltc(
        &[],
        &[
            &daemon.remote_flag(),
            "--run",
            "--backend=vm",
            "--inject-fault=daemon.worker-kill:2",
            "--remote-retries=0",
        ],
        &src,
    );
    assert_eq!(dead.code, 2);
    assert!(
        String::from_utf8_lossy(&dead.stderr).contains("job abandoned"),
        "{}",
        String::from_utf8_lossy(&dead.stderr)
    );

    // The pool healed: the next job is served normally.
    let ok = run_ompltc(&[], &[&daemon.remote_flag(), "--run"], &src);
    assert_eq!(ok.code, 0, "{}", String::from_utf8_lossy(&ok.stderr));

    let reply = daemon.request(&Request::Health.render());
    let health = omplt::protocol::HealthReport::parse(&reply).expect("health report");
    assert_eq!(health.respawns, 3, "1 requeue kill + 2 abandon kills");
    assert_eq!(health.requeued, 2);
    assert_eq!(health.abandoned, 1);
    assert_eq!(health.workers_alive, 2, "every killed worker was replaced");
}

#[test]
fn overload_shed_is_retried_and_surfaces_only_after_exhaustion() {
    // The daemon sheds the first admission as if the queue were full. A
    // retrying client absorbs the shed invisibly...
    let daemon = Daemon::start_with(
        "overload",
        &["--workers=2", "--inject-fault=daemon.queue-full:1"],
        &[],
    );
    let src = write_temp("overload.c", DEMO);
    let ok = run_ompltc(
        &[],
        &[&daemon.remote_flag(), "--run", "--remote-backoff-ms=10"],
        &src,
    );
    assert_eq!(ok.code, 0, "{}", String::from_utf8_lossy(&ok.stderr));

    // ...and a client with retries disabled sees the structured error.
    let daemon2 = Daemon::start_with(
        "overload0",
        &["--workers=2", "--inject-fault=daemon.queue-full:1"],
        &[],
    );
    let shed = run_ompltc(
        &[],
        &[&daemon2.remote_flag(), "--run", "--remote-retries=0"],
        &src,
    );
    assert_eq!(shed.code, 2);
    let stderr = String::from_utf8_lossy(&shed.stderr);
    assert!(
        stderr.contains("ompltd is overloaded") && stderr.contains("retry after"),
        "{stderr}"
    );
}

#[test]
fn client_retries_span_a_daemon_restart() {
    // The client starts with no daemon listening and must survive on its
    // retry budget until the daemon comes up.
    let dir = std::env::temp_dir().join("omplt-daemon-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join(format!("restart-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let src = write_temp("restart.c", DEMO);
    let client = ompltc()
        .arg(format!("--remote={}", socket.display()))
        .arg("--remote-retries=40")
        .arg("--remote-backoff-ms=50")
        .arg("--run")
        .arg(&src)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn retrying client");
    std::thread::sleep(Duration::from_millis(300));
    // `Daemon::start_with` derives exactly this socket path from the tag.
    let daemon = Daemon::start_with("restart", &[], &[]);
    assert_eq!(daemon.socket, socket);
    let out = client.wait_with_output().expect("client exits");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "6048\n");
}

#[test]
fn frame_stall_is_shed_by_the_daemon_and_absorbed_by_client_retry() {
    // The client injects its own slowloris (prefix, 750 ms stall, body)
    // against a 200 ms frame timeout. The daemon sheds the stalled frame
    // with an error reply; the client's retry — without the stall — must
    // end byte-identical to a local run.
    let daemon = Daemon::start_with("stall", &["--frame-timeout-ms=200"], &[]);
    let src = write_temp("stall.c", DEMO);
    let out = assert_remote_matches_local(
        &daemon,
        &[],
        &["--run", "--inject-fault=daemon.frame-stall"],
        &src,
        "stall/retried",
    );
    assert_eq!(out.code, 0);
}

#[test]
fn corrupted_cache_entry_is_quarantined_and_recompiled() {
    let daemon = Daemon::start("integrity");
    let src = write_temp("integrity.c", DEMO);
    let remote = daemon.remote_flag();
    // Only the VM backend caches a bytecode image; corruption of an
    // interp-backed entry would be invisible.
    let args = ["--run", "--backend=vm"];

    let cold = run_ompltc(&[], &[&remote, args[0], args[1]], &src);
    assert_eq!(cold.code, 0, "{}", String::from_utf8_lossy(&cold.stderr));
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 1);

    // `daemon.cache-corrupt` flips a byte in the cached artifact right
    // before this job's lookup: the checksum catches it, the entry is
    // quarantined, and the job recompiles — with correct output.
    let poisoned = run_ompltc(
        &[],
        &[
            &remote,
            args[0],
            args[1],
            "--inject-fault=daemon.cache-corrupt",
        ],
        &src,
    );
    assert_eq!(poisoned.code, 0);
    assert_eq!(
        String::from_utf8_lossy(&poisoned.stdout),
        String::from_utf8_lossy(&cold.stdout),
        "recompiled job must not serve corrupted bytecode"
    );
    assert_eq!(daemon.cache_counter("daemon.cache.integrity_failures"), 1);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 2);

    // The recompiled artifact is healthy and serves hits again.
    let warm = run_ompltc(&[], &[&remote, args[0], args[1]], &src);
    assert_eq!(warm.code, 0);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 1);
}

#[test]
fn sigterm_drains_queued_jobs_and_exits_zero() {
    let mut daemon = Daemon::start_with("drain", &["--workers=2"], &[]);
    let src = write_temp("drain.c", DEMO);

    // Keep the pool busy so the drain window actually has work to finish.
    let clients: Vec<Child> = (0..6)
        .map(|_| {
            ompltc()
                .arg(daemon.remote_flag())
                .arg("--run")
                .arg(&src)
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    // Every job accepted before the signal still gets its reply. (Clients
    // racing the signal may be refused and retry against a gone daemon;
    // those exit 2 with the connect error — but none may hang or crash.)
    let mut served = 0;
    for client in clients {
        let out = client.wait_with_output().expect("client exits");
        match out.status.code() {
            Some(0) => {
                assert_eq!(String::from_utf8_lossy(&out.stdout), "6048\n");
                served += 1;
            }
            Some(2) => {}
            code => panic!("unexpected client exit {code:?}"),
        }
    }
    assert!(served >= 1, "drain must finish accepted jobs");

    // And the daemon itself exits 0 within the drain window.
    let mut status = None;
    for _ in 0..200 {
        if let Ok(Some(s)) = daemon.child.try_wait() {
            status = Some(s);
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let status = status.expect("daemon exits within the drain window");
    assert!(status.success(), "drain must exit 0, got {status:?}");
}

/// The soak: 8 concurrent clients, each cycling through a mixed workload —
/// warm hits, cold misses, injected ICEs, worker kills, and raw oversized
/// frames — for 200+ jobs total. Every accepted job gets exactly one reply,
/// byte-identical to the same invocation against the in-process driver.
#[test]
fn soak_mixed_workload_under_eight_concurrent_clients() {
    let daemon = Daemon::start_with("soak", &["--workers=4"], &[]);
    let src = write_temp("soak.c", DEMO);

    // Expected captures, one per job shape, from local (in-process) runs.
    let hit_args = ["--run", "--backend=vm"];
    let ice_args = ["--run", "--inject-fault=parse.panic"];
    let kill_args = ["--run", "--backend=vm", "--inject-fault=daemon.worker-kill"];
    let expect_hit = run_ompltc(&[], &hit_args, &src);
    let expect_ice = run_ompltc(&[], &ice_args, &src);
    assert_eq!(expect_hit.code, 0);
    assert_eq!(expect_ice.code, 3);

    let remote = daemon.remote_flag();
    let check = |label: String, got: &Capture, want: &Capture| {
        assert_eq!(got.code, want.code, "[{label}] exit code");
        assert_eq!(
            String::from_utf8_lossy(&got.stdout),
            String::from_utf8_lossy(&want.stdout),
            "[{label}] stdout"
        );
        assert_eq!(
            String::from_utf8_lossy(&got.stderr),
            String::from_utf8_lossy(&want.stderr),
            "[{label}] stderr"
        );
    };

    const CLIENTS: usize = 8;
    const JOBS_PER_CLIENT: usize = 26; // 8 × 26 = 208 jobs
    let socket: &Path = &daemon.socket;
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let remote = remote.clone();
            let src = src.clone();
            let (expect_hit, expect_ice) = (&expect_hit, &expect_ice);
            let check = &check;
            scope.spawn(move || {
                for i in 0..JOBS_PER_CLIENT {
                    let label = format!("soak t{t} job{i}");
                    match i % 5 {
                        // Warm hit (after the first round compiles it).
                        0 => {
                            let got = run_ompltc(&[], &[&remote, hit_args[0], hit_args[1]], &src);
                            check(label, &got, expect_hit);
                        }
                        // Cold miss: a source no other job compiles.
                        1 => {
                            let n = 1000 + t * 100 + i;
                            let uniq = write_temp(
                                &format!("soak-{t}-{i}.c"),
                                &DEMO.replace("i * 3", &format!("i * 3 + {n}")),
                            );
                            let want = run_ompltc(&[], &["--run"], &uniq);
                            assert_eq!(want.code, 0, "[{label}] local oracle");
                            let got = run_ompltc(&[], &[&remote, "--run"], &uniq);
                            check(label, &got, &want);
                        }
                        // Contained ICE: structured stage/message in the
                        // reply, rendered client-side exactly like local.
                        2 => {
                            let got = run_ompltc(&[], &[&remote, ice_args[0], ice_args[1]], &src);
                            check(label, &got, expect_ice);
                        }
                        // Worker kill: supervisor requeues, reply matches
                        // the clean local run.
                        3 => {
                            let got = run_ompltc(
                                &[],
                                &[&remote, kill_args[0], kill_args[1], kill_args[2]],
                                &src,
                            );
                            check(label, &got, expect_hit);
                        }
                        // Raw oversized frame: exactly one error reply,
                        // connection closed, daemon unharmed.
                        _ => {
                            let mut s = UnixStream::connect(socket).unwrap();
                            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
                            let reply = read_frame(&mut s).expect("reply").expect("reply frame");
                            let reply = String::from_utf8(reply).unwrap();
                            assert!(reply.contains("exceeds"), "[{label}] {reply}");
                            assert!(
                                read_frame(&mut s).expect("EOF after shed").is_none(),
                                "[{label}] connection must close after an oversized frame"
                            );
                        }
                    }
                }
            });
        }
    });

    // Post-soak invariants: no worker was lost for good, nothing was
    // abandoned, and the queue drained.
    let reply = daemon.request(&Request::Health.render());
    let health = omplt::protocol::HealthReport::parse(&reply).expect("health report");
    assert_eq!(health.workers_alive, 4, "all workers alive (or respawned)");
    assert_eq!(health.abandoned, 0, "no accepted job was lost");
    assert_eq!(
        health.respawns, health.requeued,
        "every single-kill respawn requeued its job"
    );
    // Each client ran 5 worker-kill jobs (i % 5 == 3 for i in 0..26), each
    // killing exactly one worker before its requeued retry succeeds.
    assert_eq!(health.respawns, (CLIENTS * 5) as u64);
    assert_eq!(health.queue_depth, 0);
    assert_eq!(health.running, 0);
}

#[test]
fn retry_flags_require_remote_and_validate_their_values() {
    let src = write_temp("retryflags.c", DEMO);
    let no_remote = run_ompltc(&[], &["--remote-retries=2"], &src);
    assert_eq!(no_remote.code, 2);
    assert!(
        String::from_utf8_lossy(&no_remote.stderr).contains("require '--remote'"),
        "{}",
        String::from_utf8_lossy(&no_remote.stderr)
    );
    let bad = run_ompltc(
        &[],
        &["--remote=/tmp/x.sock", "--remote-backoff-ms=0"],
        &src,
    );
    assert_eq!(bad.code, 2);
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("--remote-backoff-ms"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
}

#[test]
fn vector_width_is_one_token_of_the_cache_key() {
    // `--vector-width` changes the *compiled artifact* (the widening pass
    // runs at bytecode-lowering time), so it must be part of the cache
    // fingerprint: every distinct width is its own cache line, and repeating
    // a width must hit that line — never another width's scalar/vector
    // bytecode. A simd kernel makes the stakes concrete: serving the
    // width-4 artifact to a width-0 request would silently change the
    // program the VM executes.
    let daemon = Daemon::start("vwkey");
    let src = write_temp(
        "cache-vw.c",
        "void print_i64(long v);\n\
         long a[40];\n\
         int main(void) {\n\
           #pragma omp simd\n\
           for (int i = 0; i < 40; i += 1)\n\
             a[i] = i * 5;\n\
           long sum = 0;\n\
           for (int k = 0; k < 40; k += 1)\n\
             sum += a[k];\n\
           print_i64(sum);\n\
           return 0;\n\
         }\n",
    );
    let remote = daemon.remote_flag();

    let run = |extra: &[&str]| {
        let mut args = vec![remote.as_str(), "--run", "--backend", "vm"];
        args.extend_from_slice(extra);
        let cap = run_ompltc(&[], &args, &src);
        assert_eq!(cap.code, 0, "{}", String::from_utf8_lossy(&cap.stderr));
        assert_eq!(
            String::from_utf8_lossy(&cap.stdout),
            "3900\n",
            "every width computes the same sum"
        );
    };

    run(&["--vector-width", "4"]);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 1);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 0);

    // Same width again: hit.
    run(&["--vector-width", "4"]);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 1);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 1);

    // One token different — width 2 — must miss and compile its own line.
    run(&["--vector-width", "2"]);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 2);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 1);

    // The scalar default (no flag at all) is a third distinct artifact.
    run(&[]);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 3);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 1);

    // And each previously compiled width still hits its own line.
    run(&["--vector-width", "2"]);
    run(&["--vector-width", "4"]);
    assert_eq!(daemon.cache_counter("daemon.cache.misses"), 3);
    assert_eq!(daemon.cache_counter("daemon.cache.hits"), 3);
}
