//! The fault-containment acceptance matrix: every registered fault site,
//! driven through the `ompltc` binary, in both diagnostics formats.
//!
//! What is proved here:
//!
//! * A forced panic in any pipeline stage exits 3 with a structured
//!   "internal compiler error" diagnostic naming the stage — never a raw
//!   panic/abort, in text and in JSON.
//! * A forced VM verifier rejection under `--backend=vm` degrades to the
//!   interpreter with a warning and an observably identical run (byte-for-
//!   byte memory, stdout, and chunk logs against a clean interpreter run —
//!   the same comparison points `tests/backend_differential.rs` uses);
//!   `--backend=vm:strict` keeps the failure fatal.
//! * A deliberately lost team thread terminates promptly with a watchdog
//!   diagnostic at 1, 4, and 8 threads instead of hanging the barrier.
//! * `--fuel` and `--exec-timeout` bound runaway execution, and a
//!   nonexistent input is a structured usage error (exit 2), not an
//!   `io::Error` debug print.
//!
//! Subprocess tests are naturally isolated; the in-process fallback
//! differential serializes on a mutex because the fault registry is
//! process-global.

use omplt::interp::RunResult;
use omplt::{Backend, CompilerInstance, Options};
use std::io::Write;
use std::process::Command;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn ompltc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ompltc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("omplt-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

/// Exercises every stage a fault site lives in: lexing, parsing, an OpenMP
/// directive (sema), codegen, the mid-end, bytecode compilation, and a
/// threaded run with a worksharing barrier. Prints only from the serial
/// epilogue so stdout is deterministic at any thread count.
const FULL_PIPELINE: &str = "\
void print_i64(long v);
long acc[64];
int main(void) {
  #pragma omp parallel
  {
    #pragma omp for schedule(dynamic, 4)
    for (int i = 0; i < 64; i += 1)
      acc[i] = i * 3;
  }
  long sum = 0;
  for (int k = 0; k < 64; k += 1)
    sum += acc[k];
  print_i64(sum);
  return 0;
}
";

struct Outcome {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run_ompltc(args: &[&str], file: &std::path::Path) -> Outcome {
    let out = ompltc().args(args).arg(file).output().unwrap();
    Outcome {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// No raw panic machinery may ever reach the user, in any mode.
fn assert_contained(o: &Outcome, label: &str) {
    for needle in ["panicked at", "RUST_BACKTRACE", "stack backtrace"] {
        assert!(
            !o.stderr.contains(needle) && !o.stdout.contains(needle),
            "[{label}] raw panic output leaked:\n{}",
            o.stderr
        );
    }
    assert_ne!(o.code, Some(101), "[{label}] raw panic exit code");
    assert_ne!(o.code, None, "[{label}] killed by signal (abort?)");
}

const PANIC_SITES: [(&str, &str); 6] = [
    ("lex.panic", "lex"),
    ("parse.panic", "parse"),
    ("sema.panic", "sema"),
    ("codegen.panic", "codegen"),
    ("midend.panic", "midend"),
    ("vm.panic", "vm"),
];

/// Forced panic in each pipeline stage × {text, json}: exit 3 with a
/// structured ICE diagnostic naming the stage.
#[test]
fn panic_sites_become_structured_ices_in_both_formats() {
    let p = write_temp("ice_matrix.c", FULL_PIPELINE);
    for (site, stage) in PANIC_SITES {
        for json in [false, true] {
            let inject = format!("--inject-fault={site}");
            let mut args = vec!["--opt", "--run", "--backend=vm", inject.as_str()];
            if json {
                args.push("--diag-format=json");
            }
            let o = run_ompltc(&args, &p);
            let label = format!("{site} json={json}");
            assert_contained(&o, &label);
            assert_eq!(o.code, Some(3), "[{label}] ICE exit code\n{}", o.stderr);
            let expected = format!("internal compiler error in stage '{stage}'");
            assert!(o.stderr.contains(&expected), "[{label}]\n{}", o.stderr);
            assert!(
                o.stderr
                    .contains(&format!("injected fault at site '{site}'")),
                "[{label}]\n{}",
                o.stderr
            );
            if json {
                let first = o.stderr.lines().next().unwrap_or("");
                assert!(
                    first
                        .starts_with("[{\"level\":\"error\",\"message\":\"internal compiler error"),
                    "[{label}]\n{}",
                    o.stderr
                );
                assert!(first.ends_with("]}]"), "[{label}]\n{}", o.stderr);
                assert!(
                    o.stderr.contains("\"file\":null"),
                    "[{label}]\n{}",
                    o.stderr
                );
            } else {
                assert!(
                    o.stderr.starts_with("ompltc: internal compiler error"),
                    "[{label}]\n{}",
                    o.stderr
                );
            }
        }
    }
}

/// The `COUNT` in `SITE:COUNT` selects the n-th hit; a count beyond the
/// site's hits never fires and the compile succeeds.
#[test]
fn fault_count_selects_the_nth_hit() {
    let p = write_temp("ice_count.c", FULL_PIPELINE);
    // The 3rd token exists: lexing dies only once three tokens are read.
    let o = run_ompltc(&["--syntax-only", "--inject-fault=lex.panic:3"], &p);
    assert_eq!(o.code, Some(3), "{}", o.stderr);
    // No 10000th token: the site never fires and the pipeline is healthy.
    let o = run_ompltc(&["--syntax-only", "--inject-fault=lex.panic:10000"], &p);
    assert_eq!(o.code, Some(0), "{}", o.stderr);
}

/// Runtime-limit sites × {text, json}: structured runtime errors, exit 1.
#[test]
fn runtime_sites_are_structured_runtime_errors_in_both_formats() {
    let p = write_temp("rt_matrix.c", FULL_PIPELINE);
    let cases = [
        ("runtime.fuel", "step budget exhausted"),
        ("runtime.lost-thread", "watchdog"),
    ];
    for (site, needle) in cases {
        for json in [false, true] {
            let inject = format!("--inject-fault={site}");
            let mut args = vec!["--run", inject.as_str()];
            if json {
                args.push("--diag-format=json");
            }
            let o = run_ompltc(&args, &p);
            let label = format!("{site} json={json}");
            assert_contained(&o, &label);
            assert_eq!(o.code, Some(1), "[{label}]\n{}", o.stderr);
            assert!(o.stderr.contains(needle), "[{label}]\n{}", o.stderr);
            if json {
                assert!(
                    o.stderr.contains("\"level\":\"error\"") && o.stderr.contains("runtime error"),
                    "[{label}]\n{}",
                    o.stderr
                );
            } else {
                assert!(
                    o.stderr.contains("ompltc: runtime error:"),
                    "[{label}]\n{}",
                    o.stderr
                );
            }
        }
    }
}

/// The verifier-rejection site under `--backend=vm` × {text, json}: warning
/// plus successful fallback run.
#[test]
fn verify_reject_site_warns_and_falls_back_in_both_formats() {
    let p = write_temp("fb_matrix.c", FULL_PIPELINE);
    for json in [false, true] {
        let mut args = vec!["--run", "--backend=vm", "--inject-fault=vm.verify.reject"];
        if json {
            args.push("--diag-format=json");
        }
        let o = run_ompltc(&args, &p);
        let label = format!("vm.verify.reject json={json}");
        assert_contained(&o, &label);
        assert_eq!(o.code, Some(0), "[{label}]\n{}", o.stderr);
        assert_eq!(o.stdout, "6048\n", "[{label}] program still ran");
        assert!(
            o.stderr.contains("falling back to the interpreter"),
            "[{label}]\n{}",
            o.stderr
        );
        if json {
            assert!(
                o.stderr.contains("\"level\":\"warning\""),
                "[{label}]\n{}",
                o.stderr
            );
        } else {
            assert!(o.stderr.contains("warning:"), "[{label}]\n{}", o.stderr);
        }
    }
}

/// `vm:strict` keeps the rejection fatal: no fallback, exit 1.
#[test]
fn vm_strict_keeps_verifier_rejection_fatal() {
    let p = write_temp("strict.c", FULL_PIPELINE);
    let o = run_ompltc(
        &[
            "--run",
            "--backend=vm:strict",
            "--inject-fault=vm.verify.reject",
        ],
        &p,
    );
    assert_contained(&o, "vm:strict");
    assert_eq!(o.code, Some(1), "{}", o.stderr);
    assert_eq!(o.stdout, "", "program must not run");
    assert!(
        o.stderr.contains("bytecode verification failed")
            && o.stderr.contains("injected verification failure")
            && !o.stderr.contains("falling back"),
        "{}",
        o.stderr
    );
}

/// The watchdog frees a barrier stranded by a lost team member at 1, 4, and
/// 8 threads, well within the deadline, naming the lost thread.
#[test]
fn watchdog_fires_within_deadline_at_each_team_size() {
    let p = write_temp("watchdog.c", FULL_PIPELINE);
    for threads in ["1", "4", "8"] {
        let start = Instant::now();
        let o = run_ompltc(
            &[
                "--run",
                "--threads",
                threads,
                "--inject-fault=runtime.lost-thread",
            ],
            &p,
        );
        let elapsed = start.elapsed();
        let label = format!("threads={threads}");
        assert_contained(&o, &label);
        assert!(
            elapsed < Duration::from_secs(20),
            "[{label}] watchdog too slow: {elapsed:?}"
        );
        assert_eq!(o.code, Some(1), "[{label}]\n{}", o.stderr);
        assert!(
            o.stderr.contains("watchdog")
                && o.stderr
                    .contains("exited without reaching '__kmpc_barrier'"),
            "[{label}]\n{}",
            o.stderr
        );
    }
}

/// The in-process fault registry is process-global; tests that arm it must
/// not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn run_with(source: &str, opts: Options) -> RunResult {
    let mut ci = CompilerInstance::new(opts);
    ci.compile_and_run("fault_diff.c", source, false)
        .expect("run succeeds")
}

/// The acceptance criterion for graceful degradation, using the comparison
/// points of `tests/backend_differential.rs`: a `--backend=vm` run whose
/// verifier was forced to reject is *byte-identical* — exit code, final
/// global memory, task counts, chunk log, stdout — to a clean interpreter
/// run, because the fallback runs the identical engine and config.
#[test]
fn fallback_run_is_byte_identical_to_clean_interpreter_run() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for threads in [1u32, 4] {
        let base = Options {
            num_threads: threads,
            log_chunks: true,
            ..Options::default()
        };
        let oracle = run_with(
            FULL_PIPELINE,
            Options {
                backend: Backend::Interp,
                ..base
            },
        );
        omplt::fault::arm("vm.verify.reject").unwrap();
        let fallback = run_with(
            FULL_PIPELINE,
            Options {
                backend: Backend::Vm,
                ..base
            },
        );
        omplt::fault::reset();
        let label = format!("threads={threads}");
        assert_eq!(oracle.exit_code, fallback.exit_code, "[{label}] exit code");
        assert_eq!(
            oracle.final_globals, fallback.final_globals,
            "[{label}] final global memory"
        );
        assert_eq!(
            oracle.tasks_created, fallback.tasks_created,
            "[{label}] tasks created"
        );
        assert_eq!(oracle.chunk_log, fallback.chunk_log, "[{label}] chunk log");
        assert_eq!(oracle.stdout, fallback.stdout, "[{label}] stdout");
    }
}

/// The fallback emits exactly one warning diagnostic and the fault disarms
/// after firing (one-shot), so the interpreter rerun is clean.
#[test]
fn fallback_warns_once_and_site_disarms() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    omplt::fault::arm("vm.verify.reject").unwrap();
    let mut ci = CompilerInstance::new(Options {
        backend: Backend::Vm,
        ..Options::default()
    });
    ci.compile_and_run("warn_once.c", FULL_PIPELINE, false)
        .expect("fallback run succeeds");
    let rendered = ci.render_diags();
    assert_eq!(
        rendered.matches("falling back to the interpreter").count(),
        1,
        "{rendered}"
    );
    // The registry disarmed itself when the site fired.
    assert!(!omplt::fault::fire("vm.verify.reject"));
    omplt::fault::reset();
}

/// Golden tests for the nonexistent-input diagnostic: exit 2 with a
/// structured message in both formats, not a raw `io::Error` print.
#[test]
fn nonexistent_input_file_is_a_structured_usage_error() {
    let path = std::env::temp_dir().join("omplt-fault-tests/definitely_missing.c");
    let _ = std::fs::remove_file(&path);
    let o = run_ompltc(&[], &path);
    assert_eq!(o.code, Some(2), "{}", o.stderr);
    assert_eq!(
        o.stderr,
        format!(
            "ompltc: cannot read '{}': No such file or directory (os error 2)\n",
            path.display()
        )
    );
    let o = run_ompltc(&["--diag-format=json"], &path);
    assert_eq!(o.code, Some(2), "{}", o.stderr);
    assert_eq!(
        o.stderr,
        format!(
            "[{{\"level\":\"error\",\"message\":\"cannot read '{}': No such file or directory \
             (os error 2)\",\"file\":null,\"notes\":[]}}]\n",
            path.display()
        )
    );
}

/// `--inject-fault` with an unknown site is a usage error listing the
/// catalog, and the catalog matches the registry.
#[test]
fn unknown_fault_site_is_a_usage_error_listing_the_catalog() {
    let p = write_temp("badsite.c", FULL_PIPELINE);
    let o = run_ompltc(&["--inject-fault=definitely.not.a.site"], &p);
    assert_eq!(o.code, Some(2), "{}", o.stderr);
    for &(site, _) in omplt::fault::SITES {
        assert!(
            o.stderr.contains(site),
            "catalog missing {site}:\n{}",
            o.stderr
        );
    }
}

/// `--crash-report=DIR` writes the bundle: input copy, report with stage +
/// panic + backtrace, and a counters snapshot.
#[test]
fn crash_report_bundle_is_written_on_ice() {
    let p = write_temp("crash.c", FULL_PIPELINE);
    let dir = std::env::temp_dir().join("omplt-fault-tests/crash_bundle");
    let _ = std::fs::remove_dir_all(&dir);
    let crash_flag = format!("--crash-report={}", dir.display());
    let o = run_ompltc(
        &[
            "--opt",
            "--run",
            "--inject-fault=midend.panic",
            crash_flag.as_str(),
        ],
        &p,
    );
    assert_contained(&o, "crash-report");
    assert_eq!(o.code, Some(3), "{}", o.stderr);
    assert!(o.stderr.contains("crash report written to"), "{}", o.stderr);
    let input = std::fs::read_to_string(dir.join("input.c")).expect("input copy");
    assert_eq!(input, FULL_PIPELINE);
    let report = std::fs::read_to_string(dir.join("report.txt")).expect("report");
    assert!(report.contains("stage: midend"), "{report}");
    assert!(
        report.contains("panic: injected fault at site 'midend.panic'"),
        "{report}"
    );
    assert!(report.contains("backtrace:"), "{report}");
    let counters = std::fs::read_to_string(dir.join("counters.json")).expect("counters");
    assert!(
        counters.contains("fault.fired.midend.panic"),
        "the snapshot records the fired site:\n{counters}"
    );
}

/// `--fuel=N` bounds execution: a budget too small for the program is a
/// runtime error, a generous one lets it finish.
#[test]
fn fuel_budget_bounds_execution() {
    let p = write_temp("fuel.c", FULL_PIPELINE);
    let o = run_ompltc(&["--run", "--fuel=50"], &p);
    assert_eq!(o.code, Some(1), "{}", o.stderr);
    assert!(o.stderr.contains("step budget exhausted"), "{}", o.stderr);
    let o = run_ompltc(&["--run", "--fuel=1000000"], &p);
    assert_eq!(o.code, Some(0), "{}", o.stderr);
    assert_eq!(o.stdout, "6048\n");
}

/// `--exec-timeout` terminates a genuinely unbounded program (fuel-immune
/// here: huge budget) with a diagnostic instead of hanging.
#[test]
fn exec_timeout_terminates_runaway_execution() {
    let p = write_temp(
        "spin.c",
        "int main(void) { int x = 1; while (x) { x = 1; } return 0; }\n",
    );
    let start = Instant::now();
    let o = run_ompltc(&["--run", "--exec-timeout=500"], &p);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "timeout did not fire: {:?}",
        start.elapsed()
    );
    assert_eq!(o.code, Some(1), "{}", o.stderr);
    assert!(
        o.stderr.contains("wall-clock deadline of 500 ms exceeded"),
        "{}",
        o.stderr
    );
}
