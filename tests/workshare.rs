//! Worksharing and parallel-region execution on the threaded OpenMP runtime
//! (EXPERIMENTS.md: C7): coverage, disjointness, reductions, and both
//! static schedules — in both codegen modes, on real threads.

use omplt::{run_source_with, OpenMpCodegenMode, Options};

const PROTO: &str = "void print_i64(long v);\n";

fn opts(mode: OpenMpCodegenMode, threads: u32) -> Options {
    Options {
        codegen_mode: mode,
        num_threads: threads,
        ..Options::default()
    }
}

const MODES: [OpenMpCodegenMode; 2] = [OpenMpCodegenMode::Classic, OpenMpCodegenMode::IrBuilder];

/// Marks `flags[i] = omp_get_thread_num() + 1` for every iteration; checks
/// every iteration ran exactly once and reports the owner histogram.
fn coverage_kernel(n: usize, threads: u32, mode: OpenMpCodegenMode, extra: &str) -> Vec<i64> {
    let src = format!(
        "{PROTO}long flags[{n}];\nint omp_get_thread_num(void);\nint main(void) {{\n  #pragma omp parallel for{extra}\n  for (int i = 0; i < {n}; i += 1)\n    flags[i] = flags[i] * 1000 + omp_get_thread_num() + 1;\n  for (int i = 0; i < {n}; i += 1)\n    print_i64(flags[i]);\n  return 0;\n}}\n"
    );
    let r = run_source_with(&src, opts(mode, threads), false);
    r.stdout
        .lines()
        .map(|l| l.parse::<i64>().unwrap())
        .collect()
}

#[test]
fn parallel_for_covers_every_iteration_exactly_once() {
    for mode in MODES {
        for threads in [1u32, 2, 3, 4, 8] {
            for n in [1usize, 7, 16, 64] {
                let flags = coverage_kernel(n, threads, mode, "");
                assert_eq!(flags.len(), n);
                for (i, &f) in flags.iter().enumerate() {
                    // executed exactly once: value is 0*1000 + tid+1 ∈ [1, threads]
                    assert!(
                        f >= 1 && f <= threads as i64,
                        "iteration {i} ran {f} times-ish (mode {mode:?}, {threads} threads, n={n})"
                    );
                }
            }
        }
    }
}

#[test]
fn static_schedule_is_contiguous_blocks() {
    // schedule(static): thread owns one contiguous span.
    for mode in MODES {
        let flags = coverage_kernel(16, 4, mode, " schedule(static)");
        // owners must be non-decreasing (contiguous blocks per thread)
        let owners: Vec<i64> = flags.clone();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(
            owners, sorted,
            "static spans must be contiguous ({mode:?}): {flags:?}"
        );
        // with 16 iterations and 4 threads every thread gets exactly 4
        for t in 1..=4i64 {
            assert_eq!(owners.iter().filter(|&&o| o == t).count(), 4, "{mode:?}");
        }
    }
}

#[test]
fn chunked_schedule_round_robins() {
    for mode in MODES {
        let flags = coverage_kernel(16, 2, mode, " schedule(static, 4)");
        // chunks of 4, round-robin across 2 threads:
        // t1 t1 t1 t1 t2 t2 t2 t2 t1 t1 t1 t1 t2 t2 t2 t2
        let expected: Vec<i64> = (0..16).map(|i| 1 + (i / 4) % 2).collect();
        assert_eq!(flags, expected, "{mode:?}");
    }
}

#[test]
fn reduction_sums_across_threads() {
    for mode in MODES {
        for threads in [1u32, 4, 8] {
            let src = format!(
                "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum)\n  for (int i = 0; i < 1000; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
            );
            let r = run_source_with(&src, opts(mode, threads), false);
            assert_eq!(r.stdout, "499500\n", "mode {mode:?}, {threads} threads");
        }
    }
}

#[test]
fn firstprivate_copies_in_private_isolates() {
    for mode in MODES {
        let src = format!(
            "{PROTO}long out[4];\nint omp_get_thread_num(void);\nint main(void) {{\n  long base = 100;\n  int scratch = 7;\n  #pragma omp parallel firstprivate(base) private(scratch) num_threads(4)\n  {{\n    int t = omp_get_thread_num();\n    scratch = t;\n    out[t] = base + scratch;\n  }}\n  for (int i = 0; i < 4; i += 1)\n    print_i64(out[i]);\n  print_i64(base);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, opts(mode, 4), false);
        assert_eq!(r.stdout, "100\n101\n102\n103\n100\n", "mode {mode:?}");
    }
}

#[test]
fn num_threads_clause_controls_team_size() {
    for mode in MODES {
        let src = format!(
            "{PROTO}int omp_get_num_threads(void);\nlong team;\nint main(void) {{\n  #pragma omp parallel num_threads(3)\n  {{\n    team = omp_get_num_threads();\n  }}\n  print_i64(team);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, opts(mode, 8), false);
        assert_eq!(r.stdout, "3\n", "mode {mode:?}");
    }
}

#[test]
fn parallel_for_over_unroll_partial_preserves_sum() {
    // The paper's composition headline: `parallel for` consuming the
    // generated loop of `unroll partial(2)`.
    for mode in MODES {
        for threads in [1u32, 2, 4] {
            let src = format!(
                "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum)\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 100; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
            );
            let r = run_source_with(&src, opts(mode, threads), false);
            assert_eq!(r.stdout, "4950\n", "mode {mode:?}, {threads} threads");
        }
    }
}

#[test]
fn workshared_saxpy_matches_serial() {
    for mode in MODES {
        let src = format!(
            "{PROTO}double x[64];\ndouble y[64];\nint main(void) {{\n  for (int i = 0; i < 64; i += 1) {{\n    x[i] = i;\n    y[i] = 2 * i;\n  }}\n  #pragma omp parallel for\n  for (int i = 0; i < 64; i += 1)\n    y[i] = 3.0 * x[i] + y[i];\n  double sum = 0.0;\n  for (int i = 0; i < 64; i += 1)\n    sum = sum + y[i];\n  print_i64((long)sum);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, opts(mode, 4), false);
        // sum of 5*i for i in 0..64 = 5 * 2016
        assert_eq!(r.stdout, "10080\n", "mode {mode:?}");
    }
}

#[test]
fn collapse_2_covers_product_space() {
    // collapse is classic-path only (IrBuilder falls back, matching the
    // paper's reported status).
    let src = format!(
        "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp parallel for collapse(2) reduction(+: sum)\n  for (int i = 0; i < 8; i += 1)\n    for (int j = 0; j < 8; j += 1)\n      sum = sum + i * 8 + j;\n  print_i64(sum);\n  return 0;\n}}\n"
    );
    let r = run_source_with(&src, opts(OpenMpCodegenMode::Classic, 4), false);
    assert_eq!(r.stdout, "2016\n");
}

#[test]
fn bare_for_without_parallel_runs_whole_range() {
    // An orphaned `for` in a team of one executes all iterations.
    for mode in MODES {
        let src = format!(
            "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp for\n  for (int i = 0; i < 10; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, opts(mode, 4), false);
        assert_eq!(r.stdout, "45\n", "mode {mode:?}");
    }
}

#[test]
fn simd_directive_executes_serially_with_metadata() {
    for mode in MODES {
        let src = format!(
            "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp simd\n  for (int i = 0; i < 32; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, opts(mode, 4), false);
        assert_eq!(r.stdout, "496\n", "mode {mode:?}");
    }
}

#[test]
fn taskloop_task_count_observes_unroll_factor() {
    // Paper §2.2: "the unroll factor … can become observable when
    // associated by another directive, such as the taskloop creating as
    // many tasks as there are iterations".
    for mode in MODES {
        let plain = format!(
            "{PROTO}int main(void) {{\n  long s = 0;\n  #pragma omp taskloop\n  for (int i = 0; i < 12; i += 1)\n    s = s + i;\n  print_i64(s);\n  return 0;\n}}\n"
        );
        let unrolled = format!(
            "{PROTO}int main(void) {{\n  long s = 0;\n  #pragma omp taskloop\n  #pragma omp unroll partial(3)\n  for (int i = 0; i < 12; i += 1)\n    s = s + i;\n  print_i64(s);\n  return 0;\n}}\n"
        );
        let rp = run_source_with(&plain, opts(mode, 1), false);
        let ru = run_source_with(&unrolled, opts(mode, 1), false);
        assert_eq!(rp.stdout, "66\n", "mode {mode:?}");
        assert_eq!(ru.stdout, "66\n", "mode {mode:?}");
        assert_eq!(rp.tasks_created, 12, "mode {mode:?}");
        assert_eq!(
            ru.tasks_created, 4,
            "unroll partial(3) must reduce 12 iterations to 4 tasks (mode {mode:?})"
        );
    }
}

#[test]
fn nested_parallel_regions() {
    for mode in MODES {
        let src = format!(
            "{PROTO}long hits;\nvoid bump(void);\nvoid bump(void) {{\n  hits = hits + 1;\n}}\nint main(void) {{\n  #pragma omp parallel num_threads(2)\n  {{\n    #pragma omp parallel num_threads(2)\n    {{\n      bump();\n    }}\n  }}\n  print_i64(hits);\n  return 0;\n}}\n"
        );
        // serial mode: deterministic 4 increments
        let r = run_source_with(
            &src,
            Options {
                codegen_mode: mode,
                serial: true,
                num_threads: 2,
                ..Options::default()
            },
            false,
        );
        assert_eq!(r.stdout, "4\n", "mode {mode:?}");
    }
}

#[test]
fn dispatch_schedules_cover_every_iteration_exactly_once() {
    // The dispatch protocol (`__kmpc_dispatch_*`) must claim each iteration
    // exactly once for any (schedule, team, trip) — including trips smaller
    // than the team and trips not divisible by the chunk.
    for mode in MODES {
        for sched in [
            " schedule(dynamic)",
            " schedule(dynamic, 3)",
            " schedule(guided)",
            " schedule(guided, 2)",
        ] {
            for threads in [1u32, 2, 4, 7] {
                for n in [1usize, 5, 16, 61] {
                    let flags = coverage_kernel(n, threads, mode, sched);
                    assert_eq!(flags.len(), n);
                    for (i, &f) in flags.iter().enumerate() {
                        assert!(
                            f >= 1 && f <= threads as i64,
                            "iteration {i} ran {f} times-ish (mode {mode:?},{sched}, {threads} threads, n={n})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn barrier_orders_back_to_back_worksharing_loops() {
    // Regression test for the implicit end-of-construct barrier: the second
    // loop reads `a[]` in *reverse*, so almost every read crosses thread
    // boundaries. Without the `__kmpc_barrier` between the loops, a thread
    // that reaches loop 2 early reads a slot another thread has not yet
    // written (dynamic scheduling makes the overlap window wide).
    for mode in MODES {
        for sched in ["", " schedule(dynamic, 1)", " schedule(guided)"] {
            for _round in 0..8 {
                let src = format!(
                    "{PROTO}long a[32];\nlong b[32];\nint main(void) {{\n  #pragma omp parallel num_threads(4)\n  {{\n    #pragma omp for{sched}\n    for (int i = 0; i < 32; i += 1)\n      a[i] = i + 1;\n    #pragma omp for{sched}\n    for (int i = 0; i < 32; i += 1)\n      b[i] = a[31 - i];\n  }}\n  for (int i = 0; i < 32; i += 1)\n    print_i64(b[i]);\n  return 0;\n}}\n"
                );
                let r = run_source_with(&src, opts(mode, 4), false);
                let got: Vec<i64> = r.stdout.lines().map(|l| l.parse().unwrap()).collect();
                let want: Vec<i64> = (0..32).map(|i| 32 - i).collect();
                assert_eq!(got, want, "mode {mode:?}, sched '{sched}'");
            }
        }
    }
}

#[test]
fn nowait_worksharing_loop_still_correct() {
    // `nowait` elides the end-of-construct barrier; with independent loops
    // the result must be unchanged.
    for mode in MODES {
        let src = format!(
            "{PROTO}long a[16];\nlong b[16];\nint main(void) {{\n  #pragma omp parallel num_threads(4)\n  {{\n    #pragma omp for nowait\n    for (int i = 0; i < 16; i += 1)\n      a[i] = i;\n    #pragma omp for\n    for (int i = 0; i < 16; i += 1)\n      b[i] = 10 * i;\n  }}\n  long sum = 0;\n  for (int i = 0; i < 16; i += 1)\n    sum = sum + a[i] + b[i];\n  print_i64(sum);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, opts(mode, 4), false);
        assert_eq!(r.stdout, "1320\n", "mode {mode:?}");
    }
}
