//! Property-style semantic equivalence (EXPERIMENTS.md: C6): for randomized
//! loop shapes (bounds, steps, directions) and transformation parameters,
//! the transformed program must print the same sequence as the
//! untransformed one, in both representations, optimized and not.
//!
//! Formerly written with `proptest`; rewritten as deterministic fixed-seed
//! sweeps so the workspace builds without registry access.

use omplt::interp::RuntimeSchedule;
use omplt::{run_matrix, run_source_with, OpenMpCodegenMode, Options};

const PROTO: &str = "void print_i64(long v);\n";

/// Minimal deterministic PRNG (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Reference semantics of `for (i = lb; i <relop> ub; i +=/-= step)`.
fn reference(lb: i64, ub: i64, step: i64, relop: &str, down: bool) -> Vec<i64> {
    let mut out = Vec::new();
    let mut i = lb;
    let mut guard = 0;
    loop {
        let cont = match relop {
            "<" => i < ub,
            "<=" => i <= ub,
            ">" => i > ub,
            ">=" => i >= ub,
            _ => unreachable!(),
        };
        if !cont || guard > 4000 {
            break;
        }
        out.push(i);
        if down {
            i -= step;
        } else {
            i += step;
        }
        guard += 1;
    }
    out
}

fn loop_source(pragma: &str, lb: i64, ub: i64, step: i64, relop: &str, down: bool) -> String {
    let inc = if down {
        format!("i -= {step}")
    } else {
        format!("i += {step}")
    };
    format!(
        "{PROTO}int main(void) {{\n  {pragma}\n  for (int i = {lb}; i {relop} {ub}; {inc})\n    print_i64(i);\n  return 0;\n}}\n"
    )
}

fn expected_output(vals: &[i64]) -> String {
    vals.iter().map(|v| format!("{v}\n")).collect()
}

const LABELS: [&str; 4] = ["classic", "classic+opt", "irbuilder", "irbuilder+opt"];

#[test]
fn unroll_partial_equivalent_for_random_shapes() {
    let mut rng = Rng::new(0x0DD_0DD);
    for _ in 0..24 {
        let lb = rng.range(-20, 20);
        let span = rng.range(0, 40);
        let step = rng.range(1, 5);
        let factor = rng.range(2, 6) as u64;
        let (incl, down) = (rng.bool(), rng.bool());
        let (relop, ub) = if down {
            (if incl { ">=" } else { ">" }, lb - span)
        } else {
            (if incl { "<=" } else { "<" }, lb + span)
        };
        let expect = expected_output(&reference(lb, ub, step, relop, down));
        let pragma = format!("#pragma omp unroll partial({factor})");
        let src = loop_source(&pragma, lb, ub, step, relop, down);
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(
                &r.stdout, &expect,
                "configuration {label} diverged: lb {lb} ub {ub} step {step} factor {factor} relop {relop}"
            );
        }
    }
}

#[test]
fn tile_equivalent_for_random_shapes() {
    let mut rng = Rng::new(0x711E5);
    for _ in 0..24 {
        let lb = rng.range(-10, 10);
        let span = rng.range(0, 30);
        let step = rng.range(1, 4);
        let size = rng.range(1, 9) as u64;
        let ub = lb + span;
        let expect = expected_output(&reference(lb, ub, step, "<", false));
        let pragma = format!("#pragma omp tile sizes({size})");
        let src = loop_source(&pragma, lb, ub, step, "<", false);
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(
                &r.stdout, &expect,
                "configuration {label} diverged: lb {lb} ub {ub} step {step} size {size}"
            );
        }
    }
}

#[test]
fn unroll_full_equivalent_for_random_constant_loops() {
    let mut rng = Rng::new(0xF0_11_FF);
    for _ in 0..24 {
        let lb = rng.range(-10, 10);
        let span = rng.range(0, 25);
        let step = rng.range(1, 4);
        let ub = lb + span;
        let expect = expected_output(&reference(lb, ub, step, "<", false));
        let src = loop_source("#pragma omp unroll full", lb, ub, step, "<", false);
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(
                &r.stdout, &expect,
                "configuration {label} diverged: lb {lb} ub {ub} step {step}"
            );
        }
    }
}

#[test]
fn workshared_sum_equivalent_for_random_threads() {
    let mut rng = Rng::new(0x57CA1E);
    for _ in 0..24 {
        let n = rng.range(1, 200);
        let threads = rng.range(1, 8) as u32;
        let factor = rng.range(2, 5) as u64;
        let serial: i64 = (0..n).sum();
        let src = format!(
            "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum)\n  #pragma omp unroll partial({factor})\n  for (int i = 0; i < {n}; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
        );
        let r = run_source_with(
            &src,
            Options {
                num_threads: threads,
                ..Options::default()
            },
            false,
        );
        assert_eq!(
            r.stdout,
            format!("{serial}\n"),
            "n {n} threads {threads} factor {factor}"
        );
    }
}

/// The full worksharing matrix (ISSUE: schedule kinds × loop transformations
/// × team sizes): every schedule in both representations, optimized and not,
/// must execute exactly the sequential multiset of iterations. `runtime` is
/// pinned through [`Options::runtime_schedule`] rather than `OMP_SCHEDULE`
/// so concurrently running tests cannot race on the environment.
#[test]
fn schedule_transform_thread_matrix_multiset_equivalent() {
    const SCHEDULES: [&str; 6] = [
        "schedule(static)",
        "schedule(static, 3)",
        "schedule(dynamic)",
        "schedule(dynamic, 2)",
        "schedule(guided)",
        "schedule(runtime)",
    ];
    const TRANSFORMS: [&str; 4] = ["none", "unroll", "tile", "collapse"];
    const MODES: [OpenMpCodegenMode; 2] =
        [OpenMpCodegenMode::Classic, OpenMpCodegenMode::IrBuilder];
    let n = 23i64;
    for sched in SCHEDULES {
        for transform in TRANSFORMS {
            let (src, mut want): (String, Vec<i64>) = match transform {
                "collapse" => (
                    format!(
                        "{PROTO}int main(void) {{\n  #pragma omp parallel for {sched} collapse(2)\n  for (int i = 0; i < 5; i += 1)\n    for (int j = 0; j < 5; j += 1)\n      print_i64(i * 100 + j);\n  return 0;\n}}\n"
                    ),
                    (0..5).flat_map(|i| (0..5).map(move |j| i * 100 + j)).collect(),
                ),
                _ => {
                    let extra = match transform {
                        "none" => String::new(),
                        "unroll" => "  #pragma omp unroll partial(2)\n".into(),
                        "tile" => "  #pragma omp tile sizes(4)\n".into(),
                        _ => unreachable!(),
                    };
                    (
                        format!(
                            "{PROTO}int main(void) {{\n  #pragma omp parallel for {sched}\n{extra}  for (int i = 0; i < {n}; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
                        ),
                        (0..n).collect(),
                    )
                }
            };
            want.sort_unstable();
            for threads in [1u32, 2, 4, 7] {
                for mode in MODES {
                    for opt in [false, true] {
                        let r = run_source_with(
                            &src,
                            Options {
                                codegen_mode: mode,
                                num_threads: threads,
                                runtime_schedule: Some(
                                    RuntimeSchedule::parse("dynamic,3").unwrap(),
                                ),
                                ..Options::default()
                            },
                            opt,
                        );
                        let mut got: Vec<i64> =
                            r.stdout.lines().map(|l| l.parse().unwrap()).collect();
                        got.sort_unstable();
                        assert_eq!(
                            got, want,
                            "{sched} + {transform} diverged (mode {mode:?}, {threads} threads, opt {opt})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn tile_2d_multiset_equivalent() {
    let mut rng = Rng::new(0x2D_2D);
    for _ in 0..24 {
        let ni = rng.range(1, 10);
        let nj = rng.range(1, 10);
        let si = rng.range(1, 5) as u64;
        let sj = rng.range(1, 5) as u64;
        let src = format!(
            "{PROTO}int main(void) {{\n  #pragma omp tile sizes({si}, {sj})\n  for (int i = 0; i < {ni}; i += 1)\n    for (int j = 0; j < {nj}; j += 1)\n      print_i64(i * 100 + j);\n  return 0;\n}}\n"
        );
        let mut want: Vec<i64> = (0..ni)
            .flat_map(|i| (0..nj).map(move |j| i * 100 + j))
            .collect();
        want.sort_unstable();
        for r in run_matrix(&src) {
            let mut got: Vec<i64> = r.stdout.lines().map(|l| l.parse().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(&got, &want, "ni {ni} nj {nj} si {si} sj {sj}");
        }
    }
}

#[test]
fn reverse_equivalent_for_random_shapes() {
    let mut rng = Rng::new(0x004E_5E12);
    for _ in 0..24 {
        let lb = rng.range(-20, 20);
        let span = rng.range(0, 40);
        let step = rng.range(1, 5);
        let (incl, down) = (rng.bool(), rng.bool());
        let (relop, ub) = if down {
            (if incl { ">=" } else { ">" }, lb - span)
        } else {
            (if incl { "<=" } else { "<" }, lb + span)
        };
        let mut want = reference(lb, ub, step, relop, down);
        want.reverse();
        let expect = expected_output(&want);
        let src = loop_source("#pragma omp reverse", lb, ub, step, relop, down);
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(
                &r.stdout, &expect,
                "configuration {label} diverged: lb {lb} ub {ub} step {step} relop {relop}"
            );
        }
    }
}

/// `permutation(p1, ..., pn)` puts original loop `p_k` at position `k` of
/// the generated nest; the body must observe the exact permuted order, not
/// just the same multiset.
#[test]
fn interchange_permutation_exact_order() {
    const PERMS: [[usize; 3]; 6] = [
        [1, 2, 3],
        [1, 3, 2],
        [2, 1, 3],
        [2, 3, 1],
        [3, 1, 2],
        [3, 2, 1],
    ];
    let mut rng = Rng::new(0x1C_7A_6E);
    for perm in PERMS {
        let dims = [rng.range(1, 4), rng.range(1, 4), rng.range(1, 4)];
        let p = [perm[0] - 1, perm[1] - 1, perm[2] - 1];
        let mut want = Vec::new();
        for a in 0..dims[p[0]] {
            for b in 0..dims[p[1]] {
                for c in 0..dims[p[2]] {
                    let mut iv = [0i64; 3];
                    iv[p[0]] = a;
                    iv[p[1]] = b;
                    iv[p[2]] = c;
                    want.push(iv[0] * 100 + iv[1] * 10 + iv[2]);
                }
            }
        }
        let expect = expected_output(&want);
        let src = format!(
            "{PROTO}int main(void) {{\n  #pragma omp interchange permutation({}, {}, {})\n  for (int i = 0; i < {}; i += 1)\n    for (int j = 0; j < {}; j += 1)\n      for (int k = 0; k < {}; k += 1)\n        print_i64(i * 100 + j * 10 + k);\n  return 0;\n}}\n",
            perm[0], perm[1], perm[2], dims[0], dims[1], dims[2]
        );
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(
                &r.stdout, &expect,
                "configuration {label} diverged: perm {perm:?} dims {dims:?}"
            );
        }
    }
}

/// Bare `interchange` defaults to swapping the two outermost loops.
#[test]
fn interchange_default_swaps_outer_pair() {
    let mut rng = Rng::new(0x1C_00_02);
    for _ in 0..12 {
        let (ni, nj) = (rng.range(1, 8), rng.range(1, 8));
        let mut want = Vec::new();
        for j in 0..nj {
            for i in 0..ni {
                want.push(i * 100 + j);
            }
        }
        let expect = expected_output(&want);
        let src = format!(
            "{PROTO}int main(void) {{\n  #pragma omp interchange\n  for (int i = 0; i < {ni}; i += 1)\n    for (int j = 0; j < {nj}; j += 1)\n      print_i64(i * 100 + j);\n  return 0;\n}}\n"
        );
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(&r.stdout, &expect, "configuration {label}: ni {ni} nj {nj}");
        }
    }
}

/// Fusion pairs iterations by logical iteration number: iteration `k` of the
/// fused loop runs iteration `k` of every member whose trip count exceeds
/// `k`, members in program order.
#[test]
fn fuse_interleaves_by_logical_iteration() {
    let mut rng = Rng::new(0xF05E);
    for _ in 0..24 {
        let (lb1, lb2) = (rng.range(-5, 5), rng.range(-5, 5));
        let (n1, n2) = (rng.range(0, 12), rng.range(0, 12));
        let (s1, s2) = (rng.range(1, 4), rng.range(1, 4));
        let r1 = reference(lb1, lb1 + n1, s1, "<", false);
        let r2 = reference(lb2, lb2 + n2, s2, "<", false);
        let mut want = Vec::new();
        for k in 0..r1.len().max(r2.len()) {
            if let Some(v) = r1.get(k) {
                want.push(*v);
            }
            if let Some(v) = r2.get(k) {
                want.push(1000 + *v);
            }
        }
        let expect = expected_output(&want);
        let src = format!(
            "{PROTO}int main(void) {{\n  #pragma omp fuse\n  {{\n    for (int i = {lb1}; i < {}; i += {s1}) print_i64(i);\n    for (int j = {lb2}; j < {}; j += {s2}) print_i64(1000 + j);\n  }}\n  return 0;\n}}\n",
            lb1 + n1,
            lb2 + n2
        );
        for (r, label) in run_matrix(&src).iter().zip(LABELS) {
            assert_eq!(
                &r.stdout, &expect,
                "configuration {label} diverged: lb ({lb1}, {lb2}) n ({n1}, {n2}) step ({s1}, {s2})"
            );
        }
    }
}

/// Reverse composed with the existing transformations, exact order:
/// `reverse` over `tile sizes(s)` reverses the *block* order while keeping
/// intra-block order; `tile` or `unroll` over `reverse` preserve the fully
/// reversed sequence.
#[test]
fn reverse_composes_with_tile_and_unroll() {
    let mut rng = Rng::new(0xC0_B0_5E);
    for _ in 0..16 {
        let n = rng.range(1, 30);
        let size = rng.range(1, 7);
        let factor = rng.range(2, 5);
        let seq: Vec<i64> = (0..n).collect();

        // reverse over tile: blocks of `size`, reversed block order.
        let mut blocks: Vec<&[i64]> = seq.chunks(size as usize).collect();
        blocks.reverse();
        let want_rt: Vec<i64> = blocks.concat();
        let src_rt = format!(
            "{PROTO}int main(void) {{\n  #pragma omp reverse\n  #pragma omp tile sizes({size})\n  for (int i = 0; i < {n}; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
        );
        for (r, label) in run_matrix(&src_rt).iter().zip(LABELS) {
            assert_eq!(
                r.stdout,
                expected_output(&want_rt),
                "reverse-over-tile {label}: n {n} size {size}"
            );
        }

        // tile over reverse, and unroll over reverse: plain reversed order.
        let want_rev: Vec<i64> = seq.iter().rev().copied().collect();
        for pragma in [
            format!("#pragma omp tile sizes({size})\n  #pragma omp reverse"),
            format!("#pragma omp unroll partial({factor})\n  #pragma omp reverse"),
        ] {
            let src = format!(
                "{PROTO}int main(void) {{\n  {pragma}\n  for (int i = 0; i < {n}; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
            );
            for (r, label) in run_matrix(&src).iter().zip(LABELS) {
                assert_eq!(
                    r.stdout,
                    expected_output(&want_rev),
                    "{pragma} {label}: n {n} size {size} factor {factor}"
                );
            }
        }
    }
}

/// Worksharing over the new transformations: every schedule kind, both
/// representations, several team sizes — the fused/interchanged/reversed
/// loop must still execute exactly the sequential multiset of iterations.
#[test]
fn schedule_new_transform_thread_matrix_multiset_equivalent() {
    const SCHEDULES: [&str; 4] = [
        "schedule(static)",
        "schedule(static, 3)",
        "schedule(dynamic, 2)",
        "schedule(guided)",
    ];
    const MODES: [OpenMpCodegenMode; 2] =
        [OpenMpCodegenMode::Classic, OpenMpCodegenMode::IrBuilder];
    let n = 23i64;
    for sched in SCHEDULES {
        for transform in ["reverse", "interchange", "fuse"] {
            let (src, mut want): (String, Vec<i64>) = match transform {
                "reverse" => (
                    format!(
                        "{PROTO}int main(void) {{\n  #pragma omp parallel for {sched}\n  #pragma omp reverse\n  for (int i = 0; i < {n}; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
                    ),
                    (0..n).collect(),
                ),
                "interchange" => (
                    format!(
                        "{PROTO}int main(void) {{\n  #pragma omp parallel for {sched}\n  #pragma omp interchange\n  for (int i = 0; i < 5; i += 1)\n    for (int j = 0; j < 4; j += 1)\n      print_i64(i * 100 + j);\n  return 0;\n}}\n"
                    ),
                    (0..5).flat_map(|i| (0..4).map(move |j| i * 100 + j)).collect(),
                ),
                _ => (
                    format!(
                        "{PROTO}int main(void) {{\n  #pragma omp parallel for {sched}\n  #pragma omp fuse\n  {{\n    for (int i = 0; i < {n}; i += 1) print_i64(i);\n    for (int j = 0; j < 9; j += 1) print_i64(1000 + j);\n  }}\n  return 0;\n}}\n"
                    ),
                    (0..n).chain((0..9).map(|j| 1000 + j)).collect(),
                ),
            };
            want.sort_unstable();
            for threads in [1u32, 2, 4, 7] {
                for mode in MODES {
                    for opt in [false, true] {
                        let r = run_source_with(
                            &src,
                            Options {
                                codegen_mode: mode,
                                num_threads: threads,
                                ..Options::default()
                            },
                            opt,
                        );
                        let mut got: Vec<i64> =
                            r.stdout.lines().map(|l| l.parse().unwrap()).collect();
                        got.sort_unstable();
                        assert_eq!(
                            got, want,
                            "{sched} + {transform} diverged (mode {mode:?}, {threads} threads, opt {opt})"
                        );
                    }
                }
            }
        }
    }
}

/// Worksharing over a *stacked* transformation chain. `reverse` over
/// `tile` produces a `{ tc-decl; { tc-decl; loop } }` transformed AST
/// whose prologues must be spliced by both Sema's `split_prologue` and
/// the classic lowering's `resolve_loop` mirror — regression test for the
/// classic path silently worksharing zero iterations over the unsplit
/// compound.
#[test]
fn schedule_over_stacked_transform_chain_multiset_equivalent() {
    const MODES: [OpenMpCodegenMode; 2] =
        [OpenMpCodegenMode::Classic, OpenMpCodegenMode::IrBuilder];
    let n = 17i64;
    for chain in [
        "#pragma omp reverse\n  #pragma omp tile sizes(4)",
        "#pragma omp tile sizes(5)\n  #pragma omp reverse",
        "#pragma omp reverse\n  #pragma omp unroll partial(3)",
    ] {
        let src = format!(
            "{PROTO}int main(void) {{\n  #pragma omp parallel for schedule(static, 2)\n  {chain}\n  for (int i = 0; i < {n}; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
        );
        let mut want: Vec<i64> = (0..n).collect();
        want.sort_unstable();
        for threads in [1u32, 3, 4] {
            for mode in MODES {
                for opt in [false, true] {
                    let r = run_source_with(
                        &src,
                        Options {
                            codegen_mode: mode,
                            num_threads: threads,
                            ..Options::default()
                        },
                        opt,
                    );
                    let mut got: Vec<i64> = r.stdout.lines().map(|l| l.parse().unwrap()).collect();
                    got.sort_unstable();
                    assert_eq!(
                        got, want,
                        "{chain} under worksharing diverged (mode {mode:?}, {threads} threads, opt {opt})"
                    );
                }
            }
        }
    }
}

/// Autotuner property (the tuner's core safety claim, checked exhaustively):
/// every *order-preserving* mutation the enumerator can produce — schedule
/// kind/chunk, tile sizes, unroll factors, and their removals — preserves
/// the output multiset of the program relative to its fully *unannotated*
/// baseline. Order-changing axes (reverse, interchange, fuse) are excluded
/// by construction via `order_preserving_only`; what remains may reorder or
/// re-chunk iterations but must never change what is computed.
#[test]
fn order_preserving_mutations_preserve_output_multiset() {
    let annotated = format!(
        "{PROTO}int main(void) {{\n\
         \x20 #pragma omp parallel for schedule(static)\n\
         \x20 #pragma omp tile sizes(2, 2)\n\
         \x20 for (int i = 0; i < 10; i += 1)\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     print_i64(i * 100 + j);\n\
         \x20 #pragma omp unroll partial(2)\n\
         \x20 for (int k = 0; k < 12; k += 1)\n\
         \x20   print_i64(9000 + k);\n\
         \x20 return 0;\n\
         }}\n"
    );
    let model = omplt::tune::SourceModel::parse(&annotated);
    assert_eq!(model.num_pragmas(), 3, "three pragmas in the fixture");

    // The reference semantics: the same program with every pragma erased,
    // run serially on the oracle backend.
    let baseline = run_source_with(&model.strip_pragmas(), Options::default(), true);
    let mut want: Vec<String> = baseline.stdout.lines().map(str::to_string).collect();
    want.sort_unstable();
    assert_eq!(want.len(), 10 * 8 + 12, "fixture prints every cell once");

    let cfg = omplt::tune::EnumConfig {
        order_preserving_only: true,
        insertions: false,
        explore_backends: false,
        ..omplt::tune::EnumConfig::default()
    };
    let mut checked = 0;
    for c in omplt::tune::enumerate(&model, &cfg).take(48) {
        let src = model.apply(&c.mutations).expect("re-synthesis");
        let r = run_source_with(
            &src,
            Options {
                num_threads: 4,
                ..Options::default()
            },
            true,
        );
        assert_eq!(
            r.exit_code, baseline.exit_code,
            "mutant '{}' exit code",
            c.label
        );
        let mut got: Vec<String> = r.stdout.lines().map(str::to_string).collect();
        got.sort_unstable();
        assert_eq!(
            got, want,
            "order-preserving mutant '{}' changed the output multiset:\n{src}",
            c.label
        );
        checked += 1;
    }
    assert!(
        checked >= 10,
        "enumerator produced too few order-preserving mutants ({checked})"
    );
}
