//! Property-based semantic equivalence (EXPERIMENTS.md: C6): for randomized
//! loop shapes (bounds, steps, directions) and transformation parameters,
//! the transformed program must print the same sequence as the
//! untransformed one, in both representations, optimized and not.

use omplt::{run_matrix, run_source_with, Options};
use proptest::prelude::*;

const PROTO: &str = "void print_i64(long v);\n";

/// Reference semantics of `for (i = lb; i <relop> ub; i +=/-= step)`.
fn reference(lb: i64, ub: i64, step: i64, relop: &str, down: bool) -> Vec<i64> {
    let mut out = Vec::new();
    let mut i = lb;
    let mut guard = 0;
    loop {
        let cont = match relop {
            "<" => i < ub,
            "<=" => i <= ub,
            ">" => i > ub,
            ">=" => i >= ub,
            _ => unreachable!(),
        };
        if !cont || guard > 4000 {
            break;
        }
        out.push(i);
        if down {
            i -= step;
        } else {
            i += step;
        }
        guard += 1;
    }
    out
}

fn loop_source(pragma: &str, lb: i64, ub: i64, step: i64, relop: &str, down: bool) -> String {
    let inc = if down { format!("i -= {step}") } else { format!("i += {step}") };
    format!(
        "{PROTO}int main(void) {{\n  {pragma}\n  for (int i = {lb}; i {relop} {ub}; {inc})\n    print_i64(i);\n  return 0;\n}}\n"
    )
}

fn expected_output(vals: &[i64]) -> String {
    vals.iter().map(|v| format!("{v}\n")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn unroll_partial_equivalent_for_random_shapes(
        lb in -20i64..20,
        span in 0i64..40,
        step in 1i64..5,
        factor in 2u64..6,
        incl in any::<bool>(),
        down in any::<bool>(),
    ) {
        let (relop, ub) = if down {
            (if incl { ">=" } else { ">" }, lb - span)
        } else {
            (if incl { "<=" } else { "<" }, lb + span)
        };
        let expect = expected_output(&reference(lb, ub, step, relop, down));
        let pragma = format!("#pragma omp unroll partial({factor})");
        let src = loop_source(&pragma, lb, ub, step, relop, down);
        for (r, label) in run_matrix(&src).iter().zip(["classic","classic+opt","irbuilder","irbuilder+opt"]) {
            prop_assert_eq!(&r.stdout, &expect, "configuration {} diverged", label);
        }
    }

    #[test]
    fn tile_equivalent_for_random_shapes(
        lb in -10i64..10,
        span in 0i64..30,
        step in 1i64..4,
        size in 1u64..9,
    ) {
        let ub = lb + span;
        let expect = expected_output(&reference(lb, ub, step, "<", false));
        let pragma = format!("#pragma omp tile sizes({size})");
        let src = loop_source(&pragma, lb, ub, step, "<", false);
        for (r, label) in run_matrix(&src).iter().zip(["classic","classic+opt","irbuilder","irbuilder+opt"]) {
            prop_assert_eq!(&r.stdout, &expect, "configuration {} diverged", label);
        }
    }

    #[test]
    fn unroll_full_equivalent_for_random_constant_loops(
        lb in -10i64..10,
        span in 0i64..25,
        step in 1i64..4,
    ) {
        let ub = lb + span;
        let expect = expected_output(&reference(lb, ub, step, "<", false));
        let src = loop_source("#pragma omp unroll full", lb, ub, step, "<", false);
        for (r, label) in run_matrix(&src).iter().zip(["classic","classic+opt","irbuilder","irbuilder+opt"]) {
            prop_assert_eq!(&r.stdout, &expect, "configuration {} diverged", label);
        }
    }

    #[test]
    fn workshared_sum_equivalent_for_random_threads(
        n in 1i64..200,
        threads in 1u32..8,
        factor in 2u64..5,
    ) {
        let serial: i64 = (0..n).sum();
        let src = format!(
            "{PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum)\n  #pragma omp unroll partial({factor})\n  for (int i = 0; i < {n}; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
        );
        let r = run_source_with(&src, Options { num_threads: threads, ..Options::default() }, false);
        prop_assert_eq!(r.stdout, format!("{serial}\n"));
    }

    #[test]
    fn tile_2d_multiset_equivalent(
        ni in 1i64..10,
        nj in 1i64..10,
        si in 1u64..5,
        sj in 1u64..5,
    ) {
        let src = format!(
            "{PROTO}int main(void) {{\n  #pragma omp tile sizes({si}, {sj})\n  for (int i = 0; i < {ni}; i += 1)\n    for (int j = 0; j < {nj}; j += 1)\n      print_i64(i * 100 + j);\n  return 0;\n}}\n"
        );
        let mut want: Vec<i64> = (0..ni).flat_map(|i| (0..nj).map(move |j| i * 100 + j)).collect();
        want.sort_unstable();
        for r in run_matrix(&src) {
            let mut got: Vec<i64> = r.stdout.lines().map(|l| l.parse().unwrap()).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want);
        }
    }
}
