//! Representation-comparison experiments: node counts (C1), class
//! hierarchy (F2), shadow-AST shape (L5), the canonical-loop skeleton (F3),
//! diagnostics mapping, and trip-count extremes (C5).

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use omplt_ast::{OMPCanonicalLoop, OMPDirectiveKind, StmtKind};

fn parse(src: &str, mode: OpenMpCodegenMode) -> (CompilerInstance, omplt_ast::TranslationUnit) {
    let mut ci = CompilerInstance::new(Options {
        codegen_mode: mode,
        ..Options::default()
    });
    let tu = ci.parse_source("t.c", src).expect("parse");
    (ci, tu)
}

/// Fishes the first OMP directive out of a function body.
fn first_directive(
    tu: &omplt_ast::TranslationUnit,
    func: &str,
) -> omplt_ast::P<omplt_ast::OMPDirective> {
    let f = tu.function(func).unwrap();
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!()
    };
    for s in stmts {
        if let StmtKind::OMP(d) = &s.kind {
            return omplt_ast::P::clone(d);
        }
    }
    panic!("no directive in {func}");
}

const WS_SRC: &str = "void body(int i);\nvoid f(void) {\n  #pragma omp for\n  for (int i = 0; i < 100; i += 1)\n    body(i);\n}\n";

#[test]
fn c1_classic_helper_nodes_vs_canonical_meta_items() {
    // Both node counts are sourced from the observability counters Sema
    // bumps while building the representation (`--counters-json` exposes
    // the same numbers from the driver) — not from test-side AST walking.
    let session = omplt::trace::Session::begin();
    let (_, tu) = parse(WS_SRC, OpenMpCodegenMode::Classic);
    let d = first_directive(&tu, "f");
    assert!(d.loop_helpers.is_some(), "classic helpers must exist");
    let classic = session.finish().counters;
    let classic_nodes = *classic
        .get("sema.shadow.helper_nodes")
        .expect("classic Sema must count its helper bundle") as usize;
    assert!(!classic.contains_key("sema.canonical.meta_items"));

    // IrBuilder mode: OMPCanonicalLoop meta items.
    let session = omplt::trace::Session::begin();
    let (_, tu2) = parse(WS_SRC, OpenMpCodegenMode::IrBuilder);
    let d2 = first_directive(&tu2, "f");
    assert!(
        d2.loop_helpers.is_none(),
        "IrBuilder mode must not build the helper bundle"
    );
    let irb = session.finish().counters;
    let canonical_items = *irb
        .get("sema.canonical.meta_items")
        .expect("irbuilder Sema must count its meta items") as usize;
    assert!(!irb.contains_key("sema.shadow.helper_nodes"));
    assert_eq!(canonical_items, OMPCanonicalLoop::META_NODE_COUNT);

    // The paper's headline: "reduced from the 36 shadow AST nodes required
    // by OMPLoopDirective" to 3 meta-information items. Our bundle models
    // 17 nest-wide + 6 per-loop = 23 for one loop (the remainder of
    // Clang's ~36 are distribute/doacross-only helpers; DESIGN.md §7).
    assert_eq!(classic_nodes, 23);
    assert_eq!(canonical_items, 3);
    assert!(
        classic_nodes >= 7 * canonical_items,
        "~an order of magnitude more Sema nodes"
    );
}

#[test]
fn f2_class_hierarchy_relations() {
    use OMPDirectiveKind::*;
    // Fig. ompclass + shadowastclass: unroll/tile are OMPLoopBasedDirective
    // but not OMPLoopDirective; worksharing is both; parallel is neither.
    for (kind, loop_based, loop_dir, transform) in [
        (Parallel, false, false, false),
        (For, true, true, false),
        (ParallelFor, true, true, false),
        (Simd, true, true, false),
        (Taskloop, true, true, false),
        (Unroll, true, false, true),
        (Tile, true, false, true),
    ] {
        assert_eq!(kind.is_loop_based(), loop_based, "{kind:?}");
        assert_eq!(kind.is_loop_directive(), loop_dir, "{kind:?}");
        assert_eq!(kind.is_loop_transformation(), transform, "{kind:?}");
    }
}

#[test]
fn l5_transformed_ast_shape_of_partial_unroll() {
    // Paper Fig. lst:transformedast: strip-mined outer loop, inner loop
    // kept and annotated with LoopHintAttr — "no duplication takes place
    // until [LoopUnroll]".
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll partial(2)\n  for (int i = 7; i < 17; i += 3)\n    body(i);\n}\n";
    let (_, tu) = parse(src, OpenMpCodegenMode::Classic);
    let d = first_directive(&tu, "f");
    let t = d.get_transformed_stmt().expect("shadow AST");
    let dump = omplt_ast::dump_stmt(t, omplt_ast::DumpOptions::default());
    assert!(dump.contains(".unrolled.iv.i"), "{dump}");
    assert!(dump.contains(".unroll_inner.iv.i"), "{dump}");
    assert!(
        dump.contains("LoopHintAttr Implicit loop UnrollCount Numeric"),
        "{dump}"
    );
    // exactly two for-loops — the body is NOT duplicated at the AST level
    assert_eq!(omplt_sema::count_generated_loops(t), 2);
    assert_eq!(
        dump.matches("CallExpr").count(),
        1,
        "body must appear exactly once:\n{dump}"
    );
}

#[test]
fn c2_tile_generates_2n_loops_at_ast_level() {
    for depth in [1usize, 2, 3] {
        let mut loops = String::new();
        let mut body_args = Vec::new();
        for k in 0..depth {
            loops.push_str(&format!("  for (int i{k} = 0; i{k} < 16; i{k} += 1)\n"));
            body_args.push(format!("i{k}"));
        }
        let sizes = vec!["4"; depth].join(", ");
        let src = format!(
            "void body(int x);\nvoid f(void) {{\n  #pragma omp tile sizes({sizes})\n{loops}    body({});\n}}\n",
            body_args.join(" + ")
        );
        let (_, tu) = parse(&src, OpenMpCodegenMode::Classic);
        let d = first_directive(&tu, "f");
        let t = d.get_transformed_stmt().unwrap();
        assert_eq!(
            omplt_sema::count_generated_loops(t),
            2 * depth,
            "tiling {depth} loops generates {0} loops",
            2 * depth
        );
    }
}

#[test]
fn f3_loop_skeleton_blocks_in_emitted_ir() {
    // The createCanonicalLoop skeleton figure: all seven roles visible in
    // the emitted IR of the IrBuilder path.
    let src = "void body(int i);\nvoid f(int n) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < n; i += 1)\n    body(i);\n}\n";
    let (ci, tu) = parse(src, OpenMpCodegenMode::IrBuilder);
    let module = ci.codegen(&tu).expect("codegen");
    let ir = omplt::ir::print_module(&module);
    for role in [
        "preheader",
        "header",
        "cond",
        "body",
        "inc",
        "exit",
        "after",
    ] {
        assert!(
            ir.contains(&format!("omp_canonical.{role}"))
                || ir.contains(&format!("canonical.{role}")),
            "missing skeleton block '{role}':\n{ir}"
        );
    }
    assert!(ir.contains("phi"), "identifiable IV phi:\n{ir}");
    assert!(
        ir.contains("icmp ult"),
        "unsigned logical-IV compare:\n{ir}"
    );
}

#[test]
fn diagnostics_against_generated_code_map_to_literal_loop() {
    // Paper §2: a diagnostic on a shadow-AST node must point at the literal
    // loop and explain its origin.
    let mut ci = CompilerInstance::new(Options::default());
    let src = "void f(void) {\n  for (int i = 0; i < 4; i += 1)\n    ;\n}\n";
    let tu = ci.parse_source("d.c", src).unwrap();
    let _ = tu;
    // Simulate a late diagnostic against a transformed location.
    let rep = {
        let sm = ci.sm.borrow();
        let _ = &sm;
        omplt_source::SourceLocation::from_raw(1)
    };
    let syn = ci
        .sm
        .borrow_mut()
        .create_transformed_loc(rep, "#pragma omp unroll partial(2)");
    ci.diags.error(
        syn,
        "read of non-const variable '.capture_expr.' is not allowed in a constant expression",
    );
    let rendered = ci.render_diags();
    assert!(rendered.contains("d.c:1:1: error:"), "{rendered}");
    assert!(
        rendered.contains("note: in loop generated by '#pragma omp unroll partial(2)'"),
        "{rendered}"
    );
}

#[test]
fn c5_trip_count_extremes_execute_correctly() {
    // A short-typed full-range loop (2^16-1 iterations with i16): the
    // unsigned logical counter must not truncate.
    let src = "void print_i64(long v);\nint main(void) {\n  long n = 0;\n  #pragma omp unroll partial(8)\n  for (short s = -32768; s < 32767; s += 1)\n    n = n + 1;\n  print_i64(n);\n  return 0;\n}\n";
    omplt::assert_matrix_output(src, "65535\n");
}

#[test]
fn shadow_ast_invisible_in_children_but_counted_in_stats() {
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 64; i += 1)\n    body(i);\n}\n";
    let (_, tu) = parse(src, OpenMpCodegenMode::Classic);
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let stats = omplt_ast::stmt_stats(body.as_ref().unwrap());
    assert!(
        stats.shadow_nodes > 0,
        "transformed subtree must count as shadow: {stats:?}"
    );
    // The default dump (children() view) hides it:
    let dump = omplt_ast::dump_stmt(body.as_ref().unwrap(), omplt_ast::DumpOptions::default());
    assert!(!dump.contains(".unrolled.iv"), "{dump}");
}

#[test]
fn irbuilder_mode_counts_three_meta_items_in_stats() {
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 64; i += 1)\n    body(i);\n}\n";
    let (_, tu) = parse(src, OpenMpCodegenMode::IrBuilder);
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let stats = omplt_ast::stmt_stats(body.as_ref().unwrap());
    assert_eq!(stats.canonical_meta, 3, "{stats:?}");
}
