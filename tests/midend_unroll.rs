//! Experiment L2: structure of the mid-end `LoopUnroll` output — the
//! paper's "Partial unrolling with remainder loop" figure — plus the
//! pipeline-level interplay of front-end metadata and the pass.

use omplt::{CompilerInstance, Options};
use omplt_midend::{DomTree, LoopInfo};

fn compile(src: &str, optimize: bool) -> (CompilerInstance, omplt::ir::Module) {
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source("m.c", src).expect("parse");
    let mut module = ci.codegen(&tu).expect("codegen");
    if optimize {
        ci.optimize(&mut module);
    }
    (ci, module)
}

fn live_calls(module: &omplt::ir::Module, func: &str) -> usize {
    let f = module.function(func).unwrap();
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|&&i| matches!(f.inst(i), omplt::ir::Inst::Call { .. }))
        .count()
}

fn loop_count(module: &omplt::ir::Module, func: &str) -> usize {
    let f = module.function(func).unwrap();
    let dt = DomTree::compute(f);
    LoopInfo::compute(f, &dt).loops.len()
}

#[test]
fn partial_unroll_produces_main_plus_remainder_loop() {
    // Runtime trip count: after the pass there are exactly two loops — the
    // unrolled main loop and the remainder loop (paper Fig. lst:remainder).
    let src = "void body(int i);\nvoid kernel(int n) {\n  #pragma omp unroll partial(4)\n  for (int i = 0; i < n; i += 1)\n    body(i);\n}\n";
    let (_, before) = compile(src, false);
    assert_eq!(
        loop_count(&before, "kernel"),
        1,
        "front-end emits ONE loop (metadata only)"
    );
    let (_, after) = compile(src, true);
    assert_eq!(
        loop_count(&after, "kernel"),
        2,
        "pass produces main + remainder loop"
    );
    // The unrolled main loop calls body 4 times per iteration: count the
    // calls still attached to blocks (the arena keeps dead entries).
    assert_eq!(
        live_calls(&after, "kernel"),
        5,
        "4 copies in the main loop + 1 in the remainder"
    );
}

#[test]
fn full_unroll_of_constant_loop_leaves_no_loop() {
    let src = "void body(int i);\nvoid kernel(void) {\n  #pragma omp unroll full\n  for (int i = 0; i < 6; i += 1)\n    body(i);\n}\n";
    let (_, after) = compile(src, true);
    assert_eq!(loop_count(&after, "kernel"), 0);
    assert_eq!(
        live_calls(&after, "kernel"),
        6,
        "six materialized body copies"
    );
}

#[test]
fn heuristic_unroll_decides_per_shape() {
    // Small constant loop → fully unrolled by the heuristic.
    let small = "void body(int i);\nvoid kernel(void) {\n  #pragma omp unroll\n  for (int i = 0; i < 8; i += 1)\n    body(i);\n}\n";
    let (_, after) = compile(small, true);
    assert_eq!(
        loop_count(&after, "kernel"),
        0,
        "small constant loops unroll fully"
    );

    // Runtime trip count → partial with remainder.
    let runtime = "void body(int i);\nvoid kernel(int n) {\n  #pragma omp unroll\n  for (int i = 0; i < n; i += 1)\n    body(i);\n}\n";
    let (_, after) = compile(runtime, true);
    assert_eq!(
        loop_count(&after, "kernel"),
        2,
        "runtime loops unroll partially"
    );
}

#[test]
fn classic_and_irbuilder_paths_feed_the_same_pass() {
    // The same pragma reaches the LoopUnroll pass through different
    // front-end routes; both must end up duplicated.
    for mode in [
        omplt::OpenMpCodegenMode::Classic,
        omplt::OpenMpCodegenMode::IrBuilder,
    ] {
        let mut ci = CompilerInstance::new(Options {
            codegen_mode: mode,
            ..Options::default()
        });
        let tu = ci
            .parse_source(
                "m.c",
                "void body(int i);\nvoid kernel(int n) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < n; i += 1)\n    body(i);\n}\n",
            )
            .expect("parse");
        let mut module = ci.codegen(&tu).expect("codegen");
        let stats = ci.optimize(&mut module);
        assert_eq!(
            stats.partial, 1,
            "mode {mode:?} must trigger one partial unroll"
        );
    }
}

#[test]
fn unroll_pass_skips_already_disabled_loops() {
    let src = "void body(int i);\nvoid kernel(int n) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < n; i += 1)\n    body(i);\n}\n";
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source("m.c", src).expect("parse");
    let mut module = ci.codegen(&tu).expect("codegen");
    let first = ci.optimize(&mut module);
    assert_eq!(first.partial, 1);
    let second = ci.optimize(&mut module);
    assert_eq!(
        second.partial, 0,
        "re-running must not re-unroll (unroll.disable)"
    );
}
