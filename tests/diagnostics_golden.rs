//! Golden tests for `DiagnosticsEngine::render` over analysis findings: the
//! exact Clang-style text (level, `file:line:col`, carets, attached notes)
//! is part of the user interface and must not drift.

use omplt::{CompilerInstance, Options};

fn analyze_and_render(name: &str, src: &str) -> String {
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source(name, src).expect("source parses cleanly");
    ci.analyze(&tu);
    ci.render_diags()
}

#[test]
fn race_warning_renders_exactly() {
    let src = "\
int main(void) {
  int sum = 0;
  int a[8];
  #pragma omp parallel for
  for (int i = 0; i < 8; i += 1)
    sum += a[i];
  return sum;
}
";
    let expected = "\
race.c:6:5: warning: writing to shared variable 'sum' inside '#pragma omp parallel for' is a data race [-Wrace]
    sum += a[i];
    ^
race.c:6:5: note: 'sum' read here
    sum += a[i];
    ^
race.c:4:11: note: 'sum' is shared by all threads of '#pragma omp parallel for'; consider a 'private(sum)' or 'reduction(+: sum)' clause
  #pragma omp parallel for
          ^
";
    assert_eq!(analyze_and_render("race.c", src), expected);
}

#[test]
fn legality_error_renders_exactly() {
    let src = "\
int main(void) {
  int a[64];
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < 8; i += 1) {
    int t = i * 8;
    for (int j = 0; j < 8; j += 1)
      a[t + j] = t;
  }
  return 0;
}
";
    let expected = "\
tile.c:5:5: error: loop nest after '#pragma omp tile sizes(4, 4)' must be perfectly nested: statement is not part of the loop at depth 2
    int t = i * 8;
    ^
tile.c:3:11: note: '#pragma omp tile sizes(4, 4)' requires 2 perfectly nested loops here
  #pragma omp tile sizes(4, 4)
          ^
";
    assert_eq!(analyze_and_render("tile.c", src), expected);
}

#[test]
fn loop_carried_warning_renders_exactly() {
    let src = "\
int main(void) {
  int a[16];
  #pragma omp parallel for
  for (int i = 0; i < 15; i += 1)
    a[i] = a[i + 1] + 1;
  return 0;
}
";
    let expected = "\
carried.c:5:6: warning: loop-carried access to shared array 'a' in '#pragma omp parallel for': 'a[i]' is written while 'a[i + 1]' is read by a different iteration [-Wrace]
    a[i] = a[i + 1] + 1;
     ^
carried.c:5:13: note: conflicting read here
    a[i] = a[i + 1] + 1;
            ^
";
    assert_eq!(analyze_and_render("carried.c", src), expected);
}

#[test]
fn malformed_schedule_chunk_renders_exactly() {
    let src = "\
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(dynamic, 0)
  for (int i = 0; i < 8; i += 1)
    body(i);
}
";
    let expected = "\
chunk.c:3:46: error: chunk size of 'schedule' clause must be positive
  #pragma omp parallel for schedule(dynamic, 0)
                                             ^
";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("chunk.c", src)
        .expect_err("non-positive chunk must be rejected");
    assert_eq!(err, expected);
}

#[test]
fn chunk_on_runtime_schedule_renders_exactly() {
    let src = "\
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(runtime, 2)
  for (int i = 0; i < 8; i += 1)
    body(i);
}
";
    let expected = "\
rt.c:3:28: error: schedule kind 'runtime' does not take a chunk size
  #pragma omp parallel for schedule(runtime, 2)
                           ^
";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("rt.c", src)
        .expect_err("chunked runtime schedule must be rejected");
    assert_eq!(err, expected);
}

#[test]
fn malformed_schedule_chunk_json_golden() {
    let src = "\
void f(void) {
  #pragma omp parallel for schedule(guided, -3)
  for (int i = 0; i < 8; i += 1)
    ;
}
";
    let mut ci = CompilerInstance::new(Options::default());
    ci.parse_source("cj.c", src)
        .expect_err("negative chunk must be rejected");
    let json = ci.render_diags_json();
    assert!(
        json.starts_with(
            "[{\"level\":\"error\",\"message\":\"chunk size of 'schedule' clause must be positive\""
        ),
        "{json}"
    );
    assert!(
        json.contains("\"file\":\"cj.c\",\"line\":2,\"column\":45"),
        "{json}"
    );
}

/// Regression: `collapse(0)` used to drive `build_loop_helpers` with an
/// empty loop-nest and panic (`index out of bounds` in omp_sema). It must be
/// an ordinary diagnostic.
#[test]
fn collapse_zero_is_a_diagnostic_not_a_panic() {
    let src = "\
int main(void) {
  int a[8];
  #pragma omp for collapse(0)
  for (int i = 0; i < 8; i += 1)
    a[i] = i;
  return 0;
}
";
    let expected = "\
c0.c:3:28: error: argument to 'collapse' must be positive
  #pragma omp for collapse(0)
                           ^
";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("c0.c", src)
        .expect_err("collapse(0) must be rejected");
    assert_eq!(err, expected);
}

/// Regression: a multi-byte UTF-8 character in the source used to panic the
/// caret renderer ("not a char boundary" in `SourceManager::line_text`) and
/// produced one error per continuation byte. It must be a single diagnostic
/// with the offending line echoed intact.
#[test]
fn non_ascii_character_is_a_diagnostic_not_a_panic() {
    let src = "int \u{2014};\n";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("u8.c", src)
        .expect_err("non-ASCII identifier must be rejected");
    assert!(
        err.starts_with("u8.c:1:5: error: unexpected non-ASCII character\nint \u{2014};\n"),
        "{err}"
    );
    assert_eq!(
        err.matches("unexpected non-ASCII").count(),
        1,
        "one diagnostic per character, not per byte:\n{err}"
    );
}

#[test]
fn illegal_interchange_renders_exactly() {
    // The textbook (<, >) violation on a linearized stencil: the error names
    // the dependence kind and direction vector, and the notes pin source and
    // sink accesses with the distance vector.
    let src = "\
int main(void) {
  int a[64];
  #pragma omp interchange
  for (int i = 1; i < 8; i += 1)
    for (int j = 0; j < 7; j += 1)
      a[i * 8 + j] = a[(i - 1) * 8 + (j + 1)];
  return a[9];
}
";
    let expected = "\
ic.c:3:11: error: '#pragma omp interchange' is illegal here: interchanging the loops would reverse the flow dependence on 'a' with direction vector (<, >)
  #pragma omp interchange
          ^
ic.c:6:8: note: dependence source: access to 'a[8*i + j]'
      a[i * 8 + j] = a[(i - 1) * 8 + (j + 1)];
       ^
ic.c:6:23: note: dependence sink: access to 'a[8*i + j - 7]' (distance vector (1, -1))
      a[i * 8 + j] = a[(i - 1) * 8 + (j + 1)];
                      ^
";
    assert_eq!(analyze_and_render("ic.c", src), expected);
}

#[test]
fn illegal_fuse_renders_exactly() {
    // Loop 2 overwrites elements loop 1 still needs four iterations later:
    // fused, the write would move before the read (distance -4).
    let src = "\
int main(void) {
  int a[70];
  int b[64];
  #pragma omp fuse
  {
    for (int i = 0; i < 64; i += 1) b[i] = a[i] * 2;
    for (int j = 0; j < 64; j += 1) a[j + 4] = j;
  }
  return b[9];
}
";
    let expected = "\
fuse.c:4:11: error: '#pragma omp fuse' is illegal here: fusing loops 1 and 2 creates a negative-distance anti dependence on 'a' (distance -4)
  #pragma omp fuse
          ^
fuse.c:6:45: note: dependence source: access to 'a[i]'
    for (int i = 0; i < 64; i += 1) b[i] = a[i] * 2;
                                            ^
fuse.c:7:38: note: dependence sink: access to 'a[j + 4]' (distance vector (-4))
    for (int j = 0; j < 64; j += 1) a[j + 4] = j;
                                     ^
";
    assert_eq!(analyze_and_render("fuse.c", src), expected);
}

#[test]
fn analysis_limit_note_renders_exactly() {
    // An indirect subscript defeats the subscript tests; the pass must say
    // so (warning + note naming the access) instead of passing judgement.
    let src = "\
int main(void) {
  int a[64];
  int idx[64];
  #pragma omp reverse
  for (int i = 0; i < 64; i += 1)
    a[idx[i]] = i;
  return a[9];
}
";
    let expected = "\
lim.c:4:11: warning: cannot verify the legality of '#pragma omp reverse': some accesses are beyond the dependence tests [-Wanalysis-limit]
  #pragma omp reverse
          ^
lim.c:6:10: note: 'a': subscript is not affine in the loop iteration variables
    a[idx[i]] = i;
         ^
";
    assert_eq!(analyze_and_render("lim.c", src), expected);
}

#[test]
fn illegal_reverse_renders_json_exactly() {
    // The acceptance criterion: the same dependence violation, as machine-
    // readable JSON with nested notes.
    let src = "\
int main(void) {
  int a[64];
  a[0] = 1;
  #pragma omp reverse
  for (int i = 1; i < 64; i += 1)
    a[i] = a[i - 1] + 1;
  return a[9];
}
";
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source("rev.c", src).expect("parses");
    let report = ci.analyze(&tu);
    assert_eq!((report.errors, report.warnings), (1, 0));
    let expected = "[{\"level\":\"error\",\"message\":\"'#pragma omp reverse' is illegal here: \
                    the loop carries a flow dependence on 'a' with direction vector (<)\",\
                    \"file\":\"rev.c\",\"line\":4,\"column\":11,\"notes\":[{\"level\":\"note\",\
                    \"message\":\"dependence source: access to 'a[i]'\",\"file\":\"rev.c\",\
                    \"line\":6,\"column\":6,\"notes\":[]},{\"level\":\"note\",\"message\":\
                    \"dependence sink: access to 'a[i - 1]' (distance vector (1))\",\
                    \"file\":\"rev.c\",\"line\":6,\"column\":13,\"notes\":[]}]}]\n";
    assert_eq!(ci.render_diags_json(), expected);
}

#[test]
fn json_rendering_matches_text_locations() {
    let src = "\
int main(void) {
  int s = 0;
  #pragma omp parallel for
  for (int i = 0; i < 8; i += 1)
    s = i;
  return s;
}
";
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source("j.c", src).expect("parses");
    let report = ci.analyze(&tu);
    assert_eq!((report.errors, report.warnings), (0, 1));
    let json = ci.render_diags_json();
    assert!(
        json.starts_with("[{\"level\":\"warning\",\"message\":\"writing to shared variable 's'"),
        "{json}"
    );
    assert!(
        json.contains("\"file\":\"j.c\",\"line\":5,\"column\":5"),
        "{json}"
    );
    assert!(json.ends_with("]\n"), "{json}");
}

#[test]
fn illegal_simd_renders_exactly() {
    let src = "\
int main(void) {
  int a[64];
  for (int i = 0; i < 64; i += 1)
    a[i] = i;
  #pragma omp simd
  for (int i = 0; i < 63; i += 1)
    a[i + 1] = a[i] + 1;
  return 0;
}
";
    let expected = "\
simd.c:5:11: error: '#pragma omp simd' is illegal here: concurrent lanes would violate the loop-carried flow dependence on 'a' with distance vector (1)
  #pragma omp simd
          ^
simd.c:7:6: note: dependence source: access to 'a[i + 1]'
    a[i + 1] = a[i] + 1;
     ^
simd.c:7:17: note: dependence sink: access to 'a[i]' (distance vector (1))
    a[i + 1] = a[i] + 1;
                ^
";
    assert_eq!(analyze_and_render("simd.c", src), expected);
}

#[test]
fn simdlen_exceeding_safelen_is_rejected() {
    let src = "\
int main(void) {
  int a[64];
  #pragma omp simd safelen(2) simdlen(4)
  for (int i = 0; i < 64; i += 1)
    a[i] = i;
  return 0;
}
";
    let mut ci = CompilerInstance::new(Options::default());
    assert!(ci.parse_source("cap.c", src).is_err(), "sema must reject");
    let rendered = ci.render_diags();
    assert!(
        rendered.contains("'simdlen(4)' must not be greater than 'safelen(2)'"),
        "unexpected rendering:\n{rendered}"
    );
}

#[test]
fn safelen_on_non_simd_directive_is_rejected() {
    let src = "\
int main(void) {
  int a[64];
  #pragma omp for safelen(4)
  for (int i = 0; i < 64; i += 1)
    a[i] = i;
  return 0;
}
";
    let mut ci = CompilerInstance::new(Options::default());
    assert!(ci.parse_source("cl.c", src).is_err(), "sema must reject");
    let rendered = ci.render_diags();
    assert!(
        rendered.contains("clause 'safelen' is not valid on '#pragma omp for'"),
        "unexpected rendering:\n{rendered}"
    );
}
