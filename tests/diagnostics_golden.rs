//! Golden tests for `DiagnosticsEngine::render` over analysis findings: the
//! exact Clang-style text (level, `file:line:col`, carets, attached notes)
//! is part of the user interface and must not drift.

use omplt::{CompilerInstance, Options};

fn analyze_and_render(name: &str, src: &str) -> String {
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source(name, src).expect("source parses cleanly");
    ci.analyze(&tu);
    ci.render_diags()
}

#[test]
fn race_warning_renders_exactly() {
    let src = "\
int main(void) {
  int sum = 0;
  int a[8];
  #pragma omp parallel for
  for (int i = 0; i < 8; i += 1)
    sum += a[i];
  return sum;
}
";
    let expected = "\
race.c:6:5: warning: writing to shared variable 'sum' inside '#pragma omp parallel for' is a data race [-Wrace]
    sum += a[i];
    ^
race.c:6:5: note: 'sum' read here
    sum += a[i];
    ^
race.c:4:11: note: 'sum' is shared by all threads of '#pragma omp parallel for'; consider a 'private(sum)' or 'reduction(+: sum)' clause
  #pragma omp parallel for
          ^
";
    assert_eq!(analyze_and_render("race.c", src), expected);
}

#[test]
fn legality_error_renders_exactly() {
    let src = "\
int main(void) {
  int a[64];
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < 8; i += 1) {
    int t = i * 8;
    for (int j = 0; j < 8; j += 1)
      a[t + j] = t;
  }
  return 0;
}
";
    let expected = "\
tile.c:5:5: error: loop nest after '#pragma omp tile sizes(4, 4)' must be perfectly nested: statement is not part of the loop at depth 2
    int t = i * 8;
    ^
tile.c:3:11: note: '#pragma omp tile sizes(4, 4)' requires 2 perfectly nested loops here
  #pragma omp tile sizes(4, 4)
          ^
";
    assert_eq!(analyze_and_render("tile.c", src), expected);
}

#[test]
fn loop_carried_warning_renders_exactly() {
    let src = "\
int main(void) {
  int a[16];
  #pragma omp parallel for
  for (int i = 0; i < 15; i += 1)
    a[i] = a[i + 1] + 1;
  return 0;
}
";
    let expected = "\
carried.c:5:6: warning: loop-carried access to shared array 'a' in '#pragma omp parallel for': 'a[i]' is written while 'a[i + 1]' is read by a different iteration [-Wrace]
    a[i] = a[i + 1] + 1;
     ^
carried.c:5:13: note: conflicting read here
    a[i] = a[i + 1] + 1;
            ^
";
    assert_eq!(analyze_and_render("carried.c", src), expected);
}

#[test]
fn malformed_schedule_chunk_renders_exactly() {
    let src = "\
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(dynamic, 0)
  for (int i = 0; i < 8; i += 1)
    body(i);
}
";
    let expected = "\
chunk.c:3:46: error: chunk size of 'schedule' clause must be positive
  #pragma omp parallel for schedule(dynamic, 0)
                                             ^
";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("chunk.c", src)
        .expect_err("non-positive chunk must be rejected");
    assert_eq!(err, expected);
}

#[test]
fn chunk_on_runtime_schedule_renders_exactly() {
    let src = "\
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(runtime, 2)
  for (int i = 0; i < 8; i += 1)
    body(i);
}
";
    let expected = "\
rt.c:3:28: error: schedule kind 'runtime' does not take a chunk size
  #pragma omp parallel for schedule(runtime, 2)
                           ^
";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("rt.c", src)
        .expect_err("chunked runtime schedule must be rejected");
    assert_eq!(err, expected);
}

#[test]
fn malformed_schedule_chunk_json_golden() {
    let src = "\
void f(void) {
  #pragma omp parallel for schedule(guided, -3)
  for (int i = 0; i < 8; i += 1)
    ;
}
";
    let mut ci = CompilerInstance::new(Options::default());
    ci.parse_source("cj.c", src)
        .expect_err("negative chunk must be rejected");
    let json = ci.render_diags_json();
    assert!(
        json.starts_with(
            "[{\"level\":\"error\",\"message\":\"chunk size of 'schedule' clause must be positive\""
        ),
        "{json}"
    );
    assert!(
        json.contains("\"file\":\"cj.c\",\"line\":2,\"column\":45"),
        "{json}"
    );
}

/// Regression: `collapse(0)` used to drive `build_loop_helpers` with an
/// empty loop-nest and panic (`index out of bounds` in omp_sema). It must be
/// an ordinary diagnostic.
#[test]
fn collapse_zero_is_a_diagnostic_not_a_panic() {
    let src = "\
int main(void) {
  int a[8];
  #pragma omp for collapse(0)
  for (int i = 0; i < 8; i += 1)
    a[i] = i;
  return 0;
}
";
    let expected = "\
c0.c:3:28: error: argument to 'collapse' must be positive
  #pragma omp for collapse(0)
                           ^
";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("c0.c", src)
        .expect_err("collapse(0) must be rejected");
    assert_eq!(err, expected);
}

/// Regression: a multi-byte UTF-8 character in the source used to panic the
/// caret renderer ("not a char boundary" in `SourceManager::line_text`) and
/// produced one error per continuation byte. It must be a single diagnostic
/// with the offending line echoed intact.
#[test]
fn non_ascii_character_is_a_diagnostic_not_a_panic() {
    let src = "int \u{2014};\n";
    let mut ci = CompilerInstance::new(Options::default());
    let err = ci
        .parse_source("u8.c", src)
        .expect_err("non-ASCII identifier must be rejected");
    assert!(
        err.starts_with("u8.c:1:5: error: unexpected non-ASCII character\nint \u{2014};\n"),
        "{err}"
    );
    assert_eq!(
        err.matches("unexpected non-ASCII").count(),
        1,
        "one diagnostic per character, not per byte:\n{err}"
    );
}

#[test]
fn json_rendering_matches_text_locations() {
    let src = "\
int main(void) {
  int s = 0;
  #pragma omp parallel for
  for (int i = 0; i < 8; i += 1)
    s = i;
  return s;
}
";
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source("j.c", src).expect("parses");
    let report = ci.analyze(&tu);
    assert_eq!((report.errors, report.warnings), (0, 1));
    let json = ci.render_diags_json();
    assert!(
        json.starts_with("[{\"level\":\"warning\",\"message\":\"writing to shared variable 's'"),
        "{json}"
    );
    assert!(
        json.contains("\"file\":\"j.c\",\"line\":5,\"column\":5"),
        "{json}"
    );
    assert!(json.ends_with("]\n"), "{json}");
}
