//! Golden tests for the observability surface: `--time-trace` must emit
//! structurally valid Chrome trace-event JSON whose spans nest properly and
//! cover the whole pipeline, `--counters-json` must be deterministic, and a
//! malformed `OMP_SCHEDULE` must warn (text and JSON) instead of being
//! silently absorbed into the balanced-static default.

use omplt::trace::json::{self, Value};
use std::process::Command;

fn ompltc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ompltc"))
}

/// The driver-corpus example the acceptance criteria are phrased against.
const STENCIL: &str = "examples/c/stencil_tiling.c";

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("omplt-trace-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One `"ph":"X"` complete event, decoded for interval arithmetic.
struct Span {
    name: String,
    tid: u64,
    start: u64,
    end: u64,
}

fn complete_events(doc: &Value) -> Vec<Span> {
    doc.get("traceEvents")
        .expect("traceEvents array")
        .as_array()
        .expect("traceEvents is an array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            let ts = e.get("ts").and_then(Value::as_u64).expect("numeric ts");
            let dur = e.get("dur").and_then(Value::as_u64).expect("numeric dur");
            Span {
                name: e
                    .get("name")
                    .and_then(Value::as_str)
                    .expect("event name")
                    .to_string(),
                tid: e.get("tid").and_then(Value::as_u64).expect("numeric tid"),
                start: ts,
                end: ts + dur,
            }
        })
        .collect()
}

#[test]
fn time_trace_emits_valid_nested_json_covering_every_stage() {
    let trace = temp_path("stencil.trace.json");
    let out = ompltc()
        .arg(format!("--time-trace={}", trace.display()))
        .args(["--opt", "--verify-each", "--run"])
        .arg(STENCIL)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = json::parse(&text).expect("--time-trace output must be valid JSON");

    let spans = complete_events(&doc);
    // Every pipeline layer must appear: front-end (lex/parse/sema), codegen,
    // mid-end passes, verifier re-checks, and the interpreter run — all
    // nested under the root `ompltc` span.
    for stage in [
        "ompltc",
        "frontend",
        "lex.tokenize",
        "parse",
        "sema.directive",
        "codegen",
        "midend",
        "midend.pass",
        "midend.verify-each",
        "interp.run",
    ] {
        assert!(
            spans.iter().any(|s| s.name == stage),
            "no span for stage '{stage}' in:\n{text}"
        );
    }

    // Spans on one thread must be properly nested: any two either disjoint
    // or one contained in the other (that is what makes the flame graph a
    // tree rather than an overlap soup).
    for a in &spans {
        for b in &spans {
            if a.tid != b.tid || (a.start, a.end, &a.name) >= (b.start, b.end, &b.name) {
                continue;
            }
            let disjoint = a.end <= b.start || b.end <= a.start;
            let nested =
                (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end);
            assert!(
                disjoint || nested,
                "spans '{}' [{},{}) and '{}' [{},{}) overlap without nesting",
                a.name,
                a.start,
                a.end,
                b.name,
                b.start,
                b.end
            );
        }
    }

    // The root span must account for ≥95% of session wall time (the
    // acceptance criterion): everything the driver does happens inside it.
    let wall = doc
        .get("otherData")
        .and_then(|o| o.get("wallTimeUs"))
        .and_then(Value::as_u64)
        .expect("otherData.wallTimeUs");
    let root = spans.iter().find(|s| s.name == "ompltc").unwrap();
    let covered = (root.end - root.start) as f64 / wall.max(1) as f64;
    assert!(
        covered >= 0.95,
        "root span covers {:.1}% of {wall} us wall time",
        covered * 100.0
    );

    // Worker threads attached by the interpreter record under their own
    // virtual tids, so runtime chunks are attributable per thread.
    let counters = doc
        .get("otherData")
        .and_then(|o| o.get("counters"))
        .expect("otherData.counters");
    assert!(
        counters.get("interp.barrier.waits").is_some(),
        "runtime counters must ride along in the trace:\n{text}"
    );
    // `--verify-each` re-checks every function after each pass; the verifier
    // layer reports through this counter (it verifies function-by-function
    // on this path, so no module-level `ir.verify` span is opened).
    assert!(
        counters
            .get("ir.verify.functions")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0),
        "verifier re-checks must be counted:\n{text}"
    );
}

#[test]
fn counters_json_is_deterministic_across_runs() {
    let run = |tag: &str| {
        let path = temp_path(&format!("stencil.counters.{tag}.json"));
        let out = ompltc()
            .arg(format!("--counters-json={}", path.display()))
            .args(["--opt", "--verify-each", "--run"])
            .arg(STENCIL)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&path).unwrap()
    };
    let first = run("a");
    let second = run("b");
    assert_eq!(
        first, second,
        "two runs of the same input must produce byte-identical counters"
    );
    // And the document itself is machine-readable.
    json::parse(&first).expect("--counters-json output must be valid JSON");
}

#[test]
fn counters_reproduce_c1_node_counts_from_instrumentation_alone() {
    // Experiment C1 (paper: "reduced from the 36 shadow AST nodes required
    // by OMPLoopDirective" to 3 meta items) read straight from the driver's
    // `--counters-json`, with no test-side AST walking. The stencil's
    // `parallel for` builds the 23-node helper bundle on the classic path
    // and 3 canonical meta items on the irbuilder path.
    let classic = temp_path("c1.classic.json");
    let out = ompltc()
        .arg(format!("--counters-json={}", classic.display()))
        .arg(STENCIL)
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = json::parse(&std::fs::read_to_string(&classic).unwrap()).unwrap();
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("sema.shadow.helper_nodes")
            .and_then(Value::as_u64),
        Some(23),
        "classic helper bundle node count"
    );
    assert!(
        counters.get("sema.canonical.meta_items").is_none(),
        "classic mode must not build canonical meta items"
    );

    let irb = temp_path("c1.irbuilder.json");
    let out = ompltc()
        .arg(format!("--counters-json={}", irb.display()))
        .arg("--enable-irbuilder")
        .arg(STENCIL)
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = json::parse(&std::fs::read_to_string(&irb).unwrap()).unwrap();
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("sema.canonical.meta_items")
            .and_then(Value::as_u64),
        Some(3),
        "canonical meta-item count"
    );
    assert!(
        counters.get("sema.shadow.helper_nodes").is_none(),
        "irbuilder mode must not build the helper bundle"
    );
}

const RUNTIME_SCHED: &str = "void print_i64(long v);\nint main(void) {\n  #pragma omp parallel num_threads(2)\n  {\n    #pragma omp for schedule(runtime)\n    for (int i = 0; i < 4; i += 1)\n      print_i64(i);\n  }\n  return 0;\n}\n";

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = temp_path(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn malformed_omp_schedule_warns_exactly_and_falls_back() {
    let p = write_temp("rt_sched.c", RUNTIME_SCHED);
    for (value, reason) in [
        ("dynamic,0", "chunk size must be positive, got 0"),
        ("guided,-4", "chunk size must be positive, got -4"),
        ("dynamic,abc", "invalid chunk size 'abc'"),
        ("fifo,2", "unknown schedule kind 'fifo'"),
    ] {
        let out = ompltc()
            .env("OMP_SCHEDULE", value)
            .arg("--run")
            .arg(&p)
            .output()
            .unwrap();
        // Explicit fallback: the warning is emitted AND the program still
        // runs to completion on the balanced-static default.
        assert!(out.status.success(), "OMP_SCHEDULE={value}");
        let expected = format!(
            "<unknown>: warning: ignoring malformed OMP_SCHEDULE value \
             '{value}' ({reason}); falling back to balanced static schedule\n"
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stderr),
            expected,
            "OMP_SCHEDULE={value}"
        );
        let mut got: Vec<i64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "OMP_SCHEDULE={value}");
    }
}

#[test]
fn malformed_omp_schedule_warns_in_json_format() {
    let p = write_temp("rt_sched_json.c", RUNTIME_SCHED);
    let out = ompltc()
        .env("OMP_SCHEDULE", "dynamic,0")
        .args(["--run", "--diag-format=json"])
        .arg(&p)
        .output()
        .unwrap();
    assert!(out.status.success());
    let expected = "[{\"level\":\"warning\",\"message\":\"ignoring malformed \
                    OMP_SCHEDULE value 'dynamic,0' (chunk size must be \
                    positive, got 0); falling back to balanced static \
                    schedule\",\"file\":null,\"notes\":[]}]\n";
    assert_eq!(String::from_utf8_lossy(&out.stderr), expected);
}

#[test]
fn well_formed_omp_schedule_does_not_warn() {
    let p = write_temp("rt_sched_ok.c", RUNTIME_SCHED);
    for value in ["static", "dynamic,2", "guided,1"] {
        let out = ompltc()
            .env("OMP_SCHEDULE", value)
            .arg("--run")
            .arg(&p)
            .output()
            .unwrap();
        assert!(out.status.success(), "OMP_SCHEDULE={value}");
        assert!(
            out.stderr.is_empty(),
            "OMP_SCHEDULE={value} warned: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
