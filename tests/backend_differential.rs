//! Differential testing: the bytecode VM against the tree-walking
//! interpreter, which serves as the semantic oracle.
//!
//! Every comparison point runs the *same* source through both backends and
//! requires:
//!
//! * identical exit code,
//! * identical observable memory (final byte contents of every global),
//! * identical task counts,
//! * identical worksharing chunk logs (sorted multiset — chunk boundaries
//!   are deterministic even when the claiming thread is a race),
//! * identical stdout (exact for one thread, as a sorted line multiset for
//!   threaded runs, where interleaving is allowed to differ).
//!
//! Coverage: the checked-in example programs, the full schedule-kind ×
//! transformation × thread-count matrix the ISSUE's acceptance criteria
//! name, and a fleet of seeded pseudo-random loop nests.

use omplt::interp::{RunResult, RuntimeSchedule};
use omplt::{Backend, CompilerInstance, OpenMpCodegenMode, Options};

fn run_with(source: &str, opts: Options, optimize: bool, label: &str) -> RunResult {
    let mut ci = CompilerInstance::new(opts);
    match ci.compile_and_run("diff.c", source, optimize) {
        Ok(r) => r,
        Err(e) => panic!("[{label}] {:?} backend failed:\n{e}", opts.backend),
    }
}

/// Runs `source` on both backends and asserts every observable agrees.
fn assert_backends_agree(source: &str, base: Options, optimize: bool, label: &str) {
    let opts = |backend| Options {
        backend,
        log_chunks: true,
        ..base
    };
    let oracle = run_with(source, opts(Backend::Interp), optimize, label);
    let vm = run_with(source, opts(Backend::Vm), optimize, label);
    assert_eq!(oracle.exit_code, vm.exit_code, "[{label}] exit code");
    assert_eq!(
        oracle.final_globals, vm.final_globals,
        "[{label}] final global memory"
    );
    assert_eq!(
        oracle.tasks_created, vm.tasks_created,
        "[{label}] tasks created"
    );
    assert_eq!(oracle.chunk_log, vm.chunk_log, "[{label}] chunk log");
    if base.num_threads == 1 || base.serial {
        assert_eq!(oracle.stdout, vm.stdout, "[{label}] stdout");
    } else {
        let mut a: Vec<&str> = oracle.stdout.lines().collect();
        let mut b: Vec<&str> = vm.stdout.lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "[{label}] stdout line multiset");
    }
}

const MODES: [OpenMpCodegenMode; 2] = [OpenMpCodegenMode::Classic, OpenMpCodegenMode::IrBuilder];

#[test]
fn example_programs_agree_on_both_backends() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/c");
    let mut ran = 0;
    for entry in std::fs::read_dir(dir).expect("examples/c exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("c") {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for mode in MODES {
            for threads in [1u32, 4] {
                for optimize in [false, true] {
                    let base = Options {
                        codegen_mode: mode,
                        num_threads: threads,
                        ..Options::default()
                    };
                    let label = format!("{name} {mode:?} threads={threads} opt={optimize}");
                    assert_backends_agree(&source, base, optimize, &label);
                    ran += 1;
                }
            }
        }
    }
    assert!(ran > 0, "no example programs found in {dir}");
}

/// The acceptance-criteria matrix: every schedule kind × {none, tile,
/// unroll} × threads ∈ {1, 4}, in both codegen modes, with and without the
/// mid-end pipeline.
#[test]
fn schedule_transform_thread_matrix_agrees() {
    let schedules = [
        ("default", ""),
        ("static", " schedule(static)"),
        ("static3", " schedule(static, 3)"),
        ("dynamic2", " schedule(dynamic, 2)"),
        ("guided", " schedule(guided)"),
        ("runtime", " schedule(runtime)"),
    ];
    // Each transform wraps the same inner loop so the observable memory
    // (`acc`) is identical across all of them.
    let transforms = [
        ("none", ""),
        ("tile", "      #pragma omp tile sizes(4)\n"),
        ("unroll", "      #pragma omp unroll partial(2)\n"),
        ("reverse", "      #pragma omp reverse\n"),
    ];
    for (sname, sched) in schedules {
        for (tname, pragma) in transforms {
            let src = format!(
                "long acc[204];\n\
                 int main(void) {{\n\
                 \x20 #pragma omp parallel\n\
                 \x20 {{\n\
                 \x20   #pragma omp for{sched}\n\
                 \x20   for (int i = 0; i < 17; i += 1) {{\n\
                 {pragma}\
                 \x20     for (int j = 0; j < 12; j += 1)\n\
                 \x20       acc[i * 12 + j] = i * 1000 + j * 7;\n\
                 \x20   }}\n\
                 \x20 }}\n\
                 \x20 long sum = 0;\n\
                 \x20 for (int k = 0; k < 204; k += 1)\n\
                 \x20   sum += acc[k];\n\
                 \x20 return sum % 251;\n\
                 }}\n"
            );
            for mode in MODES {
                for threads in [1u32, 4] {
                    for optimize in [false, true] {
                        let base = Options {
                            codegen_mode: mode,
                            num_threads: threads,
                            // Pin schedule(runtime) so the matrix is
                            // hermetic regardless of OMP_SCHEDULE.
                            runtime_schedule: Some(RuntimeSchedule::parse("dynamic,3").unwrap()),
                            ..Options::default()
                        };
                        let label =
                            format!("{sname}/{tname} {mode:?} threads={threads} opt={optimize}");
                        assert_backends_agree(&src, base, optimize, &label);
                    }
                }
            }
        }
    }
}

/// A minimal deterministic PRNG (xorshift-multiply) so the random nests are
/// reproducible from the printed seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// Generates a randomized two-level loop nest: outer worksharing loop with a
/// random schedule, inner loop with a random transformation, random bounds
/// and coefficients, writing disjoint cells of a global accumulator.
fn random_nest(rng: &mut Lcg) -> (String, u32) {
    let ni = rng.range(3, 23);
    let nj = rng.range(1, 9);
    let c1 = rng.range(1, 999);
    let c2 = rng.range(1, 99);
    let sched = *rng.pick(&[
        "",
        " schedule(static)",
        " schedule(static, 2)",
        " schedule(dynamic, 3)",
        " schedule(guided, 2)",
        " schedule(runtime)",
    ]);
    let unroll_factor = rng.range(2, 4);
    let tile_size = rng.range(2, 5);
    let pragma = match rng.range(0, 3) {
        0 => String::new(),
        1 => format!("      #pragma omp tile sizes({tile_size})\n"),
        2 => format!("      #pragma omp unroll partial({unroll_factor})\n"),
        _ => "      #pragma omp reverse\n".to_string(),
    };
    let threads = *rng.pick(&[1u32, 4]);
    let total = ni * nj;
    let src = format!(
        "long acc[{total}];\n\
         int main(void) {{\n\
         \x20 #pragma omp parallel\n\
         \x20 {{\n\
         \x20   #pragma omp for{sched}\n\
         \x20   for (int i = 0; i < {ni}; i += 1) {{\n\
         {pragma}\
         \x20     for (int j = 0; j < {nj}; j += 1)\n\
         \x20       acc[i * {nj} + j] = i * {c1} + j * {c2} + (i - j) * (i + j);\n\
         \x20   }}\n\
         \x20 }}\n\
         \x20 long sum = 0;\n\
         \x20 for (int k = 0; k < {total}; k += 1)\n\
         \x20   sum += acc[k];\n\
         \x20 return sum % 251;\n\
         }}\n"
    );
    (src, threads)
}

#[test]
fn randomized_loop_nests_agree() {
    let mut rng = Lcg(0x0517_2021_1c99);
    for case in 0..24 {
        let seed = rng.0;
        let (src, threads) = random_nest(&mut rng);
        let mode = *rng.pick(&MODES);
        let optimize = rng.next().is_multiple_of(2);
        let base = Options {
            codegen_mode: mode,
            num_threads: threads,
            runtime_schedule: Some(RuntimeSchedule::parse("guided").unwrap()),
            ..Options::default()
        };
        let label = format!(
            "random case {case} (seed {seed:#x}, {mode:?}, threads={threads}, opt={optimize})\n{src}"
        );
        assert_backends_agree(&src, base, optimize, &label);
    }
}

/// Mutation-driven differential leg: the autotuner's seeded mutation
/// sampler generates directive variants of a triangular reduction (a nest
/// chosen because *both* of its order-changing insertions are illegal —
/// `reverse` hits the reduction's loop-carried flow dependence and
/// `interchange` hits the non-rectangular inner bound). Every variant the
/// legality gate admits must execute identically on both backends; every
/// variant it rejects must carry at least one diagnostic explaining why.
/// This is the tuner's prune-before-run contract, checked from the outside.
#[test]
fn sampled_directive_mutants_agree_or_are_pruned() {
    let base_src = "\
void print_i64(long v);\n\
int main(void) {\n\
  long sum = 0;\n\
  #pragma omp parallel for reduction(+: sum) schedule(static)\n\
  for (int i = 0; i < 24; i += 1)\n\
    for (int j = 0; j < i; j += 1)\n\
      sum = sum + (j % 7) + 1;\n\
  print_i64(sum);\n\
  return 0;\n\
}\n";
    let model = omplt::tune::SourceModel::parse(base_src);
    let cfg = omplt::tune::EnumConfig::default();
    let (mut legal, mut pruned) = (0usize, 0usize);
    for c in omplt::tune::sample(&model, &cfg, 0xA11CE, 48) {
        let src = model.apply(&c.mutations).expect("re-synthesis");
        let mut ci = CompilerInstance::new(Options::default());
        match ci.parse_source("mut.c", &src) {
            Err(_) => {
                pruned += 1;
                assert!(
                    !ci.diags.is_empty(),
                    "unparseable mutant '{}' must carry diagnostics:\n{src}",
                    c.label
                );
            }
            Ok(tu) => {
                let verdict = omplt::analysis::verdict(&tu);
                if verdict.is_legal() {
                    legal += 1;
                    let base = Options {
                        num_threads: 4,
                        ..Options::default()
                    };
                    assert_backends_agree(&src, base, true, &format!("mutant '{}'", c.label));
                } else {
                    pruned += 1;
                    assert!(
                        !verdict.messages().is_empty(),
                        "illegal mutant '{}' must carry diagnostics:\n{src}",
                        c.label
                    );
                }
            }
        }
    }
    assert!(
        legal >= 5,
        "sampler produced too few legal mutants ({legal})"
    );
    assert!(
        pruned >= 1,
        "sampler never hit an illegal mutation — the prune branch is untested"
    );
}

/// The order-changing transformations (interchange, fuse, and reverse
/// composed with tile) must agree between backends on every observable —
/// these rewrite the loop *structure*, so a VM lowering bug would show up as
/// divergent chunk logs or final memory even when the multiset of writes is
/// right.
#[test]
fn order_changing_transforms_agree() {
    let interchange = "\
long acc[120];\n\
int main(void) {\n\
  #pragma omp parallel for schedule(static, 2)\n\
  #pragma omp interchange permutation(2, 1)\n\
  for (int i = 0; i < 10; i += 1)\n\
    for (int j = 0; j < 12; j += 1)\n\
      acc[i * 12 + j] = i * 31 + j * 7;\n\
  long sum = 0;\n\
  for (int k = 0; k < 120; k += 1)\n\
    sum += acc[k];\n\
  return sum % 251;\n\
}\n";
    let fuse = "\
long a[17];\nlong b[9];\n\
int main(void) {\n\
  #pragma omp parallel for schedule(dynamic, 3)\n\
  #pragma omp fuse\n\
  {\n\
    for (int i = 0; i < 17; i += 1) a[i] = i * 5 + 1;\n\
    for (int j = 0; j < 9; j += 1) b[j] = 100 - j * 3;\n\
  }\n\
  long sum = 0;\n\
  for (int k = 0; k < 17; k += 1) sum += a[k];\n\
  for (int k = 0; k < 9; k += 1) sum += b[k];\n\
  return sum % 251;\n\
}\n";
    let reverse_tile = "\
long acc[40];\n\
int main(void) {\n\
  #pragma omp parallel for schedule(guided)\n\
  #pragma omp reverse\n\
  #pragma omp tile sizes(4)\n\
  for (int i = 0; i < 40; i += 1)\n\
    acc[i] = i * 13 - 6;\n\
  long sum = 0;\n\
  for (int k = 0; k < 40; k += 1)\n\
    sum += acc[k];\n\
  return sum % 251;\n\
}\n";
    for (name, src) in [
        ("interchange", interchange),
        ("fuse", fuse),
        ("reverse+tile", reverse_tile),
    ] {
        for mode in MODES {
            for threads in [1u32, 4] {
                for optimize in [false, true] {
                    let base = Options {
                        codegen_mode: mode,
                        num_threads: threads,
                        ..Options::default()
                    };
                    let label = format!("{name} {mode:?} threads={threads} opt={optimize}");
                    assert_backends_agree(src, base, optimize, &label);
                }
            }
        }
    }
}

#[test]
fn simd_width_transform_matrix_agrees() {
    // The vector tier's acceptance matrix: `simd` alone and composed with
    // tile, unroll, and worksharing, at every vector width — byte-identical
    // against the interpreter whether the widening pass fires or refuses
    // (compositions that land a non-canonical loop under the simd metadata
    // are refused per loop and run scalar; the differential cannot tell and
    // must not care).
    let cases = [
        (
            "simd",
            "void print_i64(long v);\n\
             long x[103];\nlong y[103];\n\
             int main(void) {\n\
             \x20 for (int i = 0; i < 103; i += 1) { x[i] = i - 50; y[i] = 3 * i; }\n\
             \x20 long sum = 0;\n\
             \x20 #pragma omp simd reduction(+: sum)\n\
             \x20 for (int i = 0; i < 103; i += 1) {\n\
             \x20   y[i] = y[i] + 7 * x[i];\n\
             \x20   sum += y[i];\n\
             \x20 }\n\
             \x20 print_i64(sum);\n\
             \x20 return 0;\n\
             }\n"
            .to_string(),
        ),
        (
            "simd+tile",
            "void print_i64(long v);\n\
             long y[96];\n\
             int main(void) {\n\
             \x20 for (int i = 0; i < 96; i += 1) y[i] = i;\n\
             \x20 #pragma omp simd\n\
             \x20 #pragma omp tile sizes(8)\n\
             \x20 for (int i = 0; i < 96; i += 1)\n\
             \x20   y[i] = y[i] * 3 + 1;\n\
             \x20 long s = 0;\n\
             \x20 for (int k = 0; k < 96; k += 1) s += y[k];\n\
             \x20 print_i64(s);\n\
             \x20 return 0;\n\
             }\n"
            .to_string(),
        ),
        (
            "simd+unroll",
            "void print_i64(long v);\n\
             long y[90];\n\
             int main(void) {\n\
             \x20 for (int i = 0; i < 90; i += 1) y[i] = i;\n\
             \x20 #pragma omp simd\n\
             \x20 #pragma omp unroll partial(2)\n\
             \x20 for (int i = 0; i < 90; i += 1)\n\
             \x20   y[i] = y[i] * 5 - 2;\n\
             \x20 long s = 0;\n\
             \x20 for (int k = 0; k < 90; k += 1) s += y[k];\n\
             \x20 print_i64(s);\n\
             \x20 return 0;\n\
             }\n"
            .to_string(),
        ),
        (
            "for-simd",
            "long y[130];\n\
             int main(void) {\n\
             \x20 for (int i = 0; i < 130; i += 1) y[i] = i;\n\
             \x20 #pragma omp parallel\n\
             \x20 {\n\
             \x20   #pragma omp for simd schedule(static, 16)\n\
             \x20   for (int i = 0; i < 130; i += 1)\n\
             \x20     y[i] = y[i] * 3 + 1;\n\
             \x20 }\n\
             \x20 long s = 0;\n\
             \x20 for (int k = 0; k < 130; k += 1) s += y[k];\n\
             \x20 return s % 251;\n\
             }\n"
            .to_string(),
        ),
        (
            "parallel-for-simd",
            "long y[130];\n\
             int main(void) {\n\
             \x20 for (int i = 0; i < 130; i += 1) y[i] = i;\n\
             \x20 #pragma omp parallel for simd simdlen(4)\n\
             \x20 for (int i = 0; i < 130; i += 1)\n\
             \x20   y[i] = y[i] * 7 - i;\n\
             \x20 long s = 0;\n\
             \x20 for (int k = 0; k < 130; k += 1) s += y[k];\n\
             \x20 return s % 251;\n\
             }\n"
            .to_string(),
        ),
    ];
    for (name, src) in &cases {
        for mode in MODES {
            for threads in [1u32, 4] {
                for width in [0u8, 2, 4, 8] {
                    let base = Options {
                        codegen_mode: mode,
                        num_threads: threads,
                        vector_width: width,
                        ..Options::default()
                    };
                    let label = format!("{name} {mode:?} t{threads} w{width}");
                    assert_backends_agree(src, base, false, &label);
                }
            }
        }
    }
}

#[test]
fn simd_gather_case_agrees_and_widens() {
    // A stride-2 read is still an affine subscript, so the widening pass
    // takes it — through a `vgather` rather than a unit-stride `vload`.
    // Check the lowering actually contains the gather (otherwise this test
    // silently degrades into a scalar-vs-scalar comparison), then run the
    // usual differential at every width.
    let src = "void print_i64(long v);\n\
         long x[206];\nlong y[103];\n\
         int main(void) {\n\
         \x20 for (int i = 0; i < 206; i += 1) x[i] = i % 29;\n\
         \x20 #pragma omp simd\n\
         \x20 for (int i = 0; i < 103; i += 1)\n\
         \x20   y[i] = x[2 * i] + 1;\n\
         \x20 long s = 0;\n\
         \x20 for (int k = 0; k < 103; k += 1) s += y[k];\n\
         \x20 print_i64(s);\n\
         \x20 return 0;\n\
         }\n";

    let mut ci = CompilerInstance::new(Options {
        vector_width: 4,
        ..Options::default()
    });
    let tu = ci.parse_source("gather.c", src).expect("parse");
    let module = ci.codegen(&tu).expect("codegen");
    let code = ci.compile_bytecode(&module).expect("bytecode");
    let disasm: String = code.funcs.iter().map(omplt::vm::disasm).collect();
    assert!(
        disasm.contains("vgather"),
        "stride-2 subscript should widen through a gather:\n{disasm}"
    );

    for width in [0u8, 2, 4, 8] {
        let base = Options {
            vector_width: width,
            ..Options::default()
        };
        assert_backends_agree(src, base, false, &format!("gather w{width}"));
    }
}
