//! The autotuner's acceptance suite (ISSUE PR 7): with the deterministic
//! retired-op cost model and a fixed enumeration (or fixed seed), the tuner
//! must
//!
//! * rank the hand-annotated original no better than its own winner (the
//!   identity is candidate 0, so the winner can only improve on it),
//! * rediscover the known-best configurations of the two reference
//!   workloads (stencil: a better schedule; triangular: the VM backend),
//! * produce **byte-identical** reports across independent runs,
//! * respect the evaluation budget,
//! * prune every illegal candidate with the analysis diagnostics that
//!   rejected it, and evaluate only candidates the analysis suite passes.

use omplt::tune::{enumerate, BackendChoice, EnumConfig, SourceModel, Status};
use omplt::tuner::{autotune, TuneConfig};

fn example(name: &str) -> (String, String) {
    let path = format!("{}/examples/c/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("example exists");
    (path, src)
}

fn tune(name: &str, budget: usize, seed: Option<u64>) -> omplt::tuner::TuneOutcome {
    let (path, src) = example(name);
    let cfg = TuneConfig {
        budget,
        seed,
        ..TuneConfig::default()
    };
    autotune(&path, &src, &cfg).expect("baseline is sound")
}

#[test]
fn winner_never_loses_to_the_hand_annotation() {
    for name in ["stencil_tiling.c", "triangular_reduction.c"] {
        let outcome = tune(name, 12, None);
        let report = &outcome.report;
        let winner = report.winner().expect("grid search finds a survivor");
        let Status::Evaluated(m) = &winner.status else {
            panic!("winner must be an evaluated candidate");
        };
        assert!(
            m.score(report.cost_model) <= report.baseline.score(report.cost_model),
            "{name}: winner ({}) scored worse than the hand annotation",
            winner.label
        );
        // Candidate 0 is the identity, so the bound above is structural —
        // check the enumeration actually kept that promise.
        let first = report.outcomes.first().expect("nonempty");
        assert_eq!(first.id, 0);
        assert_eq!(first.label, "original");
        assert!(matches!(first.status, Status::Evaluated(_)));
        assert!(outcome.best_source.is_some(), "{name}: winner has a source");
    }
}

#[test]
fn tuner_rediscovers_known_best_configs() {
    // Triangular: the imbalanced nest retires roughly half the ops on the
    // register VM, so with backend exploration on, the known-best config is
    // a VM candidate — the tuner must land on it.
    let outcome = tune("triangular_reduction.c", 24, None);
    let winner = outcome.report.winner().expect("survivor");
    assert_eq!(
        winner.backend,
        BackendChoice::Vm,
        "triangular winner should run on the VM, got '{}'",
        winner.label
    );

    // Stencil: the hand annotation uses the default static schedule; the
    // grid must find a strictly cheaper configuration among the first
    // handful of schedule mutations.
    let outcome = tune("stencil_tiling.c", 8, None);
    let report = &outcome.report;
    let winner = report.winner().expect("survivor");
    let Status::Evaluated(m) = &winner.status else {
        panic!("winner must be evaluated");
    };
    assert!(
        m.score(report.cost_model) < report.baseline.score(report.cost_model),
        "stencil search should strictly improve on the hand annotation"
    );
}

#[test]
fn reports_are_byte_identical_across_runs() {
    // Deterministic grid on the stencil, seeded sampling on the triangular
    // nest — both report surfaces (JSON and text) must be reproducible
    // byte-for-byte under the retired-op cost model.
    for (name, seed) in [
        ("stencil_tiling.c", None),
        ("triangular_reduction.c", Some(7u64)),
    ] {
        let a = tune(name, 10, seed);
        let b = tune(name, 10, seed);
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "{name}: JSON report must be byte-identical across runs"
        );
        assert_eq!(
            a.report.render_text(),
            b.report.render_text(),
            "{name}: text report must be byte-identical across runs"
        );
        assert_eq!(a.best_source, b.best_source, "{name}: winning source");
    }
}

#[test]
fn budget_caps_evaluations() {
    let outcome = tune("triangular_reduction.c", 5, None);
    let (evaluated, _, _, _, _) = outcome.report.tally();
    assert_eq!(evaluated, 5, "exactly the budgeted number of evaluations");
    assert_eq!(outcome.report.budget, 5);
}

#[test]
fn illegal_candidates_are_pruned_with_diagnostics() {
    // The triangular nest makes both order-changing insertions illegal
    // (reverse: loop-carried flow dependence on the reduction; interchange:
    // non-rectangular bounds), so the grid is guaranteed to hit the prune
    // path.
    let (path, src) = example("triangular_reduction.c");
    let cfg = TuneConfig {
        budget: 16,
        ..TuneConfig::default()
    };
    let outcome = autotune(&path, &src, &cfg).expect("baseline is sound");
    let pruned = outcome.report.pruned();
    assert!(!pruned.is_empty(), "grid must hit illegal candidates");
    for p in &pruned {
        let Status::Pruned(msgs) = &p.status else {
            unreachable!()
        };
        assert!(
            !msgs.is_empty(),
            "pruned candidate '{}' must carry the diagnostics that rejected it",
            p.label
        );
        assert!(
            msgs.iter()
                .any(|m| m.starts_with("error:") || m.starts_with("warning:")),
            "pruned candidate '{}' diagnostics must name a severity: {msgs:?}",
            p.label
        );
    }

    // And the dual: every *evaluated* candidate re-checks clean through the
    // analysis suite — the tuner never executes what `--analyze` rejects.
    let model = SourceModel::parse(&src);
    let grid: Vec<_> = enumerate(&model, &EnumConfig::default()).collect();
    for o in &outcome.report.outcomes {
        if !matches!(o.status, Status::Evaluated(_)) {
            continue;
        }
        let mutated = model.apply(&grid[o.id].mutations).expect("re-synthesis");
        let mut ci = omplt::CompilerInstance::new(omplt::Options::default());
        let tu = ci
            .parse_source("cand.c", &mutated)
            .expect("evaluated candidates parse");
        assert!(
            omplt::analysis::verdict(&tu).is_legal(),
            "evaluated candidate '{}' fails --analyze",
            o.label
        );
    }
}

#[test]
fn vector_width_axis_rediscovers_widening() {
    // Saxpy-simd: a lane-parallel integer kernel whose `#pragma omp simd`
    // loop the VM widens. The grid's vector-width axis must (a) keep the
    // unmutated hand annotation as candidate 0 — the scalar baseline every
    // ranked report is anchored to — and (b) land the winner on a widened
    // VM candidate that retires well under half the baseline's ops.
    let outcome = tune("saxpy_simd.c", 12, None);
    let report = &outcome.report;

    let first = report.outcomes.first().expect("nonempty");
    assert_eq!(first.id, 0);
    assert_eq!(first.label, "original");
    assert!(matches!(first.status, Status::Evaluated(_)));

    let winner = report.winner().expect("survivor");
    assert_eq!(
        winner.backend,
        BackendChoice::Vm,
        "widening only exists in the bytecode tier, got '{}'",
        winner.label
    );
    assert!(
        winner.label.contains("vw="),
        "winner should come from the vector-width axis, got '{}'",
        winner.label
    );
    let Status::Evaluated(m) = &winner.status else {
        panic!("winner must be evaluated");
    };
    assert!(
        m.score(report.cost_model) * 2 < report.baseline.score(report.cost_model),
        "width-4 lanes should at least halve the retired-op score \
         (winner {} vs baseline {})",
        m.score(report.cost_model),
        report.baseline.score(report.cost_model)
    );

    // The ranked text report renders the axis labels verbatim.
    let text = report.render_text();
    assert!(text.contains("vw=4"), "report lists the width-4 candidate");
}
