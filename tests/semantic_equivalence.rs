//! End-to-end semantic equivalence (EXPERIMENTS.md: L1, C6): every loop
//! transformation, in both representations, with and without the mid-end
//! pipeline, must preserve program behaviour.

use omplt::{assert_matrix_output, run_source, run_source_with, Options};

/// Expected "print each iteration value" output.
fn seq(vals: impl IntoIterator<Item = i64>) -> String {
    vals.into_iter().map(|v| format!("{v}\n")).collect()
}

const PRINT_PROTO: &str = "void print_i64(long v);\n";

#[test]
fn plain_loop_baseline() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  for (int i = 7; i < 17; i += 3)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([7, 10, 13, 16]));
}

#[test]
fn unroll_partial2_matches_manual_unroll() {
    // The paper's §1 equivalence example (L1): `unroll partial(2)` vs the
    // hand-unrolled version must behave identically.
    let pragma_version = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 9; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    let manual_version = format!(
        "{PRINT_PROTO}int main(void) {{\n  for (int i = 0; i < 9; i += 2) {{\n    print_i64(i);\n    if (i + 1 < 9) print_i64(i + 1);\n  }}\n  return 0;\n}}\n"
    );
    let expected = seq(0..9);
    assert_matrix_output(&pragma_version, &expected);
    let manual = run_source(&manual_version);
    assert_eq!(manual.stdout, expected);
}

#[test]
fn unroll_full_small_loop() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll full\n  for (int i = 0; i < 5; i += 1)\n    print_i64(i * 10);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([0, 10, 20, 30, 40]));
}

#[test]
fn unroll_heuristic_mode() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll\n  for (int i = 0; i < 10; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq(0..10));
}

#[test]
fn unroll_factors_and_trip_counts() {
    // Factor × trip-count matrix incl. non-divisible remainders.
    for factor in [2u64, 3, 4, 8] {
        for trip in [0i64, 1, 2, 5, 12, 17] {
            let src = format!(
                "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll partial({factor})\n  for (int i = 0; i < {trip}; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
            );
            assert_matrix_output(&src, &seq(0..trip));
        }
    }
}

#[test]
fn unroll_nonunit_step_and_offset_bounds() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll partial(2)\n  for (int i = 7; i < 17; i += 3)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([7, 10, 13, 16]));
}

#[test]
fn unroll_downward_loop() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll partial(4)\n  for (int i = 10; i > 0; i -= 1)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq((1..=10).rev()));
}

#[test]
fn tile_single_loop() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp tile sizes(4)\n  for (int i = 0; i < 10; i += 1)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq(0..10));
}

#[test]
fn tile_2d_changes_order_but_covers_all() {
    // 2D tiling permutes the visit order deterministically: tiles iterate
    // in row-major tile order.
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp tile sizes(2, 2)\n  for (int i = 0; i < 4; i += 1)\n    for (int j = 0; j < 4; j += 1)\n      print_i64(i * 10 + j);\n  return 0;\n}}\n"
    );
    // classic path (shadow AST): loops over floor tiles then in-tile.
    let expected: Vec<i64> = vec![0, 1, 10, 11, 2, 3, 12, 13, 20, 21, 30, 31, 22, 23, 32, 33];
    let r = run_source_with(
        &src,
        Options {
            serial: true,
            ..Options::default()
        },
        false,
    );
    assert_eq!(
        r.stdout,
        seq(expected.iter().copied()),
        "classic tile order"
    );
    // and the multiset is complete for every configuration
    for r in omplt::run_matrix(&src) {
        let mut lines: Vec<i64> = r.stdout.lines().map(|l| l.parse().unwrap()).collect();
        lines.sort_unstable();
        let mut want: Vec<i64> = (0..4)
            .flat_map(|i| (0..4).map(move |j| i * 10 + j))
            .collect();
        want.sort_unstable();
        assert_eq!(lines, want);
    }
}

#[test]
fn tile_with_partial_tiles() {
    // 10 not divisible by 4: partial tiles via min().
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp tile sizes(4)\n  for (int i = 0; i < 10; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([45]));
}

#[test]
fn composed_tile_over_unroll() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  long sum = 0;\n  #pragma omp tile sizes(4)\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 20; i += 1)\n    sum = sum + i;\n  print_i64(sum);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([190]));
}

#[test]
fn composed_full_over_partial() {
    // The paper's lst:astdump_shadowast composition: effectively complete
    // unrolling.
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  #pragma omp unroll full\n  #pragma omp unroll partial(2)\n  for (int i = 7; i < 17; i += 3)\n    print_i64(i);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([7, 10, 13, 16]));
}

#[test]
fn while_loops_and_conditionals_unaffected() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  int n = 5;\n  while (n > 0) {{\n    if (n == 3) {{ n = n - 1; continue; }}\n    print_i64(n);\n    n = n - 1;\n  }}\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([5, 4, 2, 1]));
}

#[test]
fn range_based_for_executes() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  double data[5];\n  for (int i = 0; i < 5; i += 1)\n    data[i] = i * 2.0;\n  double sum = 0.0;\n  for (double &v : data)\n    sum = sum + v;\n  print_i64((long)sum);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([20]));
}

#[test]
fn range_for_by_value_copies() {
    // Writing through a by-value loop variable must NOT modify the array.
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  double data[3];\n  data[0] = 1.0; data[1] = 2.0; data[2] = 3.0;\n  for (double v : data)\n    v = 0.0;\n  print_i64((long)(data[0] + data[1] + data[2]));\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([6]));
}

#[test]
fn range_for_by_ref_writes_through() {
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  double data[3];\n  data[0] = 1.0; data[1] = 2.0; data[2] = 3.0;\n  for (double &v : data)\n    v = v * 2.0;\n  print_i64((long)(data[0] + data[1] + data[2]));\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([12]));
}

#[test]
fn unroll_of_range_for() {
    // Transformation of a range-based for: the §3 motivation.
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  long data[7];\n  for (int i = 0; i < 7; i += 1)\n    data[i] = i + 100;\n  #pragma omp unroll partial(2)\n  for (long &v : data)\n    print_i64(v);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq(100..107));
}

#[test]
fn functions_and_recursion() {
    let src = format!(
        "{PRINT_PROTO}long fib(int n) {{\n  if (n < 2) return n;\n  return fib(n - 1) + fib(n - 2);\n}}\nint main(void) {{\n  print_i64(fib(10));\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([55]));
}

#[test]
fn exit_code_propagates() {
    let r = run_source("int main(void) { return 42; }\n");
    assert_eq!(r.exit_code, 42);
}

#[test]
fn trip_count_type_extremes_i8() {
    // C5 analogue scaled to i8: full range loop over char, counted in an
    // unsigned logical counter.
    let src = format!(
        "{PRINT_PROTO}int main(void) {{\n  long n = 0;\n  #pragma omp unroll partial(4)\n  for (char c = -128; c < 127; c += 1)\n    n = n + 1;\n  print_i64(n);\n  return 0;\n}}\n"
    );
    assert_matrix_output(&src, &seq([255]));
}
