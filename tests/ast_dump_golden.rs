//! Golden AST-dump fragments: multi-line, connector-exact excerpts matching
//! the visual structure of the paper's listings (L3/L4/L7).

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

fn dump(src: &str, mode: OpenMpCodegenMode) -> String {
    let mut ci = CompilerInstance::new(Options {
        codegen_mode: mode,
        ..Options::default()
    });
    let tu = ci.parse_source("g.c", src).expect("parse");
    ci.ast_dump(&tu)
}

/// Asserts that `golden`'s lines appear in `haystack` consecutively.
fn assert_block(haystack: &str, golden: &str) {
    let lines: Vec<&str> = golden.trim_matches('\n').lines().collect();
    let hay: Vec<&str> = haystack.lines().collect();
    let found = hay.windows(lines.len()).any(|w| w == lines.as_slice());
    assert!(
        found,
        "golden block not found.\n--- golden ---\n{}\n--- dump ---\n{}",
        golden, haystack
    );
}

#[test]
fn composed_unroll_golden() {
    // Paper Fig. lst:astdump_shadowast(b), adapted to our (address-free)
    // dump format.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll full\n  #pragma omp unroll partial(2)\n  for (int i = 7; i < 17; i += 3)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPUnrollDirective
      |-OMPFullClause
      `-OMPUnrollDirective
        |-OMPPartialClause
        | `-ConstantExpr 'int'
        |   |-value: Int 2
        |   `-IntegerLiteral 'int' 2
        `-ForStmt
          |-DeclStmt
          | `-VarDecl used i 'int' cinit
          |   `-IntegerLiteral 'int' 7
          |-<<<NULL>>>
"#,
    );
}

#[test]
fn for_loop_components_golden() {
    let src =
        "void body(int i);\nvoid f(void) {\n  for (int i = 7; i < 17; i += 3)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    // ForStmt slots: init, (cond-var placeholder), cond, inc, body
    assert_block(
        &d,
        r#"
    `-ForStmt
      |-DeclStmt
      | `-VarDecl used i 'int' cinit
      |   `-IntegerLiteral 'int' 7
      |-<<<NULL>>>
      |-BinaryOperator 'bool' '<'
      | |-ImplicitCastExpr 'int' <LValueToRValue>
      | | `-DeclRefExpr 'int' lvalue Var 'i' 'int'
      | `-IntegerLiteral 'int' 17
      |-CompoundAssignOperator 'int' '+='
      | |-DeclRefExpr 'int' lvalue Var 'i' 'int'
      | `-IntegerLiteral 'int' 3
"#,
    );
}

#[test]
fn canonical_loop_golden() {
    // Paper Fig. lst:ompcanonicalloop: OMPCanonicalLoop with ForStmt, two
    // CapturedStmt helpers and the user-variable DeclRefExpr as children.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 8; i += 1)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::IrBuilder);
    // Children in order: ForStmt, distance CapturedStmt (assigning the
    // unsigned Result), loop-value CapturedStmt (with the __i parameter),
    // and the trailing user-variable DeclRefExpr at the wrapper's level.
    assert_block(
        &d,
        r#"
        |-CapturedStmt
        | `-CapturedDecl nothrow
        |   |-BinaryOperator 'unsigned int' '='
        |   | |-DeclRefExpr 'unsigned int' lvalue Var 'Result' 'unsigned int'
"#,
    );
    assert_block(
        &d,
        r#"
        |   |-ImplicitParamDecl implicit Result 'int'
        |   |-ImplicitParamDecl implicit __i 'unsigned int'
        |   `-VarDecl used i 'int'
        `-DeclRefExpr 'int' lvalue Var 'i' 'int'
"#,
    );
    let cl = d.find("OMPCanonicalLoop").expect("canonical loop in dump");
    let tail = &d[cl..];
    assert!(tail.contains("|-ForStmt"), "loop child first:\n{tail}");
}

#[test]
fn dispatch_schedule_clauses_golden() {
    // The three dispatch schedule kinds print their kind keyword; a chunk
    // expression, when present, hangs off the clause node.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp parallel for schedule(dynamic, 4)\n  for (int i = 0; i < 16; i += 1)\n    body(i);\n}\nvoid g(void) {\n  #pragma omp parallel for schedule(guided)\n  for (int i = 0; i < 16; i += 1)\n    body(i);\n}\nvoid h(void) {\n  #pragma omp parallel for schedule(runtime)\n  for (int i = 0; i < 16; i += 1)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
|   `-OMPParallelForDirective
|     |-OMPScheduleClause dynamic
|     | `-IntegerLiteral 'int' 4
|     `-CapturedStmt
"#,
    );
    assert_block(
        &d,
        r#"
|   `-OMPParallelForDirective
|     |-OMPScheduleClause guided
|     `-CapturedStmt
"#,
    );
    assert_block(
        &d,
        r#"
    `-OMPParallelForDirective
      |-OMPScheduleClause runtime
      `-CapturedStmt
"#,
    );
}

#[test]
fn interchange_permutation_golden() {
    // The permutation clause prints its (constant-wrapped) arguments in
    // source order; the associated nest hangs off the directive unchanged.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp interchange permutation(2, 1)\n  for (int i = 0; i < 8; i += 1)\n    for (int j = 0; j < 4; j += 1)\n      body(i * 8 + j);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPInterchangeDirective
      |-OMPPermutationClause
      | |-ConstantExpr 'int'
      | | |-value: Int 2
      | | `-IntegerLiteral 'int' 2
      | `-ConstantExpr 'int'
      |   |-value: Int 1
      |   `-IntegerLiteral 'int' 1
      `-ForStmt
"#,
    );
}

#[test]
fn reverse_golden() {
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp reverse\n  for (int i = 0; i < 8; i += 1)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPReverseDirective
      `-ForStmt
        |-DeclStmt
        | `-VarDecl used i 'int' cinit
        |   `-IntegerLiteral 'int' 0
"#,
    );
}

#[test]
fn fuse_loop_sequence_golden() {
    // fuse associates with a *loop sequence*: a CompoundStmt whose children
    // are the member loops, in program order.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp fuse\n  {\n    for (int i = 0; i < 8; i += 1) body(i);\n    for (int j = 0; j < 4; j += 1) body(j);\n  }\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPFuseDirective
      `-CompoundStmt
        |-ForStmt
        | |-DeclStmt
        | | `-VarDecl used i 'int' cinit
"#,
    );
    // Second member loop follows as the compound's trailing child.
    assert_block(
        &d,
        r#"
        `-ForStmt
          |-DeclStmt
          | `-VarDecl used j 'int' cinit
          |   `-IntegerLiteral 'int' 0
"#,
    );
}

#[test]
fn captured_parallel_for_golden() {
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp parallel for schedule(static)\n  for (int i = 7; i < 17; i += 3)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPParallelForDirective
      |-OMPScheduleClause static
      `-CapturedStmt
        `-CapturedDecl nothrow
"#,
    );
    // Implicit params follow the captured body, as in the paper's listing.
    assert_block(
        &d,
        r#"
          |-ImplicitParamDecl implicit .global_tid. 'int *'
          |-ImplicitParamDecl implicit .bound_tid. 'int *'
          `-ImplicitParamDecl implicit __context 'void *'
"#,
    );
}

#[test]
fn saxpy_simd_example_golden() {
    // The shipped example's directive subtree: `simd` with an integer
    // reduction and a `simdlen` cap, the associated loop captured.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/c/saxpy_simd.c"
    ))
    .expect("example exists");
    let d = dump(&src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    |-OMPSimdDirective
    | |-OMPReductionClause '+'
    | | `-DeclRefExpr 'long' lvalue Var 'checksum' 'long'
    | |-OMPSimdlenClause
    | | `-ConstantExpr 'int'
    | |   |-value: Int 4
    | |   `-IntegerLiteral 'int' 4
    | `-CapturedStmt
"#,
    );
}

#[test]
fn parallel_for_simd_golden() {
    // The combined+composite directive parses as one node with both caps.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp parallel for simd safelen(8) simdlen(4)\n  for (int i = 0; i < 64; i += 1)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPParallelForSimdDirective
      |-OMPSafelenClause
      | `-ConstantExpr 'int'
      |   |-value: Int 8
      |   `-IntegerLiteral 'int' 8
      |-OMPSimdlenClause
      | `-ConstantExpr 'int'
      |   |-value: Int 4
      |   `-IntegerLiteral 'int' 4
      `-CapturedStmt
"#,
    );
}

#[test]
fn for_simd_golden() {
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp for simd\n  for (int i = 0; i < 64; i += 1)\n    body(i);\n}\n";
    let d = dump(src, OpenMpCodegenMode::Classic);
    assert_block(
        &d,
        r#"
    `-OMPForSimdDirective
      `-CapturedStmt
"#,
    );
}
