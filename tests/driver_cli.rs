//! End-to-end tests of the `ompltc` driver binary (the clang-like CLI).

use std::io::Write;
use std::process::Command;

fn ompltc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ompltc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("omplt-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const DEMO: &str = "void print_i64(long v);\nint main(void) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 5; i += 1)\n    print_i64(i);\n  return 0;\n}\n";

#[test]
fn ast_dump_shows_directive() {
    let p = write_temp("dump.c", DEMO);
    let out = ompltc()
        .arg("--ast-dump")
        .arg("--syntax-only")
        .arg(&p)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OMPUnrollDirective"), "{text}");
    assert!(text.contains("OMPPartialClause"), "{text}");
    assert!(
        !text.contains("TransformedStmt"),
        "shadow AST hidden by default"
    );
}

#[test]
fn ast_dump_transformed_reveals_shadow_ast() {
    let p = write_temp("dump2.c", DEMO);
    let out = ompltc()
        .arg("--ast-dump-transformed")
        .arg("--syntax-only")
        .arg(&p)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TransformedStmt"), "{text}");
    assert!(text.contains(".unrolled.iv.i"), "{text}");
}

#[test]
fn run_executes_the_program() {
    let p = write_temp("run.c", DEMO);
    let out = ompltc().arg("--run").arg(&p).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "0\n1\n2\n3\n4\n");
}

#[test]
fn irbuilder_flag_switches_representation() {
    let p = write_temp("irb.c", DEMO);
    let classic = ompltc().arg("--emit-ir").arg(&p).output().unwrap();
    let irb = ompltc()
        .arg("--enable-irbuilder")
        .arg("--emit-ir")
        .arg(&p)
        .output()
        .unwrap();
    let c = String::from_utf8_lossy(&classic.stdout).to_string();
    let i = String::from_utf8_lossy(&irb.stdout).to_string();
    assert!(
        c.contains("omp_hint"),
        "classic lowers via hint-metadata loop:\n{c}"
    );
    assert!(
        i.contains("omp_canonical"),
        "irbuilder lowers via createCanonicalLoop:\n{i}"
    );
    // Both still run identically.
    let r1 = ompltc().arg("--run").arg(&p).output().unwrap();
    let r2 = ompltc()
        .arg("--enable-irbuilder")
        .arg("--run")
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(r1.stdout, r2.stdout);
}

#[test]
fn opt_flag_unrolls() {
    let p = write_temp("opt.c", DEMO);
    let out = ompltc()
        .arg("--opt")
        .arg("--emit-ir")
        .arg(&p)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    // 5 iterations, factor 2 → main loop with 2 calls + remainder with 1
    assert!(text.matches("call void @print_i64").count() >= 3, "{text}");
    let run = ompltc().arg("--opt").arg("--run").arg(&p).output().unwrap();
    assert_eq!(String::from_utf8_lossy(&run.stdout), "0\n1\n2\n3\n4\n");
}

#[test]
fn exit_code_is_propagated() {
    let p = write_temp("exit.c", "int main(void) { return 3; }\n");
    let out = ompltc().arg("--run").arg(&p).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn diagnostics_printed_with_carets() {
    let p = write_temp(
        "bad.c",
        "void f(int n) {\n  #pragma omp for\n  for (int i = 0; i < n; i *= 2)\n    ;\n}\n",
    );
    let out = ompltc().arg("--syntax-only").arg(&p).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("increment clause of OpenMP for loop"), "{err}");
    assert!(err.contains('^'), "{err}");
}

#[test]
fn threads_flag_sets_team_size() {
    let p = write_temp(
        "team.c",
        "void print_i64(long v);\nint omp_get_num_threads(void);\nlong team;\nint main(void) {\n  #pragma omp parallel\n  {\n    team = omp_get_num_threads();\n  }\n  print_i64(team);\n  return 0;\n}\n",
    );
    let out = ompltc()
        .arg("--run")
        .arg("--threads")
        .arg("6")
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), "6\n");
}

#[test]
fn no_openmp_ignores_pragmas() {
    let p = write_temp("noomp.c", DEMO);
    let out = ompltc()
        .arg("--no-openmp")
        .arg("--ast-dump")
        .arg("--syntax-only")
        .arg(&p)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("OMPUnrollDirective"), "{text}");
    let run = ompltc()
        .arg("--no-openmp")
        .arg("--run")
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&run.stdout), "0\n1\n2\n3\n4\n");
}

#[test]
fn unknown_option_is_rejected() {
    let out = ompltc().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

const RACY: &str = "int main(void) {\n  int sum = 0;\n  int a[8];\n  #pragma omp parallel for\n  for (int i = 0; i < 8; i += 1)\n    sum += a[i];\n  return sum;\n}\n";

const CLEAN: &str = "int main(void) {\n  int a[16];\n  int b[16];\n  #pragma omp parallel for\n  for (int i = 1; i < 15; i += 1)\n    b[i] = a[i - 1] + a[i + 1];\n  return 0;\n}\n";

#[test]
fn analyze_reports_race_with_nonzero_exit() {
    let p = write_temp("analyze_racy.c", RACY);
    let out = ompltc().arg("--analyze").arg(&p).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[-Wrace]"), "{err}");
    assert!(err.contains("shared variable 'sum'"), "{err}");
    assert!(err.contains("note:"), "{err}");
}

#[test]
fn analyze_accepts_clean_program() {
    let p = write_temp("analyze_clean.c", CLEAN);
    let out = ompltc().arg("--analyze").arg(&p).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stderr.is_empty());
}

#[test]
fn analyze_rejects_imperfect_tile_nest() {
    let p = write_temp(
        "analyze_tile.c",
        "int main(void) {\n  int a[64];\n  #pragma omp tile sizes(4, 4)\n  for (int i = 0; i < 8; i += 1) {\n    int t = i * 8;\n    for (int j = 0; j < 8; j += 1)\n      a[t + j] = t;\n  }\n  return 0;\n}\n",
    );
    let out = ompltc().arg("--analyze").arg(&p).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("perfectly nested"), "{err}");
}

#[test]
fn diag_format_json_renders_machine_readable() {
    let p = write_temp("analyze_json.c", RACY);
    let out = ompltc()
        .arg("--analyze")
        .arg("--diag-format=json")
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with('['), "{err}");
    assert!(err.contains("\"level\":\"warning\""), "{err}");
    assert!(err.contains("\"line\":6"), "{err}");
    assert!(err.contains("\"notes\":["), "{err}");
}

#[test]
fn bad_threads_value_is_a_usage_error() {
    let p = write_temp("threads_bad.c", CLEAN);
    let out = ompltc()
        .arg("--threads")
        .arg("bogus")
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads"), "{err}");
    // Missing value is also a usage error, not a panic.
    let out = ompltc().arg(&p).arg("--threads").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

const TRIANGULAR: &str = "void print_i64(long v);\nint main(void) {\n  #pragma omp parallel num_threads(4)\n  {\n    #pragma omp for schedule(dynamic, 2)\n    for (int i = 0; i < 24; i += 1)\n      for (int j = 0; j <= i; j += 1)\n        print_i64(i * 100 + j);\n  }\n  return 0;\n}\n";

#[test]
fn dynamic_schedule_triangular_matches_sequential_multiset() {
    // The ISSUE's acceptance criterion: `--run --threads 4` on a
    // `schedule(dynamic, 2)` triangular loop prints exactly the sequential
    // multiset in both representations, with and without `--opt`.
    let p = write_temp("tri_dyn.c", TRIANGULAR);
    let mut want: Vec<i64> = (0..24i64)
        .flat_map(|i| (0..=i).map(move |j| i * 100 + j))
        .collect();
    want.sort_unstable();
    for args in [
        &["--run", "--threads", "4"][..],
        &["--run", "--threads", "4", "--opt"][..],
        &["--run", "--threads", "4", "--enable-irbuilder"][..],
        &["--run", "--threads", "4", "--enable-irbuilder", "--opt"][..],
    ] {
        let out = ompltc().args(args).arg(&p).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut got: Vec<i64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, want, "args {args:?}");
    }
}

#[test]
fn dispatch_loops_emit_the_kmpc_dispatch_protocol() {
    let p = write_temp("tri_ir.c", TRIANGULAR);
    for args in [&["--emit-ir"][..], &["--emit-ir", "--enable-irbuilder"][..]] {
        let out = ompltc().args(args).arg(&p).output().unwrap();
        let ir = String::from_utf8_lossy(&out.stdout);
        for sym in [
            "__kmpc_dispatch_init_8",
            "__kmpc_dispatch_next_8",
            "__kmpc_dispatch_fini_8",
            "__kmpc_barrier",
        ] {
            assert!(ir.contains(sym), "missing {sym} in {args:?} IR:\n{ir}");
        }
    }
}

#[test]
fn omp_schedule_env_drives_schedule_runtime() {
    let p = write_temp(
        "rt_env.c",
        "void print_i64(long v);\nint main(void) {\n  #pragma omp parallel num_threads(4)\n  {\n    #pragma omp for schedule(runtime)\n    for (int i = 0; i < 9; i += 1)\n      print_i64(i);\n  }\n  return 0;\n}\n",
    );
    for sched in ["static", "dynamic,2", "guided"] {
        let out = ompltc()
            .env("OMP_SCHEDULE", sched)
            .arg("--run")
            .arg("--threads")
            .arg("4")
            .arg(&p)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut got: Vec<i64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..9).collect::<Vec<i64>>(), "OMP_SCHEDULE={sched}");
    }
}

#[test]
fn vm_backend_runs_identically_to_interp() {
    let p = write_temp("backend_demo.c", DEMO);
    for extra in [&[][..], &["--opt"][..], &["--enable-irbuilder"][..]] {
        let interp = ompltc().arg("--run").args(extra).arg(&p).output().unwrap();
        let vm = ompltc()
            .arg("--run")
            .arg("--backend=vm")
            .args(extra)
            .arg(&p)
            .output()
            .unwrap();
        assert!(
            vm.status.success(),
            "{}",
            String::from_utf8_lossy(&vm.stderr)
        );
        assert_eq!(interp.stdout, vm.stdout, "extra args {extra:?}");
        assert_eq!(interp.status.code(), vm.status.code());
    }
    // Threaded triangular dynamic schedule: same multiset on the VM.
    let tri = write_temp("backend_tri.c", TRIANGULAR);
    let out = ompltc()
        .args(["--run", "--threads", "4", "--backend=vm"])
        .arg(&tri)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut got: Vec<i64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    got.sort_unstable();
    let mut want: Vec<i64> = (0..24i64)
        .flat_map(|i| (0..=i).map(move |j| i * 100 + j))
        .collect();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn backend_interp_is_accepted_explicitly() {
    let p = write_temp("backend_interp.c", DEMO);
    // Both spellings: `--backend=interp` and `--backend interp`.
    for args in [
        &["--run", "--backend=interp"][..],
        &["--run", "--backend", "interp"][..],
    ] {
        let out = ompltc().args(args).arg(&p).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(String::from_utf8_lossy(&out.stdout), "0\n1\n2\n3\n4\n");
    }
}

#[test]
fn unknown_backend_is_a_usage_error() {
    let p = write_temp("backend_bad.c", CLEAN);
    for args in [&["--backend=jit"][..], &["--backend", "jit"][..]] {
        let out = ompltc().args(args).arg(&p).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(
                "unknown backend 'jit' for '--backend': expected 'interp', 'vm', or 'vm:strict'"
            ),
            "{err}"
        );
    }
    // Missing value is also a usage error, not a panic.
    let out = ompltc().arg(&p).arg("--backend").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_backend_diag_is_json_under_diag_format_json() {
    let p = write_temp("backend_bad_json.c", CLEAN);
    let out = ompltc()
        .args(["--backend=jit", "--diag-format=json"])
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with('['), "{err}");
    assert!(err.contains("\"level\":\"error\""), "{err}");
    assert!(err.contains("unknown backend 'jit'"), "{err}");
    assert!(err.contains("\"file\":null"), "{err}");
    // The flag order must not matter: format resolved before validation.
    let out = ompltc()
        .args(["--diag-format=json", "--backend=jit"])
        .arg(&p)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).starts_with('['),
        "format must apply regardless of order"
    );
}

#[test]
fn emit_bytecode_prints_disassembly() {
    let p = write_temp("backend_disasm.c", DEMO);
    let out = ompltc().arg("--emit-bytecode").arg(&p).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("func @main"), "{text}");
    assert!(text.contains("call"), "{text}");
    assert!(text.contains("ret"), "{text}");
}

#[test]
fn vm_backend_honors_verify_each_and_verifier_flags() {
    let tri = write_temp("backend_verify.c", TRIANGULAR);
    let out = ompltc()
        .args([
            "--run",
            "--threads",
            "4",
            "--backend=vm",
            "--verify-each",
            "--opt",
        ])
        .arg(&tri)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn verify_each_passes_on_valid_transformations() {
    let p = write_temp("verify_each.c", DEMO);
    for mode in [
        &["--verify-each", "--opt", "--run"][..],
        &["--verify-each", "--enable-irbuilder", "--opt", "--run"][..],
    ] {
        let out = ompltc().args(mode).arg(&p).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(String::from_utf8_lossy(&out.stdout), "0\n1\n2\n3\n4\n");
        // The dispatch-loop skeleton invariants are also checked under
        // `--verify-each`; a well-formed dynamic loop must sail through.
        let tri = write_temp("verify_tri.c", TRIANGULAR);
        let out = ompltc().args(mode).arg(&tri).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

// ---------------------------------------------------------------------------
// --autotune driver mode
// ---------------------------------------------------------------------------

const TUNABLE: &str = "void print_i64(long v);\n\
int main(void) {\n\
  long sum = 0;\n\
  #pragma omp parallel for reduction(+: sum) schedule(static)\n\
  for (int i = 0; i < 24; i += 1)\n\
    for (int j = 0; j < i; j += 1)\n\
      sum = sum + (j % 7) + 1;\n\
  print_i64(sum);\n\
  return 0;\n\
}\n";

#[test]
fn autotune_produces_a_ranked_report() {
    let p = write_temp("tune.c", TUNABLE);
    let out = ompltc().arg("--autotune=6").arg(&p).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("autotune report"), "{text}");
    assert!(text.contains("original"), "{text}");
    assert!(text.contains("rank"), "{text}");
}

#[test]
fn autotune_json_report_is_deterministic_across_invocations() {
    let p = write_temp("tune_det.c", TUNABLE);
    let run = || {
        let out = ompltc()
            .arg("--autotune=8")
            .arg("--tune-json")
            .arg(&p)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(a, b, "two invocations must emit byte-identical JSON");
    let text = String::from_utf8_lossy(&a);
    assert!(
        text.starts_with('{') && text.contains("\"candidates\":"),
        "{text}"
    );
}

#[test]
fn autotune_writes_winning_source() {
    let p = write_temp("tune_best.c", TUNABLE);
    let best = std::env::temp_dir().join("omplt-cli-tests/tune_best_out.c");
    let _ = std::fs::remove_file(&best);
    let out = ompltc()
        .arg("--autotune=8")
        .arg(format!("--tune-best={}", best.display()))
        .arg(&p)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let winner = std::fs::read_to_string(&best).expect("winning source written");
    assert!(winner.contains("int main"), "{winner}");
    // The winning source must itself be accepted by the analysis gate.
    let reparse = ompltc().arg("--analyze").arg(&best).output().unwrap();
    assert!(
        reparse.status.success(),
        "winning source fails --analyze:\n{winner}"
    );
}

#[test]
fn autotune_flag_conflicts_are_usage_errors() {
    let p = write_temp("tune_conflict.c", TUNABLE);
    for args in [
        vec!["--autotune", "--run"],
        vec!["--autotune", "--analyze"],
        vec!["--autotune", "--emit-ir"],
        vec!["--tune-json"], // tune flags require --autotune
        vec!["--tune-seed=1"],
        vec!["--autotune=0"], // budget must be positive
        vec!["--autotune=banana"],
        vec!["--autotune", "--tune-cost=furlongs"],
    ] {
        let out = ompltc().args(&args).arg(&p).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} should be a usage error: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn autotune_reports_tuner_counters() {
    let p = write_temp("tune_counters.c", TUNABLE);
    let out = ompltc()
        .arg("--autotune=4")
        .arg("--tune-json")
        .arg("--counters-json=/dev/null")
        .arg(&p)
        .output()
        .unwrap();
    assert!(out.status.success());
    // Re-run with counters on stdout only (suppress the report to a file).
    let json_path = std::env::temp_dir().join("omplt-cli-tests/tune_counters.json");
    let out = ompltc()
        .arg("--autotune=4")
        .arg(format!("--tune-json={}", json_path.display()))
        .arg("--counters-json")
        .arg(&p)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"tuner.candidates\""), "{text}");
    assert!(text.contains("\"tuner.evaluated\""), "{text}");
}
