//! Property test: the `IrBuilder`'s on-the-fly constant folder must agree
//! with the interpreter's execution of the unfolded instruction — otherwise
//! "simplifies expressions on-the-fly" (paper §1.3) would silently change
//! program meaning.

use omplt_interp::{Interpreter, RtVal, RuntimeConfig, ThreadCtx};
use omplt_ir::{BinOpKind, CmpPred, Function, Inst, IrBuilder, IrType, Module, Value};
use proptest::prelude::*;

/// Executes `op(a, b)` through the interpreter without any folding.
fn exec_unfolded(op: BinOpKind, ty: IrType, a: i64, b: i64) -> Option<i64> {
    let mut m = Module::new();
    let mut f = Function::new("t", vec![ty, ty], IrType::I64);
    {
        // Raw pushes bypass the builder's folder.
        let entry = f.entry();
        let v = f.push_inst(entry, Inst::Bin { op, lhs: Value::Arg(0), rhs: Value::Arg(1) });
        let widened = f.push_inst(entry, Inst::Cast { op: omplt_ir::CastOp::SExt, val: v, to: IrType::I64 });
        f.blocks[0].term = Some(omplt_ir::Terminator::Ret(Some(widened)));
    }
    m.add_function(f);
    let it = Interpreter::new(&m, RuntimeConfig::default());
    let ctx = ThreadCtx::initial();
    it.call_by_name("t", vec![RtVal::I(a), RtVal::I(b)], &ctx)
        .ok()
        .flatten()
        .map(|v| v.as_i())
}

/// Folds `op(a, b)` through the builder, if it folds.
fn fold(op: BinOpKind, ty: IrType, a: i64, b: i64) -> Option<i64> {
    omplt_ir::fold_bin(op, Value::int(ty, a), Value::int(ty, b), ty).and_then(|v| v.as_const_int())
}

const INT_OPS: [BinOpKind; 13] = [
    BinOpKind::Add,
    BinOpKind::Sub,
    BinOpKind::Mul,
    BinOpKind::SDiv,
    BinOpKind::UDiv,
    BinOpKind::SRem,
    BinOpKind::URem,
    BinOpKind::Shl,
    BinOpKind::AShr,
    BinOpKind::LShr,
    BinOpKind::And,
    BinOpKind::Or,
    BinOpKind::Xor,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    #[test]
    fn folded_result_matches_interpreted_result(
        op_idx in 0usize..13,
        ty_idx in 0usize..3,
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let op = INT_OPS[op_idx];
        let ty = [IrType::I64, IrType::I32, IrType::I8][ty_idx];
        // shift amounts are masked by the interpreter; restrict to in-range
        // shifts where C behaviour is defined
        let b = match op {
            BinOpKind::Shl | BinOpKind::AShr | BinOpKind::LShr => b.rem_euclid(ty.bits() as i64),
            _ => b,
        };
        let (a, b) = (ty.wrap(a), ty.wrap(b));
        if let Some(folded) = fold(op, ty, a, b) {
            let executed = exec_unfolded(op, ty, a, b)
                .expect("interpreter must execute what the folder folds");
            prop_assert_eq!(
                folded, executed,
                "op {:?} ty {:?} a {} b {}", op, ty, a, b
            );
        }
    }

    #[test]
    fn icmp_folding_matches_execution(
        pred_idx in 0usize..10,
        ty_idx in 0usize..3,
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let pred = [
            CmpPred::Eq, CmpPred::Ne, CmpPred::Slt, CmpPred::Sle, CmpPred::Sgt,
            CmpPred::Sge, CmpPred::Ult, CmpPred::Ule, CmpPred::Ugt, CmpPred::Uge,
        ][pred_idx];
        let ty = [IrType::I64, IrType::I32, IrType::I8][ty_idx];
        let (a, b) = (ty.wrap(a), ty.wrap(b));
        let folded = omplt_ir::eval_icmp(pred, a, b, ty);

        // interpreted
        let mut m = Module::new();
        let mut f = Function::new("t", vec![ty, ty], IrType::I64);
        {
            let mut bld = IrBuilder::new(&mut f);
            let c = bld.cmp(pred, Value::Arg(0), Value::Arg(1));
            let w = bld.cast(omplt_ir::CastOp::ZExt, c, IrType::I64);
            bld.ret(Some(w));
        }
        m.add_function(f);
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let ctx = ThreadCtx::initial();
        let executed = it
            .call_by_name("t", vec![RtVal::I(a), RtVal::I(b)], &ctx)
            .unwrap()
            .unwrap()
            .as_i();
        prop_assert_eq!(folded as i64, executed, "pred {:?} ty {:?} a {} b {}", pred, ty, a, b);
    }

    #[test]
    fn algebraic_identities_preserve_runtime_value(
        a in any::<i64>(),
    ) {
        // x+0, x*1, x-x, x*0, x&0, x|0 identities: folder vs direct compute.
        for (op, rhs, expect) in [
            (BinOpKind::Add, 0i64, a),
            (BinOpKind::Sub, 0, a),
            (BinOpKind::Mul, 1, a),
            (BinOpKind::Mul, 0, 0),
            (BinOpKind::And, 0, 0),
            (BinOpKind::Or, 0, a),
            (BinOpKind::Xor, 0, a),
        ] {
            let mut f = Function::new("t", vec![IrType::I64], IrType::I64);
            let v = {
                let mut b = IrBuilder::new(&mut f);
                b.bin(op, Value::Arg(0), Value::i64(rhs))
            };
            // identity must fold away the instruction entirely
            match v {
                Value::Arg(0) => prop_assert_eq!(expect, a),
                Value::ConstInt { val, .. } => prop_assert_eq!(val, expect),
                other => prop_assert!(false, "identity {:?} x {:?} did not fold: {:?}", op, rhs, other),
            }
        }
    }
}
