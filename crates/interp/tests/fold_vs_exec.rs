//! Property-style test: the `IrBuilder`'s on-the-fly constant folder must
//! agree with the interpreter's execution of the unfolded instruction —
//! otherwise "simplifies expressions on-the-fly" (paper §1.3) would silently
//! change program meaning.
//!
//! Formerly written with `proptest`; rewritten as deterministic fixed-seed
//! sweeps so the workspace builds without registry access.

use omplt_interp::{Interpreter, RtVal, RuntimeConfig, ThreadCtx};
use omplt_ir::{BinOpKind, CmpPred, Function, Inst, IrBuilder, IrType, Module, Value};

/// Minimal deterministic PRNG (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn next_i64(&mut self) -> i64 {
        self.next() as i64
    }
}

/// Interesting boundary operands mixed into every sweep.
const EDGE_CASES: [i64; 9] = [
    0,
    1,
    -1,
    2,
    -2,
    i64::MAX,
    i64::MIN,
    i64::MAX - 1,
    i64::MIN + 1,
];

/// Executes `op(a, b)` through the interpreter without any folding.
fn exec_unfolded(op: BinOpKind, ty: IrType, a: i64, b: i64) -> Option<i64> {
    let mut m = Module::new();
    let mut f = Function::new("t", vec![ty, ty], IrType::I64);
    {
        // Raw pushes bypass the builder's folder.
        let entry = f.entry();
        let v = f.push_inst(
            entry,
            Inst::Bin {
                op,
                lhs: Value::Arg(0),
                rhs: Value::Arg(1),
            },
        );
        let widened = f.push_inst(
            entry,
            Inst::Cast {
                op: omplt_ir::CastOp::SExt,
                val: v,
                to: IrType::I64,
            },
        );
        f.blocks[0].term = Some(omplt_ir::Terminator::Ret(Some(widened)));
    }
    m.add_function(f);
    let it = Interpreter::new(&m, RuntimeConfig::default());
    let ctx = ThreadCtx::initial();
    it.call_by_name("t", vec![RtVal::I(a), RtVal::I(b)], &ctx)
        .ok()
        .flatten()
        .map(|v| v.as_i())
}

/// Folds `op(a, b)` through the builder, if it folds.
fn fold(op: BinOpKind, ty: IrType, a: i64, b: i64) -> Option<i64> {
    omplt_ir::fold_bin(op, Value::int(ty, a), Value::int(ty, b), ty).and_then(|v| v.as_const_int())
}

const INT_OPS: [BinOpKind; 13] = [
    BinOpKind::Add,
    BinOpKind::Sub,
    BinOpKind::Mul,
    BinOpKind::SDiv,
    BinOpKind::UDiv,
    BinOpKind::SRem,
    BinOpKind::URem,
    BinOpKind::Shl,
    BinOpKind::AShr,
    BinOpKind::LShr,
    BinOpKind::And,
    BinOpKind::Or,
    BinOpKind::Xor,
];

const TYPES: [IrType; 3] = [IrType::I64, IrType::I32, IrType::I8];

#[test]
fn folded_result_matches_interpreted_result() {
    let mut rng = Rng::new(0xF01DED);
    let mut operands: Vec<(i64, i64)> = Vec::new();
    for &a in &EDGE_CASES {
        for &b in &EDGE_CASES {
            operands.push((a, b));
        }
    }
    operands.extend((0..24).map(|_| (rng.next_i64(), rng.next_i64())));

    for op in INT_OPS {
        for ty in TYPES {
            for &(a, b) in &operands {
                // shift amounts are masked by the interpreter; restrict to
                // in-range shifts where C behaviour is defined
                let b = match op {
                    BinOpKind::Shl | BinOpKind::AShr | BinOpKind::LShr => {
                        b.rem_euclid(ty.bits() as i64)
                    }
                    _ => b,
                };
                let (a, b) = (ty.wrap(a), ty.wrap(b));
                if let Some(folded) = fold(op, ty, a, b) {
                    let executed = exec_unfolded(op, ty, a, b)
                        .expect("interpreter must execute what the folder folds");
                    assert_eq!(folded, executed, "op {op:?} ty {ty:?} a {a} b {b}");
                }
            }
        }
    }
}

#[test]
fn icmp_folding_matches_execution() {
    let preds = [
        CmpPred::Eq,
        CmpPred::Ne,
        CmpPred::Slt,
        CmpPred::Sle,
        CmpPred::Sgt,
        CmpPred::Sge,
        CmpPred::Ult,
        CmpPred::Ule,
        CmpPred::Ugt,
        CmpPred::Uge,
    ];
    let mut rng = Rng::new(0x1C_3E_77);
    let mut operands: Vec<(i64, i64)> = Vec::new();
    for &a in &EDGE_CASES {
        for &b in &EDGE_CASES {
            operands.push((a, b));
        }
    }
    operands.extend((0..12).map(|_| (rng.next_i64(), rng.next_i64())));

    for pred in preds {
        for ty in TYPES {
            for &(a, b) in &operands {
                let (a, b) = (ty.wrap(a), ty.wrap(b));
                let folded = omplt_ir::eval_icmp(pred, a, b, ty);

                // interpreted
                let mut m = Module::new();
                let mut f = Function::new("t", vec![ty, ty], IrType::I64);
                {
                    let mut bld = IrBuilder::new(&mut f);
                    let c = bld.cmp(pred, Value::Arg(0), Value::Arg(1));
                    let w = bld.cast(omplt_ir::CastOp::ZExt, c, IrType::I64);
                    bld.ret(Some(w));
                }
                m.add_function(f);
                let it = Interpreter::new(&m, RuntimeConfig::default());
                let ctx = ThreadCtx::initial();
                let executed = it
                    .call_by_name("t", vec![RtVal::I(a), RtVal::I(b)], &ctx)
                    .unwrap()
                    .unwrap()
                    .as_i();
                assert_eq!(
                    folded as i64, executed,
                    "pred {pred:?} ty {ty:?} a {a} b {b}"
                );
            }
        }
    }
}

#[test]
fn algebraic_identities_preserve_runtime_value() {
    let mut rng = Rng::new(0xA16EB8A);
    let mut values: Vec<i64> = EDGE_CASES.to_vec();
    values.extend((0..50).map(|_| rng.next_i64()));
    for a in values {
        // x+0, x*1, x-x, x*0, x&0, x|0 identities: folder vs direct compute.
        for (op, rhs, expect) in [
            (BinOpKind::Add, 0i64, a),
            (BinOpKind::Sub, 0, a),
            (BinOpKind::Mul, 1, a),
            (BinOpKind::Mul, 0, 0),
            (BinOpKind::And, 0, 0),
            (BinOpKind::Or, 0, a),
            (BinOpKind::Xor, 0, a),
        ] {
            let mut f = Function::new("t", vec![IrType::I64], IrType::I64);
            let v = {
                let mut b = IrBuilder::new(&mut f);
                b.bin(op, Value::Arg(0), Value::i64(rhs))
            };
            // identity must fold away the instruction entirely
            match v {
                Value::Arg(0) => assert_eq!(expect, a),
                Value::ConstInt { val, .. } => assert_eq!(val, expect),
                other => panic!("identity {op:?} x {rhs:?} did not fold: {other:?}"),
            }
        }
    }
}
