//! The [`Engine`] abstraction: what the OpenMP runtime shim needs from an
//! execution backend.
//!
//! [`crate::runtime`] implements the `__kmpc_*` protocol (fork, static init,
//! dispatch queues, barriers) once, generically over `Engine`, so the tree-
//! walking interpreter ([`crate::Interpreter`]) and the bytecode VM
//! (`omplt-vm`) execute *exactly* the same worksharing semantics — chunk
//! boundaries, barrier placement, `nowait` overlap — and differential tests
//! can hold the two backends to bit-identical schedule logs.

use crate::exec::{ExecError, RtVal};
use crate::memory::Memory;
use crate::runtime::{RuntimeConfig, ThreadCtx};
use omplt_ir::Module;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

/// An execution backend, as seen by the shared OpenMP runtime.
///
/// `Sync` is part of the contract: `__kmpc_fork_call` shares `&self` across
/// the scoped threads of a team.
pub trait Engine: Sync {
    /// The module being executed (symbol names, globals).
    fn module(&self) -> &Module;

    /// Guest memory.
    fn mem(&self) -> &Memory;

    /// Collected stdout (the `print_*` shims append here).
    fn out(&self) -> &Mutex<String>;

    /// Task counter (`__omplt_task_created`).
    fn tasks(&self) -> &AtomicU64;

    /// Runtime configuration.
    fn cfg(&self) -> &RuntimeConfig;

    /// Where schedule chunks are recorded, when chunk logging is enabled.
    fn chunk_log(&self) -> Option<&ChunkLog>;

    /// Trace-counter prefix for runtime events (`"interp"` / `"vm"`), so a
    /// trace names which backend claimed chunks and hit barriers.
    fn trace_prefix(&self) -> &'static str;

    /// Calls a function by name: module definitions first, then the runtime
    /// shims (the outlined bodies of `__kmpc_fork_call` re-enter here).
    fn call_by_name(
        &self,
        name: &str,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError>;
}

/// Which runtime entry point served a chunk.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum ChunkKind {
    /// `__kmpc_for_static_init` (the per-thread span; for chunked-static the
    /// first chunk — later rounds advance by stride without re-entering the
    /// runtime).
    StaticInit,
    /// `__kmpc_dispatch_next_8` serving a static-resolved queue.
    Static,
    /// `__kmpc_dispatch_next_8`, dynamic schedule.
    Dynamic,
    /// `__kmpc_dispatch_next_8`, guided schedule.
    Guided,
}

/// One chunk of iterations handed to some team member.
///
/// Thread identity is deliberately *not* recorded: which thread claims a
/// dynamic chunk is a race, but the chunk *boundaries* are deterministic, so
/// sorted records compare bit-identically across backends and runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct ChunkRecord {
    /// Serving entry point.
    pub kind: ChunkKind,
    /// First iteration of the chunk (inclusive).
    pub lo: i64,
    /// Last iteration of the chunk (inclusive).
    pub hi: i64,
}

/// A concurrent log of every schedule chunk served during a run.
#[derive(Debug, Default)]
pub struct ChunkLog {
    records: Mutex<Vec<ChunkRecord>>,
}

impl ChunkLog {
    /// Creates an empty log.
    pub fn new() -> ChunkLog {
        ChunkLog::default()
    }

    /// Records one served chunk.
    pub fn record(&self, kind: ChunkKind, lo: i64, hi: i64) {
        self.records
            .lock()
            .expect("chunk log lock")
            .push(ChunkRecord { kind, lo, hi });
    }

    /// Drains the log, sorted (claim order is nondeterministic under real
    /// threads; the sorted multiset is the comparable artifact).
    pub fn take_sorted(&self) -> Vec<ChunkRecord> {
        let mut v = std::mem::take(&mut *self.records.lock().expect("chunk log lock"));
        v.sort_unstable();
        v
    }
}

/// Allocates and initializes every module global in `mem`; returns the guest
/// address of each, by symbol index. Shared by both backends so global
/// layout — and therefore every pointer a guest derives from one — matches.
pub fn materialize_globals(module: &Module, mem: &Memory) -> Vec<(u32, u64)> {
    let mut global_addrs = Vec::new();
    for g in &module.globals {
        let addr = mem.alloc(g.size.max(1));
        for (i, w) in g.init.iter().enumerate() {
            let sz = g.ty.size().max(1);
            let _ = mem.store(addr + i as u64 * sz, sz, *w as u64);
        }
        global_addrs.push((g.sym.0, addr));
    }
    global_addrs
}

/// Snapshots the final byte contents of every module global — the
/// "observable memory state" differential tests compare across backends.
pub fn snapshot_globals(
    module: &Module,
    mem: &Memory,
    global_addrs: &[(u32, u64)],
) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for g in &module.globals {
        let Some(&(_, addr)) = global_addrs.iter().find(|(s, _)| *s == g.sym.0) else {
            continue;
        };
        let mut bytes = Vec::with_capacity(g.size as usize);
        for i in 0..g.size {
            bytes.push(mem.load(addr + i, 1).map_or(0, |b| b as u8));
        }
        out.push((module.symbol_name(g.sym).to_string(), bytes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::IrType;

    #[test]
    fn chunk_log_sorts_on_take() {
        let log = ChunkLog::new();
        log.record(ChunkKind::Dynamic, 4, 7);
        log.record(ChunkKind::Dynamic, 0, 3);
        log.record(ChunkKind::StaticInit, 0, 9);
        let got = log.take_sorted();
        assert_eq!(
            got,
            vec![
                ChunkRecord {
                    kind: ChunkKind::StaticInit,
                    lo: 0,
                    hi: 9
                },
                ChunkRecord {
                    kind: ChunkKind::Dynamic,
                    lo: 0,
                    hi: 3
                },
                ChunkRecord {
                    kind: ChunkKind::Dynamic,
                    lo: 4,
                    hi: 7
                },
            ]
        );
        assert!(log.take_sorted().is_empty(), "take drains the log");
    }

    #[test]
    fn globals_round_trip_through_snapshot() {
        let mut m = Module::new();
        m.add_global("grid", IrType::I64, 16);
        let mem = Memory::new();
        let addrs = materialize_globals(&m, &mem);
        assert_eq!(addrs.len(), 1);
        mem.store(addrs[0].1 + 8, 8, 0x0102030405060708).unwrap();
        let snap = snapshot_globals(&m, &mem, &addrs);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "grid");
        assert_eq!(
            snap[0].1,
            vec![0, 0, 0, 0, 0, 0, 0, 0, 8, 7, 6, 5, 4, 3, 2, 1],
            "little-endian byte image"
        );
    }
}
