//! Shared guest memory for the IR interpreter.
//!
//! Built from `AtomicU64` word cells so `parallel` regions can execute on
//! real OS threads without the *interpreter* exhibiting undefined behaviour:
//! racy guest programs degrade to relaxed-atomic semantics (each 8-byte word
//! access is atomic; sub-word and straddling accesses use CAS
//! read-modify-write), which is strictly more defined than the C they model.
//!
//! Pointers are 64-bit handles: `region_index << 32 | byte_offset`. Region 0
//! is reserved so the null pointer stays invalid. Function pointers use a
//! tag bit (see [`Memory::encode_fn_ptr`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const FN_PTR_TAG: u64 = 1 << 63;

/// A single allocation.
struct Region {
    words: Box<[AtomicU64]>,
    size_bytes: u64,
}

/// Lock-free append-only region table: segment `k` holds `2^k` slots, so
/// lookups are two data-dependent loads and **no lock** — guest loads/stores
/// happen on every interpreted memory instruction and would otherwise
/// serialize the thread team on the table lock.
const NUM_SEGMENTS: usize = 32;

struct SegmentedArena {
    segments: [OnceLock<Box<[OnceLock<Region>]>>; NUM_SEGMENTS],
    len: AtomicU64,
}

impl SegmentedArena {
    fn new() -> SegmentedArena {
        SegmentedArena {
            segments: [const { OnceLock::new() }; NUM_SEGMENTS],
            len: AtomicU64::new(0),
        }
    }

    /// (segment index, offset within segment) for a flat index.
    fn locate(idx: u64) -> (usize, usize) {
        // segment k covers indices [2^k - 1, 2^(k+1) - 1)
        let seg = (64 - (idx + 1).leading_zeros() - 1) as usize;
        let start = (1u64 << seg) - 1;
        (seg, (idx - start) as usize)
    }

    /// Appends a region, returning its flat index.
    fn push(&self, region: Region) -> u64 {
        let idx = self.len.fetch_add(1, Ordering::Relaxed);
        let (seg, off) = Self::locate(idx);
        assert!(seg < NUM_SEGMENTS, "guest region space exhausted");
        let slab = self.segments[seg].get_or_init(|| {
            let cap = 1usize << seg;
            let mut v = Vec::with_capacity(cap);
            v.resize_with(cap, OnceLock::new);
            v.into_boxed_slice()
        });
        slab[off]
            .set(region)
            .ok()
            .expect("region slot written twice");
        idx
    }

    /// Wait-free lookup.
    fn get(&self, idx: u64) -> Option<&Region> {
        if idx >= self.len.load(Ordering::Acquire) {
            return None;
        }
        let (seg, off) = Self::locate(idx);
        self.segments.get(seg)?.get()?.get(off)?.get()
    }
}

/// The interpreter's address space. Allocation is append-only; everything is
/// freed when the `Memory` is dropped (per-run arena).
pub struct Memory {
    regions: SegmentedArena,
}

/// Error kind for bad guest accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemError {
    /// Human-readable description.
    pub what: String,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates an address space with the null region reserved.
    pub fn new() -> Memory {
        let m = Memory {
            regions: SegmentedArena::new(),
        };
        m.regions.push(Region {
            words: Box::new([]),
            size_bytes: 0,
        });
        m
    }

    /// Allocates `bytes` zero-initialized bytes; returns the guest pointer.
    pub fn alloc(&self, bytes: u64) -> u64 {
        let words = bytes.div_ceil(8) as usize;
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        let idx = self.regions.push(Region {
            words: v.into_boxed_slice(),
            size_bytes: bytes,
        });
        assert!(idx < u32::MAX as u64, "guest region space exhausted");
        idx << 32
    }

    /// Encodes a function symbol as a tagged pointer.
    pub fn encode_fn_ptr(sym: u32) -> u64 {
        FN_PTR_TAG | sym as u64
    }

    /// Decodes a tagged function pointer back to its symbol.
    pub fn decode_fn_ptr(ptr: u64) -> Option<u32> {
        (ptr & FN_PTR_TAG != 0).then_some((ptr & 0xFFFF_FFFF) as u32)
    }

    fn check(&self, ptr: u64, len: u64) -> Result<(&Region, u64), MemError> {
        if ptr & FN_PTR_TAG != 0 {
            return Err(MemError {
                what: format!("data access through function pointer {ptr:#x}"),
            });
        }
        let region = (ptr >> 32) as u32;
        let offset = ptr & 0xFFFF_FFFF;
        if region == 0 {
            return Err(MemError {
                what: "null pointer dereference".to_string(),
            });
        }
        match self.regions.get(region as u64) {
            Some(reg) if offset + len <= reg.size_bytes => Ok((reg, offset)),
            Some(reg) => Err(MemError {
                what: format!(
                    "out-of-bounds access: offset {offset}+{len} in region of {} bytes",
                    reg.size_bytes
                ),
            }),
            None => Err(MemError {
                what: format!("dangling pointer {ptr:#x}"),
            }),
        }
    }

    /// Loads `len` (1/2/4/8) bytes, zero-extended into a `u64`.
    pub fn load(&self, ptr: u64, len: u64) -> Result<u64, MemError> {
        let (reg, offset) = self.check(ptr, len)?;
        let word_idx = (offset / 8) as usize;
        let in_word = offset % 8;
        if in_word + len <= 8 {
            let w = reg.words[word_idx].load(Ordering::Relaxed);
            let shifted = w >> (in_word * 8);
            Ok(if len == 8 {
                shifted
            } else {
                shifted & ((1u64 << (len * 8)) - 1)
            })
        } else {
            // Straddles two words: assemble byte-wise.
            let mut out = 0u64;
            for i in 0..len {
                let o = offset + i;
                let w = reg.words[(o / 8) as usize].load(Ordering::Relaxed);
                let b = (w >> ((o % 8) * 8)) & 0xFF;
                out |= b << (i * 8);
            }
            Ok(out)
        }
    }

    /// Stores the low `len` bytes of `val`.
    pub fn store(&self, ptr: u64, len: u64, val: u64) -> Result<(), MemError> {
        let (reg, offset) = self.check(ptr, len)?;
        let word_idx = (offset / 8) as usize;
        let in_word = offset % 8;
        if len == 8 && in_word == 0 {
            reg.words[word_idx].store(val, Ordering::Relaxed);
            return Ok(());
        }
        if in_word + len <= 8 {
            let mask = if len == 8 {
                u64::MAX
            } else {
                ((1u64 << (len * 8)) - 1) << (in_word * 8)
            };
            let bits = (val << (in_word * 8)) & mask;
            let cell = &reg.words[word_idx];
            // CAS read-modify-write keeps concurrent neighbors intact.
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (cur & !mask) | bits;
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => return Ok(()),
                    Err(c) => cur = c,
                }
            }
        }
        // Straddling store: byte-wise CAS.
        for i in 0..len {
            let o = offset + i;
            let cell = &reg.words[(o / 8) as usize];
            let shift = (o % 8) * 8;
            let mask = 0xFFu64 << shift;
            let bits = ((val >> (i * 8)) & 0xFF) << shift;
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (cur & !mask) | bits;
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        }
        Ok(())
    }

    /// Atomic fetch-add on an aligned 8-byte word (used by `reduction`).
    pub fn fetch_add_i64(&self, ptr: u64, add: i64) -> Result<i64, MemError> {
        let (reg, offset) = self.check(ptr, 8)?;
        if offset % 8 != 0 {
            return Err(MemError {
                what: "unaligned atomic".to_string(),
            });
        }
        let prev = reg.words[(offset / 8) as usize].fetch_add(add as u64, Ordering::Relaxed);
        Ok(prev as i64)
    }

    /// Number of live regions (diagnostic).
    pub fn num_regions(&self) -> usize {
        self.regions.len.load(Ordering::Acquire) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_round_trip() {
        let m = Memory::new();
        let p = m.alloc(16);
        m.store(p, 8, 0x1122334455667788).unwrap();
        assert_eq!(m.load(p, 8).unwrap(), 0x1122334455667788);
        m.store(p + 8, 4, 0xDEADBEEF).unwrap();
        assert_eq!(m.load(p + 8, 4).unwrap(), 0xDEADBEEF);
    }

    #[test]
    fn sub_word_stores_do_not_clobber_neighbors() {
        let m = Memory::new();
        let p = m.alloc(8);
        m.store(p, 8, u64::MAX).unwrap();
        m.store(p + 2, 2, 0).unwrap();
        assert_eq!(m.load(p, 8).unwrap(), 0xFFFF_FFFF_0000_FFFF);
        assert_eq!(m.load(p + 2, 2).unwrap(), 0);
        assert_eq!(m.load(p, 2).unwrap(), 0xFFFF);
    }

    #[test]
    fn straddling_access() {
        let m = Memory::new();
        let p = m.alloc(16);
        // 4-byte store at offset 6 crosses the word boundary
        m.store(p + 6, 4, 0xAABBCCDD).unwrap();
        assert_eq!(m.load(p + 6, 4).unwrap(), 0xAABBCCDD);
        assert_eq!(m.load(p + 6, 2).unwrap(), 0xCCDD);
        assert_eq!(m.load(p + 8, 2).unwrap(), 0xAABB);
    }

    #[test]
    fn null_and_oob_rejected() {
        let m = Memory::new();
        assert!(m.load(0, 8).is_err());
        let p = m.alloc(4);
        assert!(m.load(p, 8).is_err());
        assert!(m.load(p + 4, 1).is_err());
        assert!(m.store(p, 4, 0).is_ok());
    }

    #[test]
    fn fn_ptr_tagging() {
        let p = Memory::encode_fn_ptr(7);
        assert_eq!(Memory::decode_fn_ptr(p), Some(7));
        assert_eq!(Memory::decode_fn_ptr(1 << 32), None);
        let m = Memory::new();
        assert!(m.load(p, 8).is_err(), "function pointers are not data");
    }

    #[test]
    fn fetch_add_atomicity_across_threads() {
        let m = std::sync::Arc::new(Memory::new());
        let p = m.alloc(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.fetch_add_i64(p, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.load(p, 8).unwrap(), 8000);
    }

    #[test]
    fn concurrent_subword_neighbors_survive() {
        // Two threads hammering adjacent bytes of the same word must not
        // lose each other's writes (the CAS loop guarantees it).
        let m = std::sync::Arc::new(Memory::new());
        let p = m.alloc(8);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.store(p + t, 1, i & 0xFF).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.load(p, 1).unwrap(), 499 & 0xFF);
        assert_eq!(m.load(p + 1, 1).unwrap(), 499 & 0xFF);
    }
}
