//! The IR interpreter: executes `omplt-ir` modules, dispatching runtime
//! calls (OpenMP + I/O shims) to [`crate::runtime`].

use crate::engine::{self, ChunkLog, ChunkRecord, Engine};
use crate::memory::Memory;
use crate::runtime::{self, RuntimeConfig, ThreadCtx};
use omplt_ir::{
    BinOpKind, BlockId, CastOp, CmpPred, Function, Inst, IrType, Module, Terminator, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtVal {
    /// Integer (sign-extended to 64-bit storage).
    I(i64),
    /// Floating point (f32 values round-trip through f64 storage).
    F(f64),
    /// Guest pointer.
    P(u64),
}

impl RtVal {
    /// Integer payload (pointers coerce — C-style).
    pub fn as_i(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::P(p) => p as i64,
            RtVal::F(f) => f as i64,
        }
    }

    /// Float payload.
    pub fn as_f(self) -> f64 {
        match self {
            RtVal::F(v) => v,
            RtVal::I(v) => v as f64,
            RtVal::P(p) => p as f64,
        }
    }

    /// Pointer payload.
    pub fn as_p(self) -> u64 {
        match self {
            RtVal::P(p) => p,
            RtVal::I(v) => v as u64,
            RtVal::F(_) => 0,
        }
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Division or remainder by zero.
    DivByZero,
    /// Memory fault.
    Mem(String),
    /// `unreachable` executed.
    Unreachable,
    /// The step budget was exhausted (guards against infinite loops).
    FuelExhausted,
    /// The per-job wall-clock deadline passed (checked cooperatively at
    /// fuel-refill boundaries). Carries the configured timeout in ms.
    DeadlineExpired(u64),
    /// Call to an unknown function.
    UnknownFunction(String),
    /// Malformed IR encountered at runtime.
    Malformed(String),
    /// A spawned team thread panicked.
    ThreadPanic,
    /// The barrier watchdog detected a team member that can never arrive
    /// (it exited or panicked) while others wait. The message names the
    /// lost and stuck threads.
    BarrierDeadlock(String),
    /// Internal marker for the `runtime.lost-thread` fault injection: the
    /// carrying thread unwinds out of the parallel region without reaching
    /// the barrier. `fork_call` converts it to a watchdog diagnostic; it
    /// never escapes to users.
    LostThread(u32),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::Mem(m) => write!(f, "memory error: {m}"),
            ExecError::Unreachable => write!(f, "reached 'unreachable'"),
            ExecError::FuelExhausted => write!(f, "step budget exhausted (infinite loop?)"),
            ExecError::DeadlineExpired(ms) => {
                write!(
                    f,
                    "wall-clock deadline of {ms} ms exceeded ('--exec-timeout')"
                )
            }
            ExecError::UnknownFunction(n) => write!(f, "call to unknown function '{n}'"),
            ExecError::Malformed(m) => write!(f, "malformed IR: {m}"),
            ExecError::ThreadPanic => write!(f, "a team thread panicked"),
            ExecError::BarrierDeadlock(m) => write!(f, "{m}"),
            ExecError::LostThread(g) => {
                write!(f, "team thread {g} was lost before reaching the barrier")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a completed run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Everything printed through the `print_*` shims.
    pub stdout: String,
    /// `main`'s return value (0 when `main` returns void).
    pub exit_code: i64,
    /// Number of tasks created by `taskloop` constructs — the paper notes
    /// the unroll factor becomes *observable* through this count.
    pub tasks_created: u64,
    /// Every schedule chunk served during the run, sorted. Empty unless
    /// [`RuntimeConfig::log_chunks`] was set.
    pub chunk_log: Vec<ChunkRecord>,
    /// Final byte contents of every module global, by name — the observable
    /// memory state differential tests compare across backends.
    pub final_globals: Vec<(String, Vec<u8>)>,
    /// Total ops the engine retired during the run — the same number the
    /// `interp.ops.retired` / `vm.ops.retired` trace counters report, but
    /// available without a trace session. Deterministic for a given module
    /// and configuration (the CI drift guard pins this), which is what the
    /// autotuner's counter-based cost model ranks candidates by.
    pub ops_retired: u64,
}

/// Shared interpreter state (one per run; `Sync`, shared across team
/// threads).
pub struct Interpreter<'m> {
    /// The module being executed.
    pub module: &'m Module,
    /// Guest memory.
    pub mem: Arc<Memory>,
    /// Collected stdout.
    pub out: Mutex<String>,
    /// Task counter (see [`RunResult::tasks_created`]).
    pub tasks: AtomicU64,
    /// Remaining instruction budget, shared across all threads.
    pub fuel: AtomicU64,
    /// Total ops retired so far, across all threads (see
    /// [`RunResult::ops_retired`]).
    pub ops: AtomicU64,
    /// Runtime configuration.
    pub cfg: RuntimeConfig,
    /// Guest addresses of module globals, by symbol index.
    pub global_addrs: Vec<(u32, u64)>,
    /// Served schedule chunks (recorded when `cfg.log_chunks` is set).
    pub chunk_log: ChunkLog,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter and materializes module globals.
    pub fn new(module: &'m Module, cfg: RuntimeConfig) -> Interpreter<'m> {
        let mem = Arc::new(Memory::new());
        let global_addrs = engine::materialize_globals(module, &mem);
        Interpreter {
            module,
            mem,
            out: Mutex::new(String::new()),
            tasks: AtomicU64::new(0),
            fuel: AtomicU64::new(cfg.max_steps),
            ops: AtomicU64::new(0),
            cfg,
            global_addrs,
            chunk_log: ChunkLog::new(),
        }
    }

    fn finish(&self, ret: Option<RtVal>) -> RunResult {
        RunResult {
            stdout: std::mem::take(&mut *self.out.lock().expect("out lock")),
            exit_code: ret.map_or(0, |v| v.as_i()),
            tasks_created: self.tasks.load(Ordering::Relaxed),
            chunk_log: self.chunk_log.take_sorted(),
            final_globals: engine::snapshot_globals(self.module, &self.mem, &self.global_addrs),
            ops_retired: self.ops.load(Ordering::Relaxed),
        }
    }

    /// Runs `main` and collects results.
    pub fn run_main(&self) -> Result<RunResult, ExecError> {
        let _span = omplt_trace::span("interp.run");
        let ctx = ThreadCtx::initial();
        let ret = self.call_by_name("main", vec![], &ctx)?;
        Ok(self.finish(ret))
    }

    /// Runs an arbitrary void/intret function (for kernels without `main`).
    pub fn run_function(&self, name: &str, args: Vec<RtVal>) -> Result<RunResult, ExecError> {
        let ctx = ThreadCtx::initial();
        let ret = self.call_by_name(name, args, &ctx)?;
        Ok(self.finish(ret))
    }

    /// Calls a function by name: module definitions first, then runtime
    /// shims.
    pub fn call_by_name(
        &self,
        name: &str,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        if let Some(f) = self.module.function(name) {
            return self.exec_function(f, args, ctx);
        }
        runtime::dispatch(self, name, args, ctx)
    }

    fn global_addr(&self, sym: u32) -> Option<u64> {
        self.global_addrs
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, a)| *a)
    }

    fn eval(&self, frame: &[Option<RtVal>], args: &[RtVal], v: Value) -> Result<RtVal, ExecError> {
        Ok(match v {
            Value::Inst(id) => frame[id.0 as usize]
                .ok_or_else(|| ExecError::Malformed(format!("use of undefined %{}", id.0)))?,
            Value::Arg(i) => *args
                .get(i as usize)
                .ok_or_else(|| ExecError::Malformed(format!("missing argument {i}")))?,
            Value::ConstInt { val, .. } => RtVal::I(val),
            Value::ConstFloat { bits, .. } => RtVal::F(f64::from_bits(bits)),
            Value::Global(s) => RtVal::P(
                self.global_addr(s.0)
                    .ok_or_else(|| ExecError::Malformed(format!("unknown global {}", s.0)))?,
            ),
            Value::FuncRef(s) => RtVal::P(Memory::encode_fn_ptr(s.0)),
            Value::Undef(ty) => {
                if ty.is_float() {
                    RtVal::F(0.0)
                } else {
                    RtVal::I(0)
                }
            }
        })
    }

    /// Executes one function body.
    pub fn exec_function(
        &self,
        f: &Function,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        let mut retired = 0u64;
        let r = self.exec_function_inner(f, args, ctx, &mut retired);
        self.ops.fetch_add(retired, Ordering::Relaxed);
        if omplt_trace::active() {
            omplt_trace::count("interp.ops.retired", retired);
        }
        r
    }

    fn exec_function_inner(
        &self,
        f: &Function,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
        retired: &mut u64,
    ) -> Result<Option<RtVal>, ExecError> {
        let mut frame: Vec<Option<RtVal>> = vec![None; f.insts.len()];
        let mut cur = f.entry();
        let mut prev: Option<BlockId> = None;
        // Fuel is accounted in batches: a per-frame local counter refills
        // from the shared atomic, so team threads do not serialize on one
        // contended cache line (one fetch_sub per 4096 instructions).
        const FUEL_BATCH: u64 = 4096;
        let mut local_fuel: u64 = 0;

        loop {
            let block = f.block(cur);

            // Phase 1: evaluate all phis against the incoming edge
            // simultaneously (textbook simultaneous-assignment semantics).
            let mut phi_updates: Vec<(usize, RtVal)> = Vec::new();
            for &iid in &block.insts {
                match f.inst(iid) {
                    Inst::Phi { incoming, .. } => {
                        let from = prev.ok_or_else(|| {
                            ExecError::Malformed("phi in entry block".to_string())
                        })?;
                        let (_, val) =
                            incoming.iter().find(|(b, _)| *b == from).ok_or_else(|| {
                                ExecError::Malformed(format!(
                                    "phi %{} has no edge for predecessor {}",
                                    iid.0, from.0
                                ))
                            })?;
                        phi_updates.push((iid.0 as usize, self.eval(&frame, &args, *val)?));
                    }
                    _ => break,
                }
            }
            for (slot, v) in phi_updates {
                frame[slot] = Some(v);
            }

            // Phase 2: the straight-line instructions.
            for &iid in &block.insts {
                if matches!(f.inst(iid), Inst::Phi { .. }) {
                    continue;
                }
                if local_fuel == 0 {
                    let prev_fuel = self.fuel.fetch_sub(FUEL_BATCH, Ordering::Relaxed);
                    if prev_fuel < FUEL_BATCH {
                        return Err(ExecError::FuelExhausted);
                    }
                    // Piggyback the per-job wall-clock deadline on the fuel
                    // refill so the check costs nothing on the per-op path.
                    if let Some(dl) = self.cfg.deadline {
                        if dl.expired() {
                            return Err(ExecError::DeadlineExpired(dl.ms));
                        }
                    }
                    local_fuel = FUEL_BATCH;
                }
                local_fuel -= 1;
                *retired += 1;
                let result = self.exec_inst(f, &frame, &args, f.inst(iid), ctx)?;
                frame[iid.0 as usize] = result;
            }

            // Phase 3: the terminator.
            let term = block.term.as_ref().ok_or_else(|| {
                ExecError::Malformed(format!("unterminated block {}", block.name))
            })?;
            match term {
                Terminator::Br { target, .. } => {
                    prev = Some(cur);
                    cur = *target;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                    ..
                } => {
                    let c = self.eval(&frame, &args, *cond)?.as_i();
                    prev = Some(cur);
                    cur = if c != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Ret(v) => {
                    return match v {
                        Some(v) => Ok(Some(self.eval(&frame, &args, *v)?)),
                        None => Ok(None),
                    };
                }
                Terminator::Unreachable => return Err(ExecError::Unreachable),
            }
        }
    }

    fn exec_inst(
        &self,
        f: &Function,
        frame: &[Option<RtVal>],
        args: &[RtVal],
        inst: &Inst,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        Ok(match inst {
            Inst::Phi { .. } => unreachable!("phis handled in phase 1"),
            Inst::Alloca { ty, count, .. } => {
                Some(RtVal::P(self.mem.alloc(ty.size().max(1) * (*count).max(1))))
            }
            Inst::Load { ty, ptr } => {
                let p = self.eval(frame, args, *ptr)?.as_p();
                let raw = self
                    .mem
                    .load(p, ty.size())
                    .map_err(|e| ExecError::Mem(e.what))?;
                Some(decode_scalar(*ty, raw))
            }
            Inst::Store { val, ptr } => {
                let ty = f.value_type(*val);
                let v = self.eval(frame, args, *val)?;
                let p = self.eval(frame, args, *ptr)?.as_p();
                self.mem
                    .store(p, ty.size(), encode_scalar(ty, v))
                    .map_err(|e| ExecError::Mem(e.what))?;
                None
            }
            Inst::Gep {
                ptr,
                index,
                elem_size,
            } => {
                let p = self.eval(frame, args, *ptr)?.as_p();
                let i = self.eval(frame, args, *index)?.as_i();
                Some(RtVal::P(
                    p.wrapping_add((i as u64).wrapping_mul(*elem_size)),
                ))
            }
            Inst::Bin { op, lhs, rhs } => {
                let ty = f.value_type(*lhs);
                let a = self.eval(frame, args, *lhs)?;
                let b = self.eval(frame, args, *rhs)?;
                Some(exec_bin(*op, ty, a, b)?)
            }
            Inst::Cmp { pred, lhs, rhs } => {
                let ty = f.value_type(*lhs);
                let a = self.eval(frame, args, *lhs)?;
                let b = self.eval(frame, args, *rhs)?;
                Some(RtVal::I(exec_cmp(*pred, ty, a, b) as i64))
            }
            Inst::Cast { op, val, to } => {
                let from = f.value_type(*val);
                let v = self.eval(frame, args, *val)?;
                Some(exec_cast(*op, from, *to, v))
            }
            Inst::Select { cond, t, f: fv } => {
                let c = self.eval(frame, args, *cond)?.as_i();
                Some(self.eval(frame, args, if c != 0 { *t } else { *fv })?)
            }
            Inst::Call {
                callee,
                args: call_args,
                ty,
            } => {
                let name = self.module.symbol_name(callee.0).to_string();
                let mut vs = Vec::with_capacity(call_args.len());
                for a in call_args {
                    vs.push(self.eval(frame, args, *a)?);
                }
                let r = self.call_by_name(&name, vs, ctx)?;
                if *ty == IrType::Void {
                    None
                } else {
                    Some(r.unwrap_or(RtVal::I(0)))
                }
            }
        })
    }
}

impl Engine for Interpreter<'_> {
    fn module(&self) -> &Module {
        self.module
    }

    fn mem(&self) -> &Memory {
        &self.mem
    }

    fn out(&self) -> &Mutex<String> {
        &self.out
    }

    fn tasks(&self) -> &AtomicU64 {
        &self.tasks
    }

    fn cfg(&self) -> &RuntimeConfig {
        &self.cfg
    }

    fn chunk_log(&self) -> Option<&ChunkLog> {
        self.cfg.log_chunks.then_some(&self.chunk_log)
    }

    fn trace_prefix(&self) -> &'static str {
        "interp"
    }

    fn call_by_name(
        &self,
        name: &str,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        Interpreter::call_by_name(self, name, args, ctx)
    }
}

/// Converts raw loaded bits into a typed value.
#[inline]
pub fn decode_scalar(ty: IrType, raw: u64) -> RtVal {
    match ty {
        IrType::F32 => RtVal::F(f32::from_bits(raw as u32) as f64),
        IrType::F64 => RtVal::F(f64::from_bits(raw)),
        IrType::Ptr => RtVal::P(raw),
        _ => RtVal::I(ty.wrap(raw as i64)),
    }
}

/// Converts a typed value into raw storable bits.
#[inline]
pub fn encode_scalar(ty: IrType, v: RtVal) -> u64 {
    match ty {
        IrType::F32 => (v.as_f() as f32).to_bits() as u64,
        IrType::F64 => v.as_f().to_bits(),
        IrType::Ptr => v.as_p(),
        _ => v.as_i() as u64,
    }
}

/// Executes one binary operation. Public so the bytecode VM shares *exactly*
/// these semantics (wrapping, pointer flavor, division checks) — differential
/// tests require bit-identical arithmetic between backends.
#[inline]
pub fn exec_bin(op: BinOpKind, ty: IrType, a: RtVal, b: RtVal) -> Result<RtVal, ExecError> {
    use BinOpKind::*;
    if op.is_float() {
        let (x, y) = (a.as_f(), b.as_f());
        let r = match op {
            FAdd => x + y,
            FSub => x - y,
            FMul => x * y,
            FDiv => x / y,
            FRem => x % y,
            _ => unreachable!(),
        };
        return Ok(RtVal::F(if ty == IrType::F32 {
            (r as f32) as f64
        } else {
            r
        }));
    }
    // Pointer arithmetic through add/sub keeps the pointer flavor.
    if ty == IrType::Ptr {
        let (x, y) = (a.as_p(), b.as_p());
        let r = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            _ => {
                return Err(ExecError::Malformed(
                    "non-additive pointer arithmetic".into(),
                ))
            }
        };
        return Ok(RtVal::P(r));
    }
    let (x, y) = (a.as_i(), b.as_i());
    let (ux, uy) = (ty.wrap_unsigned(x), ty.wrap_unsigned(y));
    let r = match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        SDiv => {
            if y == 0 {
                return Err(ExecError::DivByZero);
            }
            x.wrapping_div(y)
        }
        UDiv => {
            if uy == 0 {
                return Err(ExecError::DivByZero);
            }
            (ux / uy) as i64
        }
        SRem => {
            if y == 0 {
                return Err(ExecError::DivByZero);
            }
            x.wrapping_rem(y)
        }
        URem => {
            if uy == 0 {
                return Err(ExecError::DivByZero);
            }
            (ux % uy) as i64
        }
        Shl => x.wrapping_shl((uy & 63) as u32),
        AShr => x.wrapping_shr((uy & 63) as u32),
        LShr => (ux >> (uy & (ty.bits() as u64 - 1).max(1))) as i64,
        And => x & y,
        Or => x | y,
        Xor => x ^ y,
        _ => unreachable!(),
    };
    Ok(RtVal::I(ty.wrap(r)))
}

/// Executes one comparison (shared with the bytecode VM, see [`exec_bin`]).
#[inline]
pub fn exec_cmp(pred: CmpPred, ty: IrType, a: RtVal, b: RtVal) -> bool {
    use CmpPred::*;
    if pred.is_float() {
        let (x, y) = (a.as_f(), b.as_f());
        return match pred {
            FEq => x == y,
            FNe => x != y,
            FLt => x < y,
            FLe => x <= y,
            FGt => x > y,
            FGe => x >= y,
            _ => unreachable!(),
        };
    }
    let (x, y) = (a.as_i(), b.as_i());
    let (ux, uy) = if ty == IrType::Ptr {
        (a.as_p(), b.as_p())
    } else {
        (ty.wrap_unsigned(x), ty.wrap_unsigned(y))
    };
    match pred {
        Eq => ux == uy,
        Ne => ux != uy,
        Slt => x < y,
        Sle => x <= y,
        Sgt => x > y,
        Sge => x >= y,
        Ult => ux < uy,
        Ule => ux <= uy,
        Ugt => ux > uy,
        Uge => ux >= uy,
        _ => unreachable!(),
    }
}

/// Executes one conversion (shared with the bytecode VM, see [`exec_bin`]).
#[inline]
pub fn exec_cast(op: CastOp, from: IrType, to: IrType, v: RtVal) -> RtVal {
    match op {
        CastOp::Trunc => RtVal::I(to.wrap(v.as_i())),
        CastOp::SExt => RtVal::I(v.as_i()),
        CastOp::ZExt => RtVal::I(from.wrap_unsigned(v.as_i()) as i64),
        CastOp::SiToFp => RtVal::F(round_to(to, v.as_i() as f64)),
        CastOp::UiToFp => RtVal::F(round_to(to, from.wrap_unsigned(v.as_i()) as f64)),
        CastOp::FpToSi => RtVal::I(to.wrap(v.as_f() as i64)),
        CastOp::FpToUi => RtVal::I(to.wrap(v.as_f() as u64 as i64)),
        CastOp::FpTrunc | CastOp::FpExt => RtVal::F(round_to(to, v.as_f())),
        CastOp::PtrToInt => RtVal::I(to.wrap(v.as_p() as i64)),
        CastOp::IntToPtr => RtVal::P(v.as_i() as u64),
    }
}

fn round_to(ty: IrType, v: f64) -> f64 {
    if ty == IrType::F32 {
        (v as f32) as f64
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::IrBuilder;

    fn run(m: &Module) -> RunResult {
        Interpreter::new(m, RuntimeConfig::default())
            .run_main()
            .expect("run failed")
    }

    #[test]
    fn returns_constant() {
        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            b.ret(Some(Value::i32(42)));
        }
        m.add_function(f);
        assert_eq!(run(&m).exit_code, 42);
    }

    #[test]
    fn memory_round_trip_and_print() {
        let mut m = Module::new();
        let print = m.intern("print_i64");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let p = b.alloca(IrType::I64, 1, "x");
            b.store(Value::i64(7), p);
            let v = b.load(IrType::I64, p);
            let w = b.mul(v, Value::i64(6));
            b.call(print, vec![w], IrType::Void);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        assert_eq!(run(&m).stdout, "42\n");
    }

    #[test]
    fn loop_with_phi_sums() {
        // sum 0..10 via canonical-style loop
        let mut m = Module::new();
        let print = m.intern("print_i64");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let acc = b.alloca(IrType::I64, 1, "acc");
            b.store(Value::i64(0), acc);
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            let entry = b.insert_block();
            b.br(header);
            b.set_insert_point(header);
            let (iv, phi) = b.phi(IrType::I64);
            b.add_phi_incoming(phi, entry, Value::i64(0));
            let c = b.cmp(CmpPred::Ult, iv, Value::i64(10));
            b.cond_br(c, body, exit);
            b.set_insert_point(body);
            let old = b.load(IrType::I64, acc);
            let new = b.add(old, iv);
            b.store(new, acc);
            let next = b.add(iv, Value::i64(1));
            b.add_phi_incoming(phi, body, next);
            b.br(header);
            b.set_insert_point(exit);
            let fin = b.load(IrType::I64, acc);
            b.call(print, vec![fin], IrType::Void);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        assert_eq!(run(&m).stdout, "45\n");
    }

    #[test]
    fn div_by_zero_reported() {
        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let p = b.alloca(IrType::I32, 1, "z");
            b.store(Value::i32(0), p);
            let z = b.load(IrType::I32, p);
            let d = b.sdiv(Value::i32(1), z);
            b.ret(Some(d));
        }
        m.add_function(f);
        let r = Interpreter::new(&m, RuntimeConfig::default()).run_main();
        assert_eq!(r.unwrap_err(), ExecError::DivByZero);
    }

    #[test]
    fn fuel_guards_infinite_loops() {
        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let spin = b.create_block("spin");
            b.br(spin);
            b.set_insert_point(spin);
            // keep at least one instruction so fuel is consumed
            let p = b.alloca(IrType::I64, 1, "x");
            b.store(Value::i64(1), p);
            b.br(spin);
        }
        m.add_function(f);
        let cfg = RuntimeConfig {
            max_steps: 10_000,
            ..Default::default()
        };
        let r = Interpreter::new(&m, cfg).run_main();
        assert_eq!(r.unwrap_err(), ExecError::FuelExhausted);
    }

    #[test]
    fn f32_rounding_applied() {
        let mut m = Module::new();
        let print = m.intern("print_f64");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let p = b.alloca(IrType::F32, 1, "x");
            b.store(Value::float(IrType::F32, 0.1), p);
            let v = b.load(IrType::F32, p);
            let w = b.cast(CastOp::FpExt, v, IrType::F64);
            b.call(print, vec![w], IrType::Void);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        let out = run(&m).stdout;
        assert!(
            out.starts_with("0.100000001"),
            "f32 rounding must be visible: {out}"
        );
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut m = Module::new();
        let mystery = m.intern("mystery_fn");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            b.call(mystery, vec![], IrType::Void);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        let r = Interpreter::new(&m, RuntimeConfig::default()).run_main();
        assert!(matches!(r.unwrap_err(), ExecError::UnknownFunction(n) if n == "mystery_fn"));
    }
}
