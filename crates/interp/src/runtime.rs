//! The OpenMP runtime shim (plus tiny I/O builtins).
//!
//! Implements the calls that Clang's "early outlining" lowering targets
//! (paper §1): `__kmpc_fork_call` spawns a real thread team with
//! `std::thread::scope`, `__kmpc_for_static_init` computes static-schedule
//! chunk bounds (types 34 = static, 33 = static-chunked, exactly the libomp
//! constants), and `omp_get_thread_num`/`omp_get_num_threads` expose the
//! team context.

use crate::exec::{ExecError, Interpreter, RtVal};
use crate::memory::Memory;
use std::cell::Cell;
use std::sync::atomic::Ordering;

/// Per-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Default team size for `parallel` regions without `num_threads`.
    pub num_threads: u32,
    /// Instruction budget shared by all threads (infinite-loop guard).
    pub max_steps: u64,
    /// When true, `parallel` regions execute sequentially (tid 0..n in
    /// order) — useful for deterministic golden tests.
    pub serial: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_threads: 4,
            max_steps: 500_000_000,
            serial: false,
        }
    }
}

/// Per-thread execution context (team membership).
#[derive(Debug)]
pub struct ThreadCtx {
    /// This thread's id within its team.
    pub gtid: u32,
    /// Team size.
    pub team_size: u32,
    /// `num_threads(n)` request for the *next* fork
    /// (`__kmpc_push_num_threads`).
    pub pending_num_threads: Cell<Option<u32>>,
}

impl ThreadCtx {
    /// The initial (serial-region) context.
    pub fn initial() -> ThreadCtx {
        ThreadCtx {
            gtid: 0,
            team_size: 1,
            pending_num_threads: Cell::new(None),
        }
    }

    fn team_member(gtid: u32, team_size: u32) -> ThreadCtx {
        ThreadCtx {
            gtid,
            team_size,
            pending_num_threads: Cell::new(None),
        }
    }
}

/// libomp schedule-type constants (subset).
const SCHED_STATIC_CHUNKED: i64 = 33;
#[cfg(test)]
const SCHED_STATIC: i64 = 34;

/// Dispatches a call to a runtime function. Returns
/// `Err(UnknownFunction)` for unrecognized names.
pub fn dispatch(
    it: &Interpreter<'_>,
    name: &str,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    match name {
        "__kmpc_global_thread_num" | "omp_get_thread_num" => Ok(Some(RtVal::I(ctx.gtid as i64))),
        "omp_get_num_threads" => Ok(Some(RtVal::I(ctx.team_size as i64))),
        "__kmpc_push_num_threads" => {
            let n = args.first().map_or(0, |v| v.as_i()).max(1) as u32;
            ctx.pending_num_threads.set(Some(n));
            Ok(None)
        }
        "__kmpc_fork_call" => fork_call(it, args, ctx),
        "__kmpc_for_static_init" => for_static_init(it, args, ctx),
        "__kmpc_for_static_fini" => Ok(None),
        "__kmpc_barrier" => Ok(None), // fork/join already synchronizes teams
        "__omplt_task_created" => {
            it.tasks.fetch_add(1, Ordering::Relaxed);
            Ok(None)
        }
        "__omplt_atomic_add_i64" => {
            let p = args[0].as_p();
            let v = args[1].as_i();
            it.mem
                .fetch_add_i64(p, v)
                .map_err(|e| ExecError::Mem(e.what))?;
            Ok(None)
        }
        "print_i64" => {
            let v = args.first().map_or(0, |v| v.as_i());
            it.out.lock().expect("out lock").push_str(&format!("{v}\n"));
            Ok(None)
        }
        "print_f64" => {
            let v = args.first().map_or(0.0, |v| v.as_f());
            let s = if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
                format!("{v:.6}\n")
            } else {
                format!("{v}\n")
            };
            it.out.lock().expect("out lock").push_str(&s);
            Ok(None)
        }
        "print_char" => {
            let v = args.first().map_or(0, |v| v.as_i());
            it.out
                .lock()
                .expect("out lock")
                .push(char::from_u32((v as u32) & 0x7F).unwrap_or('?'));
            Ok(None)
        }
        "omp_get_max_threads" => Ok(Some(RtVal::I(it.cfg.num_threads as i64))),
        other => Err(ExecError::UnknownFunction(other.to_string())),
    }
}

/// `__kmpc_fork_call(fnptr, nargs, cap0, cap1, …)` — spawns the team.
fn fork_call(
    it: &Interpreter<'_>,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    let fnptr = args
        .first()
        .ok_or_else(|| ExecError::Malformed("fork_call without function".to_string()))?
        .as_p();
    let sym = Memory::decode_fn_ptr(fnptr)
        .ok_or_else(|| ExecError::Malformed("fork_call target is not a function".to_string()))?;
    let name = it.module.symbol_name(omplt_ir::SymbolId(sym)).to_string();
    let caps: Vec<RtVal> = args[2..].to_vec();
    let team = ctx
        .pending_num_threads
        .take()
        .unwrap_or(it.cfg.num_threads)
        .max(1);

    if team == 1 || it.cfg.serial {
        for tid in 0..team {
            let child = ThreadCtx::team_member(tid, team);
            let mut a = vec![RtVal::I(tid as i64), RtVal::I(tid as i64)];
            a.extend(caps.iter().copied());
            it.call_by_name(&name, a, &child)?;
        }
        return Ok(None);
    }

    // Real thread team: the interpreter is Sync (module is immutable, memory
    // is atomic, output is mutexed), so scoped threads can share it.
    let mut first_err: Option<ExecError> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..team)
            .map(|tid| {
                let name = name.clone();
                let caps = caps.clone();
                s.spawn(move || {
                    let child = ThreadCtx::team_member(tid, team);
                    let mut a = vec![RtVal::I(tid as i64), RtVal::I(tid as i64)];
                    a.extend(caps);
                    it.call_by_name(&name, a, &child).map(|_| ())
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    first_err.get_or_insert(ExecError::ThreadPanic);
                }
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

/// `__kmpc_for_static_init(gtid, sched, plast, plb, pub, pstride, incr,
/// chunk)` with i64 bounds — the static worksharing schedule.
fn for_static_init(
    it: &Interpreter<'_>,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    if args.len() < 8 {
        return Err(ExecError::Malformed(
            "for_static_init needs 8 arguments".to_string(),
        ));
    }
    let sched = args[1].as_i();
    let plast = args[2].as_p();
    let plb = args[3].as_p();
    let pub_ = args[4].as_p();
    let pstride = args[5].as_p();
    let chunk = args[7].as_i().max(1);

    let mem = |e: crate::memory::MemError| ExecError::Mem(e.what);
    let lb = it.mem.load(plb, 8).map_err(mem)? as i64;
    let ub = it.mem.load(pub_, 8).map_err(mem)? as i64;
    let tid = ctx.gtid as i64;
    let team = ctx.team_size as i64;
    let trip = ub - lb + 1; // may be ≤ 0 for empty loops

    let (my_lb, my_ub, stride, is_last) = if trip <= 0 {
        (lb, lb - 1, 1, false)
    } else {
        match sched {
            SCHED_STATIC_CHUNKED => {
                let my_lb = lb + tid * chunk;
                let my_ub = my_lb + chunk - 1;
                let stride = chunk * team;
                // last chunk owner: thread holding the final iteration's chunk
                let last_owner = ((trip - 1) / chunk) % team;
                (my_lb, my_ub, stride, tid == last_owner)
            }
            _ => {
                // SCHED_STATIC (34): one contiguous span per thread,
                // ceil-divided, exactly like libomp's static_balanced-greedy.
                let per = (trip + team - 1) / team;
                let my_lb = lb + tid * per;
                let my_ub = (my_lb + per - 1).min(ub);
                let is_last = my_lb <= ub && my_ub == ub;
                (my_lb, my_ub.max(my_lb - 1), trip, is_last)
            }
        }
    };

    it.mem.store(plb, 8, my_lb as u64).map_err(mem)?;
    it.mem.store(pub_, 8, my_ub as u64).map_err(mem)?;
    it.mem.store(pstride, 8, stride as u64).map_err(mem)?;
    it.mem.store(plast, 4, is_last as u64).map_err(mem)?;
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{Function, IrBuilder, IrType, Module, Value};
    use std::collections::HashSet;

    /// Builds a module whose outlined function marks `covered[tid-span]` and
    /// forks a team of `team` threads.
    fn fork_module(team: u32) -> Module {
        let mut m = Module::new();
        let outlined_sym = m.intern("outlined");
        let fork = m.intern("__kmpc_fork_call");
        let push = m.intern("__kmpc_push_num_threads");

        // outlined(gtid, btid, ptr flags): flags[gtid] = gtid + 1
        let mut o = Function::new(
            "outlined",
            vec![IrType::I32, IrType::I32, IrType::Ptr],
            IrType::Void,
        );
        {
            let mut b = IrBuilder::new(&mut o);
            let gtid64 = b.cast(omplt_ir::CastOp::SExt, Value::Arg(0), IrType::I64);
            let slot = b.gep(Value::Arg(2), gtid64, 8);
            let v = b.add(gtid64, Value::i64(1));
            b.store(v, slot);
            b.ret(None);
        }
        m.add_function(o);

        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let flags = b.alloca(IrType::I64, 16, "flags");
            b.call(push, vec![Value::i32(team as i32)], IrType::Void);
            b.call(
                fork,
                vec![
                    Value::FuncRef(omplt_ir::SymbolId(outlined_sym.0)),
                    Value::i32(1),
                    flags,
                ],
                IrType::Void,
            );
            // sum the flags: sum of (tid+1) over the team
            let mut total = Value::i64(0);
            for i in 0..team as i64 {
                let slot = b.gep(flags, Value::i64(i), 8);
                let v = b.load(IrType::I64, slot);
                total = b.add(total, v);
            }
            let t32 = b.cast(omplt_ir::CastOp::Trunc, total, IrType::I32);
            b.ret(Some(t32));
        }
        m.add_function(f);
        m
    }

    #[test]
    fn fork_call_runs_every_team_member() {
        for team in [1u32, 2, 4, 8] {
            let m = fork_module(team);
            let it = Interpreter::new(&m, RuntimeConfig::default());
            let r = it.run_main().expect("run");
            let expect: i64 = (1..=team as i64).sum();
            assert_eq!(r.exit_code, expect, "team of {team}");
        }
    }

    #[test]
    fn fork_call_serial_mode_matches_parallel() {
        let m = fork_module(4);
        let serial = Interpreter::new(
            &m,
            RuntimeConfig {
                serial: true,
                ..Default::default()
            },
        )
        .run_main()
        .unwrap();
        let parallel = Interpreter::new(&m, RuntimeConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(serial.exit_code, parallel.exit_code);
    }

    /// Drives `for_static_init` directly and checks the partition laws.
    fn partition(sched: i64, trip: i64, team: u32, chunk: i64) -> Vec<Vec<i64>> {
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let mut out = Vec::new();
        for tid in 0..team {
            let ctx = ThreadCtx::team_member(tid, team);
            let plast = it.mem.alloc(4);
            let plb = it.mem.alloc(8);
            let pub_ = it.mem.alloc(8);
            let pstride = it.mem.alloc(8);
            it.mem.store(plb, 8, 0).unwrap();
            it.mem.store(pub_, 8, (trip - 1) as u64).unwrap();
            it.mem.store(pstride, 8, 1).unwrap();
            dispatch(
                &it,
                "__kmpc_for_static_init",
                vec![
                    RtVal::I(tid as i64),
                    RtVal::I(sched),
                    RtVal::P(plast),
                    RtVal::P(plb),
                    RtVal::P(pub_),
                    RtVal::P(pstride),
                    RtVal::I(1),
                    RtVal::I(chunk),
                ],
                &ctx,
            )
            .unwrap();
            let lb = it.mem.load(plb, 8).unwrap() as i64;
            let ub = it.mem.load(pub_, 8).unwrap() as i64;
            let stride = it.mem.load(pstride, 8).unwrap() as i64;
            // Expand this thread's iterations (respecting chunking).
            let mut iters = Vec::new();
            if sched == SCHED_STATIC_CHUNKED {
                let mut start = lb;
                while start < trip {
                    for i in start..=(start + chunk - 1).min(trip - 1) {
                        iters.push(i);
                    }
                    start += stride;
                }
            } else {
                for i in lb..=ub.min(trip - 1) {
                    iters.push(i);
                }
            }
            out.push(iters);
        }
        out
    }

    fn assert_partition_laws(parts: &[Vec<i64>], trip: i64) {
        let mut seen = HashSet::new();
        for p in parts {
            for &i in p {
                assert!(i >= 0 && i < trip, "iteration {i} out of range");
                assert!(seen.insert(i), "iteration {i} assigned twice");
            }
        }
        assert_eq!(seen.len() as i64, trip, "not all iterations covered");
    }

    #[test]
    fn static_partition_is_exhaustive_and_disjoint() {
        for trip in [0i64, 1, 7, 16, 100] {
            for team in [1u32, 2, 3, 4, 7] {
                let parts = partition(SCHED_STATIC, trip, team, 0);
                assert_partition_laws(&parts, trip);
            }
        }
    }

    #[test]
    fn chunked_partition_is_exhaustive_and_disjoint() {
        for trip in [0i64, 1, 7, 16, 100] {
            for team in [1u32, 2, 3, 4] {
                for chunk in [1i64, 2, 5] {
                    let parts = partition(SCHED_STATIC_CHUNKED, trip, team, chunk);
                    assert_partition_laws(&parts, trip);
                }
            }
        }
    }

    #[test]
    fn chunked_round_robins() {
        // 8 iterations, 2 threads, chunk 2: t0 gets {0,1,4,5}, t1 {2,3,6,7}
        let parts = partition(SCHED_STATIC_CHUNKED, 8, 2, 2);
        assert_eq!(parts[0], vec![0, 1, 4, 5]);
        assert_eq!(parts[1], vec![2, 3, 6, 7]);
    }

    #[test]
    fn task_counter_accumulates() {
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let ctx = ThreadCtx::initial();
        for _ in 0..5 {
            dispatch(&it, "__omplt_task_created", vec![], &ctx).unwrap();
        }
        assert_eq!(it.tasks.load(Ordering::Relaxed), 5);
    }
}
