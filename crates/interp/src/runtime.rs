//! The OpenMP runtime shim (plus tiny I/O builtins).
//!
//! Implements the calls that Clang's "early outlining" lowering targets
//! (paper §1): `__kmpc_fork_call` spawns a real thread team with
//! `std::thread::scope`, `__kmpc_for_static_init` computes static-schedule
//! chunk bounds (types 34 = static, 33 = static-chunked, exactly the libomp
//! constants), `__kmpc_dispatch_init_8`/`__kmpc_dispatch_next_8`/
//! `__kmpc_dispatch_fini_8` serve the non-static schedules (35 = dynamic,
//! 36 = guided, 37 = runtime, resolved through `OMP_SCHEDULE`) from a
//! per-team shared work queue, `__kmpc_barrier` synchronizes the team, and
//! `omp_get_thread_num`/`omp_get_num_threads` expose the team context.

use crate::engine::{ChunkKind, Engine};
use crate::exec::{ExecError, RtVal};
use crate::memory::Memory;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a dispatch (non-static) worksharing loop doles out iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// Fixed-size chunks served first-come-first-served (also what
    /// `schedule(runtime)` resolves to for `OMP_SCHEDULE=static`).
    Static,
    /// `schedule(dynamic[, chunk])`: fixed-size chunks, greedy claiming.
    Dynamic,
    /// `schedule(guided[, chunk])`: exponentially shrinking chunks with
    /// `chunk` as the floor.
    Guided,
}

/// The schedule `schedule(runtime)` resolves to (`OMP_SCHEDULE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeSchedule {
    /// Dispatch policy.
    pub kind: DispatchKind,
    /// Requested chunk; `<= 0` means "pick a balanced default".
    pub chunk: i64,
}

impl RuntimeSchedule {
    /// Parses an `OMP_SCHEDULE` value: `kind[,chunk]`.
    ///
    /// Malformed values (`fifo,2`, `dynamic,abc`, `dynamic,0`, `guided,-4`)
    /// are rejected with a message suitable for a driver warning. Sema
    /// already enforces positive chunks for compile-time `schedule` clauses
    /// (OpenMP 5.1 §11.5.3); the runtime-resolved schedule must hold itself
    /// to the same rule instead of silently absorbing garbage into the
    /// balanced-static default.
    pub fn parse(s: &str) -> Result<RuntimeSchedule, String> {
        let mut parts = s.splitn(2, ',');
        let kind_text = parts.next().unwrap_or("").trim().to_ascii_lowercase();
        let kind = match kind_text.as_str() {
            "static" | "auto" => DispatchKind::Static,
            "dynamic" => DispatchKind::Dynamic,
            "guided" => DispatchKind::Guided,
            "" => return Err("missing schedule kind".to_string()),
            other => return Err(format!("unknown schedule kind '{other}'")),
        };
        let chunk = match parts.next() {
            None => 0,
            Some(c) => {
                let c = c.trim();
                match c.parse::<i64>() {
                    Ok(v) if v >= 1 => v,
                    Ok(v) => return Err(format!("chunk size must be positive, got {v}")),
                    Err(_) => return Err(format!("invalid chunk size '{c}'")),
                }
            }
        };
        Ok(RuntimeSchedule { kind, chunk })
    }

    /// The balanced-static default — what libomp uses when `OMP_SCHEDULE`
    /// is unset.
    pub fn default_static() -> RuntimeSchedule {
        RuntimeSchedule {
            kind: DispatchKind::Static,
            chunk: 0,
        }
    }

    /// Resolves an optional `OMP_SCHEDULE` value to a schedule plus an
    /// optional warning. A malformed value falls back to
    /// [`RuntimeSchedule::default_static`] *explicitly*: the warning message
    /// names the rejected value and the reason so the driver can surface it
    /// as a diagnostic instead of the old silent swallow.
    pub fn resolve(env: Option<&str>) -> (RuntimeSchedule, Option<String>) {
        match env {
            None => (Self::default_static(), None),
            Some(s) => match Self::parse(s) {
                Ok(rs) => (rs, None),
                Err(why) => (
                    Self::default_static(),
                    Some(format!(
                        "ignoring malformed OMP_SCHEDULE value '{s}' ({why}); \
                         falling back to balanced static schedule"
                    )),
                ),
            },
        }
    }
}

/// Per-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Default team size for `parallel` regions without `num_threads`.
    pub num_threads: u32,
    /// Instruction budget shared by all threads (infinite-loop guard).
    pub max_steps: u64,
    /// When true, `parallel` regions execute sequentially (tid 0..n in
    /// order) — useful for deterministic golden tests.
    pub serial: bool,
    /// What `schedule(runtime)` resolves to; `None` means the balanced
    /// static libomp default. `OMP_SCHEDULE` is resolved once at CLI/client
    /// entry — never inside the runtime, where a daemon's tenants would all
    /// see the server's environment.
    pub runtime_schedule: Option<RuntimeSchedule>,
    /// Record every served schedule chunk in the engine's
    /// [`crate::engine::ChunkLog`] (differential-testing aid).
    pub log_chunks: bool,
    /// Cooperative wall-clock deadline, checked at fuel-refill boundaries
    /// (every [`crate::exec`] FUEL_BATCH retired ops per thread). `None`
    /// disables the check. The one-shot CLI uses a process-exit watchdog
    /// instead; the daemon sets this so a runaway job kills only itself.
    pub deadline: Option<Deadline>,
}

/// A per-job wall-clock execution deadline (see [`RuntimeConfig::deadline`]).
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    /// The instant past which execution aborts.
    pub at: Instant,
    /// The originally requested timeout, for the diagnostic message.
    pub ms: u64,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Deadline {
        Deadline {
            at: Instant::now() + std::time::Duration::from_millis(ms),
            ms,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_threads: 4,
            max_steps: 500_000_000,
            serial: false,
            runtime_schedule: None,
            log_chunks: false,
            deadline: None,
        }
    }
}

/// One in-flight dispatch worksharing loop: the shared work queue every
/// team member claims chunks from.
#[derive(Debug)]
pub struct DispatchLoop {
    kind: DispatchKind,
    /// Inclusive upper bound of the iteration space.
    ub: i64,
    /// Minimum (dynamic: exact) chunk size, normalized to >= 1.
    chunk: i64,
    team: i64,
    /// Next unclaimed iteration.
    next: Mutex<i64>,
    /// Team members that have observed exhaustion (queue retires when all
    /// have).
    drained: AtomicU32,
}

impl DispatchLoop {
    fn new(kind: DispatchKind, lb: i64, ub: i64, chunk: i64, team: u32) -> DispatchLoop {
        let team = team.max(1) as i64;
        let trip = (ub - lb + 1).max(0);
        let chunk = if chunk >= 1 {
            chunk
        } else {
            // Balanced default (static without a chunk): ceil(trip/team).
            ((trip + team - 1) / team).max(1)
        };
        DispatchLoop {
            kind,
            ub,
            chunk,
            team,
            next: Mutex::new(lb),
            drained: AtomicU32::new(0),
        }
    }

    /// Claims the next chunk: `Some((lb, ub, is_last))`, or `None` when the
    /// queue is exhausted.
    fn grab(&self) -> Option<(i64, i64, bool)> {
        let mut next = self.next.lock().expect("dispatch lock");
        let remaining = self.ub - *next + 1;
        if remaining <= 0 {
            return None;
        }
        let size = match self.kind {
            DispatchKind::Static | DispatchKind::Dynamic => self.chunk,
            DispatchKind::Guided => {
                // Exponentially shrinking: ceil(remaining / (2 * team)),
                // floored at the requested chunk.
                let per = (remaining + 2 * self.team - 1) / (2 * self.team);
                per.max(self.chunk)
            }
        }
        .min(remaining);
        let lo = *next;
        let hi = lo + size - 1;
        *next = hi + 1;
        Some((lo, hi, hi == self.ub))
    }
}

/// Watchdog poll interval: the deadline within which a barrier deadlock is
/// reported even if a departure notification is somehow missed.
const WATCHDOG_POLL: Duration = Duration::from_millis(100);

/// A team barrier with deadlock detection. A correct team releases the
/// barrier when all `size` members arrive; if any member *departs* first
/// (finishes the parallel region, panics, or is deliberately lost by fault
/// injection), that release can never happen. The watchdog notices —
/// eagerly on the departure notification, and within [`WATCHDOG_POLL`] as a
/// backstop — poisons the barrier, and every waiter returns
/// [`ExecError::BarrierDeadlock`] naming the lost and stuck threads instead
/// of hanging the process.
#[derive(Debug)]
struct WatchdogBarrier {
    size: u32,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct BarrierState {
    /// gtids waiting at the current generation.
    arrived: Vec<u32>,
    /// gtids that left the parallel region for good.
    departed: Vec<u32>,
    generation: u64,
    /// The watchdog diagnostic, once deadlock is detected. Sticky: every
    /// subsequent wait fails immediately.
    poisoned: Option<String>,
}

fn gtid_list(gtids: &[u32]) -> String {
    let mut v: Vec<u32> = gtids.to_vec();
    v.sort_unstable();
    v.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
}

impl WatchdogBarrier {
    fn new(size: u32) -> WatchdogBarrier {
        WatchdogBarrier {
            size,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
        }
    }

    /// True when the barrier can never release: someone departed, someone
    /// waits, and nobody is left running to change either fact.
    fn is_deadlocked(st: &BarrierState, size: u32) -> bool {
        !st.departed.is_empty()
            && !st.arrived.is_empty()
            && st.arrived.len() + st.departed.len() >= size as usize
    }

    fn poison(st: &mut BarrierState, size: u32) -> String {
        let msg = format!(
            "watchdog: barrier deadlock in team of {size}: thread(s) {} exited without \
             reaching '__kmpc_barrier' while thread(s) {} wait at it",
            gtid_list(&st.departed),
            gtid_list(&st.arrived),
        );
        st.poisoned = Some(msg.clone());
        msg
    }

    fn wait(&self, gtid: u32) -> Result<(), ExecError> {
        let mut st = self.state.lock().unwrap();
        if let Some(msg) = &st.poisoned {
            return Err(ExecError::BarrierDeadlock(msg.clone()));
        }
        st.arrived.push(gtid);
        if st.departed.is_empty() && st.arrived.len() as u32 == self.size {
            st.arrived.clear();
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        if Self::is_deadlocked(&st, self.size) {
            let msg = Self::poison(&mut st, self.size);
            self.cv.notify_all();
            return Err(ExecError::BarrierDeadlock(msg));
        }
        let gen = st.generation;
        loop {
            let (guard, _) = self.cv.wait_timeout(st, WATCHDOG_POLL).unwrap();
            st = guard;
            if let Some(msg) = &st.poisoned {
                return Err(ExecError::BarrierDeadlock(msg.clone()));
            }
            if st.generation != gen {
                return Ok(());
            }
            if Self::is_deadlocked(&st, self.size) {
                let msg = Self::poison(&mut st, self.size);
                self.cv.notify_all();
                return Err(ExecError::BarrierDeadlock(msg));
            }
        }
    }

    /// Records that `gtid` left the parallel region; wakes waiters so the
    /// deadlock check re-runs immediately.
    fn depart(&self, gtid: u32) {
        let mut st = self.state.lock().unwrap();
        st.departed.push(gtid);
        if st.poisoned.is_none() && Self::is_deadlocked(&st, self.size) {
            Self::poison(&mut st, self.size);
        }
        self.cv.notify_all();
    }
}

/// State shared by all members of one thread team: the barrier and the
/// dispatch queues of in-flight worksharing loops, keyed by each thread's
/// worksharing-construct sequence number (so `nowait` loops can overlap).
#[derive(Debug)]
pub struct TeamState {
    size: u32,
    /// `None` when the team executes sequentially (team of 1, or
    /// `RuntimeConfig::serial`): a real barrier would self-deadlock and
    /// completion order already synchronizes.
    barrier: Option<WatchdogBarrier>,
    queues: Mutex<HashMap<u64, Arc<DispatchLoop>>>,
}

impl TeamState {
    /// Creates team state; `concurrent` teams get a real barrier.
    pub fn new(size: u32, concurrent: bool) -> Arc<TeamState> {
        Arc::new(TeamState {
            size,
            barrier: if concurrent && size > 1 {
                Some(WatchdogBarrier::new(size))
            } else {
                None
            },
            queues: Mutex::new(HashMap::new()),
        })
    }

    /// Blocks until every team member arrives (no-op for sequential teams).
    /// Fails with [`ExecError::BarrierDeadlock`] when the watchdog proves a
    /// member can never arrive.
    pub fn barrier_wait(&self, gtid: u32) -> Result<(), ExecError> {
        match &self.barrier {
            Some(b) => b.wait(gtid),
            None => Ok(()),
        }
    }

    /// Marks `gtid` as gone for good (region end, panic, or lost by fault
    /// injection), feeding the barrier watchdog.
    fn depart(&self, gtid: u32) {
        if let Some(b) = &self.barrier {
            b.depart(gtid);
        }
    }
}

/// Registers a team member's departure when dropped — including on panic
/// unwind, so a crashed thread still feeds the watchdog.
struct DepartureGuard<'a> {
    team: &'a TeamState,
    gtid: u32,
}

impl Drop for DepartureGuard<'_> {
    fn drop(&mut self) {
        self.team.depart(self.gtid);
    }
}

/// Per-thread execution context (team membership).
#[derive(Debug)]
pub struct ThreadCtx {
    /// This thread's id within its team.
    pub gtid: u32,
    /// Team size.
    pub team_size: u32,
    /// `num_threads(n)` request for the *next* fork
    /// (`__kmpc_push_num_threads`).
    pub pending_num_threads: Cell<Option<u32>>,
    /// Shared team state (barrier + dispatch queues).
    pub team: Arc<TeamState>,
    /// This thread's worksharing-construct sequence number: identifies
    /// which shared queue a `dispatch_init` joins.
    dispatch_seq: Cell<u64>,
    /// The dispatch loop this thread currently draws from, with its queue
    /// key (released at `dispatch_fini`).
    cur_dispatch: RefCell<Option<(u64, Arc<DispatchLoop>)>>,
}

impl ThreadCtx {
    /// The initial (serial-region) context.
    pub fn initial() -> ThreadCtx {
        ThreadCtx::team_member(0, 1, TeamState::new(1, false))
    }

    /// A member of a forked team.
    pub fn team_member(gtid: u32, team_size: u32, team: Arc<TeamState>) -> ThreadCtx {
        ThreadCtx {
            gtid,
            team_size,
            pending_num_threads: Cell::new(None),
            team,
            dispatch_seq: Cell::new(0),
            cur_dispatch: RefCell::new(None),
        }
    }
}

/// libomp schedule-type constants (subset).
const SCHED_STATIC_CHUNKED: i64 = 33;
const SCHED_STATIC: i64 = 34;
const SCHED_DYNAMIC_CHUNKED: i64 = 35;
const SCHED_GUIDED_CHUNKED: i64 = 36;
const SCHED_RUNTIME: i64 = 37;

/// Dispatches a call to a runtime function. Returns
/// `Err(UnknownFunction)` for unrecognized names.
///
/// Generic over [`Engine`]: the interpreter and the bytecode VM share this
/// single implementation of the OpenMP protocol, so schedule semantics
/// cannot drift between backends.
pub fn dispatch<E: Engine>(
    e: &E,
    name: &str,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    match name {
        "__kmpc_global_thread_num" | "omp_get_thread_num" => Ok(Some(RtVal::I(ctx.gtid as i64))),
        "omp_get_num_threads" => Ok(Some(RtVal::I(ctx.team_size as i64))),
        "__kmpc_push_num_threads" => {
            let n = args.first().map_or(0, |v| v.as_i()).max(1) as u32;
            ctx.pending_num_threads.set(Some(n));
            Ok(None)
        }
        "__kmpc_fork_call" => fork_call(e, args, ctx),
        "__kmpc_for_static_init" => for_static_init(e, args, ctx),
        "__kmpc_for_static_fini" => Ok(None),
        "__kmpc_dispatch_init_8" => dispatch_init(e, args, ctx),
        "__kmpc_dispatch_next_8" => dispatch_next(e, args, ctx),
        "__kmpc_dispatch_fini_8" => {
            ctx.cur_dispatch.borrow_mut().take();
            Ok(None)
        }
        "__kmpc_barrier" => {
            if omplt_trace::active() {
                omplt_trace::count(&format!("{}.barrier.waits", e.trace_prefix()), 1);
            }
            if omplt_fault::fire("runtime.lost-thread") {
                // The injected "lost" member unwinds out of the region
                // instead of arriving; its departure guard feeds the
                // watchdog, which frees any teammates stuck here.
                return Err(ExecError::LostThread(ctx.gtid));
            }
            ctx.team.barrier_wait(ctx.gtid)?;
            Ok(None)
        }
        "__omplt_task_created" => {
            e.tasks().fetch_add(1, Ordering::Relaxed);
            Ok(None)
        }
        "__omplt_atomic_add_i64" => {
            let p = args[0].as_p();
            let v = args[1].as_i();
            e.mem()
                .fetch_add_i64(p, v)
                .map_err(|err| ExecError::Mem(err.what))?;
            Ok(None)
        }
        "print_i64" => {
            let v = args.first().map_or(0, |v| v.as_i());
            e.out()
                .lock()
                .expect("out lock")
                .push_str(&format!("{v}\n"));
            Ok(None)
        }
        "print_f64" => {
            let v = args.first().map_or(0.0, |v| v.as_f());
            let s = if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
                format!("{v:.6}\n")
            } else {
                format!("{v}\n")
            };
            e.out().lock().expect("out lock").push_str(&s);
            Ok(None)
        }
        "print_char" => {
            let v = args.first().map_or(0, |v| v.as_i());
            e.out()
                .lock()
                .expect("out lock")
                .push(char::from_u32((v as u32) & 0x7F).unwrap_or('?'));
            Ok(None)
        }
        "omp_get_max_threads" => Ok(Some(RtVal::I(e.cfg().num_threads as i64))),
        other => Err(ExecError::UnknownFunction(other.to_string())),
    }
}

/// `__kmpc_fork_call(fnptr, nargs, cap0, cap1, …)` — spawns the team.
fn fork_call<E: Engine>(
    e: &E,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    let fnptr = args
        .first()
        .ok_or_else(|| ExecError::Malformed("fork_call without function".to_string()))?
        .as_p();
    let sym = Memory::decode_fn_ptr(fnptr)
        .ok_or_else(|| ExecError::Malformed("fork_call target is not a function".to_string()))?;
    let name = e.module().symbol_name(omplt_ir::SymbolId(sym)).to_string();
    let caps: Vec<RtVal> = args[2..].to_vec();
    let team = ctx
        .pending_num_threads
        .take()
        .unwrap_or(e.cfg().num_threads)
        .max(1);

    if team == 1 || e.cfg().serial {
        let state = TeamState::new(team, false);
        for tid in 0..team {
            let child = ThreadCtx::team_member(tid, team, Arc::clone(&state));
            let mut a = vec![RtVal::I(tid as i64), RtVal::I(tid as i64)];
            a.extend(caps.iter().copied());
            match e.call_by_name(&name, a, &child) {
                Ok(_) => {}
                // Sequential teams have no waiters to free, but the lost
                // member must still surface as a watchdog diagnostic, not
                // vanish silently.
                Err(ExecError::LostThread(g)) => return Err(lost_without_waiters(g, team)),
                Err(err) => return Err(err),
            }
        }
        return Ok(None);
    }

    // Real thread team: an `Engine` is Sync by contract (module is
    // immutable, memory is atomic, output is mutexed), so scoped threads
    // can share it.
    let state = TeamState::new(team, true);
    let mut first_err: Option<ExecError> = None;
    let mut lost: Option<u32> = None;
    // Team members inherit the forking thread's trace session (if any), so
    // runtime counters and spans from worker threads land in the same trace.
    let trace = omplt_trace::handle();
    // They also inherit the forking job's fault scope: injected runtime
    // faults (`runtime.lost-thread`) must trigger on this job's team members
    // and never on a concurrent job sharing the process.
    let fault = omplt_fault::handle();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..team)
            .map(|tid| {
                let name = name.clone();
                let caps = caps.clone();
                let state = Arc::clone(&state);
                let trace = trace.clone();
                let fault = fault.clone();
                s.spawn(move || {
                    let _trace = trace.as_ref().map(omplt_trace::Handle::attach);
                    let _fault = fault.attach();
                    // Feeds the watchdog on every exit path out of the
                    // region, panic unwind included.
                    let _departure = DepartureGuard {
                        team: &state,
                        gtid: tid,
                    };
                    let child = ThreadCtx::team_member(tid, team, Arc::clone(&state));
                    let mut a = vec![RtVal::I(tid as i64), RtVal::I(tid as i64)];
                    a.extend(caps);
                    e.call_by_name(&name, a, &child).map(|_| ())
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(ExecError::LostThread(g))) => lost = Some(g),
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    first_err.get_or_insert(ExecError::ThreadPanic);
                }
            }
        }
    });
    match (first_err, lost) {
        // Waiters report the richer poisoned-barrier diagnostic when the
        // watchdog caught them mid-wait.
        (Some(e), _) => Err(e),
        // The member was lost but nobody happened to be waiting (e.g. the
        // region had no further barrier): still a watchdog finding.
        (None, Some(g)) => Err(lost_without_waiters(g, team)),
        (None, None) => Ok(None),
    }
}

/// The watchdog diagnostic for a lost team member that stranded no waiters.
fn lost_without_waiters(gtid: u32, team: u32) -> ExecError {
    ExecError::BarrierDeadlock(format!(
        "watchdog: thread {gtid} of team of {team} exited without reaching '__kmpc_barrier'"
    ))
}

/// `__kmpc_for_static_init(gtid, sched, plast, plb, pub, pstride, incr,
/// chunk)` with i64 bounds — the static worksharing schedule.
fn for_static_init<E: Engine>(
    e: &E,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    if args.len() < 8 {
        return Err(ExecError::Malformed(
            "for_static_init needs 8 arguments".to_string(),
        ));
    }
    let sched = args[1].as_i();
    let plast = args[2].as_p();
    let plb = args[3].as_p();
    let pub_ = args[4].as_p();
    let pstride = args[5].as_p();
    let chunk = args[7].as_i().max(1);

    let mem = |err: crate::memory::MemError| ExecError::Mem(err.what);
    let lb = e.mem().load(plb, 8).map_err(mem)? as i64;
    let ub = e.mem().load(pub_, 8).map_err(mem)? as i64;
    let tid = ctx.gtid as i128;
    let team = ctx.team_size as i128;
    // All bound arithmetic runs in i128: near `i64::MAX`, `my_lb + chunk - 1`
    // overflows i64 and wraps to a huge negative upper bound (or, on the
    // unchunked path, loses the thread's final iterations through the
    // post-wrap `.min(ub)`). The 8-byte `__kmpc` protocol itself cannot
    // express values outside i64, so results saturate on the way out.
    let lb128 = lb as i128;
    let ub128 = ub as i128;
    let trip = ub128 - lb128 + 1; // exact; may be ≤ 0 for empty loops
    let sat = |v: i128| -> i64 { v.clamp(i64::MIN as i128, i64::MAX as i128) as i64 };
    // Encodes an empty per-thread range as `my_ub < my_lb` without wrapping:
    // an anchor of `i64::MIN` must not produce `my_ub == i64::MAX`.
    let empty = |anchor: i64| -> (i64, i64) {
        if anchor > i64::MIN {
            (anchor, anchor - 1)
        } else {
            (anchor + 1, anchor)
        }
    };

    let (my_lb, my_ub, stride, is_last) = if trip <= 0 {
        let (l, u) = empty(lb);
        (l, u, 1, false)
    } else {
        match sched {
            SCHED_STATIC_CHUNKED => {
                let chunk128 = chunk as i128;
                let my_lb = lb128 + tid * chunk128;
                let stride = sat(chunk128 * team);
                // last chunk owner: thread holding the final iteration's chunk
                let last_owner = ((trip - 1) / chunk128) % team;
                if my_lb > ub128 {
                    let (l, u) = empty(sat(my_lb));
                    (l, u, stride, false)
                } else {
                    // Clamp against the loop bound. Only a thread's *final*
                    // chunk can be partial, so clamping the first chunk here
                    // never interferes with the generated chunk loop's
                    // per-round re-clamp (`ub = min(ub, last)`).
                    let my_ub = (my_lb + chunk128 - 1).min(ub128);
                    (sat(my_lb), sat(my_ub), stride, tid == last_owner)
                }
            }
            _ => {
                // SCHED_STATIC (34): one contiguous span per thread,
                // ceil-divided, exactly like libomp's static_balanced-greedy.
                let per = (trip + team - 1) / team;
                let my_lb = lb128 + tid * per;
                if my_lb > ub128 {
                    let (l, u) = empty(sat(my_lb));
                    (l, u, sat(trip), false)
                } else {
                    let my_ub = (my_lb + per - 1).min(ub128);
                    (sat(my_lb), sat(my_ub), sat(trip), my_ub == ub128)
                }
            }
        }
    };

    if omplt_trace::active() {
        omplt_trace::count(
            &format!("{}.chunks.static.t{}", e.trace_prefix(), ctx.gtid),
            1,
        );
    }
    if let Some(log) = e.chunk_log() {
        if my_lb <= my_ub {
            log.record(ChunkKind::StaticInit, my_lb, my_ub);
        }
    }
    e.mem().store(plb, 8, my_lb as u64).map_err(mem)?;
    e.mem().store(pub_, 8, my_ub as u64).map_err(mem)?;
    e.mem().store(pstride, 8, stride as u64).map_err(mem)?;
    e.mem().store(plast, 4, is_last as u64).map_err(mem)?;
    Ok(None)
}

/// `__kmpc_dispatch_init_8(gtid, sched, lb, ub, st, chunk)` — registers a
/// dispatch (dynamic/guided/runtime) worksharing loop with the team. The
/// first team member to arrive creates the shared queue; the rest join it.
fn dispatch_init<E: Engine>(
    e: &E,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    if args.len() < 6 {
        return Err(ExecError::Malformed(
            "dispatch_init needs 6 arguments".to_string(),
        ));
    }
    let sched = args[1].as_i();
    let lb = args[2].as_i();
    let ub = args[3].as_i();
    let chunk = args[5].as_i();

    let (kind, chunk) = match sched {
        SCHED_STATIC => (DispatchKind::Static, 0),
        SCHED_STATIC_CHUNKED => (DispatchKind::Static, chunk),
        SCHED_DYNAMIC_CHUNKED => (DispatchKind::Dynamic, chunk),
        SCHED_GUIDED_CHUNKED => (DispatchKind::Guided, chunk),
        SCHED_RUNTIME => {
            // The runtime never consults the process environment: in a
            // multi-tenant daemon every job would otherwise see the server's
            // env. `OMP_SCHEDULE` is resolved exactly once at CLI/client
            // entry and threaded through the config; an unset config means
            // the libomp default.
            let rs = e
                .cfg()
                .runtime_schedule
                .unwrap_or_else(RuntimeSchedule::default_static);
            (rs.kind, rs.chunk)
        }
        other => {
            return Err(ExecError::Malformed(format!(
                "unknown dispatch schedule type {other}"
            )))
        }
    };

    // All team members pass identical bounds (OpenMP requires every thread
    // to encounter the same worksharing constructs in the same order), so
    // the per-thread sequence number identifies the shared queue.
    let seq = ctx.dispatch_seq.get();
    ctx.dispatch_seq.set(seq + 1);
    let dl = {
        let mut queues = ctx.team.queues.lock().expect("team queues");
        Arc::clone(
            queues
                .entry(seq)
                .or_insert_with(|| Arc::new(DispatchLoop::new(kind, lb, ub, chunk, ctx.team.size))),
        )
    };
    *ctx.cur_dispatch.borrow_mut() = Some((seq, dl));
    Ok(None)
}

/// `__kmpc_dispatch_next_8(gtid, plast, plb, pub, pstride)` — claims the
/// next chunk from the shared queue. Returns 1 with `[*plb, *pub]` filled
/// in, or 0 when the iteration space is exhausted.
fn dispatch_next<E: Engine>(
    e: &E,
    args: Vec<RtVal>,
    ctx: &ThreadCtx,
) -> Result<Option<RtVal>, ExecError> {
    if args.len() < 5 {
        return Err(ExecError::Malformed(
            "dispatch_next needs 5 arguments".to_string(),
        ));
    }
    let plast = args[1].as_p();
    let plb = args[2].as_p();
    let pub_ = args[3].as_p();
    let pstride = args[4].as_p();

    let cur = ctx.cur_dispatch.borrow();
    let (seq, dl) = cur
        .as_ref()
        .ok_or_else(|| ExecError::Malformed("dispatch_next without dispatch_init".to_string()))?;
    match dl.grab() {
        Some((lo, hi, last)) => {
            if omplt_trace::active() {
                let kind = match dl.kind {
                    DispatchKind::Static => "static",
                    DispatchKind::Dynamic => "dynamic",
                    DispatchKind::Guided => "guided",
                };
                omplt_trace::count(
                    &format!("{}.chunks.{kind}.t{}", e.trace_prefix(), ctx.gtid),
                    1,
                );
            }
            if let Some(log) = e.chunk_log() {
                let kind = match dl.kind {
                    DispatchKind::Static => ChunkKind::Static,
                    DispatchKind::Dynamic => ChunkKind::Dynamic,
                    DispatchKind::Guided => ChunkKind::Guided,
                };
                log.record(kind, lo, hi);
            }
            let mem = |err: crate::memory::MemError| ExecError::Mem(err.what);
            e.mem().store(plb, 8, lo as u64).map_err(mem)?;
            e.mem().store(pub_, 8, hi as u64).map_err(mem)?;
            e.mem().store(pstride, 8, 1).map_err(mem)?;
            e.mem().store(plast, 4, last as u64).map_err(mem)?;
            Ok(Some(RtVal::I(1)))
        }
        None => {
            // Retire the queue once every member has observed exhaustion
            // (each observes it exactly once: the dispatch loop exits on 0).
            if dl.drained.fetch_add(1, Ordering::AcqRel) + 1 == ctx.team.size {
                ctx.team.queues.lock().expect("team queues").remove(seq);
            }
            Ok(Some(RtVal::I(0)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Interpreter;
    use omplt_ir::{Function, IrBuilder, IrType, Module, Value};
    use std::collections::HashSet;

    /// A full team releases the watchdog barrier normally, repeatedly.
    #[test]
    fn watchdog_barrier_releases_full_team() {
        let b = Arc::new(WatchdogBarrier::new(4));
        std::thread::scope(|s| {
            for gtid in 0..4u32 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..50 {
                        b.wait(gtid).expect("barrier releases");
                    }
                });
            }
        });
    }

    /// A departed member poisons the barrier: every waiter gets a
    /// BarrierDeadlock naming both sides, promptly, instead of hanging.
    #[test]
    fn watchdog_barrier_detects_departed_member() {
        for team in [2u32, 4, 8] {
            let b = Arc::new(WatchdogBarrier::new(team));
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for gtid in 0..team - 1 {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let err = b.wait(gtid).expect_err("deadlock detected");
                        let msg = err.to_string();
                        assert!(msg.contains("watchdog"), "{msg}");
                        assert!(msg.contains(&format!("thread(s) {}", team - 1)), "{msg}");
                    });
                }
                // The highest gtid never arrives.
                b.depart(team - 1);
            });
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog must fire well within the deadline (team of {team})"
            );
        }
    }

    /// All members departing without waiting (a region with no barrier) is
    /// not a deadlock.
    #[test]
    fn watchdog_barrier_ignores_clean_departures() {
        let b = WatchdogBarrier::new(4);
        for gtid in 0..4 {
            b.depart(gtid);
        }
        assert!(b.state.lock().unwrap().poisoned.is_none());
    }

    /// Builds a module whose outlined function marks `covered[tid-span]` and
    /// forks a team of `team` threads.
    fn fork_module(team: u32) -> Module {
        let mut m = Module::new();
        let outlined_sym = m.intern("outlined");
        let fork = m.intern("__kmpc_fork_call");
        let push = m.intern("__kmpc_push_num_threads");

        // outlined(gtid, btid, ptr flags): flags[gtid] = gtid + 1
        let mut o = Function::new(
            "outlined",
            vec![IrType::I32, IrType::I32, IrType::Ptr],
            IrType::Void,
        );
        {
            let mut b = IrBuilder::new(&mut o);
            let gtid64 = b.cast(omplt_ir::CastOp::SExt, Value::Arg(0), IrType::I64);
            let slot = b.gep(Value::Arg(2), gtid64, 8);
            let v = b.add(gtid64, Value::i64(1));
            b.store(v, slot);
            b.ret(None);
        }
        m.add_function(o);

        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let flags = b.alloca(IrType::I64, 16, "flags");
            b.call(push, vec![Value::i32(team as i32)], IrType::Void);
            b.call(
                fork,
                vec![
                    Value::FuncRef(omplt_ir::SymbolId(outlined_sym.0)),
                    Value::i32(1),
                    flags,
                ],
                IrType::Void,
            );
            // sum the flags: sum of (tid+1) over the team
            let mut total = Value::i64(0);
            for i in 0..team as i64 {
                let slot = b.gep(flags, Value::i64(i), 8);
                let v = b.load(IrType::I64, slot);
                total = b.add(total, v);
            }
            let t32 = b.cast(omplt_ir::CastOp::Trunc, total, IrType::I32);
            b.ret(Some(t32));
        }
        m.add_function(f);
        m
    }

    #[test]
    fn fork_call_runs_every_team_member() {
        for team in [1u32, 2, 4, 8] {
            let m = fork_module(team);
            let it = Interpreter::new(&m, RuntimeConfig::default());
            let r = it.run_main().expect("run");
            let expect: i64 = (1..=team as i64).sum();
            assert_eq!(r.exit_code, expect, "team of {team}");
        }
    }

    #[test]
    fn fork_call_serial_mode_matches_parallel() {
        let m = fork_module(4);
        let serial = Interpreter::new(
            &m,
            RuntimeConfig {
                serial: true,
                ..Default::default()
            },
        )
        .run_main()
        .unwrap();
        let parallel = Interpreter::new(&m, RuntimeConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(serial.exit_code, parallel.exit_code);
    }

    /// Drives `for_static_init` directly and checks the partition laws.
    fn partition(sched: i64, trip: i64, team: u32, chunk: i64) -> Vec<Vec<i64>> {
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let mut out = Vec::new();
        let state = TeamState::new(team, false);
        for tid in 0..team {
            let ctx = ThreadCtx::team_member(tid, team, Arc::clone(&state));
            let plast = it.mem.alloc(4);
            let plb = it.mem.alloc(8);
            let pub_ = it.mem.alloc(8);
            let pstride = it.mem.alloc(8);
            it.mem.store(plb, 8, 0).unwrap();
            it.mem.store(pub_, 8, (trip - 1) as u64).unwrap();
            it.mem.store(pstride, 8, 1).unwrap();
            dispatch(
                &it,
                "__kmpc_for_static_init",
                vec![
                    RtVal::I(tid as i64),
                    RtVal::I(sched),
                    RtVal::P(plast),
                    RtVal::P(plb),
                    RtVal::P(pub_),
                    RtVal::P(pstride),
                    RtVal::I(1),
                    RtVal::I(chunk),
                ],
                &ctx,
            )
            .unwrap();
            let lb = it.mem.load(plb, 8).unwrap() as i64;
            let ub = it.mem.load(pub_, 8).unwrap() as i64;
            let stride = it.mem.load(pstride, 8).unwrap() as i64;
            // Expand this thread's iterations (respecting chunking).
            let mut iters = Vec::new();
            if sched == SCHED_STATIC_CHUNKED {
                let mut start = lb;
                while start < trip {
                    for i in start..=(start + chunk - 1).min(trip - 1) {
                        iters.push(i);
                    }
                    start += stride;
                }
            } else {
                for i in lb..=ub.min(trip - 1) {
                    iters.push(i);
                }
            }
            out.push(iters);
        }
        out
    }

    fn assert_partition_laws(parts: &[Vec<i64>], trip: i64) {
        let mut seen = HashSet::new();
        for p in parts {
            for &i in p {
                assert!(i >= 0 && i < trip, "iteration {i} out of range");
                assert!(seen.insert(i), "iteration {i} assigned twice");
            }
        }
        assert_eq!(seen.len() as i64, trip, "not all iterations covered");
    }

    #[test]
    fn static_partition_is_exhaustive_and_disjoint() {
        for trip in [0i64, 1, 7, 16, 100] {
            for team in [1u32, 2, 3, 4, 7] {
                let parts = partition(SCHED_STATIC, trip, team, 0);
                assert_partition_laws(&parts, trip);
            }
        }
    }

    #[test]
    fn chunked_partition_is_exhaustive_and_disjoint() {
        for trip in [0i64, 1, 7, 16, 100] {
            for team in [1u32, 2, 3, 4] {
                for chunk in [1i64, 2, 5] {
                    let parts = partition(SCHED_STATIC_CHUNKED, trip, team, chunk);
                    assert_partition_laws(&parts, trip);
                }
            }
        }
    }

    /// Drives `for_static_init` with raw (possibly extreme) bounds; returns
    /// each thread's stored `(my_lb, my_ub, stride)`.
    fn static_init_raw(
        sched: i64,
        lb: i64,
        ub: i64,
        team: u32,
        chunk: i64,
    ) -> Vec<(i64, i64, i64)> {
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let state = TeamState::new(team, false);
        let mut out = Vec::new();
        for tid in 0..team {
            let ctx = ThreadCtx::team_member(tid, team, Arc::clone(&state));
            let plast = it.mem.alloc(4);
            let plb = it.mem.alloc(8);
            let pub_ = it.mem.alloc(8);
            let pstride = it.mem.alloc(8);
            it.mem.store(plb, 8, lb as u64).unwrap();
            it.mem.store(pub_, 8, ub as u64).unwrap();
            it.mem.store(pstride, 8, 1).unwrap();
            dispatch(
                &it,
                "__kmpc_for_static_init",
                vec![
                    RtVal::I(tid as i64),
                    RtVal::I(sched),
                    RtVal::P(plast),
                    RtVal::P(plb),
                    RtVal::P(pub_),
                    RtVal::P(pstride),
                    RtVal::I(1),
                    RtVal::I(chunk),
                ],
                &ctx,
            )
            .unwrap();
            out.push((
                it.mem.load(plb, 8).unwrap() as i64,
                it.mem.load(pub_, 8).unwrap() as i64,
                it.mem.load(pstride, 8).unwrap() as i64,
            ));
        }
        out
    }

    /// Regression (adversarial bounds): with the span ending one below
    /// `i64::MAX`, the last thread's `my_lb + per - 1` used to wrap past
    /// `i64::MAX`, and the post-wrap `.min(ub)` silently *dropped* that
    /// thread's iterations.
    #[test]
    fn static_init_near_i64_max_does_not_wrap() {
        let ub = i64::MAX - 1;
        let lb = ub - 9; // 10 iterations, team of 4 → per = 3
        let parts = static_init_raw(SCHED_STATIC, lb, ub, 4, 0);
        let mut spans = Vec::new();
        for (tid, &(my_lb, my_ub, _)) in parts.iter().enumerate() {
            if my_lb <= my_ub {
                assert!(
                    my_lb >= lb && my_ub <= ub,
                    "thread {tid} range [{my_lb}, {my_ub}] escapes [{lb}, {ub}]"
                );
                spans.push((my_lb, my_ub));
            }
        }
        spans.sort_unstable();
        let mut next = lb;
        for (l, u) in spans {
            assert_eq!(l, next, "gap or overlap at {next}");
            next = u + 1;
        }
        assert_eq!(next, ub + 1, "iterations near i64::MAX lost");
    }

    /// Regression (adversarial bounds, chunked): the final partial chunk's
    /// `my_lb + chunk - 1` used to wrap to a huge negative upper bound
    /// instead of clamping to `ub`.
    #[test]
    fn static_chunked_near_i64_max_clamps_upper_bound() {
        let ub = i64::MAX - 1;
        let lb = ub - 9; // 10 iterations, chunk 3, team 4
        let parts = static_init_raw(SCHED_STATIC_CHUNKED, lb, ub, 4, 3);
        for (tid, &(my_lb, my_ub, stride)) in parts.iter().enumerate() {
            assert!(stride > 0, "thread {tid} stride {stride}");
            if my_lb <= my_ub {
                assert!(
                    my_lb >= lb && my_ub <= ub,
                    "thread {tid} chunk [{my_lb}, {my_ub}] escapes [{lb}, {ub}]"
                );
            }
        }
        // Thread 3 owns exactly the final, partial chunk [lb+9, ub].
        assert_eq!(
            (parts[3].0, parts[3].1),
            (lb + 9, ub),
            "final partial chunk must clamp to ub"
        );
    }

    /// Empty loops keep the `my_ub < my_lb` encoding under extreme anchors
    /// (no wrap to `i64::MAX`).
    #[test]
    fn static_init_empty_trip_is_empty_for_every_thread() {
        for sched in [SCHED_STATIC, SCHED_STATIC_CHUNKED] {
            for (lb, ub) in [(5i64, 4i64), (i64::MAX, i64::MIN), (0, -1)] {
                for &(my_lb, my_ub, _) in &static_init_raw(sched, lb, ub, 4, 2) {
                    assert!(
                        my_ub < my_lb,
                        "sched {sched} [{lb}, {ub}] produced non-empty [{my_lb}, {my_ub}]"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_round_robins() {
        // 8 iterations, 2 threads, chunk 2: t0 gets {0,1,4,5}, t1 {2,3,6,7}
        let parts = partition(SCHED_STATIC_CHUNKED, 8, 2, 2);
        assert_eq!(parts[0], vec![0, 1, 4, 5]);
        assert_eq!(parts[1], vec![2, 3, 6, 7]);
    }

    #[test]
    fn task_counter_accumulates() {
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let ctx = ThreadCtx::initial();
        for _ in 0..5 {
            dispatch(&it, "__omplt_task_created", vec![], &ctx).unwrap();
        }
        assert_eq!(it.tasks.load(Ordering::Relaxed), 5);
    }

    /// Drives `__kmpc_dispatch_init_8`/`next_8`/`fini_8` from `team` real
    /// threads sharing one `TeamState`; returns each thread's claimed
    /// chunks as `(lb, ub)` pairs.
    fn dispatch_drive(
        cfg: RuntimeConfig,
        sched: i64,
        trip: i64,
        team: u32,
        chunk: i64,
    ) -> Vec<Vec<(i64, i64)>> {
        let m = Module::new();
        let it = Interpreter::new(&m, cfg);
        let state = TeamState::new(team, true);
        let mut out: Vec<Vec<(i64, i64)>> = (0..team).map(|_| Vec::new()).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..team)
                .map(|tid| {
                    let it = &it;
                    let state = Arc::clone(&state);
                    s.spawn(move || {
                        let ctx = ThreadCtx::team_member(tid, team, state);
                        let plast = it.mem.alloc(4);
                        let plb = it.mem.alloc(8);
                        let pub_ = it.mem.alloc(8);
                        let pstride = it.mem.alloc(8);
                        dispatch(
                            it,
                            "__kmpc_dispatch_init_8",
                            vec![
                                RtVal::I(tid as i64),
                                RtVal::I(sched),
                                RtVal::I(0),
                                RtVal::I(trip - 1),
                                RtVal::I(1),
                                RtVal::I(chunk),
                            ],
                            &ctx,
                        )
                        .unwrap();
                        let mut chunks = Vec::new();
                        loop {
                            let got = dispatch(
                                it,
                                "__kmpc_dispatch_next_8",
                                vec![
                                    RtVal::I(tid as i64),
                                    RtVal::P(plast),
                                    RtVal::P(plb),
                                    RtVal::P(pub_),
                                    RtVal::P(pstride),
                                ],
                                &ctx,
                            )
                            .unwrap()
                            .unwrap()
                            .as_i();
                            if got == 0 {
                                break;
                            }
                            let lo = it.mem.load(plb, 8).unwrap() as i64;
                            let hi = it.mem.load(pub_, 8).unwrap() as i64;
                            assert_eq!(it.mem.load(pstride, 8).unwrap() as i64, 1);
                            chunks.push((lo, hi));
                        }
                        dispatch(
                            it,
                            "__kmpc_dispatch_fini_8",
                            vec![RtVal::I(tid as i64)],
                            &ctx,
                        )
                        .unwrap();
                        chunks
                    })
                })
                .collect();
            for (tid, h) in handles.into_iter().enumerate() {
                out[tid] = h.join().expect("dispatch thread");
            }
        });
        out
    }

    fn assert_dispatch_laws(parts: &[Vec<(i64, i64)>], trip: i64, max_chunk: Option<i64>) {
        let mut seen = HashSet::new();
        for p in parts {
            for &(lo, hi) in p {
                assert!(lo <= hi, "empty chunk [{lo}, {hi}] served");
                if let Some(mc) = max_chunk {
                    assert!(hi - lo < mc, "chunk [{lo}, {hi}] exceeds size {mc}");
                }
                for i in lo..=hi {
                    assert!(i >= 0 && i < trip, "iteration {i} out of range");
                    assert!(seen.insert(i), "iteration {i} assigned twice");
                }
            }
        }
        assert_eq!(seen.len() as i64, trip, "not all iterations covered");
    }

    #[test]
    fn dynamic_dispatch_covers_every_iteration_exactly_once() {
        // Adversarial trip counts around the chunk size: 0, 1, chunk-1,
        // chunk, chunk+1, and larger non-divisible spans.
        for chunk in [1i64, 2, 3, 5] {
            for trip in [0i64, 1, chunk - 1, chunk, chunk + 1, 4 * chunk + 1, 97] {
                if trip < 0 {
                    continue;
                }
                for team in [1u32, 2, 4, 7] {
                    let parts = dispatch_drive(
                        RuntimeConfig::default(),
                        SCHED_DYNAMIC_CHUNKED,
                        trip,
                        team,
                        chunk,
                    );
                    assert_dispatch_laws(&parts, trip, Some(chunk));
                }
            }
        }
    }

    #[test]
    fn guided_dispatch_covers_every_iteration_exactly_once() {
        for chunk in [1i64, 3] {
            for trip in [0i64, 1, chunk - 1, chunk, chunk + 1, 50, 97] {
                if trip < 0 {
                    continue;
                }
                for team in [1u32, 2, 3, 7] {
                    let parts = dispatch_drive(
                        RuntimeConfig::default(),
                        SCHED_GUIDED_CHUNKED,
                        trip,
                        team,
                        chunk,
                    );
                    // Guided chunks may exceed `chunk` (it is a floor).
                    assert_dispatch_laws(&parts, trip, None);
                }
            }
        }
    }

    #[test]
    fn guided_chunks_shrink_and_respect_floor() {
        // Single thread drains the whole queue, so the chunk sequence is
        // deterministic: ceil(remaining / (2 * team)) floored at `chunk`.
        let parts = dispatch_drive(RuntimeConfig::default(), SCHED_GUIDED_CHUNKED, 100, 1, 2);
        let sizes: Vec<i64> = parts[0].iter().map(|&(lo, hi)| hi - lo + 1).collect();
        assert_eq!(sizes[0], 50, "first guided chunk is ceil(100/2)");
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "guided chunks must not grow: {sizes:?}");
        }
        assert!(
            sizes[..sizes.len() - 1].iter().all(|&s| s >= 2),
            "floor chunk violated: {sizes:?}"
        );
    }

    #[test]
    fn runtime_schedule_resolves_from_config() {
        let cfg = RuntimeConfig {
            runtime_schedule: Some(RuntimeSchedule {
                kind: DispatchKind::Dynamic,
                chunk: 3,
            }),
            ..Default::default()
        };
        let parts = dispatch_drive(cfg, SCHED_RUNTIME, 10, 2, 0);
        // The chunk argument (0) is ignored; the resolved schedule wins.
        assert_dispatch_laws(&parts, 10, Some(3));
        let all: Vec<i64> = parts
            .iter()
            .flatten()
            .map(|&(lo, hi)| hi - lo + 1)
            .collect();
        assert!(all.contains(&3), "expected chunk size 3: {all:?}");
    }

    #[test]
    fn runtime_schedule_default_is_balanced_static() {
        // No override and (in this test) no env: one chunk per thread.
        let cfg = RuntimeConfig {
            runtime_schedule: Some(RuntimeSchedule {
                kind: DispatchKind::Static,
                chunk: 0,
            }),
            ..Default::default()
        };
        let parts = dispatch_drive(cfg, SCHED_RUNTIME, 16, 4, 0);
        assert_dispatch_laws(&parts, 16, Some(4));
        let total_chunks: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(
            total_chunks, 4,
            "balanced static serves ceil(trip/team) blocks"
        );
    }

    #[test]
    fn omp_schedule_parsing() {
        assert_eq!(
            RuntimeSchedule::parse("dynamic,4"),
            Ok(RuntimeSchedule {
                kind: DispatchKind::Dynamic,
                chunk: 4
            })
        );
        assert_eq!(
            RuntimeSchedule::parse("  GUIDED , 8 "),
            Ok(RuntimeSchedule {
                kind: DispatchKind::Guided,
                chunk: 8
            })
        );
        assert_eq!(
            RuntimeSchedule::parse("static"),
            Ok(RuntimeSchedule {
                kind: DispatchKind::Static,
                chunk: 0
            })
        );
        assert_eq!(
            RuntimeSchedule::parse("auto"),
            Ok(RuntimeSchedule {
                kind: DispatchKind::Static,
                chunk: 0
            })
        );
        assert!(RuntimeSchedule::parse("fifo,2").is_err());
        assert!(RuntimeSchedule::parse("").is_err());
    }

    /// Regression: these malformed values were silently absorbed into the
    /// balanced-static default before the `parse` API returned `Result`.
    #[test]
    fn omp_schedule_rejects_malformed_values_with_reasons() {
        let err = |s: &str| RuntimeSchedule::parse(s).unwrap_err();
        assert!(
            err("dynamic,0").contains("must be positive"),
            "{}",
            err("dynamic,0")
        );
        assert!(
            err("guided,-4").contains("must be positive"),
            "{}",
            err("guided,-4")
        );
        assert!(
            err("dynamic,abc").contains("invalid chunk size"),
            "{}",
            err("dynamic,abc")
        );
        assert!(
            err("fifo,2").contains("unknown schedule kind"),
            "{}",
            err("fifo,2")
        );
        assert!(err("").contains("missing schedule kind"), "{}", err(""));
        assert!(err(",4").contains("missing schedule kind"), "{}", err(",4"));
    }

    #[test]
    fn omp_schedule_resolve_warns_and_falls_back_explicitly() {
        // Unset: the libomp default, no warning.
        assert_eq!(
            RuntimeSchedule::resolve(None),
            (RuntimeSchedule::default_static(), None)
        );
        // Well-formed: no warning.
        let (rs, warn) = RuntimeSchedule::resolve(Some("guided,2"));
        assert_eq!(
            rs,
            RuntimeSchedule {
                kind: DispatchKind::Guided,
                chunk: 2
            }
        );
        assert_eq!(warn, None);
        // Malformed: explicit fallback plus a warning naming the value.
        let (rs, warn) = RuntimeSchedule::resolve(Some("dynamic,0"));
        assert_eq!(rs, RuntimeSchedule::default_static());
        let warn = warn.expect("malformed OMP_SCHEDULE must warn");
        assert!(warn.contains("OMP_SCHEDULE"), "{warn}");
        assert!(warn.contains("'dynamic,0'"), "{warn}");
        assert!(warn.contains("balanced static"), "{warn}");
    }

    #[test]
    fn dispatch_queue_retires_after_all_threads_drain() {
        // Two back-to-back dispatch loops on one shared TeamState: the
        // second init must get a fresh queue (seq 1), and the first queue
        // must have been removed once every member drained it.
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let state = TeamState::new(1, false);
        let ctx = ThreadCtx::team_member(0, 1, Arc::clone(&state));
        let bufs = [
            it.mem.alloc(4),
            it.mem.alloc(8),
            it.mem.alloc(8),
            it.mem.alloc(8),
        ];
        for round in 0..2 {
            dispatch(
                &it,
                "__kmpc_dispatch_init_8",
                vec![
                    RtVal::I(0),
                    RtVal::I(SCHED_DYNAMIC_CHUNKED),
                    RtVal::I(0),
                    RtVal::I(3),
                    RtVal::I(1),
                    RtVal::I(2),
                ],
                &ctx,
            )
            .unwrap();
            let mut served = 0;
            loop {
                let got = dispatch(
                    &it,
                    "__kmpc_dispatch_next_8",
                    vec![
                        RtVal::I(0),
                        RtVal::P(bufs[0]),
                        RtVal::P(bufs[1]),
                        RtVal::P(bufs[2]),
                        RtVal::P(bufs[3]),
                    ],
                    &ctx,
                )
                .unwrap()
                .unwrap()
                .as_i();
                if got == 0 {
                    break;
                }
                served += it.mem.load(bufs[2], 8).unwrap() as i64
                    - it.mem.load(bufs[1], 8).unwrap() as i64
                    + 1;
            }
            dispatch(&it, "__kmpc_dispatch_fini_8", vec![RtVal::I(0)], &ctx).unwrap();
            assert_eq!(served, 4, "round {round} served the full span");
            assert!(
                state.queues.lock().unwrap().is_empty(),
                "round {round} queue not retired"
            );
        }
    }

    #[test]
    fn barrier_makes_prior_writes_visible() {
        // Each thread stores flags[tid], hits the barrier, then asserts it
        // can see *every* other thread's store. Without a real barrier this
        // fails (flakily) because nothing orders the stores before the reads.
        let team = 8u32;
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        let flags = it.mem.alloc(8 * team as u64);
        let state = TeamState::new(team, true);
        std::thread::scope(|s| {
            for tid in 0..team {
                let it = &it;
                let state = Arc::clone(&state);
                s.spawn(move || {
                    let ctx = ThreadCtx::team_member(tid, team, state);
                    it.mem
                        .store(flags + 8 * tid as u64, 8, (tid + 1) as u64)
                        .unwrap();
                    dispatch(it, "__kmpc_barrier", vec![RtVal::I(tid as i64)], &ctx).unwrap();
                    for other in 0..team {
                        let v = it.mem.load(flags + 8 * other as u64, 8).unwrap();
                        assert_eq!(
                            v,
                            (other + 1) as u64,
                            "thread {tid} missed write of {other}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn barrier_is_noop_for_solo_and_serial_teams() {
        let m = Module::new();
        let it = Interpreter::new(&m, RuntimeConfig::default());
        // Solo team (initial context): must not block.
        let ctx = ThreadCtx::initial();
        dispatch(&it, "__kmpc_barrier", vec![RtVal::I(0)], &ctx).unwrap();
        // Serial team of 4: each member runs to completion alone, so the
        // barrier must not wait for peers that haven't started yet.
        let state = TeamState::new(4, false);
        for tid in 0..4 {
            let ctx = ThreadCtx::team_member(tid, 4, Arc::clone(&state));
            dispatch(&it, "__kmpc_barrier", vec![RtVal::I(tid as i64)], &ctx).unwrap();
        }
    }
}
