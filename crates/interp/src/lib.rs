//! # omplt-interp
//!
//! Executes `omplt-ir` modules so every loop transformation can be validated
//! end-to-end: the transformed program must produce the same observable
//! behaviour as the untransformed one (the property the paper's Clang
//! implementation must uphold, here checked by tests and property tests).
//!
//! * [`memory`] — a shared, byte-addressed memory built from `AtomicU64` word
//!   cells, so `parallel` regions can run on **real OS threads** without data
//!   races in the interpreter itself (racy *guest* programs degrade to
//!   relaxed-atomic semantics instead of UB).
//! * [`exec`] — the instruction interpreter (stack frames, phi handling,
//!   calls).
//! * [`runtime`] — the OpenMP runtime shim: `__kmpc_fork_call` spawns a
//!   thread team via `std::thread::scope`, `__kmpc_for_static_init`
//!   implements the static worksharing schedule, `__kmpc_dispatch_init_8`/
//!   `__kmpc_dispatch_next_8`/`__kmpc_dispatch_fini_8` serve the dynamic,
//!   guided, and runtime (`OMP_SCHEDULE`) schedules from a per-team work
//!   queue, `__kmpc_barrier` is a real team barrier, plus
//!   `omp_get_thread_num`, `omp_get_num_threads`, and task bookkeeping for
//!   `taskloop`.

pub mod engine;
pub mod exec;
pub mod memory;
pub mod runtime;

pub use engine::{ChunkKind, ChunkLog, ChunkRecord, Engine};
pub use exec::{ExecError, Interpreter, RtVal, RunResult};
pub use memory::Memory;
pub use runtime::{Deadline, DispatchKind, RuntimeConfig, RuntimeSchedule, TeamState, ThreadCtx};
