//! End-to-end tests for the AST-level analysis passes: parse + Sema a C
//! source, run the suite, inspect the produced diagnostics.

use omplt_analysis::{run_analyses, AnalysisReport};
use omplt_ast::TranslationUnit;
use omplt_lex::Preprocessor;
use omplt_parse::parse_translation_unit;
use omplt_sema::{OpenMpCodegenMode, Sema};
use omplt_source::{Diagnostic, DiagnosticsEngine, FileManager, Level, SourceManager};
use std::cell::RefCell;

fn parse(src: &str) -> (TranslationUnit, DiagnosticsEngine) {
    let mut fm = FileManager::new();
    let buf = fm.add_virtual_file("t.c", src);
    let sm = RefCell::new(SourceManager::new());
    let file_id = sm.borrow_mut().add_file(buf).0;
    let diags = DiagnosticsEngine::new();
    let tokens = {
        let mut smm = sm.borrow_mut();
        let mut pp = Preprocessor::new(&mut smm, &mut fm, &diags, file_id);
        pp.tokenize_all()
    };
    let mut sema = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
    let tu = parse_translation_unit(tokens, &mut sema);
    assert!(
        !diags.has_errors(),
        "unexpected Sema errors: {:?}",
        diags
            .all()
            .iter()
            .map(|d| d.message.clone())
            .collect::<Vec<_>>()
    );
    (tu, diags)
}

fn analyze(src: &str) -> (Vec<Diagnostic>, AnalysisReport) {
    let (tu, diags) = parse(src);
    let report = run_analyses(&tu, &diags);
    (diags.all(), report)
}

fn messages(diags: &[Diagnostic], level: Level) -> Vec<String> {
    diags
        .iter()
        .filter(|d| d.level == level)
        .map(|d| d.message.clone())
        .collect()
}

#[test]
fn shared_scalar_write_is_a_race() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int sum = 0;\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   sum += a[i];\n\
         \x20 return sum;\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    assert_eq!(report.errors, 0);
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("shared variable 'sum'"), "{}", warns[0]);
    assert!(warns[0].ends_with("[-Wrace]"), "{}", warns[0]);
    // The fix-it style note suggests privatization clauses.
    let w = diags.iter().find(|d| d.level == Level::Warning).unwrap();
    assert!(
        w.notes
            .iter()
            .any(|n| n.message.contains("reduction(+: sum)")),
        "{:?}",
        w.notes
    );
}

#[test]
fn reduction_clause_silences_the_race() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int sum = 0;\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for reduction(+: sum)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   sum += a[i];\n\
         \x20 return sum;\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn private_clause_and_locals_are_not_shared() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int t = 0;\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for private(t)\n\
         \x20 for (int i = 0; i < 8; i += 1) {\n\
         \x20   int u = i + 1;\n\
         \x20   t = u * 2;\n\
         \x20   a[i] = t + u;\n\
         \x20 }\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn loop_carried_array_write_is_a_race() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[16];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 15; i += 1)\n\
         \x20   a[i] = a[i + 1] + 1;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("loop-carried"), "{}", warns[0]);
    assert!(warns[0].contains("'a[i]' is written"), "{}", warns[0]);
    assert!(warns[0].contains("'a[i + 1]' is read"), "{}", warns[0]);
    assert!(warns[0].ends_with("[-Wrace]"), "{}", warns[0]);
}

#[test]
fn disjoint_arrays_are_clean() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[16];\n\
         \x20 int b[16];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 1; i < 15; i += 1)\n\
         \x20   b[i] = a[i - 1] + a[i] + a[i + 1];\n\
         \x20 return b[1];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn constant_subscript_write_is_a_race() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   a[0] = i;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("write 'a[0]'"), "{}", warns[0]);
}

#[test]
fn imperfect_tile_nest_is_an_error() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp tile sizes(4, 4)\n\
         \x20 for (int i = 0; i < 8; i += 1) {\n\
         \x20   int t = i * 8;\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     a[t + j] = t;\n\
         \x20 }\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(errs[0].contains("perfectly nested"), "{}", errs[0]);
    assert!(
        errs[0].contains("#pragma omp tile sizes(4, 4)"),
        "{}",
        errs[0]
    );
    let e = diags.iter().find(|d| d.level == Level::Error).unwrap();
    assert!(
        e.notes
            .iter()
            .any(|n| n.message.contains("2 perfectly nested loops")),
        "{:?}",
        e.notes
    );
}

#[test]
fn perfect_tile_nest_is_clean() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp tile sizes(4, 4)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     a[i * 8 + j] = i + j;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn return_escaping_unroll_is_an_error() {
    let (diags, report) = analyze(
        "int f() {\n\
         \x20 #pragma omp unroll partial(2)\n\
         \x20 for (int i = 0; i < 8; i += 1) {\n\
         \x20   if (i == 3) return 1;\n\
         \x20 }\n\
         \x20 return 0;\n\
         }\n\
         int main() { return f(); }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(errs[0].contains("cannot 'return'"), "{}", errs[0]);
    assert!(
        errs[0].contains("#pragma omp unroll partial(2)"),
        "{}",
        errs[0]
    );
}

#[test]
fn collapse_nest_accesses_both_ivs() {
    // Writes are indexed by the collapsed i-loop IV; reading a j-shifted
    // element of the same row is loop-carried across the j dimension.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp parallel for collapse(2)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 7; j += 1)\n\
         \x20     a[j] = a[j + 1];\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("'a[j]' is written"), "{}", warns[0]);
}
