//! End-to-end tests for the AST-level analysis passes: parse + Sema a C
//! source, run the suite, inspect the produced diagnostics.

use omplt_analysis::{run_analyses, AnalysisReport};
use omplt_ast::TranslationUnit;
use omplt_lex::Preprocessor;
use omplt_parse::parse_translation_unit;
use omplt_sema::{OpenMpCodegenMode, Sema};
use omplt_source::{Diagnostic, DiagnosticsEngine, FileManager, Level, SourceManager};
use std::cell::RefCell;

fn parse(src: &str) -> (TranslationUnit, DiagnosticsEngine) {
    let mut fm = FileManager::new();
    let buf = fm.add_virtual_file("t.c", src);
    let sm = RefCell::new(SourceManager::new());
    let file_id = sm.borrow_mut().add_file(buf).0;
    let diags = DiagnosticsEngine::new();
    let tokens = {
        let mut smm = sm.borrow_mut();
        let mut pp = Preprocessor::new(&mut smm, &mut fm, &diags, file_id);
        pp.tokenize_all()
    };
    let mut sema = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
    let tu = parse_translation_unit(tokens, &mut sema);
    assert!(
        !diags.has_errors(),
        "unexpected Sema errors: {:?}",
        diags
            .all()
            .iter()
            .map(|d| d.message.clone())
            .collect::<Vec<_>>()
    );
    (tu, diags)
}

fn analyze(src: &str) -> (Vec<Diagnostic>, AnalysisReport) {
    let (tu, diags) = parse(src);
    let report = run_analyses(&tu, &diags);
    (diags.all(), report)
}

fn messages(diags: &[Diagnostic], level: Level) -> Vec<String> {
    diags
        .iter()
        .filter(|d| d.level == level)
        .map(|d| d.message.clone())
        .collect()
}

#[test]
fn shared_scalar_write_is_a_race() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int sum = 0;\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   sum += a[i];\n\
         \x20 return sum;\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    assert_eq!(report.errors, 0);
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("shared variable 'sum'"), "{}", warns[0]);
    assert!(warns[0].ends_with("[-Wrace]"), "{}", warns[0]);
    // The fix-it style note suggests privatization clauses.
    let w = diags.iter().find(|d| d.level == Level::Warning).unwrap();
    assert!(
        w.notes
            .iter()
            .any(|n| n.message.contains("reduction(+: sum)")),
        "{:?}",
        w.notes
    );
}

#[test]
fn reduction_clause_silences_the_race() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int sum = 0;\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for reduction(+: sum)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   sum += a[i];\n\
         \x20 return sum;\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn private_clause_and_locals_are_not_shared() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int t = 0;\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for private(t)\n\
         \x20 for (int i = 0; i < 8; i += 1) {\n\
         \x20   int u = i + 1;\n\
         \x20   t = u * 2;\n\
         \x20   a[i] = t + u;\n\
         \x20 }\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn loop_carried_array_write_is_a_race() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[16];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 15; i += 1)\n\
         \x20   a[i] = a[i + 1] + 1;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("loop-carried"), "{}", warns[0]);
    assert!(warns[0].contains("'a[i]' is written"), "{}", warns[0]);
    assert!(warns[0].contains("'a[i + 1]' is read"), "{}", warns[0]);
    assert!(warns[0].ends_with("[-Wrace]"), "{}", warns[0]);
}

#[test]
fn disjoint_arrays_are_clean() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[16];\n\
         \x20 int b[16];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 1; i < 15; i += 1)\n\
         \x20   b[i] = a[i - 1] + a[i] + a[i + 1];\n\
         \x20 return b[1];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn constant_subscript_write_is_a_race() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[8];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   a[0] = i;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("write 'a[0]'"), "{}", warns[0]);
}

#[test]
fn imperfect_tile_nest_is_an_error() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp tile sizes(4, 4)\n\
         \x20 for (int i = 0; i < 8; i += 1) {\n\
         \x20   int t = i * 8;\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     a[t + j] = t;\n\
         \x20 }\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(errs[0].contains("perfectly nested"), "{}", errs[0]);
    assert!(
        errs[0].contains("#pragma omp tile sizes(4, 4)"),
        "{}",
        errs[0]
    );
    let e = diags.iter().find(|d| d.level == Level::Error).unwrap();
    assert!(
        e.notes
            .iter()
            .any(|n| n.message.contains("2 perfectly nested loops")),
        "{:?}",
        e.notes
    );
}

#[test]
fn perfect_tile_nest_is_clean() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp tile sizes(4, 4)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     a[i * 8 + j] = i + j;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn return_escaping_unroll_is_an_error() {
    let (diags, report) = analyze(
        "int f() {\n\
         \x20 #pragma omp unroll partial(2)\n\
         \x20 for (int i = 0; i < 8; i += 1) {\n\
         \x20   if (i == 3) return 1;\n\
         \x20 }\n\
         \x20 return 0;\n\
         }\n\
         int main() { return f(); }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(errs[0].contains("cannot 'return'"), "{}", errs[0]);
    assert!(
        errs[0].contains("#pragma omp unroll partial(2)"),
        "{}",
        errs[0]
    );
}

#[test]
fn collapse_nest_accesses_both_ivs() {
    // Writes are indexed by the collapsed i-loop IV; reading a j-shifted
    // element of the same row is loop-carried across the j dimension.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp parallel for collapse(2)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 7; j += 1)\n\
         \x20     a[j] = a[j + 1];\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("'a[j]' is written"), "{}", warns[0]);
}

// ---------------------------------------------------------------------------
// Scaled-affine -Wrace subscripts (a[2*i], a[c - i], …)
// ---------------------------------------------------------------------------

#[test]
fn scaled_affine_stride_conflict_is_a_race() {
    // a[2*i] and a[2*i + 2] are one iteration apart; before the detector
    // understood coefficients both were dropped as "Other" and this raced
    // silently.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[32];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 15; i += 1)\n\
         \x20   a[2 * i] = a[2 * i + 2] + 1;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("'a[2*i]' is written"), "{}", warns[0]);
    assert!(warns[0].contains("'a[2*i + 2]' is read"), "{}", warns[0]);
}

#[test]
fn scaled_affine_parity_disjoint_is_clean() {
    // a[2*i] (even) never collides with a[2*i + 1] (odd).
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[32];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 15; i += 1)\n\
         \x20   a[2 * i] = a[2 * i + 1] + 1;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn reversed_index_conflict_is_a_race() {
    // a[14 - i] crosses a[i] midway through the iteration space.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[16];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 15; i += 1)\n\
         \x20   a[14 - i] = a[i] + 1;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(warns[0].contains("'a[14 - i]' is written"), "{}", warns[0]);
}

#[test]
fn constant_outside_stride_lattice_is_clean() {
    // The write a[2*i] never reaches the odd element a[5].
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[32];\n\
         \x20 int x = 0;\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 15; i += 1)\n\
         \x20   a[2 * i] = i + x;\n\
         \x20 return a[0];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

// ---------------------------------------------------------------------------
// Dependence-gated interchange / reverse / fuse
// ---------------------------------------------------------------------------

#[test]
fn interchange_reversing_a_dependence_is_an_error() {
    // Linearized stencil with dependence (1, -1): direction vector (<, >)
    // becomes (>, <) under the swap — the textbook illegal interchange.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp interchange\n\
         \x20 for (int i = 1; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 7; j += 1)\n\
         \x20     a[i * 8 + j] = a[(i - 1) * 8 + (j + 1)];\n\
         \x20 return a[9];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(
        errs[0].contains("'#pragma omp interchange' is illegal"),
        "{}",
        errs[0]
    );
    assert!(errs[0].contains("direction vector (<, >)"), "{}", errs[0]);
    let e = diags.iter().find(|d| d.level == Level::Error).unwrap();
    assert!(
        e.notes
            .iter()
            .any(|n| n.message.contains("distance vector (1, -1)")),
        "{:?}",
        e.notes
    );
}

#[test]
fn interchange_of_an_outer_carried_dependence_is_clean() {
    // Dependence (1, 0): direction (<, =) permutes to (=, <) — legal.
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 #pragma omp interchange\n\
         \x20 for (int i = 1; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     a[i * 8 + j] = a[(i - 1) * 8 + j] + 1;\n\
         \x20 return a[9];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn interchange_permutation_clause_is_checked() {
    // Rotating (i, j, k) -> (k, i, j) moves the j-carried (=, <, >)
    // dependence to (>, =, <): illegal.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[512];\n\
         \x20 #pragma omp interchange permutation(3, 1, 2)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   for (int j = 1; j < 8; j += 1)\n\
         \x20     for (int k = 0; k < 7; k += 1)\n\
         \x20       a[i * 64 + j * 8 + k] = a[i * 64 + (j - 1) * 8 + k + 1];\n\
         \x20 return a[9];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(
        errs[0].contains("direction vector (=, <, >)"),
        "{}",
        errs[0]
    );
}

#[test]
fn reverse_of_a_carried_dependence_is_an_error() {
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 a[0] = 1;\n\
         \x20 #pragma omp reverse\n\
         \x20 for (int i = 1; i < 64; i += 1)\n\
         \x20   a[i] = a[i - 1] + 1;\n\
         \x20 return a[9];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(
        errs[0].contains("'#pragma omp reverse' is illegal"),
        "{}",
        errs[0]
    );
    assert!(
        errs[0].contains("carries a flow dependence on 'a'"),
        "{}",
        errs[0]
    );
}

#[test]
fn reverse_of_an_independent_loop_is_clean() {
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 int b[64];\n\
         \x20 #pragma omp reverse\n\
         \x20 for (int i = 0; i < 64; i += 1)\n\
         \x20   b[i] = a[i] * 2 + b[i];\n\
         \x20 return b[9];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn reverse_of_a_scalar_accumulation_is_an_error() {
    // `s` is live across iterations: classical dependence analysis cannot
    // prove the reversed reassociation safe.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 int s = 0;\n\
         \x20 #pragma omp reverse\n\
         \x20 for (int i = 0; i < 64; i += 1)\n\
         \x20   s = s - a[i];\n\
         \x20 return s;\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(errs[0].contains("dependence on 's'"), "{}", errs[0]);
}

#[test]
fn fuse_with_a_negative_distance_dependence_is_an_error() {
    // Loop 2 writes a[j + 4], which iteration j + 4 of loop 1 already read:
    // fused, the write moves before the read.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[70];\n\
         \x20 int b[64];\n\
         \x20 #pragma omp fuse\n\
         \x20 {\n\
         \x20   for (int i = 0; i < 64; i += 1) b[i] = a[i] * 2;\n\
         \x20   for (int j = 0; j < 64; j += 1) a[j + 4] = j;\n\
         \x20 }\n\
         \x20 return b[9];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(
        errs[0].contains("'#pragma omp fuse' is illegal"),
        "{}",
        errs[0]
    );
    assert!(
        errs[0].contains("negative-distance anti dependence"),
        "{}",
        errs[0]
    );
    assert!(errs[0].contains("(distance -4)"), "{}", errs[0]);
}

#[test]
fn fuse_of_a_forward_producer_consumer_is_clean() {
    // Loop 2 reads what loop 1 wrote in the *same* iteration: distance 0.
    let (_, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 int b[64];\n\
         \x20 #pragma omp fuse\n\
         \x20 {\n\
         \x20   for (int i = 0; i < 64; i += 1) a[i] = i * 3;\n\
         \x20   for (int j = 0; j < 64; j += 1) b[j] = a[j] + 1;\n\
         \x20 }\n\
         \x20 return b[9];\n\
         }\n",
    );
    assert_eq!(report, AnalysisReport::default());
}

#[test]
fn fuse_over_a_shared_element_is_an_error() {
    // Loop 1 writes a[0] on every iteration; loop 2 reads it. Originally
    // every read sees the final write — fused, early reads see early writes.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[4];\n\
         \x20 int b[64];\n\
         \x20 #pragma omp fuse\n\
         \x20 {\n\
         \x20   for (int i = 0; i < 64; i += 1) a[0] = i;\n\
         \x20   for (int j = 0; j < 64; j += 1) b[j] = a[0];\n\
         \x20 }\n\
         \x20 return b[9];\n\
         }\n",
    );
    assert_eq!(report.errors, 1, "{diags:?}");
    let errs = messages(&diags, Level::Error);
    assert!(errs[0].contains("(distance *)"), "{}", errs[0]);
}

#[test]
fn unanalyzable_subscript_is_an_analysis_limit_note() {
    // Indirect subscript: the pass must say it cannot verify, not guess.
    let (diags, report) = analyze(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 int idx[64];\n\
         \x20 #pragma omp reverse\n\
         \x20 for (int i = 0; i < 64; i += 1)\n\
         \x20   a[idx[i]] = i;\n\
         \x20 return a[9];\n\
         }\n",
    );
    assert_eq!(report.errors, 0, "{diags:?}");
    assert_eq!(report.warnings, 1, "{diags:?}");
    let warns = messages(&diags, Level::Warning);
    assert!(
        warns[0].contains("cannot verify the legality"),
        "{}",
        warns[0]
    );
    assert!(warns[0].ends_with("[-Wanalysis-limit]"), "{}", warns[0]);
    let w = diags.iter().find(|d| d.level == Level::Warning).unwrap();
    assert!(
        w.notes.iter().any(|n| n.message.contains("not affine")),
        "{:?}",
        w.notes
    );
}

#[test]
fn dependence_graph_api_reports_vectors() {
    use omplt_analysis::{depend::DependenceGraph, Direction};
    use omplt_ast::{Decl, StmtKind};

    let (tu, _) = parse(
        "int main() {\n\
         \x20 int a[64];\n\
         \x20 for (int i = 1; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 7; j += 1)\n\
         \x20     a[i * 8 + j] = a[(i - 1) * 8 + (j + 1)];\n\
         \x20 return a[9];\n\
         }\n",
    );
    let Some(Decl::Function(f)) = tu.decls.first() else {
        panic!("no function");
    };
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!("no body");
    };
    let nest = stmts
        .iter()
        .find(|s| matches!(s.kind, StmtKind::For { .. }))
        .expect("nest");
    let levels = omplt_analysis::nest::resolve_literal_nest(nest, 2).expect("resolved");
    let graph = DependenceGraph::compute(&levels);
    assert!(graph.is_complete(), "{:?}", graph.limits);
    assert_eq!(graph.depth, 2);
    assert_eq!(graph.deps.len(), 1, "{:?}", graph.deps);
    let dep = &graph.deps[0];
    assert_eq!(dep.directions, vec![Direction::Lt, Direction::Gt]);
    assert_eq!(dep.distances, vec![Some(1), Some(-1)]);
    assert_eq!(dep.direction_vector(), "(<, >)");
    assert_eq!(dep.distance_vector(), "(1, -1)");
    assert_eq!(dep.carried_level(), Some(0));
    assert!(graph.carried_at(0).is_some());
    assert!(graph.interchange_violation(&[1, 0]).is_some());
    assert!(graph.interchange_violation(&[0, 1]).is_none());
}

#[test]
fn unresolvable_nest_warns_analysis_limit() {
    use omplt_ast::{Decl, OMPDirective, Stmt, StmtKind, P};

    // Sema hard-errors on every *surface* program whose nest
    // `resolve_literal_nest` cannot resolve, so through the driver the
    // legality pass always either resolves the nest or sits behind an
    // error. API consumers are not so constrained: a pipeline that rebuilds
    // a directive (here: with a non-loop associated statement) must get the
    // explicit -Wanalysis-limit abstention, not silence that reads as a
    // clean bill of health.
    let (tu, diags) = parse(
        "int main() {\n\
         \x20 int x = 0;\n\
         \x20 #pragma omp tile sizes(4, 4)\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   for (int j = 0; j < 8; j += 1)\n\
         \x20     x += i + j;\n\
         \x20 return x;\n\
         }\n",
    );
    let Some(Decl::Function(f)) = tu.decls.first() else {
        panic!("no function");
    };
    let rebuilt = {
        let body = f.body.borrow();
        let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
            panic!("no body");
        };
        let decl_stmt = stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Decl(_)))
            .expect("decl stmt");
        let omp = stmts
            .iter()
            .find_map(|s| match &s.kind {
                StmtKind::OMP(d) => Some(d),
                _ => None,
            })
            .expect("tile directive");
        let d = OMPDirective::new(
            omp.kind,
            omp.clauses.iter().map(P::clone).collect(),
            Some(P::clone(decl_stmt)),
            omp.loc,
        );
        Stmt::new(
            StmtKind::Compound(vec![Stmt::new(StmtKind::OMP(P::new(d)), omp.loc)]),
            omp.loc,
        )
    };
    f.body.replace(Some(rebuilt));
    run_analyses(&tu, &diags);
    let warns = messages(&diags.all(), Level::Warning);
    assert!(
        warns.iter().any(|m| m
            == "cannot verify that '#pragma omp tile sizes(4, 4)' is associated with 2 \
                perfectly nested loops [-Wanalysis-limit]"),
        "{warns:?}"
    );
}

#[test]
fn multidim_subscripts_are_linearized_for_dependence() {
    // `a[i][j] = a[i-1][j+1]` carries a (<, >) flow dependence; the chain
    // must be folded to `9*i + j` against the array's dimensions, exactly
    // like the hand-linearized form.
    let (diags, _) = analyze(
        "int main() {\n\
         \x20 int a[9][9];\n\
         \x20 #pragma omp interchange\n\
         \x20 for (int i = 1; i < 8; i += 1)\n\
         \x20   for (int j = 1; j < 8; j += 1)\n\
         \x20     a[i][j] = a[i - 1][j + 1] + 1;\n\
         \x20 return a[4][4];\n\
         }\n",
    );
    let errors = messages(&diags, Level::Error);
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(
        errors[0].contains("interchange") && errors[0].contains("(<, >)"),
        "{errors:?}"
    );
}

#[test]
fn multidim_subscripts_are_linearized_for_races() {
    // Every iteration writes the same 2D element: a provable race.
    let (diags, _) = analyze(
        "int main() {\n\
         \x20 int a[8][8];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   a[3][2] += i;\n\
         \x20 return 0;\n\
         }\n",
    );
    let warnings = messages(&diags, Level::Warning);
    assert!(
        warnings.iter().any(|m| m.contains("-Wrace")),
        "{warnings:?}"
    );

    // Distinct rows per iteration: no race, no warning.
    let (diags, _) = analyze(
        "int main() {\n\
         \x20 int a[8][8];\n\
         \x20 #pragma omp parallel for\n\
         \x20 for (int i = 0; i < 8; i += 1)\n\
         \x20   a[i][3] = i;\n\
         \x20 return 0;\n\
         }\n",
    );
    assert!(messages(&diags, Level::Warning).is_empty(), "{diags:?}");
}
