//! # omplt-analysis
//!
//! The static-analysis suite, spanning the compiler's two program
//! representations:
//!
//! * at the **AST/Sema layer**, [`legality`] validates the OpenMP 5.1
//!   preconditions of the loop-transformation directives that Sema's
//!   transformation machinery silently tolerates (perfect nesting,
//!   no escaping `return`), [`depend`] computes per-nest distance/direction
//!   vectors from affine array subscripts and gates `interchange`,
//!   `reverse` and `fuse` on them, and [`race`] detects data races in
//!   `#pragma omp parallel for` regions by classifying variable references
//!   as private or shared;
//! * at the **IR layer**, the canonical-loop skeleton verifier lives in
//!   `omplt-midend` (re-exported here) so `--verify-each` can re-check the
//!   skeleton invariants between passes and after every `OpenMPIRBuilder`
//!   transformation.
//!
//! All AST passes report through the shared [`DiagnosticsEngine`], so their
//! findings render Clang-style (or as JSON via `--diag-format=json`) next to
//! Sema's own diagnostics.

pub mod depend;
pub mod legality;
pub mod nest;
pub mod race;

pub use depend::{DepKind, Dependence, DependenceGraph, Direction};

pub use omplt_ir::{verify_module, VerifyError};
pub use omplt_midend::{verify_function_full, verify_loop_skeletons, verify_module_full};

use omplt_ast::TranslationUnit;
use omplt_source::{DiagnosticsEngine, Level};

/// What [`run_analyses`] added to the diagnostics engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Error-level findings added by the analysis passes.
    pub errors: usize,
    /// Warning-level findings added by the analysis passes.
    pub warnings: usize,
}

impl AnalysisReport {
    /// Whether any finding was produced.
    pub fn has_findings(&self) -> bool {
        self.errors + self.warnings > 0
    }
}

/// One finding produced by a batch-mode analysis run (a detached
/// [`omplt_source::Diagnostic`], without the engine it came from).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Severity.
    pub level: Level,
    /// Where the finding points.
    pub loc: omplt_source::SourceLocation,
    /// The message text.
    pub message: String,
}

/// The legality verdict for one candidate program: the counted report plus
/// the findings themselves, detached from any [`DiagnosticsEngine`].
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Error/warning counts, as [`run_analyses`] returns them.
    pub report: AnalysisReport,
    /// Every diagnostic the passes produced (errors, warnings, and notes),
    /// in emission order.
    pub findings: Vec<Finding>,
}

impl Verdict {
    /// The `--analyze` exit-code contract: legal ⇔ no findings at all
    /// (warnings count — a racy candidate must not be auto-tuned into).
    pub fn is_legal(&self) -> bool {
        !self.report.has_findings()
    }

    /// Error- and warning-level messages, for pruned-candidate reports.
    pub fn messages(&self) -> Vec<String> {
        self.findings
            .iter()
            .filter(|f| f.level != Level::Note)
            .map(|f| format!("{}: {}", f.level.as_str(), f.message))
            .collect()
    }
}

/// Batch legality API: runs every AST-level analysis pass over `tu` into a
/// *private* diagnostics engine and returns the verdict, leaving the
/// caller's diagnostics untouched. This is what lets the autotuner (and any
/// other bulk consumer) prune hundreds of candidate programs in-process
/// instead of shelling out to `ompltc --analyze` per candidate.
pub fn verdict(tu: &TranslationUnit) -> Verdict {
    let diags = DiagnosticsEngine::new();
    let report = run_analyses(tu, &diags);
    let findings = diags
        .take_all()
        .into_iter()
        .map(|d| Finding {
            level: d.level,
            loc: d.loc,
            message: d.message,
        })
        .collect();
    Verdict { report, findings }
}

/// Batch form of [`verdict`]: one verdict per translation unit, in order.
pub fn batch_verdicts<'a, I>(tus: I) -> Vec<Verdict>
where
    I: IntoIterator<Item = &'a TranslationUnit>,
{
    tus.into_iter().map(verdict).collect()
}

/// Runs every AST-level analysis pass over `tu`, reporting findings through
/// `diags`. Returns how many errors/warnings the passes added (diagnostics
/// already present — e.g. Sema warnings — are not counted).
pub fn run_analyses(tu: &TranslationUnit, diags: &DiagnosticsEngine) -> AnalysisReport {
    let count = |lvl: Level| diags.all().iter().filter(|d| d.level == lvl).count();
    let (errors0, warnings0) = (count(Level::Error), count(Level::Warning));
    {
        let _span = omplt_trace::span_detail("analysis.pass", "legality");
        legality::check_translation_unit(tu, diags);
    }
    {
        let _span = omplt_trace::span_detail("analysis.pass", "depend");
        depend::check_translation_unit(tu, diags);
    }
    {
        let _span = omplt_trace::span_detail("analysis.pass", "race");
        race::check_translation_unit(tu, diags);
    }
    AnalysisReport {
        errors: count(Level::Error) - errors0,
        warnings: count(Level::Warning) - warnings0,
    }
}
