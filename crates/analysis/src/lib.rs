//! # omplt-analysis
//!
//! The static-analysis suite, spanning the compiler's two program
//! representations:
//!
//! * at the **AST/Sema layer**, [`legality`] validates the OpenMP 5.1
//!   preconditions of the loop-transformation directives that Sema's
//!   transformation machinery silently tolerates (perfect nesting,
//!   no escaping `return`), [`depend`] computes per-nest distance/direction
//!   vectors from affine array subscripts and gates `interchange`,
//!   `reverse` and `fuse` on them, and [`race`] detects data races in
//!   `#pragma omp parallel for` regions by classifying variable references
//!   as private or shared;
//! * at the **IR layer**, the canonical-loop skeleton verifier lives in
//!   `omplt-midend` (re-exported here) so `--verify-each` can re-check the
//!   skeleton invariants between passes and after every `OpenMPIRBuilder`
//!   transformation.
//!
//! All AST passes report through the shared [`DiagnosticsEngine`], so their
//! findings render Clang-style (or as JSON via `--diag-format=json`) next to
//! Sema's own diagnostics.

pub mod depend;
pub mod legality;
pub mod nest;
pub mod race;

pub use depend::{DepKind, Dependence, DependenceGraph, Direction};

pub use omplt_ir::{verify_module, VerifyError};
pub use omplt_midend::{verify_function_full, verify_loop_skeletons, verify_module_full};

use omplt_ast::TranslationUnit;
use omplt_source::{DiagnosticsEngine, Level};

/// What [`run_analyses`] added to the diagnostics engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Error-level findings added by the analysis passes.
    pub errors: usize,
    /// Warning-level findings added by the analysis passes.
    pub warnings: usize,
}

impl AnalysisReport {
    /// Whether any finding was produced.
    pub fn has_findings(&self) -> bool {
        self.errors + self.warnings > 0
    }
}

/// Runs every AST-level analysis pass over `tu`, reporting findings through
/// `diags`. Returns how many errors/warnings the passes added (diagnostics
/// already present — e.g. Sema warnings — are not counted).
pub fn run_analyses(tu: &TranslationUnit, diags: &DiagnosticsEngine) -> AnalysisReport {
    let count = |lvl: Level| diags.all().iter().filter(|d| d.level == lvl).count();
    let (errors0, warnings0) = (count(Level::Error), count(Level::Warning));
    {
        let _span = omplt_trace::span_detail("analysis.pass", "legality");
        legality::check_translation_unit(tu, diags);
    }
    {
        let _span = omplt_trace::span_detail("analysis.pass", "depend");
        depend::check_translation_unit(tu, diags);
    }
    {
        let _span = omplt_trace::span_detail("analysis.pass", "race");
        race::check_translation_unit(tu, diags);
    }
    AnalysisReport {
        errors: count(Level::Error) - errors0,
        warnings: count(Level::Warning) - warnings0,
    }
}
