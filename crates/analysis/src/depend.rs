//! Direction-vector dependence analysis gating `interchange`, `reverse`
//! and `fuse`.
//!
//! Sema applies the loop-transformation directives unconditionally — OpenMP
//! makes the user responsible for their legality. This pass recovers the
//! classical memory-dependence information needed to *check* that
//! responsibility: for every `#pragma omp interchange` / `reverse` / `fuse`
//! it builds a [`DependenceGraph`] of the associated nest and diagnoses the
//! transformations that provably reorder a dependence:
//!
//! * **interchange** is illegal when permuting the direction vector of any
//!   dependence makes its leading non-`=` entry `>` (the textbook `(<, >)`
//!   pattern: the permuted sink would run before its source);
//! * **reverse** is illegal when the reversed loop *carries* any dependence
//!   (leading direction `<`) — running the iterations backwards swaps source
//!   and sink;
//! * **fuse** is illegal when a dependence between two of the fused loops
//!   has negative distance: iteration `i` of the fused body would consume a
//!   value that the original program produced only in a later iteration.
//!
//! Subscripts are classified with the standard single-subscript tests over
//! the *logical* iteration space (trip counting from 0): **ZIV** (no
//! induction variable), **strong SIV** (`a*i + b1` vs. `a*i + b2`, exact
//! distance `(b1 - b2) / a`), **weak SIV** (different coefficients on one
//! variable, GCD feasibility + direction `*`), and a bounded **MIV** solver
//! for equal coefficient vectors (`a[i*M + j]`-style linearized accesses)
//! that enumerates the small solution set when constant trip counts bound
//! it. Everything else — non-affine subscripts, symbolic bounds feeding
//! unequal coefficients, calls — defeats the analysis, and the pass says so
//! with a `-Wanalysis-limit` note instead of guessing: **errors are reported
//! only for proven violations**.

use crate::nest::{resolve_literal_nest, NestLevel};
use omplt_ast::{
    walk_expr, walk_stmt, BinOp, Decl, DeclId, Expr, ExprKind, OMPClauseKind, OMPDirective,
    OMPDirectiveKind, Stmt, StmtKind, StmtVisitor, TranslationUnit, Type, TypeKind, UnOp, P,
};
use omplt_sema::LoopDirection;
use omplt_source::{Diagnostic, DiagnosticsEngine, Level, SourceLocation};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Checks every `interchange`/`reverse`/`fuse` in `tu`, reporting proven
/// dependence violations (and analysis limits) to `diags`.
pub fn check_translation_unit(tu: &TranslationUnit, diags: &DiagnosticsEngine) {
    let mut v = DependVisitor { diags };
    for d in &tu.decls {
        if let Decl::Function(f) = d {
            if let Some(body) = f.body.borrow().as_ref() {
                v.visit_stmt(body);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public dependence representation
// ---------------------------------------------------------------------------

/// Per-level direction of a dependence (source iteration vs. sink iteration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Source iteration precedes the sink iteration at this level.
    Lt,
    /// Same iteration at this level.
    Eq,
    /// Source iteration follows the sink iteration at this level.
    Gt,
    /// Every direction occurs (the level does not constrain the subscript).
    Any,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Lt => "<",
            Direction::Eq => "=",
            Direction::Gt => ">",
            Direction::Any => "*",
        })
    }
}

/// Kind of a dependence, named source → sink.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// Write then read (true dependence).
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        })
    }
}

/// One memory dependence between two accesses of the same variable,
/// normalized so the direction vector is lexicographically non-negative
/// (the source executes no later than the sink).
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Variable the dependence is on.
    pub name: String,
    pub kind: DepKind,
    /// Source access (subscript rendering and location).
    pub src: (String, SourceLocation),
    /// Sink access.
    pub dst: (String, SourceLocation),
    /// Per-nest-level directions, outermost first.
    pub directions: Vec<Direction>,
    /// Per-level distances in logical iterations; `None` where unconstrained.
    pub distances: Vec<Option<i128>>,
}

impl Dependence {
    /// `(<, =)`-style rendering of the direction vector.
    pub fn direction_vector(&self) -> String {
        let parts: Vec<String> = self.directions.iter().map(Direction::to_string).collect();
        format!("({})", parts.join(", "))
    }

    /// `(1, 0)`-style rendering of the distance vector (`*` when unknown).
    pub fn distance_vector(&self) -> String {
        let parts: Vec<String> = self
            .distances
            .iter()
            .map(|d| d.map_or("*".to_string(), |v| v.to_string()))
            .collect();
        format!("({})", parts.join(", "))
    }

    /// The outermost level whose direction is not `=`, if any — the level
    /// that carries the dependence.
    pub fn carried_level(&self) -> Option<usize> {
        self.directions.iter().position(|&d| d != Direction::Eq)
    }
}

/// The dependences of one literal loop nest.
pub struct DependenceGraph {
    /// Nest depth the vectors are expressed over.
    pub depth: usize,
    pub deps: Vec<Dependence>,
    /// Accesses the subscript tests could not model — the graph is
    /// *incomplete* with respect to these (variable name, reason, location).
    pub limits: Vec<(String, String, SourceLocation)>,
}

impl DependenceGraph {
    /// Whether every access of the nest was modeled.
    pub fn is_complete(&self) -> bool {
        self.limits.is_empty()
    }

    /// The first dependence carried by `level` (all outer levels `=`).
    pub fn carried_at(&self, level: usize) -> Option<&Dependence> {
        self.deps.iter().find(|d| d.carried_level() == Some(level))
    }

    /// The first dependence that `perm` (0-based, applied to the outermost
    /// `perm.len()` levels) would provably reorder: after permutation its
    /// leading non-`=` direction is `>` or `*`.
    pub fn interchange_violation(&self, perm: &[usize]) -> Option<&Dependence> {
        self.deps.iter().find(|d| {
            let permuted: Vec<Direction> = perm
                .iter()
                .map(|&p| d.directions[p])
                .chain(d.directions[perm.len()..].iter().copied())
                .collect();
            matches!(
                permuted.iter().find(|&&x| x != Direction::Eq),
                Some(Direction::Gt | Direction::Any)
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Subscript linearization
// ---------------------------------------------------------------------------

/// Per-level parameters of the nest's logical iteration space.
struct LevelInfo {
    iv: DeclId,
    iv_name: String,
    /// Signed constant step (`+step` for `Up` loops, `-step` for `Down`).
    step: Option<i128>,
    /// Constant lower bound, when known.
    lb: Option<i128>,
    /// `tc - 1`, the largest logical iteration, when the trip count is
    /// a known constant.
    max_iter: Option<i128>,
}

/// An affine subscript `sum_k a_k * iv_k + b`, kept in two forms: the raw
/// user-variable form (for symbolic reasoning and rendering) and the
/// logical-iteration form `sum_k c_k * K_k + off` with `c_k = a_k * step_k`
/// and `off = b + sum_k a_k * lb_k` (requires constant bounds to fold).
#[derive(Clone, Debug)]
struct LinSubscript {
    /// Raw coefficient of each level's iteration variable.
    raw: Vec<i128>,
    /// Raw constant term.
    raw_off: i128,
    /// Logical coefficients (`None` when a used level has a symbolic step).
    coefs: Option<Vec<i128>>,
    /// Folded logical offset (`None` when a used level's `lb` is symbolic).
    off: Option<i128>,
}

/// Linearizes `e` as an affine function of the nest's iteration variables.
/// Returns `None` for anything non-affine.
fn linearize(
    e: &P<Expr>,
    ivs: &BTreeMap<DeclId, usize>,
    depth: usize,
) -> Option<(Vec<i128>, i128)> {
    let e = e.ignore_wrappers();
    if let Some(c) = e.eval_const_int() {
        return Some((vec![0; depth], c));
    }
    if let Some(v) = e.as_decl_ref() {
        let k = *ivs.get(&v.id)?;
        let mut coefs = vec![0; depth];
        coefs[k] = 1;
        return Some((coefs, 0));
    }
    match &e.kind {
        ExprKind::Unary(UnOp::Plus, s) => linearize(s, ivs, depth),
        ExprKind::Unary(UnOp::Minus, s) => {
            let (coefs, off) = linearize(s, ivs, depth)?;
            Some((coefs.iter().map(|c| -c).collect(), -off))
        }
        ExprKind::Binary(BinOp::Add, a, b) => {
            let (ca, oa) = linearize(a, ivs, depth)?;
            let (cb, ob) = linearize(b, ivs, depth)?;
            Some((ca.iter().zip(&cb).map(|(x, y)| x + y).collect(), oa + ob))
        }
        ExprKind::Binary(BinOp::Sub, a, b) => {
            let (ca, oa) = linearize(a, ivs, depth)?;
            let (cb, ob) = linearize(b, ivs, depth)?;
            Some((ca.iter().zip(&cb).map(|(x, y)| x - y).collect(), oa - ob))
        }
        ExprKind::Binary(BinOp::Mul, a, b) => {
            let (ca, oa) = linearize(a, ivs, depth)?;
            let (cb, ob) = linearize(b, ivs, depth)?;
            // One side must be constant for the product to stay affine.
            if ca.iter().all(|&c| c == 0) {
                Some((cb.iter().map(|c| c * oa).collect(), ob * oa))
            } else if cb.iter().all(|&c| c == 0) {
                Some((ca.iter().map(|c| c * ob).collect(), oa * ob))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Renders the raw affine form back to source-like text for diagnostics.
fn render_affine(raw: &[i128], off: i128, levels: &[LevelInfo]) -> String {
    let mut s = String::new();
    for (k, &a) in raw.iter().enumerate() {
        if a == 0 {
            continue;
        }
        let name = &levels[k].iv_name;
        if s.is_empty() {
            match a {
                1 => s.push_str(name),
                -1 => s = format!("-{name}"),
                _ => s = format!("{a}*{name}"),
            }
        } else {
            let (sign, m) = if a < 0 { (" - ", -a) } else { (" + ", a) };
            s.push_str(sign);
            if m != 1 {
                s.push_str(&format!("{m}*"));
            }
            s.push_str(name);
        }
    }
    if s.is_empty() {
        return off.to_string();
    }
    match off {
        0 => {}
        o if o > 0 => s.push_str(&format!(" + {o}")),
        o => s.push_str(&format!(" - {}", -o)),
    }
    s
}

/// Splits `a[i][j]…` (parsed as nested `ArraySubscript`s, innermost index
/// outermost in the tree) into its base expression and index chain, outermost
/// dimension first.
pub(crate) fn subscript_chain(e: &P<Expr>) -> (&P<Expr>, Vec<&P<Expr>>) {
    let mut idxs = Vec::new();
    let mut cur = e;
    while let ExprKind::ArraySubscript(b, i) = &cur.ignore_wrappers().kind {
        idxs.push(i);
        cur = b;
    }
    idxs.reverse();
    (cur, idxs)
}

/// Element-count stride of each subscript in an `n`-deep chain over `ty`:
/// the product of the dimension sizes to its right. A single subscript
/// always has stride `[1]` (covers pointers and decayed arrays); a deeper
/// chain needs literal array dimensions to match against, else `None`.
pub(crate) fn element_strides(ty: &P<Type>, n: usize) -> Option<Vec<i128>> {
    if n == 1 {
        return Some(vec![1]);
    }
    let mut dims = Vec::new();
    let mut cur = ty;
    while let TypeKind::Array(el, sz) = &cur.kind {
        dims.push(*sz as i128);
        cur = el;
    }
    if dims.len() != n {
        return None;
    }
    let mut strides = vec![1i128; n];
    for k in (0..n - 1).rev() {
        strides[k] = strides[k + 1] * dims[k + 1];
    }
    Some(strides)
}

// ---------------------------------------------------------------------------
// Access collection
// ---------------------------------------------------------------------------

/// One modeled access: a scalar reference or an array element reference.
struct DepAccess {
    loc: SourceLocation,
    write: bool,
    /// Whether this is an array-element access (a `None` subscript then
    /// means "unmodeled", not "scalar").
    array: bool,
    /// `None` for scalars and for unmodeled subscripts.
    sub: Option<LinSubscript>,
    /// Source-like rendering of the subscript (empty for scalars).
    text: String,
    /// Program-order rank (collection order), used to orient
    /// loop-independent dependences.
    order: usize,
}

struct DepCollector<'a> {
    levels: &'a [LevelInfo],
    ivs: BTreeMap<DeclId, usize>,
    locals: BTreeSet<DeclId>,
    accesses: BTreeMap<DeclId, (String, Vec<DepAccess>)>,
    limits: Vec<(String, String, SourceLocation)>,
    next_order: usize,
}

impl<'a> DepCollector<'a> {
    fn new(levels: &'a [LevelInfo]) -> Self {
        DepCollector {
            levels,
            ivs: levels.iter().enumerate().map(|(k, l)| (l.iv, k)).collect(),
            locals: BTreeSet::new(),
            accesses: BTreeMap::new(),
            limits: Vec::new(),
            next_order: 0,
        }
    }

    /// Classifies a (possibly multi-dimensional) subscript as one affine
    /// function of the iteration variables: the chain's indices are
    /// linearized individually and summed with `strides[k]` — the
    /// element-count stride of dimension `k` — as weights.
    fn classify(
        &mut self,
        name: &str,
        idxs: &[&P<Expr>],
        strides: &[i128],
    ) -> (Option<LinSubscript>, String) {
        let depth = self.levels.len();
        let mut raw = vec![0i128; depth];
        let mut raw_off = 0i128;
        for (idx, &stride) in idxs.iter().zip(strides) {
            let Some((r, o)) = linearize(idx, &self.ivs, depth) else {
                self.limits.push((
                    name.to_string(),
                    "subscript is not affine in the loop iteration variables".to_string(),
                    idx.loc,
                ));
                return (None, String::new());
            };
            for (acc, c) in raw.iter_mut().zip(&r) {
                *acc += stride * c;
            }
            raw_off += stride * o;
        }
        let text = render_affine(&raw, raw_off, self.levels);
        let mut coefs = Some(Vec::with_capacity(depth));
        let mut off = Some(raw_off);
        for (k, &a) in raw.iter().enumerate() {
            if a == 0 {
                if let Some(c) = coefs.as_mut() {
                    c.push(0);
                }
                continue;
            }
            match self.levels[k].step {
                Some(s) => {
                    if let Some(c) = coefs.as_mut() {
                        c.push(a * s);
                    }
                }
                None => coefs = None,
            }
            match self.levels[k].lb {
                Some(lb) => off = off.map(|o| o + a * lb),
                None => off = None,
            }
        }
        (
            Some(LinSubscript {
                raw,
                raw_off,
                coefs,
                off,
            }),
            text,
        )
    }

    fn record(&mut self, e: &P<Expr>, write: bool) {
        let e = e.ignore_wrappers();
        let order = self.next_order;
        self.next_order += 1;
        match &e.kind {
            ExprKind::DeclRef(v) => {
                let (id, name) = (v.id, v.name.clone());
                self.accesses
                    .entry(id)
                    .or_insert_with(|| (name, Vec::new()))
                    .1
                    .push(DepAccess {
                        loc: e.loc,
                        write,
                        array: false,
                        sub: None,
                        text: String::new(),
                        order,
                    });
            }
            ExprKind::ArraySubscript(..) => {
                let (base, idxs) = subscript_chain(e);
                if let Some(v) = base.as_decl_ref() {
                    let (id, name) = (v.id, v.name.clone());
                    let (sub, text) = match element_strides(&v.ty, idxs.len()) {
                        Some(strides) => self.classify(&name, &idxs, &strides),
                        None => {
                            self.limits.push((
                                name.clone(),
                                "subscript chain does not match the array's dimensions".to_string(),
                                e.loc,
                            ));
                            (None, String::new())
                        }
                    };
                    self.accesses
                        .entry(id)
                        .or_insert_with(|| (name, Vec::new()))
                        .1
                        .push(DepAccess {
                            loc: e.loc,
                            write,
                            array: true,
                            sub,
                            text,
                            order,
                        });
                }
            }
            _ => {}
        }
    }
}

impl StmtVisitor for DepCollector<'_> {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::Decl(decls) = &s.kind {
            for d in decls {
                if let Decl::Var(v) = d {
                    self.locals.insert(v.id);
                }
            }
        }
        walk_stmt(self, s);
    }

    fn visit_expr(&mut self, e: &P<Expr>) {
        match &e.kind {
            ExprKind::Binary(op, lhs, rhs) if op.is_assignment() => {
                self.record(lhs, true);
                if *op != BinOp::Assign {
                    self.record(lhs, false);
                }
                for idx in subscript_chain(lhs).1 {
                    self.visit_expr(idx);
                }
                self.visit_expr(rhs);
            }
            ExprKind::Unary(op, sub) if op.is_inc_dec() => {
                self.record(sub, true);
                self.record(sub, false);
                for idx in subscript_chain(sub).1 {
                    self.visit_expr(idx);
                }
            }
            ExprKind::DeclRef(_) => self.record(e, false),
            ExprKind::ArraySubscript(..) => {
                self.record(e, false);
                for idx in subscript_chain(e).1 {
                    self.visit_expr(idx);
                }
            }
            _ => walk_expr(self, e),
        }
    }
}

// ---------------------------------------------------------------------------
// The subscript tests
// ---------------------------------------------------------------------------

/// Outcome of solving one access pair.
enum Solve {
    /// Provably no common element.
    Independent,
    /// Exhaustive list of iteration-difference vectors (`None` = any value).
    Solutions(Vec<Vec<Option<i128>>>),
    /// The tests do not apply — dependence unknown.
    GiveUp,
}

pub(crate) fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Caps that keep the MIV enumeration trivially cheap.
const MAX_CANDIDATES_PER_LEVEL: i128 = 16;
const MAX_SOLUTIONS: usize = 8;

/// Solves `sum_k c_k * d_k == target` for the per-level iteration
/// differences `d_k`, with `|d_k| <= bound_k` where known. Levels with a
/// zero coefficient are unconstrained (`None` in the solution vector).
fn solve_equal_coefs(coefs: &[i128], bounds: &[Option<i128>], target: i128) -> Solve {
    let live: Vec<usize> = (0..coefs.len()).filter(|&k| coefs[k] != 0).collect();
    if live.is_empty() {
        return if target == 0 {
            Solve::Solutions(vec![vec![None; coefs.len()]])
        } else {
            Solve::Independent
        };
    }
    let g = live.iter().fold(0, |g, &k| gcd(g, coefs[k]));
    if target % g != 0 {
        return Solve::Independent;
    }
    // Recursive enumeration over the live levels, largest |c| first so the
    // candidate windows stay small.
    let mut order = live.clone();
    order.sort_by_key(|&k| std::cmp::Reverse(coefs[k].abs()));
    let mut solutions: Vec<Vec<Option<i128>>> = Vec::new();
    let mut gave_up = false;
    fn recurse(
        order: &[usize],
        coefs: &[i128],
        bounds: &[Option<i128>],
        target: i128,
        partial: &mut Vec<(usize, i128)>,
        solutions: &mut Vec<Vec<Option<i128>>>,
        gave_up: &mut bool,
    ) {
        if *gave_up {
            return;
        }
        let Some((&k, rest)) = order.split_first() else {
            if target == 0 {
                if solutions.len() >= MAX_SOLUTIONS {
                    *gave_up = true;
                    return;
                }
                let mut sol = vec![None; coefs.len()];
                for &(lvl, v) in partial.iter() {
                    sol[lvl] = Some(v);
                }
                solutions.push(sol);
            }
            return;
        };
        let c = coefs[k];
        if rest.is_empty() {
            // Exact solve on the last live level: no bound needed.
            if target % c == 0 {
                let d = target / c;
                if bounds[k].is_none_or(|b| d.abs() <= b) {
                    partial.push((k, d));
                    recurse(rest, coefs, bounds, 0, partial, solutions, gave_up);
                    partial.pop();
                }
            }
            return;
        }
        // The remaining levels can absorb at most `slack`; that bounds this
        // level's candidate window. Every remaining level needs a known
        // trip count for the window to be finite.
        let mut slack: i128 = 0;
        for &j in rest {
            match bounds[j] {
                Some(b) => slack += coefs[j].abs() * b,
                None => {
                    *gave_up = true;
                    return;
                }
            }
        }
        // `c*d` must land in `[target - slack, target + slack]`. Normalize
        // to a positive divisor so the euclidean roundings are exact.
        let (cc, tlo, thi) = if c > 0 {
            (c, target - slack, target + slack)
        } else {
            (-c, -(target + slack), -(target - slack))
        };
        let ceil_div = |a: i128, b: i128| -(-a).div_euclid(b);
        let (mut lo, mut hi) = (ceil_div(tlo, cc), thi.div_euclid(cc));
        if let Some(b) = bounds[k] {
            lo = lo.max(-b);
            hi = hi.min(b);
        } else {
            *gave_up = true;
            return;
        }
        if hi - lo + 1 > MAX_CANDIDATES_PER_LEVEL {
            *gave_up = true;
            return;
        }
        for d in lo..=hi {
            partial.push((k, d));
            recurse(
                rest,
                coefs,
                bounds,
                target - c * d,
                partial,
                solutions,
                gave_up,
            );
            partial.pop();
            if *gave_up {
                return;
            }
        }
    }
    let mut partial = Vec::new();
    recurse(
        &order,
        coefs,
        bounds,
        target,
        &mut partial,
        &mut solutions,
        &mut gave_up,
    );
    if gave_up {
        Solve::GiveUp
    } else if solutions.is_empty() {
        Solve::Independent
    } else {
        Solve::Solutions(solutions)
    }
}

/// Dependence test for two accesses of the same array inside one nest.
/// Solutions are iteration differences `K(second) - K(first)`.
fn test_pair(x: &LinSubscript, y: &LinSubscript, levels: &[LevelInfo]) -> Solve {
    let bounds: Vec<Option<i128>> = levels.iter().map(|l| l.max_iter).collect();
    // Equal raw coefficient vectors: the loop bounds cancel, so this works
    // even with symbolic `lb` — covers ZIV (all zero), strong SIV and the
    // equal-coefficient MIV (linearized `a[i*M + j]`) cases.
    if x.raw == y.raw {
        return match (&x.coefs, &y.coefs) {
            (Some(cx), Some(_)) => solve_equal_coefs(cx, &bounds, x.raw_off - y.raw_off),
            _ => Solve::GiveUp,
        };
    }
    // Unequal coefficients need the fully folded logical form.
    let (Some(cx), Some(cy), Some(ox), Some(oy)) = (&x.coefs, &y.coefs, x.off, y.off) else {
        return Solve::GiveUp;
    };
    // Levels used by both with equal coefficients still cancel; the test
    // applies when at most one level differs (the weak SIV family).
    let diff: Vec<usize> = (0..cx.len()).filter(|&k| cx[k] != cy[k]).collect();
    if diff.len() != 1 {
        return Solve::GiveUp;
    }
    let k = diff[0];
    if (0..cx.len()).any(|j| j != k && cx[j] != 0) {
        // Coupled subscript (e.g. `a[i*M + j]` vs `a[i*M + 2*j]`) — out of
        // scope for the single-subscript tests.
        return Solve::GiveUp;
    }
    let (a, b) = (cx[k], cy[k]);
    // `a*K1 + ox == b*K2 + oy` with `K1 in [0, bound]`, `K2 in [0, bound]`.
    let d = oy - ox;
    if gcd(a, b) == 0 || d % gcd(a, b) != 0 {
        return Solve::Independent;
    }
    // Weak-zero SIV: one side ignores the level entirely. When the pinned
    // iteration provably lies outside the loop, there is no dependence.
    if a == 0 || b == 0 {
        let (c, rhs) = if a == 0 { (b, -d) } else { (a, d) };
        if rhs % c != 0 {
            return Solve::Independent;
        }
        let pinned = rhs / c;
        if pinned < 0 || bounds[k].is_some_and(|bnd| pinned > bnd) {
            return Solve::Independent;
        }
    }
    // A dependence may exist at unpredictable distances: direction `*` at
    // level k, `*` everywhere else the subscript leaves free.
    let mut sol = vec![None; cx.len()];
    sol[k] = None;
    Solve::Solutions(vec![sol])
}

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

fn level_info(levels: &[NestLevel]) -> Vec<LevelInfo> {
    levels
        .iter()
        .map(|l| {
            let a = &l.analysis;
            let mag = a.step.eval_const_int();
            let step = mag.map(|m| match a.direction {
                LoopDirection::Up => m,
                LoopDirection::Down => -m,
            });
            LevelInfo {
                iv: a.iter_var.id,
                iv_name: a.iter_var.name.clone(),
                step,
                lb: a.lb.eval_const_int(),
                max_iter: a.const_trip_count().map(|tc| i128::from(tc).max(1) - 1),
            }
        })
        .collect()
}

/// Turns one solution vector into a normalized [`Dependence`], or `None`
/// for the self-pair same-iteration case.
fn make_dependence(
    name: &str,
    x: &DepAccess,
    y: &DepAccess,
    sol: &[Option<i128>],
    same_access: bool,
) -> Option<Dependence> {
    let all_eq = sol.iter().all(|d| *d == Some(0));
    if all_eq && same_access {
        return None; // an access does not depend on itself within an iteration
    }
    // Orient the dependence source → sink: flip when the leading non-zero
    // distance is negative, or (for loop-independent dependences) when the
    // sink precedes the source in program order.
    let leading = sol.iter().flatten().find(|&&d| d != 0);
    let flip = match leading {
        Some(&d) => {
            // `Any` entries outrank the first fixed distance; they already
            // cover both orientations, so keep the pair order.
            let first_any = sol.iter().position(Option::is_none);
            let first_fixed = sol.iter().position(|v| matches!(v, Some(x) if *x != 0));
            match (first_any, first_fixed) {
                (Some(a), Some(f)) if a < f => false,
                _ => d < 0,
            }
        }
        None => sol.iter().all(Option::is_some) && y.order < x.order,
    };
    let (src, dst, dists): (&DepAccess, &DepAccess, Vec<Option<i128>>) = if flip {
        (y, x, sol.iter().map(|d| d.map(|v| -v)).collect())
    } else {
        (x, y, sol.to_vec())
    };
    let directions = dists
        .iter()
        .map(|d| match d {
            None => Direction::Any,
            Some(0) => Direction::Eq,
            Some(v) if *v > 0 => Direction::Lt,
            Some(_) => Direction::Gt,
        })
        .collect();
    let kind = match (src.write, dst.write) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (false, false) => return None,
    };
    Some(Dependence {
        name: name.to_string(),
        kind,
        src: (src.text.clone(), src.loc),
        dst: (dst.text.clone(), dst.loc),
        directions,
        distances: dists,
    })
}

impl DependenceGraph {
    /// Computes the dependence graph of a resolved literal nest. Vectors are
    /// expressed over all `levels` (outermost first); accesses that defeat
    /// the subscript tests are listed in [`DependenceGraph::limits`].
    pub fn compute(levels: &[NestLevel]) -> DependenceGraph {
        omplt_trace::count("analysis.depend.graphs", 1);
        let info = level_info(levels);
        let mut col = DepCollector::new(&info);
        col.visit_stmt(&levels[levels.len() - 1].analysis.body);

        let mut deps: Vec<Dependence> = Vec::new();
        let mut limits = std::mem::take(&mut col.limits);
        for (id, (name, accesses)) in &col.accesses {
            if col.ivs.contains_key(id) || col.locals.contains(id) {
                continue;
            }
            if !accesses.iter().any(|a| a.write) {
                continue;
            }
            // Scalar writes: the variable is live across iterations, which
            // carries a dependence at every level.
            if let Some(w) = accesses.iter().find(|a| a.write && !a.array) {
                let other = accesses
                    .iter()
                    .find(|a| !std::ptr::eq::<DepAccess>(*a, w))
                    .unwrap_or(w);
                deps.push(Dependence {
                    name: name.clone(),
                    kind: if other.write {
                        DepKind::Output
                    } else {
                        DepKind::Flow
                    },
                    src: (String::new(), w.loc),
                    dst: (String::new(), other.loc),
                    directions: vec![Direction::Any; levels.len()],
                    distances: vec![None; levels.len()],
                });
                continue;
            }
            for (i, x) in accesses.iter().enumerate() {
                for y in &accesses[i..] {
                    let same_access = std::ptr::eq::<DepAccess>(x, y);
                    if !x.write && !y.write {
                        continue;
                    }
                    let (Some(sx), Some(sy)) = (&x.sub, &y.sub) else {
                        continue; // already recorded in `limits`
                    };
                    match test_pair(sx, sy, &info) {
                        Solve::Independent => {}
                        Solve::Solutions(sols) => {
                            for sol in &sols {
                                if let Some(d) = make_dependence(name, x, y, sol, same_access) {
                                    deps.push(d);
                                }
                            }
                        }
                        Solve::GiveUp => {
                            limits.push((
                                name.clone(),
                                format!("cannot relate subscripts '{}' and '{}'", x.text, y.text),
                                y.loc,
                            ));
                        }
                    }
                }
            }
        }
        omplt_trace::count("analysis.depend.deps", deps.len() as u64);
        DependenceGraph {
            depth: levels.len(),
            deps,
            limits,
        }
    }
}

// ---------------------------------------------------------------------------
// The directive checks
// ---------------------------------------------------------------------------

struct DependVisitor<'d> {
    diags: &'d DiagnosticsEngine,
}

impl StmtVisitor for DependVisitor<'_> {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::OMP(d) = &s.kind {
            match d.kind {
                OMPDirectiveKind::Interchange => self.check_interchange(d),
                OMPDirectiveKind::Reverse => self.check_reverse(d),
                OMPDirectiveKind::Fuse => self.check_fuse(d),
                k if k.has_simd() => self.check_simd(d),
                _ => {}
            }
        }
        walk_stmt(self, s);
    }
}

/// Extends a nest resolution below the directive's own depth while the nest
/// stays literal and perfect — deeper levels sharpen the direction vectors
/// (they turn `a[i*M + j]` from "not affine" into an exact MIV solve).
fn resolve_deep(stmt: &P<Stmt>, min_depth: usize) -> Option<Vec<NestLevel>> {
    const MAX_DEPTH: usize = 4;
    let mut best = resolve_literal_nest(stmt, min_depth)?;
    for depth in min_depth + 1..=MAX_DEPTH {
        match resolve_literal_nest(stmt, depth) {
            Some(levels) if levels[min_depth..].iter().all(|l| l.intervening.is_empty()) => {
                best = levels;
            }
            _ => break,
        }
    }
    Some(best)
}

impl DependVisitor<'_> {
    fn analysis_limit(&self, loc: SourceLocation, pragma: &str, why: &str, notes: Vec<Diagnostic>) {
        omplt_trace::count("analysis.depend.limit", 1);
        self.diags.report_with_notes(
            Level::Warning,
            loc,
            format!("cannot verify the legality of '{pragma}': {why} [-Wanalysis-limit]"),
            notes,
        );
    }

    fn limit_notes(limits: &[(String, String, SourceLocation)]) -> Vec<Diagnostic> {
        limits
            .iter()
            .take(3)
            .map(|(name, why, loc)| Diagnostic::note(*loc, format!("'{name}': {why}")))
            .collect()
    }

    fn violation(&self, d: &P<OMPDirective>, pragma: &str, why: String, dep: &Dependence) {
        omplt_trace::count("analysis.depend.illegal", 1);
        let sub = |(text, _): &(String, SourceLocation)| -> String {
            if text.is_empty() {
                String::new()
            } else {
                format!("[{text}]")
            }
        };
        self.diags.report_with_notes(
            Level::Error,
            d.loc,
            format!("'{pragma}' is illegal here: {why}"),
            vec![
                Diagnostic::note(
                    dep.src.1,
                    format!(
                        "dependence source: access to '{}{}'",
                        dep.name,
                        sub(&dep.src)
                    ),
                ),
                Diagnostic::note(
                    dep.dst.1,
                    format!(
                        "dependence sink: access to '{}{}' (distance vector {})",
                        dep.name,
                        sub(&dep.dst),
                        dep.distance_vector()
                    ),
                ),
            ],
        );
    }

    /// Resolves the nest of a single-nest directive, reporting analysis
    /// limits (unresolvable or imperfect nests, unmodeled accesses).
    fn graph_for(
        &self,
        d: &P<OMPDirective>,
        pragma: &str,
        depth: usize,
    ) -> Option<DependenceGraph> {
        let assoc = d.associated.as_ref()?;
        let Some(levels) = resolve_deep(assoc, depth) else {
            self.analysis_limit(d.loc, pragma, "the loop nest is not analyzable", Vec::new());
            return None;
        };
        if levels[..depth].iter().any(|l| !l.intervening.is_empty()) {
            self.analysis_limit(
                d.loc,
                pragma,
                "the loop nest is not perfectly nested",
                Vec::new(),
            );
            return None;
        }
        let graph = DependenceGraph::compute(&levels);
        if !graph.is_complete() {
            self.analysis_limit(
                d.loc,
                pragma,
                "some accesses are beyond the dependence tests",
                Self::limit_notes(&graph.limits),
            );
        }
        Some(graph)
    }

    fn check_interchange(&mut self, d: &P<OMPDirective>) {
        let pragma = d.pragma_text();
        let perm: Vec<usize> = match d.permutation_clause() {
            Some(es) => {
                let vals: Option<Vec<usize>> = es
                    .iter()
                    .map(|e| e.eval_const_int().and_then(|v| usize::try_from(v).ok()))
                    .collect();
                match vals {
                    // 1-based in source; Sema has already validated it.
                    Some(v) if is_permutation(&v) => v.iter().map(|p| p - 1).collect(),
                    _ => return,
                }
            }
            None => vec![1, 0],
        };
        let Some(graph) = self.graph_for(d, &pragma, perm.len()) else {
            return;
        };
        if let Some(dep) = graph.interchange_violation(&perm) {
            self.violation(
                d,
                &pragma,
                format!(
                    "interchanging the loops would reverse the {} dependence on '{}' \
                     with direction vector {}",
                    dep.kind,
                    dep.name,
                    dep.direction_vector()
                ),
                dep,
            );
        }
    }

    /// `simd` (and the `for simd` composites) promise that consecutive
    /// iterations may execute as concurrent lanes. Anti dependences survive
    /// (the lane model preserves in-chunk textual order); a loop-carried
    /// flow or output dependence is illegal unless its distance leaves room
    /// for at least two lanes — or unless `safelen` already caps the lane
    /// span at or below the distance.
    fn check_simd(&mut self, d: &P<OMPDirective>) {
        let pragma = d.pragma_text();
        let Some(graph) = self.graph_for(d, &pragma, 1) else {
            return;
        };
        let safelen = d.safelen_value();
        // Variables the directive privatizes per lane carry no cross-lane
        // dependence: each lane gets its own copy (reductions combine after
        // the loop).
        let privatized: std::collections::HashSet<String> = d
            .clauses
            .iter()
            .flat_map(|c| match &c.kind {
                OMPClauseKind::Reduction { vars, .. }
                | OMPClauseKind::Private(vars)
                | OMPClauseKind::FirstPrivate(vars) => vars.as_slice(),
                _ => &[],
            })
            .filter_map(|e| e.as_decl_ref().map(|v| v.name.clone()))
            .collect();
        for dep in graph.deps.iter().filter(|p| p.carried_level() == Some(0)) {
            if dep.kind == DepKind::Anti || privatized.contains(&dep.name) {
                continue;
            }
            let illegal = match dep.distances[0] {
                Some(dist) => match safelen {
                    // The user-asserted lane span must not exceed the
                    // provable dependence distance.
                    Some(s) => u128::from(s) > dist.unsigned_abs(),
                    // No cap: distance 1 forbids any lane pair; distance
                    // >= 2 still admits a narrower vector (the backend
                    // clamps its width to the distance).
                    None => dist.unsigned_abs() < 2,
                },
                None => true, // carried at an unprovable distance
            };
            if illegal {
                self.violation(
                    d,
                    &pragma,
                    format!(
                        "concurrent lanes would violate the loop-carried {} dependence on '{}' with distance vector {}",
                        dep.kind,
                        dep.name,
                        dep.distance_vector()
                    ),
                    dep,
                );
                return;
            }
        }
    }

    fn check_reverse(&mut self, d: &P<OMPDirective>) {
        let pragma = d.pragma_text();
        let Some(graph) = self.graph_for(d, &pragma, 1) else {
            return;
        };
        if let Some(dep) = graph.carried_at(0) {
            self.violation(
                d,
                &pragma,
                format!(
                    "the loop carries a {} dependence on '{}' with direction vector {}",
                    dep.kind,
                    dep.name,
                    dep.direction_vector()
                ),
                dep,
            );
        }
    }

    fn check_fuse(&mut self, d: &P<OMPDirective>) {
        let pragma = d.pragma_text();
        let Some(assoc) = &d.associated else { return };
        let stmts: Vec<P<Stmt>> = match &assoc.kind {
            StmtKind::Compound(ss) => ss.iter().map(P::clone).collect(),
            _ => return,
        };
        let mut loops: Vec<NestLevel> = Vec::new();
        for s in &stmts {
            match resolve_literal_nest(s, 1) {
                Some(mut lv) => loops.push(lv.pop().expect("depth-1 nest has one level")),
                None => {
                    self.analysis_limit(
                        d.loc,
                        &pragma,
                        "the loop sequence is not analyzable",
                        Vec::new(),
                    );
                    return;
                }
            }
        }
        if loops.len() < 2 {
            return; // Sema diagnoses this
        }
        // Collect each loop's accesses in its own logical space.
        let infos: Vec<Vec<LevelInfo>> = loops
            .iter()
            .map(|l| level_info(std::slice::from_ref(l)))
            .collect();
        let mut collected = Vec::with_capacity(loops.len());
        let mut limits: Vec<(String, String, SourceLocation)> = Vec::new();
        for (l, info) in loops.iter().zip(&infos) {
            let mut col = DepCollector::new(info);
            col.visit_stmt(&l.analysis.body);
            limits.append(&mut col.limits);
            collected.push(col);
        }
        omplt_trace::count("analysis.depend.graphs", 1);
        if !limits.is_empty() {
            self.analysis_limit(
                d.loc,
                &pragma,
                "some accesses are beyond the dependence tests",
                Self::limit_notes(&limits),
            );
        }
        // Cross-loop pairs: an access in loop p against one in loop q > p.
        for p in 0..collected.len() {
            for q in p + 1..collected.len() {
                if let Some((dep, why)) = self.fuse_pair(&collected[p], &collected[q]) {
                    match dep {
                        Some(dep) => {
                            self.violation(
                                d,
                                &pragma,
                                format!(
                                    "fusing loops {} and {} creates a negative-distance {} \
                                     dependence on '{}' (distance {})",
                                    p + 1,
                                    q + 1,
                                    dep.kind,
                                    dep.name,
                                    dep.distances[0].map_or("*".to_string(), |v| v.to_string())
                                ),
                                &dep,
                            );
                        }
                        None => {
                            self.analysis_limit(d.loc, &pragma, &why, Vec::new());
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Tests every same-variable access pair across two fused loops.
    /// Returns `Some((Some(dep), _))` for a proven violation,
    /// `Some((None, why))` when a pair defeats the tests.
    #[allow(clippy::type_complexity)]
    fn fuse_pair(
        &self,
        first: &DepCollector<'_>,
        second: &DepCollector<'_>,
    ) -> Option<(Option<Dependence>, String)> {
        for (id, (name, xs)) in &first.accesses {
            if first.locals.contains(id) || first.ivs.contains_key(id) {
                continue;
            }
            let Some((_, ys)) = second.accesses.get(id) else {
                continue;
            };
            if second.locals.contains(id) || second.ivs.contains_key(id) {
                continue;
            }
            for x in xs {
                for y in ys {
                    if !x.write && !y.write {
                        continue;
                    }
                    let kind = match (x.write, y.write) {
                        (true, true) => DepKind::Output,
                        (true, false) => DepKind::Flow,
                        (false, true) => DepKind::Anti,
                        (false, false) => unreachable!(),
                    };
                    if (x.array && x.sub.is_none()) || (y.array && y.sub.is_none()) {
                        continue; // unmodeled subscript — already in `limits`
                    }
                    // Scalar touched in both loops with a write involved:
                    // every iteration pair is related — fusion reorders it.
                    let (Some(sx), Some(sy)) = (&x.sub, &y.sub) else {
                        return Some((
                            Some(Dependence {
                                name: name.clone(),
                                kind,
                                src: (x.text.clone(), x.loc),
                                dst: (y.text.clone(), y.loc),
                                directions: vec![Direction::Any],
                                distances: vec![None],
                            }),
                            String::new(),
                        ));
                    };
                    // Different iteration spaces: everything must fold to
                    // constants. `cx*K1 + ox == cy*K2 + oy`.
                    let (Some(cx), Some(cy), Some(ox), Some(oy)) =
                        (&sx.coefs, &sy.coefs, sx.off, sy.off)
                    else {
                        return Some((
                            None,
                            format!("the bounds of the loops accessing '{name}' are not constant"),
                        ));
                    };
                    let (a, b) = (cx[0], cy[0]);
                    let d = ox - oy;
                    if a == 0 && b == 0 {
                        if d != 0 {
                            continue; // distinct elements
                        }
                        // Same element in both loops: after fusion, early
                        // iterations of the second body see late iterations
                        // of the first — a negative-distance instance.
                        return Some((
                            Some(Dependence {
                                name: name.clone(),
                                kind,
                                src: (x.text.clone(), x.loc),
                                dst: (y.text.clone(), y.loc),
                                directions: vec![Direction::Any],
                                distances: vec![None],
                            }),
                            String::new(),
                        ));
                    }
                    if a == b {
                        // Strong SIV across the loops: K2 - K1 == (ox-oy)/a.
                        if d % a != 0 {
                            continue;
                        }
                        let dist = d / a;
                        if dist < 0 {
                            return Some((
                                Some(Dependence {
                                    name: name.clone(),
                                    kind,
                                    src: (x.text.clone(), x.loc),
                                    dst: (y.text.clone(), y.loc),
                                    directions: vec![Direction::Gt],
                                    distances: vec![Some(dist)],
                                }),
                                String::new(),
                            ));
                        }
                        continue;
                    }
                    if gcd(a, b) != 0 && d % gcd(a, b) != 0 {
                        continue; // no integer solution at all
                    }
                    return Some((
                        None,
                        format!(
                            "cannot relate subscripts '{}' and '{}' of '{name}' across \
                             the fused loops",
                            x.text, y.text
                        ),
                    ));
                }
            }
        }
        None
    }
}

fn is_permutation(v: &[usize]) -> bool {
    let n = v.len();
    let mut seen = vec![false; n];
    v.iter()
        .all(|&p| (1..=n).contains(&p) && !std::mem::replace(&mut seen[p - 1], true))
}
