//! Literal-loop-nest resolution shared by the analysis passes.
//!
//! The passes run *after* Sema, so every canonical-loop analysis here is
//! quiet: a loop Sema already rejected is simply skipped (returning `None`)
//! instead of being diagnosed a second time.

use omplt_ast::{ASTContext, Stmt, StmtKind, P};
use omplt_sema::{analyze_canonical_loop, CanonicalLoopAnalysis};
use omplt_source::DiagnosticsEngine;

/// One level of a resolved literal loop nest.
pub struct NestLevel {
    /// Canonical-loop analysis of this level's loop.
    pub analysis: CanonicalLoopAnalysis,
    /// Statements sharing this level's enclosing block with the loop.
    /// Non-empty only when the nest is imperfect at this level (level 0 is
    /// the directive's associated statement itself and has no siblings).
    pub intervening: Vec<P<Stmt>>,
}

/// Strips the wrappers Sema may have placed between a directive and its
/// loops: attributes, `OMPCanonicalLoop` meta nodes, `CapturedStmt`
/// outlining, singleton compounds, and nested transformation directives
/// (followed through `get_transformed_stmt()`, exactly as a consuming
/// directive would).
fn peel(stmt: &P<Stmt>) -> Option<P<Stmt>> {
    match &stmt.kind {
        StmtKind::Attributed { sub, .. } => peel(sub),
        StmtKind::OMPCanonicalLoop(cl) => peel(&cl.loop_stmt),
        StmtKind::Captured(c) => peel(&c.decl.body),
        StmtKind::Compound(ss) if ss.len() == 1 => peel(&ss[0]),
        StmtKind::OMP(d) => d.get_transformed_stmt().and_then(peel),
        _ => Some(P::clone(stmt)),
    }
}

/// Whether `stmt` stands for a loop once wrappers are peeled.
fn is_loop_like(stmt: &P<Stmt>) -> bool {
    peel(stmt).is_some_and(|s| s.is_loop())
}

/// Resolves `depth` nested literal loops under `stmt`, analyzing each level
/// quietly. Returns `None` when the nest cannot be resolved (malformed loop,
/// missing level, or an unexpanded nested directive) — Sema has already
/// reported those cases.
pub fn resolve_literal_nest(stmt: &P<Stmt>, depth: usize) -> Option<Vec<NestLevel>> {
    let ctx = ASTContext::new();
    let quiet = DiagnosticsEngine::new();
    let mut levels = Vec::with_capacity(depth);
    let mut cur = P::clone(stmt);
    for _ in 0..depth {
        let peeled = peel(&cur)?;
        let (intervening, loop_stmt) = match &peeled.kind {
            StmtKind::Compound(ss) => {
                let pos = ss.iter().position(is_loop_like)?;
                let siblings = ss
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, s)| P::clone(s))
                    .collect();
                (siblings, peel(&ss[pos])?)
            }
            _ => (Vec::new(), peeled),
        };
        let analysis = analyze_canonical_loop(&ctx, &quiet, &loop_stmt, "loop analysis")?;
        cur = P::clone(&analysis.body);
        levels.push(NestLevel {
            analysis,
            intervening,
        });
    }
    Some(levels)
}
