//! Transformation-legality checking: validates OpenMP 5.1 preconditions that
//! Sema's transformation machinery silently tolerates.
//!
//! Sema already enforces canonical loop form (§4.4.1), positive
//! `partial`/`sizes`/`collapse` arguments, the no-`break` rule and
//! rectangularity of the nest. This pass owns the two gaps:
//!
//! * **perfect nesting** — `tile sizes(s1, …, sn)` and `collapse(n)` with
//!   n ≥ 2 require the n associated loops to be perfectly nested; Sema's
//!   prologue splitting hoists intervening declarations out of the nest,
//!   which miscompiles when they depend on an outer iteration variable;
//! * **no `return` escaping the nest** — a structured block must be exited
//!   only at its end; Sema rejects `break` but not `return`.

use crate::nest::resolve_literal_nest;
use omplt_ast::{
    walk_stmt, Decl, OMPDirective, OMPDirectiveKind, Stmt, StmtKind, StmtVisitor, TranslationUnit,
    P,
};
use omplt_source::{Diagnostic, DiagnosticsEngine, Level, SourceLocation};

/// Checks every OpenMP directive in `tu`, reporting violations to `diags`.
pub fn check_translation_unit(tu: &TranslationUnit, diags: &DiagnosticsEngine) {
    let mut v = LegalityVisitor { diags };
    for d in &tu.decls {
        if let Decl::Function(f) = d {
            if let Some(body) = f.body.borrow().as_ref() {
                v.visit_stmt(body);
            }
        }
    }
}

struct LegalityVisitor<'d> {
    diags: &'d DiagnosticsEngine,
}

impl StmtVisitor for LegalityVisitor<'_> {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::OMP(d) = &s.kind {
            self.check_directive(d);
        }
        walk_stmt(self, s);
    }
}

impl LegalityVisitor<'_> {
    fn check_directive(&mut self, d: &P<OMPDirective>) {
        let depth = match d.kind {
            OMPDirectiveKind::Tile => d.sizes_clause().map_or(0, <[_]>::len),
            OMPDirectiveKind::Unroll | OMPDirectiveKind::Reverse | OMPDirectiveKind::Fuse => 1,
            OMPDirectiveKind::Interchange => d.permutation_clause().map_or(2, <[_]>::len).max(2),
            k if k.is_loop_directive() => d.collapse_depth(),
            _ => 0,
        };
        if depth == 0 {
            return;
        }
        let Some(assoc) = &d.associated else { return };
        let pragma = d.pragma_text();
        self.check_returns(assoc, d, &pragma);
        if depth < 2 {
            return;
        }
        let Some(levels) = resolve_literal_nest(assoc, depth) else {
            // Sema has already rejected malformed loops with a hard error;
            // anything else (a non-literal nest, a level hidden behind an
            // unexpanded construct) is beyond this pass, and silence would
            // read as a clean bill of health.
            if !self.diags.has_errors() {
                self.diags.report(
                    Level::Warning,
                    d.loc,
                    format!(
                        "cannot verify that '{pragma}' is associated with {depth} \
                         perfectly nested loops [-Wanalysis-limit]"
                    ),
                );
            }
            return;
        };
        for (lvl, level) in levels.iter().enumerate().skip(1) {
            for s in &level.intervening {
                self.diags.report_with_notes(
                    Level::Error,
                    s.loc,
                    format!(
                        "loop nest after '{pragma}' must be perfectly nested: \
                         statement is not part of the loop at depth {}",
                        lvl + 1
                    ),
                    vec![Diagnostic::note(
                        d.loc,
                        format!("'{pragma}' requires {depth} perfectly nested loops here"),
                    )],
                );
            }
        }
    }

    /// Reports every `return` in the associated region. Nested directives
    /// are skipped: they check their own associated statement.
    fn check_returns(&mut self, body: &P<Stmt>, d: &P<OMPDirective>, pragma: &str) {
        struct Finder {
            rets: Vec<SourceLocation>,
        }
        impl StmtVisitor for Finder {
            fn visit_stmt(&mut self, s: &P<Stmt>) {
                match &s.kind {
                    StmtKind::Return(_) => self.rets.push(s.loc),
                    StmtKind::OMP(_) => {}
                    _ => walk_stmt(self, s),
                }
            }
        }
        let mut f = Finder { rets: Vec::new() };
        f.visit_stmt(body);
        for loc in f.rets {
            self.diags.report_with_notes(
                Level::Error,
                loc,
                format!("cannot 'return' out of the loop nest associated with '{pragma}'"),
                vec![Diagnostic::note(
                    d.loc,
                    format!("enclosing '{pragma}' construct begins here"),
                )],
            );
        }
    }
}
