//! Data-race detection for `#pragma omp parallel for`.
//!
//! Variable references in the associated loop nest are classified as
//! **private** (iteration variables, locally-declared variables, and
//! `private`/`firstprivate` clause entries) or **shared** (everything else,
//! matching OpenMP's default data-sharing for variables declared outside the
//! construct). Two patterns are reported as `-Wrace` warnings:
//!
//! * a **write to a shared scalar** — every iteration races on the same
//!   object (unless it is a `reduction` variable);
//! * a **loop-carried array conflict** — a write to `a[c1*i + o1]` combined
//!   with any access to `a[c2*i + o2]` that a different iteration can reach
//!   (two scaled-affine subscripts collide when `gcd(c1, c2)` divides
//!   `o2 - o1`), or a write through a constant subscript, makes iterations
//!   touch each other's elements.
//!
//! Subscripts that are not affine in an iteration variable (`a[idx[i]]`,
//! `a[i * j]`, …) are conservatively ignored — no warning is better than a
//! false one.

use crate::depend::{element_strides, gcd, subscript_chain};
use crate::nest::resolve_literal_nest;
use omplt_ast::{
    walk_expr, walk_stmt, BinOp, Decl, DeclId, Expr, ExprKind, OMPClauseKind, OMPDirective,
    OMPDirectiveKind, Stmt, StmtKind, StmtVisitor, TranslationUnit, UnOp, P,
};
use omplt_source::{Diagnostic, DiagnosticsEngine, Level, SourceLocation};
use std::collections::{BTreeMap, BTreeSet};

/// Checks every `parallel for` in `tu`, reporting races to `diags`.
pub fn check_translation_unit(tu: &TranslationUnit, diags: &DiagnosticsEngine) {
    let mut v = RaceVisitor { diags };
    for d in &tu.decls {
        if let Decl::Function(f) = d {
            if let Some(body) = f.body.borrow().as_ref() {
                v.visit_stmt(body);
            }
        }
    }
}

struct RaceVisitor<'d> {
    diags: &'d DiagnosticsEngine,
}

impl StmtVisitor for RaceVisitor<'_> {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::OMP(d) = &s.kind {
            if d.kind == OMPDirectiveKind::ParallelFor {
                self.check_parallel_for(d);
            }
        }
        walk_stmt(self, s);
    }
}

/// Shape of an array subscript, as far as the detector can see.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Subscript {
    /// `coef * iv + offset` (coef is nonzero; either may be negative, so
    /// `a[2*i]`, `a[c - i]` and `a[i - 1]` are all analyzed).
    Affine {
        iv: DeclId,
        coef: i128,
        offset: i128,
    },
    /// A compile-time constant.
    Constant(i128),
    /// Anything else — conservatively not analyzed.
    Other,
}

/// One read or write of a variable inside the loop body.
struct Access {
    loc: SourceLocation,
    write: bool,
    /// `None` for a scalar access, `Some` for an array-element access.
    subscript: Option<Subscript>,
}

/// Collects per-variable accesses over a loop body.
struct Collector {
    ivs: BTreeSet<DeclId>,
    locals: BTreeSet<DeclId>,
    accesses: BTreeMap<DeclId, (String, Vec<Access>)>,
}

impl Collector {
    fn push(&mut self, var: &omplt_ast::VarDecl, access: Access) {
        self.accesses
            .entry(var.id)
            .or_insert_with(|| (var.name.clone(), Vec::new()))
            .1
            .push(access);
    }

    /// Records the variable (scalar or array element) designated by `e`.
    fn record(&mut self, e: &P<Expr>, write: bool) {
        let e = e.ignore_wrappers();
        match &e.kind {
            ExprKind::DeclRef(v) => {
                self.push(
                    v,
                    Access {
                        loc: e.loc,
                        write,
                        subscript: None,
                    },
                );
            }
            ExprKind::ArraySubscript(..) => {
                let (base, idxs) = subscript_chain(e);
                if let Some(v) = base.as_decl_ref() {
                    let subscript = Some(match element_strides(&v.ty, idxs.len()) {
                        Some(strides) => self.classify_chain(&idxs, &strides),
                        None => Subscript::Other,
                    });
                    let v = P::clone(v);
                    self.push(
                        &v,
                        Access {
                            loc: e.loc,
                            write,
                            subscript,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    /// Classifies a (possibly multi-dimensional) subscript chain as one
    /// scaled-affine form, weighting each dimension's index by its
    /// element-count stride.
    fn classify_chain(&self, idxs: &[&P<Expr>], strides: &[i128]) -> Subscript {
        let mut term: Option<(DeclId, i128)> = None;
        let mut offset = 0i128;
        for (idx, &stride) in idxs.iter().zip(strides) {
            let Some((t, c)) = self.linear(idx) else {
                return Subscript::Other;
            };
            offset += stride * c;
            match (term, t.map(|(iv, k)| (iv, stride * k))) {
                (cur, None) => term = cur,
                (None, t2) => term = t2,
                (Some((iv1, c1)), Some((iv2, c2))) if iv1 == iv2 => {
                    term = Some((iv1, c1 + c2)).filter(|t| t.1 != 0);
                }
                _ => return Subscript::Other, // two different iteration variables
            }
        }
        match term {
            Some((iv, coef)) => Subscript::Affine { iv, coef, offset },
            None => Subscript::Constant(offset),
        }
    }

    /// Linearizes `e` as `coef * iv + offset` over at most one iteration
    /// variable. Returns `(iv term, constant)`; `None` when the expression
    /// is not scaled-affine (unknown variable, two variables multiplied,
    /// two different iteration variables mixed).
    fn linear(&self, e: &P<Expr>) -> Option<(Option<(DeclId, i128)>, i128)> {
        let e = e.ignore_wrappers();
        if let Some(c) = e.eval_const_int() {
            return Some((None, c));
        }
        if let Some(v) = e.as_decl_ref() {
            return self.ivs.contains(&v.id).then_some((Some((v.id, 1)), 0));
        }
        let combine =
            |x: Option<(DeclId, i128)>, y: Option<(DeclId, i128)>, sign: i128| match (x, y) {
                (t, None) => Some(t),
                (None, Some((iv, c))) => Some(Some((iv, sign * c))),
                (Some((iv1, c1)), Some((iv2, c2))) if iv1 == iv2 => {
                    Some(Some((iv1, c1 + sign * c2)).filter(|t| t.1 != 0))
                }
                _ => None, // two different iteration variables
            };
        match &e.kind {
            ExprKind::Unary(UnOp::Plus, s) => self.linear(s),
            ExprKind::Unary(UnOp::Minus, s) => {
                let (t, c) = self.linear(s)?;
                Some((t.map(|(iv, k)| (iv, -k)), -c))
            }
            ExprKind::Binary(BinOp::Add, a, b) => {
                let (ta, ca) = self.linear(a)?;
                let (tb, cb) = self.linear(b)?;
                Some((combine(ta, tb, 1)?, ca + cb))
            }
            ExprKind::Binary(BinOp::Sub, a, b) => {
                let (ta, ca) = self.linear(a)?;
                let (tb, cb) = self.linear(b)?;
                Some((combine(ta, tb, -1)?, ca - cb))
            }
            ExprKind::Binary(BinOp::Mul, a, b) => {
                let (ta, ca) = self.linear(a)?;
                let (tb, cb) = self.linear(b)?;
                match (ta, tb) {
                    (None, t) => {
                        Some((t.map(|(iv, k)| (iv, k * ca)).filter(|t| t.1 != 0), ca * cb))
                    }
                    (t, None) => {
                        Some((t.map(|(iv, k)| (iv, k * cb)).filter(|t| t.1 != 0), ca * cb))
                    }
                    _ => None, // iv * iv is not affine
                }
            }
            _ => None,
        }
    }
}

impl StmtVisitor for Collector {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::Decl(decls) = &s.kind {
            for d in decls {
                if let Decl::Var(v) = d {
                    self.locals.insert(v.id);
                }
            }
        }
        walk_stmt(self, s);
    }

    fn visit_expr(&mut self, e: &P<Expr>) {
        match &e.kind {
            ExprKind::Binary(op, lhs, rhs) if op.is_assignment() => {
                self.record(lhs, true);
                if *op != BinOp::Assign {
                    self.record(lhs, false);
                }
                for idx in subscript_chain(lhs).1 {
                    self.visit_expr(idx);
                }
                self.visit_expr(rhs);
            }
            ExprKind::Unary(op, sub) if op.is_inc_dec() => {
                self.record(sub, true);
                self.record(sub, false);
                for idx in subscript_chain(sub).1 {
                    self.visit_expr(idx);
                }
            }
            ExprKind::DeclRef(_) => self.record(e, false),
            ExprKind::ArraySubscript(..) => {
                self.record(e, false);
                for idx in subscript_chain(e).1 {
                    self.visit_expr(idx);
                }
            }
            _ => walk_expr(self, e),
        }
    }
}

impl RaceVisitor<'_> {
    fn check_parallel_for(&mut self, d: &P<OMPDirective>) {
        let Some(assoc) = &d.associated else { return };
        let Some(levels) = resolve_literal_nest(assoc, d.collapse_depth()) else {
            return;
        };
        let pragma = d.pragma_text();

        let mut privates: BTreeSet<DeclId> = BTreeSet::new();
        let mut iv_names: BTreeMap<DeclId, String> = BTreeMap::new();
        for l in &levels {
            privates.insert(l.analysis.iter_var.id);
            iv_names.insert(l.analysis.iter_var.id, l.analysis.iter_var.name.clone());
        }
        let mut reductions: BTreeSet<DeclId> = BTreeSet::new();
        for c in &d.clauses {
            match &c.kind {
                OMPClauseKind::Private(vs) | OMPClauseKind::FirstPrivate(vs) => {
                    for v in vs {
                        if let Some(vd) = v.as_decl_ref() {
                            privates.insert(vd.id);
                        }
                    }
                }
                OMPClauseKind::Reduction { vars, .. } => {
                    for v in vars {
                        if let Some(vd) = v.as_decl_ref() {
                            reductions.insert(vd.id);
                        }
                    }
                }
                _ => {}
            }
        }

        let mut col = Collector {
            ivs: iv_names.keys().copied().collect(),
            locals: BTreeSet::new(),
            accesses: BTreeMap::new(),
        };
        col.visit_stmt(&levels[0].analysis.body);

        let fmt_sub = |s: Subscript| -> String {
            match s {
                Subscript::Affine { iv, coef, offset } => {
                    let name = iv_names.get(&iv).map_or("?", String::as_str);
                    let term = match coef {
                        1 => name.to_string(),
                        -1 => format!("-{name}"),
                        c => format!("{c}*{name}"),
                    };
                    match (coef, offset) {
                        (_, 0) => term,
                        // `c - i` reads better than `-i + c`.
                        (c, o) if c < 0 && o > 0 => match c {
                            -1 => format!("{o} - {name}"),
                            c => format!("{o} - {}*{name}", -c),
                        },
                        (_, o) if o > 0 => format!("{term} + {o}"),
                        (_, o) => format!("{term} - {}", -o),
                    }
                }
                Subscript::Constant(c) => c.to_string(),
                Subscript::Other => "?".to_string(),
            }
        };

        for (id, (name, accesses)) in &col.accesses {
            if privates.contains(id) || col.locals.contains(id) || reductions.contains(id) {
                continue;
            }
            let writes: Vec<&Access> = accesses.iter().filter(|a| a.write).collect();
            if writes.is_empty() {
                continue;
            }
            // Shared scalar written by every iteration.
            if let Some(w) = writes.iter().find(|a| a.subscript.is_none()) {
                let mut notes = Vec::new();
                for a in accesses.iter().filter(|a| a.subscript.is_none()) {
                    if std::ptr::eq::<Access>(a, *w) {
                        continue;
                    }
                    let what = if a.write { "also written" } else { "read" };
                    notes.push(Diagnostic::note(a.loc, format!("'{name}' {what} here")));
                }
                notes.push(Diagnostic::note(
                    d.loc,
                    format!(
                        "'{name}' is shared by all threads of '{pragma}'; \
                         consider a 'private({name})' or 'reduction(+: {name})' clause"
                    ),
                ));
                self.diags.report_with_notes(
                    Level::Warning,
                    w.loc,
                    format!(
                        "writing to shared variable '{name}' inside '{pragma}' \
                         is a data race [-Wrace]"
                    ),
                    notes,
                );
                continue;
            }
            // Loop-carried array conflicts.
            'var: for w in &writes {
                match w.subscript {
                    Some(Subscript::Constant(c)) => {
                        self.diags.report_with_notes(
                            Level::Warning,
                            w.loc,
                            format!("all iterations of '{pragma}' write '{name}[{c}]' [-Wrace]"),
                            vec![Diagnostic::note(
                                d.loc,
                                format!("iterations of '{pragma}' execute concurrently"),
                            )],
                        );
                        break 'var;
                    }
                    Some(Subscript::Affine { iv, coef, offset }) => {
                        let conflict = accesses.iter().find(|a| match a.subscript {
                            // Two scaled-affine accesses of the same IV touch
                            // a common element from *different* iterations
                            // when `coef*i + offset == c2*i' + o2` has a
                            // solution with `i != i'`.
                            Some(Subscript::Affine {
                                iv: iv2,
                                coef: c2,
                                offset: o2,
                            }) if iv2 == iv => {
                                if coef == c2 {
                                    o2 != offset && (o2 - offset) % coef == 0
                                } else {
                                    (o2 - offset) % gcd(coef, c2) == 0
                                }
                            }
                            // A constant subscript collides with the
                            // iteration that reaches the same element.
                            Some(Subscript::Constant(c)) => (c - offset) % coef == 0,
                            _ => false,
                        });
                        if let Some(other) = conflict {
                            let what = if other.write { "written" } else { "read" };
                            self.diags.report_with_notes(
                                Level::Warning,
                                w.loc,
                                format!(
                                    "loop-carried access to shared array '{name}' in \
                                     '{pragma}': '{name}[{}]' is written while '{name}[{}]' \
                                     is {what} by a different iteration [-Wrace]",
                                    fmt_sub(w.subscript.expect("write has a subscript")),
                                    fmt_sub(other.subscript.expect("conflict has a subscript")),
                                ),
                                vec![Diagnostic::note(
                                    other.loc,
                                    format!("conflicting {what} here"),
                                )],
                            );
                            break 'var;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}
