//! Data-race detection for `#pragma omp parallel for`.
//!
//! Variable references in the associated loop nest are classified as
//! **private** (iteration variables, locally-declared variables, and
//! `private`/`firstprivate` clause entries) or **shared** (everything else,
//! matching OpenMP's default data-sharing for variables declared outside the
//! construct). Two patterns are reported as `-Wrace` warnings:
//!
//! * a **write to a shared scalar** — every iteration races on the same
//!   object (unless it is a `reduction` variable);
//! * a **loop-carried array conflict** — a write to `a[i + c1]` combined
//!   with any access to `a[i + c2]` (`c1 ≠ c2`), or a write through a
//!   constant subscript, makes iterations touch each other's elements.
//!
//! Subscripts that are not affine in an iteration variable (`a[idx[i]]`,
//! `a[i * 2]`, …) are conservatively ignored — no warning is better than a
//! false one.

use crate::nest::resolve_literal_nest;
use omplt_ast::{
    walk_expr, walk_stmt, BinOp, Decl, DeclId, Expr, ExprKind, OMPClauseKind, OMPDirective,
    OMPDirectiveKind, Stmt, StmtKind, StmtVisitor, TranslationUnit, P,
};
use omplt_source::{Diagnostic, DiagnosticsEngine, Level, SourceLocation};
use std::collections::{BTreeMap, BTreeSet};

/// Checks every `parallel for` in `tu`, reporting races to `diags`.
pub fn check_translation_unit(tu: &TranslationUnit, diags: &DiagnosticsEngine) {
    let mut v = RaceVisitor { diags };
    for d in &tu.decls {
        if let Decl::Function(f) = d {
            if let Some(body) = f.body.borrow().as_ref() {
                v.visit_stmt(body);
            }
        }
    }
}

struct RaceVisitor<'d> {
    diags: &'d DiagnosticsEngine,
}

impl StmtVisitor for RaceVisitor<'_> {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::OMP(d) = &s.kind {
            if d.kind == OMPDirectiveKind::ParallelFor {
                self.check_parallel_for(d);
            }
        }
        walk_stmt(self, s);
    }
}

/// Shape of an array subscript, as far as the detector can see.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Subscript {
    /// `iv + offset` (offset may be 0 or negative).
    Affine { iv: DeclId, offset: i128 },
    /// A compile-time constant.
    Constant(i128),
    /// Anything else — conservatively not analyzed.
    Other,
}

/// One read or write of a variable inside the loop body.
struct Access {
    loc: SourceLocation,
    write: bool,
    /// `None` for a scalar access, `Some` for an array-element access.
    subscript: Option<Subscript>,
}

/// Collects per-variable accesses over a loop body.
struct Collector {
    ivs: BTreeSet<DeclId>,
    locals: BTreeSet<DeclId>,
    accesses: BTreeMap<DeclId, (String, Vec<Access>)>,
}

impl Collector {
    fn push(&mut self, var: &omplt_ast::VarDecl, access: Access) {
        self.accesses
            .entry(var.id)
            .or_insert_with(|| (var.name.clone(), Vec::new()))
            .1
            .push(access);
    }

    /// Records the variable (scalar or array element) designated by `e`.
    fn record(&mut self, e: &P<Expr>, write: bool) {
        let e = e.ignore_wrappers();
        match &e.kind {
            ExprKind::DeclRef(v) => {
                self.push(
                    v,
                    Access {
                        loc: e.loc,
                        write,
                        subscript: None,
                    },
                );
            }
            ExprKind::ArraySubscript(base, idx) => {
                if let Some(v) = base.as_decl_ref() {
                    let subscript = Some(self.classify(idx));
                    let v = P::clone(v);
                    self.push(
                        &v,
                        Access {
                            loc: e.loc,
                            write,
                            subscript,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn classify(&self, idx: &P<Expr>) -> Subscript {
        let idx = idx.ignore_wrappers();
        if let Some(v) = idx.as_decl_ref() {
            return if self.ivs.contains(&v.id) {
                Subscript::Affine {
                    iv: v.id,
                    offset: 0,
                }
            } else {
                Subscript::Other
            };
        }
        if let Some(c) = idx.eval_const_int() {
            return Subscript::Constant(c);
        }
        let affine = |v: &P<omplt_ast::VarDecl>, offset: i128| {
            if self.ivs.contains(&v.id) {
                Subscript::Affine { iv: v.id, offset }
            } else {
                Subscript::Other
            }
        };
        match &idx.kind {
            ExprKind::Binary(BinOp::Add, a, b) => match (a.as_decl_ref(), b.eval_const_int()) {
                (Some(v), Some(c)) => affine(v, c),
                _ => match (a.eval_const_int(), b.as_decl_ref()) {
                    (Some(c), Some(v)) => affine(v, c),
                    _ => Subscript::Other,
                },
            },
            ExprKind::Binary(BinOp::Sub, a, b) => match (a.as_decl_ref(), b.eval_const_int()) {
                (Some(v), Some(c)) => affine(v, -c),
                _ => Subscript::Other,
            },
            _ => Subscript::Other,
        }
    }
}

impl StmtVisitor for Collector {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        if let StmtKind::Decl(decls) = &s.kind {
            for d in decls {
                if let Decl::Var(v) = d {
                    self.locals.insert(v.id);
                }
            }
        }
        walk_stmt(self, s);
    }

    fn visit_expr(&mut self, e: &P<Expr>) {
        match &e.kind {
            ExprKind::Binary(op, lhs, rhs) if op.is_assignment() => {
                self.record(lhs, true);
                if *op != BinOp::Assign {
                    self.record(lhs, false);
                }
                if let ExprKind::ArraySubscript(_, idx) = &lhs.ignore_wrappers().kind {
                    self.visit_expr(idx);
                }
                self.visit_expr(rhs);
            }
            ExprKind::Unary(op, sub) if op.is_inc_dec() => {
                self.record(sub, true);
                self.record(sub, false);
                if let ExprKind::ArraySubscript(_, idx) = &sub.ignore_wrappers().kind {
                    self.visit_expr(idx);
                }
            }
            ExprKind::DeclRef(_) => self.record(e, false),
            ExprKind::ArraySubscript(_, idx) => {
                self.record(e, false);
                self.visit_expr(idx);
            }
            _ => walk_expr(self, e),
        }
    }
}

impl RaceVisitor<'_> {
    fn check_parallel_for(&mut self, d: &P<OMPDirective>) {
        let Some(assoc) = &d.associated else { return };
        let Some(levels) = resolve_literal_nest(assoc, d.collapse_depth()) else {
            return;
        };
        let pragma = d.pragma_text();

        let mut privates: BTreeSet<DeclId> = BTreeSet::new();
        let mut iv_names: BTreeMap<DeclId, String> = BTreeMap::new();
        for l in &levels {
            privates.insert(l.analysis.iter_var.id);
            iv_names.insert(l.analysis.iter_var.id, l.analysis.iter_var.name.clone());
        }
        let mut reductions: BTreeSet<DeclId> = BTreeSet::new();
        for c in &d.clauses {
            match &c.kind {
                OMPClauseKind::Private(vs) | OMPClauseKind::FirstPrivate(vs) => {
                    for v in vs {
                        if let Some(vd) = v.as_decl_ref() {
                            privates.insert(vd.id);
                        }
                    }
                }
                OMPClauseKind::Reduction { vars, .. } => {
                    for v in vars {
                        if let Some(vd) = v.as_decl_ref() {
                            reductions.insert(vd.id);
                        }
                    }
                }
                _ => {}
            }
        }

        let mut col = Collector {
            ivs: iv_names.keys().copied().collect(),
            locals: BTreeSet::new(),
            accesses: BTreeMap::new(),
        };
        col.visit_stmt(&levels[0].analysis.body);

        let fmt_sub = |s: Subscript| -> String {
            match s {
                Subscript::Affine { iv, offset } => {
                    let name = iv_names.get(&iv).map_or("?", String::as_str);
                    match offset {
                        0 => name.to_string(),
                        o if o > 0 => format!("{name} + {o}"),
                        o => format!("{name} - {}", -o),
                    }
                }
                Subscript::Constant(c) => c.to_string(),
                Subscript::Other => "?".to_string(),
            }
        };

        for (id, (name, accesses)) in &col.accesses {
            if privates.contains(id) || col.locals.contains(id) || reductions.contains(id) {
                continue;
            }
            let writes: Vec<&Access> = accesses.iter().filter(|a| a.write).collect();
            if writes.is_empty() {
                continue;
            }
            // Shared scalar written by every iteration.
            if let Some(w) = writes.iter().find(|a| a.subscript.is_none()) {
                let mut notes = Vec::new();
                for a in accesses.iter().filter(|a| a.subscript.is_none()) {
                    if std::ptr::eq::<Access>(a, *w) {
                        continue;
                    }
                    let what = if a.write { "also written" } else { "read" };
                    notes.push(Diagnostic::note(a.loc, format!("'{name}' {what} here")));
                }
                notes.push(Diagnostic::note(
                    d.loc,
                    format!(
                        "'{name}' is shared by all threads of '{pragma}'; \
                         consider a 'private({name})' or 'reduction(+: {name})' clause"
                    ),
                ));
                self.diags.report_with_notes(
                    Level::Warning,
                    w.loc,
                    format!(
                        "writing to shared variable '{name}' inside '{pragma}' \
                         is a data race [-Wrace]"
                    ),
                    notes,
                );
                continue;
            }
            // Loop-carried array conflicts.
            'var: for w in &writes {
                match w.subscript {
                    Some(Subscript::Constant(c)) => {
                        self.diags.report_with_notes(
                            Level::Warning,
                            w.loc,
                            format!("all iterations of '{pragma}' write '{name}[{c}]' [-Wrace]"),
                            vec![Diagnostic::note(
                                d.loc,
                                format!("iterations of '{pragma}' execute concurrently"),
                            )],
                        );
                        break 'var;
                    }
                    Some(Subscript::Affine { iv, offset }) => {
                        let conflict = accesses.iter().find(|a| match a.subscript {
                            Some(Subscript::Affine {
                                iv: iv2,
                                offset: o2,
                            }) => iv2 == iv && o2 != offset,
                            Some(Subscript::Constant(_)) => true,
                            _ => false,
                        });
                        if let Some(other) = conflict {
                            let what = if other.write { "written" } else { "read" };
                            self.diags.report_with_notes(
                                Level::Warning,
                                w.loc,
                                format!(
                                    "loop-carried access to shared array '{name}' in \
                                     '{pragma}': '{name}[{}]' is written while '{name}[{}]' \
                                     is {what} by a different iteration [-Wrace]",
                                    fmt_sub(w.subscript.expect("write has a subscript")),
                                    fmt_sub(other.subscript.expect("conflict has a subscript")),
                                ),
                                vec![Diagnostic::note(
                                    other.loc,
                                    format!("conflicting {what} here"),
                                )],
                            );
                            break 'var;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}
