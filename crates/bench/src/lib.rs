//! # omplt-bench
//!
//! Shared source generators for the Criterion benchmark harness. Each bench
//! target under `benches/` regenerates one figure/claim from the paper; see
//! `EXPERIMENTS.md` at the workspace root for the index.

/// Generates a C source with a perfect loop nest of `depth` loops, each with
/// `trip` iterations, whose body accumulates into an array element.
pub fn nest_source(depth: usize, trip: u64, pragma: &str) -> String {
    let mut s = String::from("void sink(long v);\nvoid kernel(void) {\n  long acc = 0;\n");
    if !pragma.is_empty() {
        s.push_str("  ");
        s.push_str(pragma);
        s.push('\n');
    }
    for d in 0..depth {
        s.push_str(&format!("  for (int i{d} = 0; i{d} < {trip}; i{d} += 1)\n"));
    }
    s.push_str("    acc = acc + ");
    for d in 0..depth {
        if d > 0 {
            s.push_str(" + ");
        }
        s.push_str(&format!("i{d}"));
    }
    s.push_str(";\n  sink(acc);\n}\n");
    s
}

/// Compiles `src` under `mode` inside a fresh trace session and returns the
/// named counters the pipeline bumped. This is the instrumentation-sourced
/// ground truth the B1/B2 node-count claims read from — no test-side AST
/// walking.
pub fn pipeline_counters(
    src: &str,
    mode: omplt::OpenMpCodegenMode,
) -> std::collections::BTreeMap<String, u64> {
    let session = omplt_trace::Session::begin();
    let mut ci = omplt::CompilerInstance::new(omplt::Options {
        codegen_mode: mode,
        ..omplt::Options::default()
    });
    let tu = ci.parse_source("bench.c", src).expect("parse");
    ci.codegen(&tu).expect("codegen");
    session.finish().counters
}

/// Generates a saxpy-style workshared kernel over `n` elements.
pub fn saxpy_source(n: u64, pragma: &str) -> String {
    format!(
        "void kernel(double *x, double *y) {{\n  {pragma}\n  for (int i = 0; i < {n}; i += 1)\n    y[i] = 2.0 * x[i] + y[i];\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nest_source_shape() {
        let s = nest_source(2, 8, "#pragma omp tile sizes(4, 4)");
        assert!(s.contains("for (int i0"));
        assert!(s.contains("for (int i1"));
        assert!(s.contains("tile sizes"));
    }

    #[test]
    fn saxpy_source_shape() {
        let s = saxpy_source(128, "");
        assert!(s.contains("y[i] = 2.0 * x[i] + y[i];"));
    }
}
