//! Backend comparison: the register-based bytecode VM against the
//! tree-walking interpreter on the same modules.
//!
//! The headline workload is the triangular (imbalanced) reduction from the
//! worksharing experiments: iteration `i` costs O(i), so it exercises the
//! dispatch queue under load while the body itself is pure arithmetic — the
//! part where walking the IR tree per step hurts the most. The ISSUE's
//! acceptance target is a ≥5× VM speedup on this workload; the measured
//! ratio lands in `EXPERIMENTS.md` and the bench JSON in CI.
//!
//! Bytecode compilation happens *outside* the timed region (mirroring how
//! `--backend=vm` compiles once per process), so both sides measure pure
//! execution. A third group times `compile_bytecode` itself to show the
//! translation cost is amortizable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::interp::{Interpreter, RuntimeConfig};
use omplt::vm::VmEngine;
use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use omplt_ir::Module;

const TRI_N: u64 = 600;

/// Triangular body: iteration `i` of the worksharing loop costs O(i).
fn triangular_src(schedule: &str) -> String {
    format!(
        "void print_i64(long v);\nint main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum) schedule({schedule})\n  for (int i = 0; i < {TRI_N}; i += 1)\n    for (int j = 0; j < i; j += 1)\n      sum = sum + (j % 7);\n  print_i64(sum);\n  return 0;\n}}\n"
    )
}

/// Serial dense kernel: pure arithmetic, no runtime calls — the widest gap.
fn dense_src() -> String {
    "void print_i64(long v);\nint main(void) {\n  long sum = 0;\n  for (int i = 0; i < 200000; i += 1)\n    sum = sum + (i % 7) * (i % 13) - (i % 3);\n  print_i64(sum);\n  return 0;\n}\n"
        .to_string()
}

fn compile(src: &str, threads: u32) -> (CompilerInstance, Module) {
    let opts = Options {
        codegen_mode: OpenMpCodegenMode::Classic,
        num_threads: threads,
        ..Options::default()
    };
    let mut ci = CompilerInstance::new(opts);
    let tu = ci.parse_source("b.c", src).expect("parse");
    let module = ci.codegen(&tu).expect("codegen");
    (ci, module)
}

fn rt_cfg(threads: u32) -> RuntimeConfig {
    RuntimeConfig {
        num_threads: threads,
        ..RuntimeConfig::default()
    }
}

fn bench_triangular(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_comparison");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    for schedule in ["static", "dynamic, 16", "guided"] {
        let src = triangular_src(schedule);
        let (ci, module) = compile(&src, 4);
        let code = ci.compile_bytecode(&module).expect("bytecode");
        // Sanity: both backends produce the same answer before timing them.
        let want = Interpreter::new(&module, rt_cfg(4))
            .run_main()
            .expect("interp")
            .stdout;
        let got = VmEngine::new(&module, &code, rt_cfg(4))
            .expect("vm init")
            .run_main()
            .expect("vm")
            .stdout;
        assert_eq!(want, got, "backends disagree on schedule({schedule})");

        let tag = schedule.replace(", ", "");
        g.bench_with_input(BenchmarkId::new("interp", &tag), &module, |b, module| {
            b.iter(|| Interpreter::new(module, rt_cfg(4)).run_main().expect("run"))
        });
        g.bench_with_input(BenchmarkId::new("vm", &tag), &module, |b, module| {
            b.iter(|| {
                VmEngine::new(module, &code, rt_cfg(4))
                    .expect("vm init")
                    .run_main()
                    .expect("run")
            })
        });
    }
    g.finish();
}

fn bench_dense_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_comparison_dense");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    let src = dense_src();
    let (ci, module) = compile(&src, 1);
    let code = ci.compile_bytecode(&module).expect("bytecode");
    g.bench_with_input(BenchmarkId::new("interp", 1), &module, |b, module| {
        b.iter(|| Interpreter::new(module, rt_cfg(1)).run_main().expect("run"))
    });
    g.bench_with_input(BenchmarkId::new("vm", 1), &module, |b, module| {
        b.iter(|| {
            VmEngine::new(module, &code, rt_cfg(1))
                .expect("vm init")
                .run_main()
                .expect("run")
        })
    });
    g.finish();
}

fn bench_bytecode_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_comparison_compile");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_secs(1));

    let src = triangular_src("dynamic, 16");
    let (ci, module) = compile(&src, 4);
    g.bench_with_input(
        BenchmarkId::new("compile_bytecode", TRI_N),
        &module,
        |b, module| b.iter(|| ci.compile_bytecode(module).expect("bytecode")),
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_triangular,
    bench_dense_serial,
    bench_bytecode_compile
);
criterion_main!(benches);
