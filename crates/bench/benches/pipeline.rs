//! Experiment F1 (paper Fig. 1): per-layer cost of the front-end pipeline —
//! preprocess/lex, parse+Sema, CodeGen, mid-end — over growing sources.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{CompilerInstance, Options};

/// A source with `n` small OpenMP-annotated functions.
fn synthetic_source(n: usize) -> String {
    let mut s = String::from("void print_i64(long v);\n");
    for k in 0..n {
        s.push_str(&format!(
            "long f{k}(int n) {{\n  long acc = 0;\n  #pragma omp unroll partial(4)\n  for (int i = 0; i < n; i += 1)\n    acc = acc + i * {k};\n  return acc;\n}}\n"
        ));
    }
    s
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_stages");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));

    for &n in &[4usize, 16, 64] {
        let src = synthetic_source(n);
        g.bench_with_input(BenchmarkId::new("parse_sema", n), &src, |b, src| {
            b.iter(|| {
                let mut ci = CompilerInstance::new(Options::default());
                ci.parse_source("bench.c", src).expect("parse")
            })
        });
        g.bench_with_input(BenchmarkId::new("codegen", n), &src, |b, src| {
            let mut ci = CompilerInstance::new(Options::default());
            let tu = ci.parse_source("bench.c", src).expect("parse");
            b.iter(|| ci.codegen(&tu).expect("codegen"))
        });
        g.bench_with_input(BenchmarkId::new("midend", n), &src, |b, src| {
            let mut ci = CompilerInstance::new(Options::default());
            let tu = ci.parse_source("bench.c", src).expect("parse");
            let module = ci.codegen(&tu).expect("codegen");
            b.iter_batched(
                || clone_module_via_recodegen(&ci, &tu),
                |mut m| {
                    ci.optimize(&mut m);
                    m
                },
                criterion::BatchSize::SmallInput,
            );
            let _ = module;
        });
    }
    g.finish();
}

fn clone_module_via_recodegen(
    ci: &CompilerInstance,
    tu: &omplt::ast::TranslationUnit,
) -> omplt::ir::Module {
    ci.codegen(tu).expect("codegen")
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
