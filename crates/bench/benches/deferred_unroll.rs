//! Experiment B2 (paper §2.1: "no duplication takes place until that
//! point"): front-end cost of `unroll partial(f)` stays flat in the factor
//! (only metadata/strip-mining), while the duplication cost is paid once in
//! the mid-end `LoopUnroll` pass and grows with the factor. Also reports
//! the shadow-AST node count, which stays constant across factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{CompilerInstance, Options};

fn src(factor: u64) -> String {
    format!(
        "void body(int i);\nvoid kernel(int n) {{\n  #pragma omp unroll partial({factor})\n  for (int i = 0; i < n; i += 1)\n    body(i);\n}}\n"
    )
}

/// Shadow-AST size for one factor, read from the `sema.shadow.*` counters
/// the pipeline bumps while building the representation — the same numbers
/// `ompltc --counters-json` reports.
fn shadow_nodes(factor: u64) -> u64 {
    let counters = omplt_bench::pipeline_counters(&src(factor), omplt::OpenMpCodegenMode::Classic);
    *counters
        .get("sema.shadow.transformed_nodes")
        .expect("Sema must count the transformed subtree")
}

fn bench_deferred(c: &mut Criterion) {
    // The paper's structural claim, asserted before timing: the shadow-AST
    // size does not grow with the unroll factor (the body is never cloned
    // in the front-end).
    let n2 = shadow_nodes(2);
    for f in [4u64, 16, 64] {
        assert_eq!(
            shadow_nodes(f),
            n2,
            "front-end duplication detected for factor {f}"
        );
    }
    eprintln!("shadow-AST nodes per factor (constant): {n2}");

    let mut g = c.benchmark_group("deferred_unroll");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));

    for factor in [2u64, 8, 32] {
        let source = src(factor);
        g.bench_with_input(
            BenchmarkId::new("frontend_only", factor),
            &source,
            |b, s| {
                b.iter(|| {
                    let mut ci = CompilerInstance::new(Options::default());
                    let tu = ci.parse_source("d.c", s).expect("parse");
                    ci.codegen(&tu).expect("codegen")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("with_loop_unroll_pass", factor),
            &source,
            |b, s| {
                b.iter(|| {
                    let mut ci = CompilerInstance::new(Options::default());
                    let tu = ci.parse_source("d.c", s).expect("parse");
                    let mut m = ci.codegen(&tu).expect("codegen");
                    ci.optimize(&mut m);
                    m
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_deferred);
criterion_main!(benches);
