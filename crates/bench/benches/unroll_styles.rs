//! Experiment L2 (paper Fig. "Partial unrolling with remainder loop"):
//! execution cost of three unrolling styles for the same loop —
//! (a) no unrolling, (b) remainder-loop style (what `#pragma omp unroll
//! partial` + the LoopUnroll pass produce), (c) conditional-in-body style
//! (the naive expansion the paper shows first). The remainder style avoids
//! the per-iteration conditional; the shape to observe is (b) ≤ (c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{run_source_with, Options};

const N: u64 = 20_000;

fn no_unroll() -> String {
    format!(
        "void print_i64(long v);\nint main(void) {{\n  long acc = 0;\n  for (int i = 0; i < {N}; i += 1)\n    acc = acc + i;\n  print_i64(acc);\n  return 0;\n}}\n"
    )
}

/// The directive version: strip-mine + LoopUnroll with remainder loop.
fn pragma_unroll(factor: u64) -> String {
    format!(
        "void print_i64(long v);\nint main(void) {{\n  long acc = 0;\n  #pragma omp unroll partial({factor})\n  for (int i = 0; i < {N}; i += 1)\n    acc = acc + i;\n  print_i64(acc);\n  return 0;\n}}\n"
    )
}

/// Hand-written conditional-in-body expansion (paper §1's first example).
fn conditional_unroll() -> String {
    format!(
        "void print_i64(long v);\nint main(void) {{\n  long acc = 0;\n  for (int i = 0; i < {N}; i += 2) {{\n    acc = acc + i;\n    if (i + 1 < {N}) acc = acc + i + 1;\n  }}\n  print_i64(acc);\n  return 0;\n}}\n"
    )
}

/// Hand-written remainder-loop expansion (paper Fig. lst:remainder).
fn remainder_unroll() -> String {
    format!(
        "void print_i64(long v);\nint main(void) {{\n  long acc = 0;\n  int i = 0;\n  for (; i + 3 < {N}; i += 4) {{\n    acc = acc + i;\n    acc = acc + i + 1;\n    acc = acc + i + 2;\n    acc = acc + i + 3;\n  }}\n  for (; i < {N}; i += 1)\n    acc = acc + i;\n  print_i64(acc);\n  return 0;\n}}\n"
    )
}

fn bench_styles(c: &mut Criterion) {
    let expected = format!("{}\n", (0..N as i64).sum::<i64>());
    let mut g = c.benchmark_group("unroll_styles");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_secs(1));

    let cases: Vec<(&str, String)> = vec![
        ("baseline_no_unroll", no_unroll()),
        ("pragma_partial2", pragma_unroll(2)),
        ("pragma_partial4", pragma_unroll(4)),
        ("manual_conditional2", conditional_unroll()),
        ("manual_remainder4", remainder_unroll()),
    ];
    for (name, src) in cases {
        // correctness first — a wrong benchmark is worse than a slow one
        let r = run_source_with(&src, Options::default(), true);
        assert_eq!(r.stdout, expected, "{name} computed a wrong sum");
        g.bench_with_input(BenchmarkId::from_parameter(name), &src, |b, src| {
            b.iter(|| run_source_with(src, Options::default(), true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_styles);
criterion_main!(benches);
