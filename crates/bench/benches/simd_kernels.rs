//! Lane-parallel vector tier (experiment V2): `#pragma omp simd` kernels
//! executed on the bytecode VM at `--vector-width` ∈ {0 (scalar), 2, 4, 8},
//! with the tree-walking interpreter as the scalar oracle.
//!
//! Two kernels, both integer (the widening pass refuses float reductions so
//! every configuration is bit-identical by construction):
//!
//! * `saxpy` — dense `y[i] = y[i] + a*x[i]` without a reduction, repeated
//!   over the array so the widened loop dominates the run. The ISSUE's
//!   acceptance target is a **≥2× retired-op reduction at width 4** on this
//!   kernel; the assertion below enforces it before anything is timed, and
//!   `ci/check_counter_drift.sh` pins the per-example counterpart.
//! * `dot` — `simd reduction(+: sum)` over two arrays: the reduction tail
//!   (lane accumulator + horizontal `vreduce`) is the interesting overhead.
//!
//! Bytecode compilation (including the widening pass) happens *outside* the
//! timed region, mirroring `--backend=vm`: both sides measure pure
//! execution. Every configuration's stdout is asserted byte-identical to
//! the interpreter's before timing starts — the bench doubles as a
//! differential check at all three widths.
//!
//! Repro / CI artifact:
//! `cargo bench -p omplt-bench --bench simd_kernels -- --save-json simd_kernels.json`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::interp::{Interpreter, RuntimeConfig};
use omplt::vm::VmEngine;
use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use omplt_ir::Module;

const N: u64 = 4096;
const REPS: u64 = 24;

/// Dense update kernel: no reduction, unit stride, repeated `REPS` times so
/// the simd loop dominates the scalar init.
fn saxpy_src() -> String {
    format!(
        "void print_i64(long v);\n\
         long x[{N}];\nlong y[{N}];\n\
         int main(void) {{\n\
           for (int i = 0; i < {N}; i += 1) {{\n\
             x[i] = i - 2048;\n\
             y[i] = 3 * i + 1;\n\
           }}\n\
           for (int r = 0; r < {REPS}; r += 1) {{\n\
             #pragma omp simd\n\
             for (int i = 0; i < {N}; i += 1)\n\
               y[i] = y[i] + 7 * x[i];\n\
           }}\n\
           long sum = 0;\n\
           for (int k = 0; k < {N}; k += 1)\n\
             sum += y[k];\n\
           print_i64(sum);\n\
           return 0;\n\
         }}\n"
    )
}

/// Reduction kernel: the lane accumulator + horizontal reduce epilogue.
fn dot_src() -> String {
    format!(
        "void print_i64(long v);\n\
         long x[{N}];\nlong y[{N}];\n\
         int main(void) {{\n\
           for (int i = 0; i < {N}; i += 1) {{\n\
             x[i] = i % 17;\n\
             y[i] = i % 23;\n\
           }}\n\
           long sum = 0;\n\
           for (int r = 0; r < {REPS}; r += 1) {{\n\
             #pragma omp simd reduction(+: sum)\n\
             for (int i = 0; i < {N}; i += 1)\n\
               sum += x[i] * y[i];\n\
           }}\n\
           print_i64(sum);\n\
           return 0;\n\
         }}\n"
    )
}

fn compile(src: &str, vector_width: u8) -> (CompilerInstance, Module) {
    let opts = Options {
        codegen_mode: OpenMpCodegenMode::Classic,
        num_threads: 1,
        vector_width,
        ..Options::default()
    };
    let mut ci = CompilerInstance::new(opts);
    let tu = ci.parse_source("b.c", src).expect("parse");
    let module = ci.codegen(&tu).expect("codegen");
    (ci, module)
}

fn rt_cfg() -> RuntimeConfig {
    RuntimeConfig {
        num_threads: 1,
        ..RuntimeConfig::default()
    }
}

/// Runs one kernel on the VM at `width`, returning (stdout, ops retired).
fn vm_run(src: &str, width: u8) -> (String, u64) {
    let (ci, module) = compile(src, width);
    let code = ci.compile_bytecode(&module).expect("bytecode");
    let r = VmEngine::new(&module, &code, rt_cfg())
        .expect("vm init")
        .run_main()
        .expect("vm");
    (r.stdout, r.ops_retired)
}

fn bench_kernel(c: &mut Criterion, name: &str, src: &str) {
    let mut g = c.benchmark_group("simd_kernels");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    // Scalar oracle: the interpreter never widens.
    let (_ci, module) = compile(src, 0);
    let want = Interpreter::new(&module, rt_cfg())
        .run_main()
        .expect("interp")
        .stdout;
    g.bench_with_input(BenchmarkId::new("interp", name), &module, |b, module| {
        b.iter(|| Interpreter::new(module, rt_cfg()).run_main().expect("run"))
    });

    let (_, scalar_ops) = vm_run(src, 0);
    for width in [0u8, 2, 4, 8] {
        let (ci, module) = compile(src, width);
        let code = ci.compile_bytecode(&module).expect("bytecode");
        // Differential gate: every width must reproduce the oracle's bytes.
        let (got, ops) = vm_run(src, width);
        assert_eq!(got, want, "{name}: width {width} diverged from the oracle");
        if width == 4 && name == "saxpy" {
            // The acceptance floor: ≥2× fewer retired ops than the scalar
            // VM lowering of the same program.
            assert!(
                ops * 2 <= scalar_ops,
                "saxpy at width 4 must retire ≤ half the scalar ops \
                 (got {ops} vs scalar {scalar_ops})"
            );
        }
        let id = BenchmarkId::new(format!("vm-w{width}"), name);
        g.bench_with_input(id, &module, |b, module| {
            b.iter(|| {
                VmEngine::new(module, &code, rt_cfg())
                    .expect("vm init")
                    .run_main()
                    .expect("run")
            })
        });
    }
    g.finish();
}

fn bench_saxpy(c: &mut Criterion) {
    bench_kernel(c, "saxpy", &saxpy_src());
}

fn bench_dot(c: &mut Criterion) {
    bench_kernel(c, "dot", &dot_src());
}

criterion_group!(benches, bench_saxpy, bench_dot);
criterion_main!(benches);
