//! Experiment C7 (shape claim): static worksharing on real OS threads —
//! wall-clock of an embarrassingly parallel kernel for team sizes 1..8.
//! The shape to observe: time decreases with the team size until the
//! interpreter's per-thread overhead dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

const N: u64 = 100_000;

fn kernel_src() -> String {
    format!(
        "void print_i64(long v);\nlong partial[32];\nint omp_get_thread_num(void);\nint main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum)\n  for (int i = 0; i < {N}; i += 1)\n    sum = sum + (i % 7) * (i % 13);\n  print_i64(sum);\n  return 0;\n}}\n"
    )
}

fn bench_scaling(c: &mut Criterion) {
    let src = kernel_src();
    let mut g = c.benchmark_group("workshare_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    // Pre-compile once per mode; benchmark only execution.
    for (label, mode) in [
        ("classic", OpenMpCodegenMode::Classic),
        ("irbuilder", OpenMpCodegenMode::IrBuilder),
    ] {
        for threads in [1u32, 2, 4, 8] {
            let opts = Options {
                codegen_mode: mode,
                num_threads: threads,
                ..Options::default()
            };
            let mut ci = CompilerInstance::new(opts);
            let tu = ci.parse_source("w.c", &src).expect("parse");
            let module = ci.codegen(&tu).expect("codegen");
            // sanity: result is thread-count independent
            let expect = ci.run(&module).expect("run").stdout;
            assert!(!expect.is_empty());
            g.bench_with_input(BenchmarkId::new(label, threads), &module, |b, module| {
                b.iter(|| ci.run(module).expect("run"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
