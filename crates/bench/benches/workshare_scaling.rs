//! Experiment C7 (shape claim): static worksharing on real OS threads —
//! wall-clock of an embarrassingly parallel kernel for team sizes 1..8.
//! The shape to observe: time decreases with the team size until the
//! interpreter's per-thread overhead dominates.
//!
//! The second group runs a triangular (imbalanced) body under each schedule
//! kind: iteration `i` costs O(i), so static's contiguous halves leave one
//! thread with ~3/4 of the work while `dynamic`/`guided` rebalance through
//! the dispatch queue. The shape to observe: dynamic ≥ static throughput on
//! the imbalanced body.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

const N: u64 = 100_000;

fn kernel_src() -> String {
    format!(
        "void print_i64(long v);\nlong partial[32];\nint omp_get_thread_num(void);\nint main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum)\n  for (int i = 0; i < {N}; i += 1)\n    sum = sum + (i % 7) * (i % 13);\n  print_i64(sum);\n  return 0;\n}}\n"
    )
}

const TRI_N: u64 = 600;

/// Triangular body: the inner loop makes iteration `i` cost O(i).
fn triangular_src(schedule: &str) -> String {
    format!(
        "void print_i64(long v);\nint main(void) {{\n  long sum = 0;\n  #pragma omp parallel for reduction(+: sum) schedule({schedule})\n  for (int i = 0; i < {TRI_N}; i += 1)\n    for (int j = 0; j < i; j += 1)\n      sum = sum + (j % 7);\n  print_i64(sum);\n  return 0;\n}}\n"
    )
}

fn bench_scaling(c: &mut Criterion) {
    let src = kernel_src();
    let mut g = c.benchmark_group("workshare_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    // Pre-compile once per mode; benchmark only execution.
    for (label, mode) in [
        ("classic", OpenMpCodegenMode::Classic),
        ("irbuilder", OpenMpCodegenMode::IrBuilder),
    ] {
        for threads in [1u32, 2, 4, 8] {
            let opts = Options {
                codegen_mode: mode,
                num_threads: threads,
                ..Options::default()
            };
            let mut ci = CompilerInstance::new(opts);
            let tu = ci.parse_source("w.c", &src).expect("parse");
            let module = ci.codegen(&tu).expect("codegen");
            // sanity: result is thread-count independent
            let expect = ci.run(&module).expect("run").stdout;
            assert!(!expect.is_empty());
            g.bench_with_input(BenchmarkId::new(label, threads), &module, |b, module| {
                b.iter(|| ci.run(module).expect("run"))
            });
        }
    }
    g.finish();
}

fn bench_imbalanced(c: &mut Criterion) {
    let mut g = c.benchmark_group("workshare_imbalanced");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    for (label, mode) in [
        ("classic", OpenMpCodegenMode::Classic),
        ("irbuilder", OpenMpCodegenMode::IrBuilder),
    ] {
        for schedule in ["static", "dynamic, 16", "guided"] {
            let src = triangular_src(schedule);
            let opts = Options {
                codegen_mode: mode,
                num_threads: 4,
                ..Options::default()
            };
            let mut ci = CompilerInstance::new(opts);
            let tu = ci.parse_source("t.c", &src).expect("parse");
            let module = ci.codegen(&tu).expect("codegen");
            // sanity: result is schedule independent
            let expect = ci.run(&module).expect("run").stdout;
            assert!(!expect.is_empty());
            let id = BenchmarkId::new(label, schedule.replace(", ", ""));
            g.bench_with_input(id, &module, |b, module| {
                b.iter(|| ci.run(module).expect("run"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_imbalanced);
criterion_main!(benches);
