//! Experiment B1: Sema + CodeGen cost of the two representations for the
//! same worksharing construct, by collapse depth. Shape to observe: the
//! canonical-loop path builds far fewer Sema nodes (3 meta items vs the
//! helper bundle) and its front-end cost grows more slowly with depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

fn nest_source(depth: usize) -> String {
    let mut loops = String::new();
    for k in 0..depth {
        loops.push_str(&format!("  for (int i{k} = 0; i{k} < 32; i{k} += 1)\n"));
    }
    format!(
        "void body(int x);\nvoid kernel(void) {{\n  #pragma omp for collapse({depth})\n{loops}    body(i0);\n}}\n"
    )
}

fn bench_representations(c: &mut Criterion) {
    let mut g = c.benchmark_group("representation_cost");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));

    for depth in [1usize, 2, 3] {
        let src = nest_source(depth);
        for (label, mode) in [
            ("classic_shadow_ast", OpenMpCodegenMode::Classic),
            ("canonical_irbuilder", OpenMpCodegenMode::IrBuilder),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, depth),
                &(src.clone(), mode),
                |b, (src, mode)| {
                    b.iter(|| {
                        let mut ci = CompilerInstance::new(Options {
                            codegen_mode: *mode,
                            ..Options::default()
                        });
                        let tu = ci.parse_source("r.c", src).expect("parse");
                        ci.codegen(&tu).expect("codegen")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_representations);
criterion_main!(benches);
