//! Experiment B1: Sema + CodeGen cost of the two representations for the
//! same worksharing construct, by collapse depth. Shape to observe: the
//! canonical-loop path builds far fewer Sema nodes (3 meta items vs the
//! helper bundle) and its front-end cost grows more slowly with depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

fn nest_source(depth: usize) -> String {
    let mut loops = String::new();
    for k in 0..depth {
        loops.push_str(&format!("  for (int i{k} = 0; i{k} < 32; i{k} += 1)\n"));
    }
    format!(
        "void body(int x);\nvoid kernel(void) {{\n  #pragma omp for collapse({depth})\n{loops}    body(i0);\n}}\n"
    )
}

fn bench_representations(c: &mut Criterion) {
    // The structural half of B1, asserted before timing and sourced from
    // the pipeline's own counters (no test-side AST walking): the classic
    // helper bundle starts at 23 nodes and grows by 6 per collapsed loop,
    // while the canonical path stays at 3 meta items per directive at
    // every depth.
    for depth in [1usize, 2, 3] {
        let src = nest_source(depth);
        let classic = omplt_bench::pipeline_counters(&src, OpenMpCodegenMode::Classic);
        assert_eq!(
            classic.get("sema.shadow.helper_nodes").copied(),
            Some(23 + 6 * (depth as u64 - 1)),
            "helper-bundle node count at collapse depth {depth}"
        );
        let irb = omplt_bench::pipeline_counters(&src, OpenMpCodegenMode::IrBuilder);
        assert_eq!(
            irb.get("sema.canonical.meta_items").copied(),
            Some(3),
            "canonical meta items at collapse depth {depth}"
        );
    }

    let mut g = c.benchmark_group("representation_cost");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));

    for depth in [1usize, 2, 3] {
        let src = nest_source(depth);
        for (label, mode) in [
            ("classic_shadow_ast", OpenMpCodegenMode::Classic),
            ("canonical_irbuilder", OpenMpCodegenMode::IrBuilder),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, depth),
                &(src.clone(), mode),
                |b, (src, mode)| {
                    b.iter(|| {
                        let mut ci = CompilerInstance::new(Options {
                            codegen_mode: *mode,
                            ..Options::default()
                        });
                        let tu = ci.parse_source("r.c", src).expect("parse");
                        ci.codegen(&tu).expect("codegen")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_representations);
criterion_main!(benches);
