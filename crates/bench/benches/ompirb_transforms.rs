//! Experiment B3: throughput of the OpenMPIRBuilder transformations
//! themselves (paper §3.2) — `create_canonical_loop`, `tile_loops`,
//! `collapse_loops`, `unroll_loop_partial` — on synthetic IR nests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omplt_ir::{Function, IrBuilder, IrType, Module, Value};
use omplt_ompirb::{
    collapse_loops, create_canonical_loop, tile_loops, unroll_loop_partial, CanonicalLoopInfo,
};

/// Builds a `depth`-deep perfect nest calling `sink(iv...)`.
fn build_nest(depth: usize) -> (Module, Function, Vec<CanonicalLoopInfo>) {
    let mut m = Module::new();
    let sink = m.intern("sink");
    let mut f = Function::new("kernel", vec![IrType::I64], IrType::Void);
    let mut clis = Vec::new();
    {
        let mut b = IrBuilder::new(&mut f);
        fn rec(
            b: &mut IrBuilder<'_>,
            depth: usize,
            sink: omplt_ir::SymbolId,
            clis: &mut Vec<CanonicalLoopInfo>,
        ) {
            let cli = create_canonical_loop(b, Value::Arg(0), &format!("l{depth}"), |b, iv| {
                if depth == 1 {
                    b.call(sink, vec![iv], IrType::Void);
                } else {
                    rec(b, depth - 1, sink, clis);
                }
            });
            clis.push(cli);
        }
        rec(&mut b, depth, sink, &mut clis);
        b.ret(None);
    }
    clis.reverse(); // outermost first
    (m, f, clis)
}

fn bench_transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("ompirb_transforms");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));

    g.bench_function("create_canonical_loop", |b| {
        b.iter(|| {
            let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
            let mut bld = IrBuilder::new(&mut f);
            let cli = create_canonical_loop(&mut bld, Value::Arg(0), "l", |_, _| {});
            bld.ret(None);
            cli
        })
    });

    for depth in [1usize, 2, 3] {
        g.bench_with_input(
            BenchmarkId::new("tile_loops", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    || build_nest(depth),
                    |(m, mut f, clis)| {
                        let mut bld = IrBuilder::new(&mut f);
                        let sizes: Vec<Value> = clis.iter().map(|_| Value::i64(4)).collect();
                        let out = tile_loops(&mut bld, &clis, &sizes);
                        (m, f, out)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    for depth in [2usize, 3] {
        g.bench_with_input(
            BenchmarkId::new("collapse_loops", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    || build_nest(depth),
                    |(m, mut f, clis)| {
                        let mut bld = IrBuilder::new(&mut f);
                        let out = collapse_loops(&mut bld, &clis);
                        (m, f, out)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.bench_function("unroll_loop_partial_consumed", |b| {
        b.iter_batched(
            || build_nest(1),
            |(m, mut f, clis)| {
                let mut bld = IrBuilder::new(&mut f);
                let out = unroll_loop_partial(&mut bld, &clis[0], 4, true);
                (m, f, out)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
