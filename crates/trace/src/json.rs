//! A minimal recursive-descent JSON parser.
//!
//! The workspace builds with no registry access (no serde), yet the golden
//! tests must *structurally* validate `--time-trace` output rather than
//! substring-match it. This parser covers exactly the JSON this repo emits:
//! objects, arrays, strings with the standard escapes, numbers, booleans and
//! null. It is a test/tooling aid, not a general-purpose parser — errors are
//! strings with a byte offset.

/// A parsed JSON value. Object keys keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are not produced by this repo's
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,{\"b\":\"x\"},null],\"c\":{}}").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("c").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn u64_conversion_is_strict() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn roundtrips_diagnostics_shape() {
        // Shape emitted by DiagnosticsEngine::render_json.
        let text = "[{\"level\":\"warning\",\"message\":\"m\",\"file\":null,\"notes\":[]}]\n";
        let v = parse(text).unwrap();
        let first = &v.as_array().unwrap()[0];
        assert_eq!(first.get("level").unwrap().as_str(), Some("warning"));
        assert_eq!(first.get("file").unwrap(), &Value::Null);
    }
}
