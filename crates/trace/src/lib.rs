//! `-ftime-trace`-style observability for the omplt pipeline.
//!
//! Clang answers "where does compile time go?" with `-ftime-trace`, which
//! wraps every pass and Sema entry point in a scoped timer and dumps the
//! result as Chrome trace-event JSON. This crate is the omplt analogue:
//! hierarchical timing [`span`]s plus named [`count`]ers, recorded into an
//! explicit [`Session`] and rendered as
//!
//! * Chrome trace-event JSON ([`TraceData::to_chrome_json`], loadable in
//!   `about:tracing` / Perfetto),
//! * a deterministic counters document ([`TraceData::to_counters_json`]), and
//! * a human-readable per-stage table ([`TraceData::time_report`]).
//!
//! Unlike LLVM's `TimeTraceProfiler` the recorder is **not** a process-global
//! singleton: `cargo test` runs many tests concurrently in one process, so a
//! global would interleave unrelated pipelines. Instead [`Session::begin`]
//! installs the session as the *current thread's* recorder (thread-local),
//! and worker threads opt in explicitly via [`Handle::attach`] — the
//! interpreter attaches its OpenMP team threads this way so runtime counters
//! (chunks claimed per schedule kind per thread, barrier waits) land in the
//! same trace as the front-end spans.
//!
//! Every probe is a no-op when no session is installed on the calling thread;
//! hot paths can additionally guard with [`active`] before paying for
//! `format!`-built counter names.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod json;

/// One completed span, in microseconds relative to the session start.
#[derive(Clone, Debug)]
pub struct Event {
    /// Stage name, e.g. `sema.directive` or `midend.pass`.
    pub name: String,
    /// Optional free-form argument (directive kind, pass name, …).
    pub detail: Option<String>,
    /// Virtual thread id: 0 for the session thread, 1.. for attached threads.
    pub tid: u32,
    /// Start offset from session begin, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

struct SessionInner {
    start: Instant,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    next_tid: AtomicU32,
}

impl SessionInner {
    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

thread_local! {
    /// The (session, virtual tid) recording for this thread, if any.
    static CURRENT: RefCell<Option<(Arc<SessionInner>, u32)>> = const { RefCell::new(None) };
}

/// An active recording. Created by [`Session::begin`]; consumed by
/// [`Session::finish`], which returns the collected [`TraceData`].
///
/// Dropping a session without finishing it discards the data and uninstalls
/// the thread-local recorder, so a panicking test cannot leak its session
/// into a later test that happens to reuse the thread.
pub struct Session {
    inner: Arc<SessionInner>,
    /// The recorder displaced by `begin`, restored when this session ends.
    /// Stack discipline matters on a worker pool: a per-job session begun on
    /// a worker thread must hand the thread back to whatever recorder (if
    /// any) was installed before the job, not wipe it.
    prev: Option<(Arc<SessionInner>, u32)>,
}

impl Session {
    /// Starts a session and installs it as the current thread's recorder
    /// (virtual tid 0). The previous recorder, if any, is displaced until
    /// this session is finished or dropped, then restored.
    pub fn begin() -> Session {
        let inner = Arc::new(SessionInner {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            next_tid: AtomicU32::new(1),
        });
        let prev = CURRENT.with(|c| c.borrow_mut().replace((inner.clone(), 0)));
        Session { inner, prev }
    }

    /// A cloneable, sendable handle other threads can [`Handle::attach`].
    pub fn handle(&self) -> Handle {
        Handle {
            inner: self.inner.clone(),
        }
    }

    /// Stops recording on this thread and returns everything collected.
    pub fn finish(self) -> TraceData {
        let wall_us = self.inner.elapsed_us();
        let inner = self.inner.clone();
        drop(self); // uninstalls the thread-local recorder
        let events = inner.events.lock().unwrap().clone();
        let counters = inner.counters.lock().unwrap().clone();
        TraceData {
            events,
            counters,
            wall_us,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if let Some((inner, _)) = cur.as_ref() {
                if Arc::ptr_eq(inner, &self.inner) {
                    *cur = self.prev.take();
                }
            }
        });
    }
}

/// A sendable reference to a session, for instrumenting worker threads.
#[derive(Clone)]
pub struct Handle {
    inner: Arc<SessionInner>,
}

impl Handle {
    /// Installs the session on the calling thread under a fresh virtual tid.
    /// The returned guard restores the thread's previous recorder on drop.
    pub fn attach(&self) -> AttachGuard {
        let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| c.borrow_mut().replace((self.inner.clone(), tid)));
        AttachGuard { prev }
    }
}

/// RAII guard returned by [`Handle::attach`].
pub struct AttachGuard {
    prev: Option<(Arc<SessionInner>, u32)>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Whether the calling thread currently records into a session. Use to skip
/// building dynamic counter names on hot paths.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Handle to the calling thread's current session, if any. The compiler
/// driver captures this before spawning interpreter team threads.
pub fn handle() -> Option<Handle> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|(inner, _)| Handle {
            inner: inner.clone(),
        })
    })
}

/// Adds `delta` to the named counter. No-op without a session.
pub fn count(name: &str, delta: u64) {
    CURRENT.with(|c| {
        if let Some((inner, _)) = c.borrow().as_ref() {
            *inner
                .counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_insert(0) += delta;
        }
    });
}

/// Opens a timing span; the span is recorded when the guard drops. Spans are
/// hierarchical by construction: a span opened while another is live on the
/// same thread nests inside it in the trace timeline.
pub fn span(name: &str) -> Span {
    span_impl(name, None)
}

/// Like [`span`] but with a free-form detail argument (directive kind, pass
/// name, …) shown in the trace viewer.
pub fn span_detail(name: &str, detail: impl Into<String>) -> Span {
    span_impl(name, Some(detail.into()))
}

fn span_impl(name: &str, detail: Option<String>) -> Span {
    let rec = CURRENT.with(|c| {
        c.borrow().as_ref().map(|(inner, tid)| SpanRec {
            start_us: inner.elapsed_us(),
            inner: inner.clone(),
            tid: *tid,
            name: name.to_string(),
            detail: detail.clone(),
        })
    });
    Span { rec }
}

struct SpanRec {
    inner: Arc<SessionInner>,
    tid: u32,
    name: String,
    detail: Option<String>,
    start_us: u64,
}

/// RAII guard for a timing span (see [`span`]).
pub struct Span {
    rec: Option<SpanRec>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let end_us = rec.inner.elapsed_us();
            rec.inner.events.lock().unwrap().push(Event {
                name: rec.name,
                detail: rec.detail,
                tid: rec.tid,
                start_us: rec.start_us,
                dur_us: end_us.saturating_sub(rec.start_us),
            });
        }
    }
}

/// Everything a finished session collected.
pub struct TraceData {
    /// Completed spans, in completion order.
    pub events: Vec<Event>,
    /// Named counters, sorted by name (deterministic iteration).
    pub counters: BTreeMap<String, u64>,
    /// Wall time between `begin` and `finish`, microseconds.
    pub wall_us: u64,
}

impl TraceData {
    /// Renders the Chrome trace-event JSON document (`about:tracing` /
    /// Perfetto "JSON Object Format"). Spans become `"ph":"X"` complete
    /// events; counters and total wall time ride along under `otherData`,
    /// which viewers ignore.
    pub fn to_chrome_json(&self) -> String {
        let mut events = self.events.clone();
        // Parents complete after their children, so completion order is
        // child-first; sort into timeline order for stable, viewer-friendly
        // output (outermost span first per thread).
        events.sort_by(|a, b| {
            (a.tid, a.start_us, std::cmp::Reverse(a.dur_us), &a.name).cmp(&(
                b.tid,
                b.start_us,
                std::cmp::Reverse(b.dur_us),
                &b.name,
            ))
        });
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ompltc\"}}",
        );
        for e in &events {
            let _ = write!(
                out,
                ",{{\"ph\":\"X\",\"cat\":\"omplt\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\"",
                e.tid,
                e.start_us,
                e.dur_us,
                escape(&e.name)
            );
            if let Some(d) = &e.detail {
                let _ = write!(out, ",\"args\":{{\"detail\":\"{}\"}}", escape(d));
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"wallTimeUs\":");
        let _ = write!(out, "{}", self.wall_us);
        out.push_str(",\"counters\":");
        self.write_counters_obj(&mut out);
        out.push_str("}}\n");
        out
    }

    /// Renders the counters alone as `{"counters":{...}}`. Iteration order is
    /// the counter name order (BTreeMap), so two runs of a deterministic
    /// pipeline produce byte-identical documents.
    pub fn to_counters_json(&self) -> String {
        let mut out = String::from("{\"counters\":");
        self.write_counters_obj(&mut out);
        out.push_str("}\n");
        out
    }

    fn write_counters_obj(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
    }

    /// Renders a human-readable per-stage table in the spirit of Clang's
    /// `-ftime-report`: spans aggregated by name, sorted by total time, with
    /// the share of session wall time; counters listed below.
    pub fn time_report(&self) -> String {
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for e in &self.events {
            let slot = agg.entry(&e.name).or_insert((0, 0));
            slot.0 += e.dur_us;
            slot.1 += 1;
        }
        let mut rows: Vec<(&str, u64, u64)> =
            agg.into_iter().map(|(n, (d, c))| (n, d, c)).collect();
        rows.sort_by(|a, b| (std::cmp::Reverse(a.1), a.0).cmp(&(std::cmp::Reverse(b.1), b.0)));
        let wall = self.wall_us.max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "===-- omplt time report (wall {} us) --===",
            self.wall_us
        );
        let _ = writeln!(out, "{:>10}  {:>6}  {:>6}  name", "us", "calls", "%wall");
        for (name, dur, calls) in rows {
            let pct = (dur as f64) * 100.0 / (wall as f64);
            let _ = writeln!(out, "{dur:>10}  {calls:>6}  {pct:>5.1}%  {name}");
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "---- counters ----");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{v:>10}  {k}");
            }
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_session_means_noop() {
        assert!(!active());
        assert!(handle().is_none());
        count("x", 3);
        let _s = span("orphan");
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let session = Session::begin();
        assert!(active());
        {
            let _outer = span("outer");
            count("nodes", 20);
            {
                let _inner = span_detail("inner", "detail");
                count("nodes", 3);
            }
        }
        let data = session.finish();
        assert!(!active());
        assert_eq!(data.counters["nodes"], 23);
        assert_eq!(data.events.len(), 2);
        // Completion order is child-first.
        assert_eq!(data.events[0].name, "inner");
        assert_eq!(data.events[1].name, "outer");
        let inner = &data.events[0];
        let outer = &data.events[1];
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        assert_eq!(inner.detail.as_deref(), Some("detail"));
        assert!(data.wall_us >= outer.dur_us);
    }

    #[test]
    fn attach_records_worker_threads_under_fresh_tids() {
        let session = Session::begin();
        let handle = session.handle();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let h = handle.clone();
                scope.spawn(move || {
                    let _g = h.attach();
                    let _s = span("worker");
                    count("worker.ticks", 1);
                });
            }
        });
        let data = session.finish();
        assert_eq!(data.counters["worker.ticks"], 2);
        let tids: Vec<u32> = data
            .events
            .iter()
            .filter(|e| e.name == "worker")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
        assert!(tids.iter().all(|&t| t > 0));
    }

    #[test]
    fn attach_guard_restores_previous_recorder() {
        let session = Session::begin();
        let handle = session.handle();
        {
            let _g = handle.attach();
            assert!(active());
        }
        // The thread's own session (tid 0) is restored, not cleared.
        count("after", 1);
        let data = session.finish();
        assert_eq!(data.counters["after"], 1);
    }

    #[test]
    fn dropping_session_uninstalls_recorder() {
        let session = Session::begin();
        drop(session);
        assert!(!active());
    }

    #[test]
    fn nested_sessions_restore_the_outer_recorder() {
        // A per-job session begun on a worker thread (e.g. by ompltd) must
        // hand the thread back to the outer recorder when it ends, so
        // consecutive jobs on one worker cannot leak into each other or
        // into a surrounding session.
        let outer = Session::begin();
        count("outer", 1);
        {
            let inner = Session::begin();
            count("job", 1);
            let data = inner.finish();
            assert_eq!(data.counters.get("job"), Some(&1));
            assert!(!data.counters.contains_key("outer"));
        }
        assert!(active(), "outer recorder restored after the job session");
        count("outer", 1);
        let data = outer.finish();
        assert_eq!(data.counters.get("outer"), Some(&2));
        assert!(!data.counters.contains_key("job"));
    }

    #[test]
    fn chrome_json_parses_and_carries_wall_time() {
        let session = Session::begin();
        {
            let _s = span_detail("stage", "x\"y");
            count("c\"tr", 7);
        }
        let data = session.finish();
        let text = data.to_chrome_json();
        let v = json::parse(&text).expect("trace JSON must parse");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(json::Value::as_str) == Some("stage")));
        let other = v.get("otherData").unwrap();
        assert_eq!(
            other.get("wallTimeUs").unwrap().as_u64().unwrap(),
            data.wall_us
        );
        assert_eq!(
            other
                .get("counters")
                .unwrap()
                .get("c\"tr")
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }

    #[test]
    fn counters_json_is_deterministic() {
        let run = || {
            let session = Session::begin();
            count("b", 2);
            count("a", 1);
            count("b", 3);
            session.finish().to_counters_json()
        };
        let first = run();
        assert_eq!(first, run());
        assert_eq!(first, "{\"counters\":{\"a\":1,\"b\":5}}\n");
    }

    #[test]
    fn time_report_lists_stages_and_counters() {
        let session = Session::begin();
        {
            let _s = span("stage.a");
        }
        count("nodes", 23);
        let report = session.finish().time_report();
        assert!(report.contains("omplt time report"), "{report}");
        assert!(report.contains("stage.a"), "{report}");
        assert!(report.contains("23  nodes"), "{report}");
    }
}
