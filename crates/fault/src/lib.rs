//! Deterministic fault injection for the omplt pipeline.
//!
//! Every pipeline stage registers one or more *fault sites* — named points
//! where a test (via `ompltc --inject-fault=SITE[:COUNT]`) can force a
//! failure: an internal panic, a bytecode-verifier rejection, immediate fuel
//! exhaustion, or a team thread that vanishes before the barrier. The
//! registry is process-global and one-shot: arming `SITE:3` makes the third
//! call to [`fire`] for that site trigger, after which the site disarms.
//!
//! The crate also tracks the *current pipeline stage* so the ICE boundary in
//! the driver can name where a panic (injected or genuine) originated.

use std::sync::Mutex;

/// Every registered fault site, with the failure it forces. The driver uses
/// this list to validate `--inject-fault` and to render the site catalog in
/// usage errors; keep it in sync with the `fire` calls in each crate.
pub const SITES: &[(&str, &str)] = &[
    ("lex.panic", "panic while lexing the next token"),
    ("parse.panic", "panic while parsing a top-level declaration"),
    ("sema.panic", "panic while acting on an OpenMP directive"),
    ("codegen.panic", "panic while lowering a function to IR"),
    ("midend.panic", "panic while running a mid-end pass"),
    ("vm.panic", "panic while compiling IR to bytecode"),
    (
        "vm.verify.reject",
        "force the bytecode verifier to reject the module",
    ),
    (
        "runtime.fuel",
        "exhaust the cooperative fuel budget at run start",
    ),
    (
        "runtime.lost-thread",
        "highest-numbered team thread exits without reaching the barrier",
    ),
];

struct Armed {
    site: &'static str,
    /// Remaining [`fire`] calls before the site triggers; 1 = next call.
    remaining: u64,
}

static ARMED: Mutex<Option<Armed>> = Mutex::new(None);
static STAGE: Mutex<&'static str> = Mutex::new("startup");

/// Returns `true` when `name` is a registered fault site.
pub fn is_known_site(name: &str) -> bool {
    SITES.iter().any(|(s, _)| *s == name)
}

/// Renders the site catalog for usage errors: `"lex.panic, parse.panic, ..."`.
pub fn site_catalog() -> String {
    SITES.iter().map(|(s, _)| *s).collect::<Vec<_>>().join(", ")
}

/// Arms a fault from a `SITE[:COUNT]` spec. COUNT is the 1-based hit at
/// which the site triggers (default 1). Only one site is armed at a time;
/// arming replaces any previous armament.
pub fn arm(spec: &str) -> Result<(), String> {
    let (name, count) = match spec.split_once(':') {
        Some((name, count)) => {
            let n: u64 = count.parse().map_err(|_| {
                format!("invalid fault count '{count}': expected a positive integer")
            })?;
            if n == 0 {
                return Err(format!(
                    "invalid fault count '{count}': expected a positive integer"
                ));
            }
            (name, n)
        }
        None => (spec, 1),
    };
    let site = SITES
        .iter()
        .map(|(s, _)| *s)
        .find(|s| *s == name)
        .ok_or_else(|| {
            format!(
                "unknown fault site '{name}': known sites are {}",
                site_catalog()
            )
        })?;
    *ARMED.lock().unwrap() = Some(Armed {
        site,
        remaining: count,
    });
    Ok(())
}

/// Disarms any armed fault and resets the stage. Tests that arm faults
/// in-process must call this before returning.
pub fn reset() {
    *ARMED.lock().unwrap() = None;
    *STAGE.lock().unwrap() = "startup";
}

/// Called at an injection point. Returns `true` when the armed countdown for
/// `site` reaches zero; the site then disarms so recovery paths (e.g. the
/// interpreter fallback after a forced verifier rejection) run clean. Bumps
/// the `fault.fired.<site>` trace counter when it triggers.
pub fn fire(site: &str) -> bool {
    let mut armed = ARMED.lock().unwrap();
    let Some(a) = armed.as_mut() else {
        return false;
    };
    if a.site != site {
        return false;
    }
    a.remaining -= 1;
    if a.remaining > 0 {
        return false;
    }
    *armed = None;
    drop(armed);
    omplt_trace::count(&format!("fault.fired.{site}"), 1);
    true
}

/// One-line helper for `*.panic` sites: panics with a recognizable message
/// when the armed countdown for `site` triggers. The site's stage prefix is
/// recorded first so the ICE boundary names where the panic originated.
pub fn panic_if_armed(site: &'static str) {
    if fire(site) {
        set_stage(site.split('.').next().unwrap_or(site));
        panic!("injected fault at site '{site}'");
    }
}

/// Records the pipeline stage now executing. The ICE boundary reads this to
/// name where a panic originated; stages are coarse ("parse", "sema",
/// "codegen", "midend", "vm", "runtime").
pub fn set_stage(stage: &'static str) {
    *STAGE.lock().unwrap() = stage;
}

/// The most recently recorded pipeline stage.
pub fn current_stage() -> &'static str {
    *STAGE.lock().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; serialize tests that touch it.
    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn fires_once_at_the_armed_count() {
        let _g = lock();
        arm("sema.panic:3").unwrap();
        assert!(!fire("sema.panic"));
        assert!(!fire("lex.panic"), "other sites never fire");
        assert!(!fire("sema.panic"));
        assert!(fire("sema.panic"), "third matching hit triggers");
        assert!(!fire("sema.panic"), "one-shot: disarmed after firing");
        reset();
    }

    #[test]
    fn default_count_is_the_first_hit() {
        let _g = lock();
        arm("vm.verify.reject").unwrap();
        assert!(fire("vm.verify.reject"));
        reset();
    }

    #[test]
    fn rejects_unknown_sites_and_bad_counts() {
        let _g = lock();
        assert!(arm("nope").unwrap_err().contains("unknown fault site"));
        assert!(arm("lex.panic:0").unwrap_err().contains("positive"));
        assert!(arm("lex.panic:x").unwrap_err().contains("positive"));
        reset();
    }

    #[test]
    fn stage_tracking_round_trips() {
        let _g = lock();
        set_stage("midend");
        assert_eq!(current_stage(), "midend");
        reset();
        assert_eq!(current_stage(), "startup");
    }

    #[test]
    fn every_site_is_unique_and_catalogued() {
        let mut names: Vec<_> = SITES.iter().map(|(s, _)| *s).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate site names");
        assert!(site_catalog().contains("runtime.lost-thread"));
    }
}
