//! Deterministic fault injection for the omplt pipeline.
//!
//! Every pipeline stage registers one or more *fault sites* — named points
//! where a test (via `ompltc --inject-fault=SITE[:COUNT]`) can force a
//! failure: an internal panic, a bytecode-verifier rejection, immediate fuel
//! exhaustion, or a team thread that vanishes before the barrier. The
//! registry is scoped per job (thread) and one-shot: arming `SITE:3` makes
//! the third call to [`fire`] for that site trigger, after which the site
//! disarms.
//!
//! The crate also tracks the *current pipeline stage* so the ICE boundary in
//! the driver can name where a panic (injected or genuine) originated.
//!
//! ## Job scoping
//!
//! Armed faults and the stage marker live in a per-thread *fault scope*, not
//! a process-global slot, so a multi-tenant server (`ompltd`) can run jobs
//! with different armaments concurrently without cross-talk. OpenMP team
//! threads spawned by the runtime inherit the forking job's scope via
//! [`handle`]/[`Handle::attach`], mirroring `omplt-trace`'s session handles —
//! that is what lets `runtime.lost-thread` fire on a team member while the
//! neighbouring job stays clean.
//!
//! Panic capture works the same way: [`install_panic_capture`] registers a
//! process-wide hook once, but the captured (message, backtrace) pair is
//! keyed by thread id and consumed with [`take_panic`], so two jobs that ICE
//! at the same time each report their own panic.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::thread::ThreadId;

/// Every registered fault site, with the failure it forces. The driver uses
/// this list to validate `--inject-fault` and to render the site catalog in
/// usage errors; keep it in sync with the `fire` calls in each crate.
pub const SITES: &[(&str, &str)] = &[
    ("lex.panic", "panic while lexing the next token"),
    ("parse.panic", "panic while parsing a top-level declaration"),
    ("sema.panic", "panic while acting on an OpenMP directive"),
    ("codegen.panic", "panic while lowering a function to IR"),
    ("midend.panic", "panic while running a mid-end pass"),
    ("vm.panic", "panic while compiling IR to bytecode"),
    (
        "vm.verify.reject",
        "force the bytecode verifier to reject the module",
    ),
    (
        "runtime.fuel",
        "exhaust the cooperative fuel budget at run start",
    ),
    (
        "runtime.lost-thread",
        "highest-numbered team thread exits without reaching the barrier",
    ),
    (
        "daemon.worker-kill",
        "uncontained panic kills the pool worker holding the job",
    ),
    (
        "daemon.frame-stall",
        "client writes the length prefix then stalls past the frame timeout",
    ),
    (
        "daemon.cache-corrupt",
        "flip a byte in the cached artifact before the next lookup",
    ),
    (
        "daemon.queue-full",
        "admission control sheds the job as if the queue were full",
    ),
];

struct Armed {
    site: &'static str,
    /// Remaining [`fire`] calls before the site triggers; 1 = next call.
    remaining: u64,
}

/// One job's fault state: the armed site (if any) and the pipeline stage the
/// job is currently executing. Shared by `Arc` with any team threads the job
/// forks, so the interior is mutex-protected.
struct ScopeInner {
    armed: Mutex<Option<Armed>>,
    stage: Mutex<&'static str>,
}

impl ScopeInner {
    fn new() -> Self {
        ScopeInner {
            armed: Mutex::new(None),
            stage: Mutex::new("startup"),
        }
    }
}

thread_local! {
    /// The fault scope current on this thread, if any. Lazily created by
    /// [`arm`]/[`set_stage`]; absent on threads that never touch faults, so
    /// the hot-path [`fire`] check is a thread-local read plus nothing.
    static CURRENT: RefCell<Option<Arc<ScopeInner>>> = const { RefCell::new(None) };

    /// Whether this thread is inside an ICE containment region
    /// ([`contain_panics`]). Only then does the capture hook suppress the
    /// default panic spew; everywhere else (test harness threads, genuinely
    /// unexpected panics) the previous hook still prints.
    static CONTAINED: Cell<bool> = const { Cell::new(false) };
}

fn with_current<R>(f: impl FnOnce(&ScopeInner) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|s| f(s)))
}

fn with_current_or_create<R>(f: impl FnOnce(&ScopeInner) -> R) -> R {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let scope = cur.get_or_insert_with(|| Arc::new(ScopeInner::new()));
        f(scope)
    })
}

/// A shareable reference to the calling thread's fault scope, used to extend
/// the scope onto worker (team) threads. Mirrors `omplt_trace::Handle`.
#[derive(Clone)]
pub struct Handle {
    inner: Arc<ScopeInner>,
}

/// Returns a handle to this thread's fault scope, creating the scope if the
/// thread has none yet. `fork_call` captures one before spawning a team so
/// injected runtime faults (`runtime.lost-thread`) trigger on team members
/// of the arming job — and only of that job.
pub fn handle() -> Handle {
    let inner = CURRENT.with(|c| {
        c.borrow_mut()
            .get_or_insert_with(|| Arc::new(ScopeInner::new()))
            .clone()
    });
    Handle { inner }
}

impl Handle {
    /// Installs the scope on the calling thread until the guard drops; the
    /// previously installed scope (if any) is restored afterwards. Attached
    /// threads count as contained: a team-thread panic is converted to a
    /// runtime error by `fork_call`, so the capture hook should record it
    /// rather than spray the server's stderr.
    pub fn attach(&self) -> AttachGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.inner.clone()));
        let prev_contained = CONTAINED.with(|c| c.replace(true));
        AttachGuard {
            prev,
            prev_contained,
        }
    }
}

/// Restores the previously attached fault scope when dropped.
pub struct AttachGuard {
    prev: Option<Arc<ScopeInner>>,
    prev_contained: bool,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        CONTAINED.with(|c| c.set(self.prev_contained));
    }
}

/// Marks the calling thread as inside an ICE containment boundary until the
/// guard drops: panics are captured for [`take_panic`] *instead of* being
/// printed by the default hook. The driver and the daemon wrap their
/// `catch_unwind` regions in this; threads outside such a region keep the
/// normal panic output.
pub fn contain_panics() -> ContainGuard {
    install_panic_capture();
    let prev = CONTAINED.with(|c| c.replace(true));
    ContainGuard { prev }
}

/// Ends the containment region when dropped.
pub struct ContainGuard {
    prev: bool,
}

impl Drop for ContainGuard {
    fn drop(&mut self) {
        CONTAINED.with(|c| c.set(self.prev));
    }
}

/// Returns `true` when `name` is a registered fault site.
pub fn is_known_site(name: &str) -> bool {
    SITES.iter().any(|(s, _)| *s == name)
}

/// Renders the site catalog for usage errors: `"lex.panic, parse.panic, ..."`.
pub fn site_catalog() -> String {
    SITES.iter().map(|(s, _)| *s).collect::<Vec<_>>().join(", ")
}

/// Parses a `SITE[:COUNT]` spec against the site registry. Returns the
/// interned site name and the count (default 1). Shared by the per-thread
/// [`arm`] and the process-global [`arm_global`]; also used by the daemon's
/// supervisor to read a job's `daemon.worker-kill:N` armament without
/// consuming it.
pub fn parse_spec(spec: &str) -> Result<(&'static str, u64), String> {
    let (name, count) = match spec.split_once(':') {
        Some((name, count)) => {
            let n: u64 = count.parse().map_err(|_| {
                format!("invalid fault count '{count}': expected a positive integer")
            })?;
            if n == 0 {
                return Err(format!(
                    "invalid fault count '{count}': expected a positive integer"
                ));
            }
            (name, n)
        }
        None => (spec, 1),
    };
    let site = SITES
        .iter()
        .map(|(s, _)| *s)
        .find(|s| *s == name)
        .ok_or_else(|| {
            format!(
                "unknown fault site '{name}': known sites are {}",
                site_catalog()
            )
        })?;
    Ok((site, count))
}

/// Arms a fault from a `SITE[:COUNT]` spec in the calling thread's fault
/// scope. COUNT is the 1-based hit at which the site triggers (default 1).
/// Only one site is armed at a time per scope; arming replaces any previous
/// armament.
pub fn arm(spec: &str) -> Result<(), String> {
    let (site, count) = parse_spec(spec)?;
    with_current_or_create(|scope| {
        *scope.armed.lock().unwrap() = Some(Armed {
            site,
            remaining: count,
        });
    });
    Ok(())
}

/// Drops the calling thread's fault scope entirely: disarms any armed fault
/// and resets the stage to "startup". Tests that arm faults in-process must
/// call this before returning; the daemon calls it between jobs.
pub fn reset() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Called at an injection point. Returns `true` when the armed countdown for
/// `site` reaches zero; the site then disarms so recovery paths (e.g. the
/// interpreter fallback after a forced verifier rejection) run clean. Bumps
/// the `fault.fired.<site>` trace counter when it triggers. Threads with no
/// fault scope never fire.
pub fn fire(site: &str) -> bool {
    let fired = with_current(|scope| {
        let mut armed = scope.armed.lock().unwrap();
        let Some(a) = armed.as_mut() else {
            return false;
        };
        if a.site != site {
            return false;
        }
        a.remaining -= 1;
        if a.remaining > 0 {
            return false;
        }
        *armed = None;
        true
    })
    .unwrap_or(false);
    if fired {
        omplt_trace::count(&format!("fault.fired.{site}"), 1);
    }
    fired
}

/// Process-global armory for daemon-level sites. Unlike the per-thread
/// scope, a global armament is visible from every thread (the acceptor, any
/// pool worker) and `SITE:COUNT` means *COUNT shots*: the first COUNT
/// [`fire_global`] calls for the site all trigger, then it disarms. That is
/// the semantics a chaos run wants ("kill two workers over the whole run"),
/// whereas the per-thread scope wants "fail on the Nth hit of this one job".
static GLOBAL: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();

fn global_armory() -> &'static Mutex<HashMap<&'static str, u64>> {
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms a process-global fault from a `SITE[:COUNT]` spec (COUNT = number of
/// shots, default 1). Repeat arming of the same site accumulates shots, so a
/// daemon can take several `--inject-fault` flags.
pub fn arm_global(spec: &str) -> Result<(), String> {
    let (site, count) = parse_spec(spec)?;
    let mut armory = global_armory().lock().unwrap_or_else(|p| p.into_inner());
    *armory.entry(site).or_insert(0) += count;
    Ok(())
}

/// Fires a process-global site: returns `true` while armed shots remain for
/// `site`, consuming one per call. Bumps the `fault.fired.<site>` counter on
/// the calling thread's trace session when it triggers.
pub fn fire_global(site: &str) -> bool {
    let fired = {
        let mut armory = global_armory().lock().unwrap_or_else(|p| p.into_inner());
        match armory.get_mut(site) {
            Some(shots) if *shots > 0 => {
                *shots -= 1;
                if *shots == 0 {
                    armory.remove(site);
                }
                true
            }
            _ => false,
        }
    };
    if fired {
        omplt_trace::count(&format!("fault.fired.{site}"), 1);
    }
    fired
}

/// Disarms every process-global site. Tests that arm globals in-process must
/// call this before returning.
pub fn reset_global() {
    global_armory()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
}

/// One-line helper for `*.panic` sites: panics with a recognizable message
/// when the armed countdown for `site` triggers. The site's stage prefix is
/// recorded first so the ICE boundary names where the panic originated.
pub fn panic_if_armed(site: &'static str) {
    if fire(site) {
        set_stage(site.split('.').next().unwrap_or(site));
        panic!("injected fault at site '{site}'");
    }
}

/// Records the pipeline stage now executing in the calling thread's fault
/// scope. The ICE boundary reads this to name where a panic originated;
/// stages are coarse ("parse", "sema", "codegen", "midend", "vm",
/// "runtime").
pub fn set_stage(stage: &'static str) {
    with_current_or_create(|scope| *scope.stage.lock().unwrap() = stage);
}

/// The most recently recorded pipeline stage on this thread's scope, or
/// "startup" when the thread has no scope.
pub fn current_stage() -> &'static str {
    with_current(|scope| *scope.stage.lock().unwrap()).unwrap_or("startup")
}

/// Captured panics, keyed by the panicking thread. A map (rather than one
/// global slot) so two jobs that ICE concurrently on different worker
/// threads each keep their own (message, backtrace) pair.
static CAPTURED: OnceLock<Mutex<HashMap<ThreadId, (String, String)>>> = OnceLock::new();

fn captured() -> &'static Mutex<HashMap<ThreadId, (String, String)>> {
    CAPTURED.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Installs the process-wide panic hook that records panics per thread for
/// [`take_panic`]. Idempotent; safe to call from every entry point (CLI
/// main, daemon startup, tests). On threads inside a [`contain_panics`]
/// region (or attached to a job scope) the default stderr spew is
/// suppressed — the ICE boundary will render the report; everywhere else
/// the previously installed hook still runs, so unexpected panics and test
/// failures stay visible.
pub fn install_panic_capture() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            let msg = match info.location() {
                Some(l) => format!("{msg} [at {}:{}:{}]", l.file(), l.line(), l.column()),
                None => msg,
            };
            let bt = std::backtrace::Backtrace::force_capture().to_string();
            captured()
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(std::thread::current().id(), (msg, bt));
            if !CONTAINED.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Takes the (message, backtrace) captured for the calling thread's most
/// recent panic, if any. The ICE boundary calls this right after its
/// `catch_unwind` observes an unwind — on the same thread that panicked —
/// so concurrent jobs cannot clobber each other's reports.
pub fn take_panic() -> Option<(String, String)> {
    captured()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&std::thread::current().id())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_armed_count() {
        arm("sema.panic:3").unwrap();
        assert!(!fire("sema.panic"));
        assert!(!fire("lex.panic"), "other sites never fire");
        assert!(!fire("sema.panic"));
        assert!(fire("sema.panic"), "third matching hit triggers");
        assert!(!fire("sema.panic"), "one-shot: disarmed after firing");
        reset();
    }

    #[test]
    fn default_count_is_the_first_hit() {
        arm("vm.verify.reject").unwrap();
        assert!(fire("vm.verify.reject"));
        reset();
    }

    #[test]
    fn rejects_unknown_sites_and_bad_counts() {
        assert!(arm("nope").unwrap_err().contains("unknown fault site"));
        assert!(arm("lex.panic:0").unwrap_err().contains("positive"));
        assert!(arm("lex.panic:x").unwrap_err().contains("positive"));
        reset();
    }

    #[test]
    fn stage_tracking_round_trips() {
        set_stage("midend");
        assert_eq!(current_stage(), "midend");
        reset();
        assert_eq!(current_stage(), "startup");
    }

    #[test]
    fn global_armory_consumes_shots_across_threads() {
        arm_global("daemon.worker-kill:2").unwrap();
        assert!(
            !fire_global("daemon.queue-full"),
            "unarmed site never fires"
        );
        let sibling = std::thread::spawn(|| fire_global("daemon.worker-kill"));
        assert!(sibling.join().unwrap(), "globals are visible cross-thread");
        assert!(fire_global("daemon.worker-kill"), "second shot");
        assert!(!fire_global("daemon.worker-kill"), "shots exhausted");
        // Repeat arming accumulates.
        arm_global("daemon.queue-full").unwrap();
        arm_global("daemon.queue-full").unwrap();
        assert!(fire_global("daemon.queue-full"));
        assert!(fire_global("daemon.queue-full"));
        assert!(!fire_global("daemon.queue-full"));
        reset_global();
    }

    #[test]
    fn parse_spec_round_trips_sites_and_counts() {
        assert_eq!(parse_spec("daemon.frame-stall").unwrap().1, 1);
        assert_eq!(
            parse_spec("daemon.cache-corrupt:4").unwrap(),
            ("daemon.cache-corrupt", 4)
        );
        assert!(parse_spec("daemon.bogus").is_err());
    }

    #[test]
    fn every_site_is_unique_and_catalogued() {
        let mut names: Vec<_> = SITES.iter().map(|(s, _)| *s).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate site names");
        assert!(site_catalog().contains("runtime.lost-thread"));
    }

    #[test]
    fn scopes_are_thread_isolated() {
        // Arm on this thread; a sibling thread must neither see the armament
        // nor be able to fire it, and its own arming must not disturb ours.
        arm("midend.panic").unwrap();
        set_stage("midend");
        let sibling = std::thread::spawn(|| {
            assert!(
                !fire("midend.panic"),
                "armament must not leak across threads"
            );
            assert_eq!(current_stage(), "startup");
            arm("vm.panic").unwrap();
            set_stage("vm");
            assert!(fire("vm.panic"));
            reset();
        });
        sibling.join().unwrap();
        assert_eq!(current_stage(), "midend");
        assert!(
            fire("midend.panic"),
            "own armament survives sibling activity"
        );
        reset();
    }

    #[test]
    fn handle_attach_extends_scope_to_workers() {
        arm("runtime.lost-thread").unwrap();
        let h = handle();
        let worker = std::thread::spawn(move || {
            assert!(!fire("runtime.lost-thread"), "no scope before attach");
            let _g = h.attach();
            assert!(
                fire("runtime.lost-thread"),
                "attached scope shares armament"
            );
        });
        worker.join().unwrap();
        // The worker consumed the one-shot armament through the shared scope.
        assert!(!fire("runtime.lost-thread"));
        reset();
    }

    #[test]
    fn panic_capture_is_keyed_per_thread() {
        install_panic_capture();
        let a = std::thread::spawn(|| {
            let _ = std::panic::catch_unwind(|| panic!("boom-a"));
            take_panic().expect("thread a captured its own panic").0
        });
        let b = std::thread::spawn(|| {
            let _ = std::panic::catch_unwind(|| panic!("boom-b"));
            take_panic().expect("thread b captured its own panic").0
        });
        assert!(a.join().unwrap().contains("boom-a"));
        assert!(b.join().unwrap().contains("boom-b"));
        assert!(take_panic().is_none(), "main thread has no captured panic");
    }
}
