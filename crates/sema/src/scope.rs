//! Lexical scopes for name lookup.

use omplt_ast::{Decl, FunctionDecl, VarDecl, P};
use std::collections::HashMap;

/// One lexical scope level.
#[derive(Default)]
pub struct Scope {
    names: HashMap<String, Decl>,
}

/// A stack of scopes (function, block, loop-init, …).
#[derive(Default)]
pub struct ScopeStack {
    scopes: Vec<Scope>,
}

impl ScopeStack {
    /// Creates the stack with the translation-unit scope.
    pub fn new() -> ScopeStack {
        ScopeStack {
            scopes: vec![Scope::default()],
        }
    }

    /// Enters a nested scope.
    pub fn push(&mut self) {
        self.scopes.push(Scope::default());
    }

    /// Leaves the innermost scope.
    pub fn pop(&mut self) {
        assert!(
            self.scopes.len() > 1,
            "cannot pop the translation-unit scope"
        );
        self.scopes.pop();
    }

    /// Declares `decl` in the innermost scope; returns the previous
    /// same-scope declaration on redefinition.
    pub fn declare(&mut self, decl: Decl) -> Option<Decl> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        scope.names.insert(decl.name().to_string(), decl)
    }

    /// Innermost-out lookup.
    pub fn lookup(&self, name: &str) -> Option<&Decl> {
        self.scopes.iter().rev().find_map(|s| s.names.get(name))
    }

    /// Looks up a variable.
    pub fn lookup_var(&self, name: &str) -> Option<&P<VarDecl>> {
        match self.lookup(name) {
            Some(Decl::Var(v)) => Some(v),
            _ => None,
        }
    }

    /// Looks up a function.
    pub fn lookup_fn(&self, name: &str) -> Option<&P<FunctionDecl>> {
        match self.lookup(name) {
            Some(Decl::Function(f)) => Some(f),
            _ => None,
        }
    }

    /// Current nesting depth (1 = file scope).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ast::ASTContext;
    use omplt_source::SourceLocation;

    #[test]
    fn shadowing_and_popping() {
        let ctx = ASTContext::new();
        let mut s = ScopeStack::new();
        let outer = ctx.make_var("x", ctx.int(), None, SourceLocation::INVALID);
        s.declare(Decl::Var(P::clone(&outer)));
        s.push();
        let inner = ctx.make_var("x", ctx.double_ty(), None, SourceLocation::INVALID);
        s.declare(Decl::Var(inner));
        assert_eq!(s.lookup_var("x").unwrap().ty.spelling(), "double");
        s.pop();
        assert_eq!(s.lookup_var("x").unwrap().ty.spelling(), "int");
    }

    #[test]
    fn redefinition_detected_same_scope_only() {
        let ctx = ASTContext::new();
        let mut s = ScopeStack::new();
        let a = ctx.make_var("a", ctx.int(), None, SourceLocation::INVALID);
        assert!(s.declare(Decl::Var(P::clone(&a))).is_none());
        assert!(s.declare(Decl::Var(a)).is_some());
    }

    #[test]
    fn unknown_name_is_none() {
        let s = ScopeStack::new();
        assert!(s.lookup("nope").is_none());
    }
}
