//! Capture analysis: which variables an outlined region references from its
//! enclosing scope. "Clang also keeps track of which variables are used
//! inside the CapturedStmt to become parameters of the outlined function"
//! (paper §1.2).

use omplt_ast::visitor::{walk_expr, walk_stmt, StmtVisitor};
use omplt_ast::{
    ASTContext, Capture, CaptureKind, CapturedDecl, CapturedStmt, Decl, DeclId, Expr, ExprKind,
    Stmt, StmtKind, VarDecl, P,
};
use std::collections::HashSet;

/// Collects the free variables of `stmt`: `DeclRef`s to variables not
/// declared within the region, in first-use order.
pub fn free_variables(stmt: &P<Stmt>) -> Vec<P<VarDecl>> {
    struct Collector {
        declared: HashSet<DeclId>,
        seen: HashSet<DeclId>,
        free: Vec<P<VarDecl>>,
    }
    impl StmtVisitor for Collector {
        fn visit_stmt(&mut self, s: &P<Stmt>) {
            match &s.kind {
                StmtKind::Decl(decls) => {
                    // Initializers may reference outer variables; the
                    // declared name only becomes local afterwards (C rules
                    // are subtler, but canonical inits cannot self-refer).
                    for d in decls {
                        if let Decl::Var(v) = d {
                            if let Some(init) = &v.init {
                                self.visit_expr(init);
                            }
                            self.declared.insert(v.id);
                        }
                    }
                }
                StmtKind::For { init, .. } => {
                    if let Some(i) = init {
                        self.visit_stmt(i);
                    }
                    // walk_stmt would re-visit init; visit the rest by hand
                    if let StmtKind::For {
                        cond, inc, body, ..
                    } = &s.kind
                    {
                        if let Some(c) = cond {
                            self.visit_expr(c);
                        }
                        if let Some(i) = inc {
                            self.visit_expr(i);
                        }
                        self.visit_stmt(body);
                    }
                }
                StmtKind::CxxForRange(d) => {
                    self.declared.insert(d.begin_var.id);
                    self.declared.insert(d.end_var.id);
                    self.declared.insert(d.loop_var.id);
                    walk_stmt(self, s);
                }
                _ => walk_stmt(self, s),
            }
        }
        fn visit_expr(&mut self, e: &P<Expr>) {
            if let ExprKind::DeclRef(v) = &e.kind {
                if !self.declared.contains(&v.id) && self.seen.insert(v.id) {
                    self.free.push(P::clone(v));
                }
            }
            walk_expr(self, e);
        }
    }
    let mut c = Collector {
        declared: HashSet::new(),
        seen: HashSet::new(),
        free: Vec::new(),
    };
    c.visit_stmt(stmt);
    c.free
}

/// Builds the `CapturedStmt`/`CapturedDecl` pair for an OpenMP outlined
/// region: the body plus the three implicit parameters `.global_tid.`,
/// `.bound_tid.` and `__context` (paper Fig. lst:astdump), capturing every
/// free variable by reference.
pub fn build_omp_captured_stmt(ctx: &ASTContext, body: P<Stmt>) -> P<CapturedStmt> {
    let captures: Vec<Capture> = free_variables(&body)
        .into_iter()
        .map(|var| Capture {
            kind: CaptureKind::ByRef,
            var,
        })
        .collect();
    let int_ptr = ctx.pointer_to(ctx.int());
    let params = vec![
        ctx.make_implicit_param(".global_tid.", P::clone(&int_ptr)),
        ctx.make_implicit_param(".bound_tid.", int_ptr),
        ctx.make_implicit_param("__context", ctx.pointer_to(ctx.void())),
    ];
    P::new(CapturedStmt {
        decl: P::new(CapturedDecl {
            params,
            body,
            nothrow: true,
        }),
        captures,
    })
}

/// Builds a helper-lambda `CapturedStmt` (the canonical-loop distance and
/// loop-user-value functions) with explicit parameters and capture kinds.
pub fn build_helper_lambda(
    params: Vec<P<VarDecl>>,
    body: P<Stmt>,
    by_value: &[DeclId],
) -> P<CapturedStmt> {
    let param_ids: HashSet<DeclId> = params.iter().map(|p| p.id).collect();
    let captures: Vec<Capture> = free_variables(&body)
        .into_iter()
        .filter(|v| !param_ids.contains(&v.id))
        .map(|var| Capture {
            kind: if by_value.contains(&var.id) {
                CaptureKind::ByValue
            } else {
                CaptureKind::ByRef
            },
            var,
        })
        .collect();
    P::new(CapturedStmt {
        decl: P::new(CapturedDecl {
            params,
            body,
            nothrow: true,
        }),
        captures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ast::BinOp;
    use omplt_source::SourceLocation;

    #[test]
    fn free_vs_bound_variables() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let outer = ctx.make_var("n", ctx.int(), None, loc);
        let local = ctx.make_var("x", ctx.int(), Some(ctx.read_var(&outer, loc)), loc);
        // { int x = n; x = x + n; }
        let assign = ctx.binary(
            BinOp::Assign,
            ctx.decl_ref(&local, loc),
            ctx.binary(
                BinOp::Add,
                ctx.read_var(&local, loc),
                ctx.read_var(&outer, loc),
                ctx.int(),
                loc,
            ),
            ctx.int(),
            loc,
        );
        let body = Stmt::new(
            StmtKind::Compound(vec![
                Stmt::new(StmtKind::Decl(vec![Decl::Var(P::clone(&local))]), loc),
                Stmt::new(StmtKind::Expr(assign), loc),
            ]),
            loc,
        );
        let free = free_variables(&body);
        assert_eq!(free.len(), 1);
        assert_eq!(free[0].name, "n");
    }

    #[test]
    fn for_loop_variable_is_bound() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let n = ctx.make_var("n", ctx.int(), None, loc);
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.read_var(&n, loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let free = free_variables(&s);
        assert_eq!(free.len(), 1, "only 'n' is free");
        assert_eq!(free[0].name, "n");
    }

    #[test]
    fn omp_captured_stmt_has_three_implicit_params() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let body = Stmt::new(StmtKind::Null, loc);
        let cs = build_omp_captured_stmt(&ctx, body);
        let names: Vec<&str> = cs.decl.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec![".global_tid.", ".bound_tid.", "__context"]);
        assert!(cs.decl.nothrow);
    }

    #[test]
    fn helper_lambda_by_value_selection() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let a = ctx.make_var("a", ctx.int(), None, loc);
        let b = ctx.make_var("b", ctx.int(), None, loc);
        let sum = ctx.binary(
            BinOp::Add,
            ctx.read_var(&a, loc),
            ctx.read_var(&b, loc),
            ctx.int(),
            loc,
        );
        let body = Stmt::new(StmtKind::Expr(sum), loc);
        let cs = build_helper_lambda(vec![], body, &[a.id]);
        let kinds: Vec<(String, CaptureKind)> = cs
            .captures
            .iter()
            .map(|c| (c.var.name.clone(), c.kind))
            .collect();
        assert!(kinds.contains(&("a".to_string(), CaptureKind::ByValue)));
        assert!(kinds.contains(&("b".to_string(), CaptureKind::ByRef)));
    }
}
