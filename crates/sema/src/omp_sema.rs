//! Sema for OpenMP executable directives: clause validation, loop-nest
//! collection (looking *through* transformation directives via
//! `get_transformed_stmt()` — the shadow-AST composition mechanism),
//! shadow-AST construction, the classic `OMPLoopDirective` helper bundle,
//! and `OMPCanonicalLoop` wrapping for the IrBuilder mode.

use crate::canonical::build_canonical_loop;
use crate::capture::build_omp_captured_stmt;
use crate::loop_analysis::{analyze_canonical_loop, find_nonrectangular_ref};
use crate::sema::{OpenMpCodegenMode, Sema};
use crate::transform::{
    split_prologue, transform_fuse, transform_interchange, transform_reverse, transform_tile,
    transform_unroll_partial, LoopNestLevel,
};
use omplt_ast::{
    BinOp, Expr, LoopDirectiveHelpers, OMPClause, OMPClauseKind, OMPDirective, OMPDirectiveKind,
    PerLoopHelpers, ScheduleKind, Stmt, StmtKind, P,
};
use omplt_source::SourceLocation;

impl Sema<'_> {
    /// Main entry: builds the AST for one OpenMP executable directive.
    pub fn act_on_omp_directive(
        &mut self,
        kind: OMPDirectiveKind,
        clauses: Vec<P<OMPClause>>,
        associated: Option<P<Stmt>>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        if !self.openmp {
            // `-fno-openmp`: pragmas are ignored; the associated statement
            // stands alone.
            return associated.unwrap_or_else(|| Stmt::new(StmtKind::Null, loc));
        }
        // One observability span per directive: the paper's shadow-AST
        // construction cost (§2 vs §3) is exactly the time spent here.
        let _span = omplt_trace::span_detail("sema.directive", kind.name());
        // Fault site: COUNT selects which directive's analysis panics.
        omplt_fault::panic_if_armed("sema.panic");
        self.check_clauses(kind, &clauses, loc);

        let Some(associated) = associated else {
            self.diags.error(
                loc,
                format!(
                    "'#pragma omp {}' requires an associated statement",
                    kind.name()
                ),
            );
            return Stmt::new(StmtKind::Null, loc);
        };

        match kind {
            OMPDirectiveKind::Parallel => {
                let captured = Stmt::new(
                    StmtKind::Captured(build_omp_captured_stmt(&self.ctx, associated)),
                    loc,
                );
                let d = OMPDirective::new(kind, clauses, Some(captured), loc);
                Stmt::new(StmtKind::OMP(P::new(d)), loc)
            }
            OMPDirectiveKind::Unroll => self.act_on_unroll(clauses, associated, loc),
            OMPDirectiveKind::Tile => self.act_on_tile(clauses, associated, loc),
            OMPDirectiveKind::Interchange => self.act_on_interchange(clauses, associated, loc),
            OMPDirectiveKind::Reverse => self.act_on_reverse(clauses, associated, loc),
            OMPDirectiveKind::Fuse => self.act_on_fuse(clauses, associated, loc),
            OMPDirectiveKind::For
            | OMPDirectiveKind::ParallelFor
            | OMPDirectiveKind::Simd
            | OMPDirectiveKind::ForSimd
            | OMPDirectiveKind::ParallelForSimd
            | OMPDirectiveKind::Taskloop => {
                self.act_on_loop_directive(kind, clauses, associated, loc)
            }
        }
    }

    // ---------------- clause validation ----------------

    fn check_clauses(
        &self,
        kind: OMPDirectiveKind,
        clauses: &[P<OMPClause>],
        _loc: SourceLocation,
    ) {
        for c in clauses {
            let ok = match &c.kind {
                OMPClauseKind::Full | OMPClauseKind::Partial(_) => kind == OMPDirectiveKind::Unroll,
                OMPClauseKind::Sizes(_) => kind == OMPDirectiveKind::Tile,
                OMPClauseKind::Permutation(_) => kind == OMPDirectiveKind::Interchange,
                OMPClauseKind::Schedule { .. } | OMPClauseKind::Nowait => kind.is_worksharing(),
                OMPClauseKind::NumThreads(_) => kind.is_parallel(),
                OMPClauseKind::Collapse(_) => kind.is_loop_directive(),
                OMPClauseKind::Grainsize(_) => kind == OMPDirectiveKind::Taskloop,
                OMPClauseKind::Safelen(_) | OMPClauseKind::Simdlen(_) => kind.has_simd(),
                OMPClauseKind::Private(_)
                | OMPClauseKind::FirstPrivate(_)
                | OMPClauseKind::Shared(_)
                | OMPClauseKind::Reduction { .. } => !kind.is_loop_transformation(),
            };
            if !ok {
                self.diags.error(
                    c.loc,
                    format!(
                        "clause '{}' is not valid on '#pragma omp {}'",
                        c.kind.name(),
                        kind.name()
                    ),
                );
            }
            if let OMPClauseKind::Schedule { kind: sk, chunk } = &c.kind {
                // A chunk expression must be a positive integer (OpenMP 5.1
                // §11.5.3); a compile-time-known violation is an error.
                if let Some(chunk) = chunk {
                    if let Some(v) = chunk.eval_const_int() {
                        if v <= 0 {
                            self.diags.error(
                                chunk.loc,
                                "chunk size of 'schedule' clause must be positive",
                            );
                        }
                    }
                }
                if matches!(sk, ScheduleKind::Runtime | ScheduleKind::Auto) && chunk.is_some() {
                    self.diags.error(
                        c.loc,
                        format!("schedule kind '{}' does not take a chunk size", sk.name()),
                    );
                }
            }
            if let OMPClauseKind::Safelen(e) | OMPClauseKind::Simdlen(e) = &c.kind {
                self.positive_const(e, c.kind.name());
            }
        }
        // OpenMP 5.1 §10.4: `simdlen` must not exceed `safelen` when both
        // are present (a preferred width above the legal distance bound
        // would be unsatisfiable).
        let const_of = |want: fn(&OMPClauseKind) -> bool| {
            clauses
                .iter()
                .find(|c| want(&c.kind))
                .and_then(|c| match &c.kind {
                    OMPClauseKind::Safelen(e) | OMPClauseKind::Simdlen(e) => {
                        e.eval_const_int().map(|v| (v, c.loc))
                    }
                    _ => None,
                })
        };
        if let (Some((safelen, _)), Some((simdlen, loc))) = (
            const_of(|k| matches!(k, OMPClauseKind::Safelen(_))),
            const_of(|k| matches!(k, OMPClauseKind::Simdlen(_))),
        ) {
            if simdlen > safelen {
                self.diags.error(
                    loc,
                    format!("'simdlen({simdlen})' must not be greater than 'safelen({safelen})'"),
                );
            }
        }
    }

    /// Evaluates a clause argument as a positive integer constant.
    fn positive_const(&self, e: &P<Expr>, what: &str) -> Option<u64> {
        match e.eval_const_int() {
            Some(v) if v > 0 => Some(v as u64),
            Some(_) => {
                self.diags
                    .error(e.loc, format!("argument to '{what}' must be positive"));
                None
            }
            None => {
                self.diags.error(
                    e.loc,
                    format!("argument to '{what}' must be a constant expression"),
                );
                None
            }
        }
    }

    // ---------------- loop-nest collection ----------------

    /// Resolves one nest level to `(prologue, loop)`, looking through
    /// attributes, `OMPCanonicalLoop` wrappers, transformed-AST compounds,
    /// and — crucially — transformation directives standing in for their
    /// generated loop (paper §2: `getTransformedStmt()`).
    fn resolve_level(&self, stmt: &P<Stmt>, consumer: &str) -> Option<(Vec<P<Stmt>>, P<Stmt>)> {
        let mut prologue = Vec::new();
        let mut cur = P::clone(stmt);
        loop {
            match &cur.kind {
                StmtKind::OMP(d) if d.kind.is_loop_transformation() => {
                    match d.get_transformed_stmt() {
                        Some(t) => {
                            cur = P::clone(t);
                        }
                        None => {
                            // `unroll full` / heuristic unroll leave no
                            // generated loop to associate (paper §1.1).
                            self.diags.error(
                                d.loc,
                                format!(
                                    "'#pragma omp {}' here does not generate a loop that can be associated with '{consumer}'",
                                    d.kind.name()
                                ),
                            );
                            return None;
                        }
                    }
                }
                StmtKind::Attributed { sub, .. } => cur = P::clone(sub),
                StmtKind::OMPCanonicalLoop(cl) => cur = P::clone(&cl.loop_stmt),
                StmtKind::Compound(_) => match split_prologue(&cur) {
                    Some((pro, lp)) => {
                        prologue.extend(pro);
                        cur = lp;
                    }
                    None => {
                        self.diags.error(
                            cur.loc,
                            format!("statement after '{consumer}' must be a for loop"),
                        );
                        return None;
                    }
                },
                StmtKind::For { .. } | StmtKind::CxxForRange(_) => {
                    return Some((prologue, cur));
                }
                _ => {
                    self.diags.error(
                        cur.loc,
                        format!("statement after '{consumer}' must be a for loop"),
                    );
                    return None;
                }
            }
        }
    }

    /// Collects `depth` perfectly nested canonical loops.
    pub fn collect_loop_nest(
        &mut self,
        stmt: &P<Stmt>,
        depth: usize,
        consumer: &str,
    ) -> Option<Vec<LoopNestLevel>> {
        let mut levels = Vec::with_capacity(depth);
        let mut cur = P::clone(stmt);
        for lvl in 0..depth {
            let (prologue, lp) = self.resolve_level(&cur, consumer)?;
            let analysis = analyze_canonical_loop(&self.ctx, self.diags, &lp, consumer)?;
            // Rectangularity (OpenMP 5.1 §4.4.2): bounds of inner loops must
            // be invariant in outer iteration variables — the nest's trip
            // counts are all evaluated before the nest runs, so a dependent
            // bound would read the outer variable out of scope.
            let outer: Vec<_> = levels
                .iter()
                .map(|l: &LoopNestLevel| P::clone(&l.analysis.iter_var))
                .collect();
            if let Some((var, ref_loc)) = find_nonrectangular_ref(&analysis, &outer) {
                self.diags.report_with_notes(
                    omplt_source::Level::Error,
                    ref_loc,
                    format!(
                        "loop nest associated with '{consumer}' must be rectangular: \
                         bound of loop {} depends on iteration variable '{}'",
                        lvl + 1,
                        var.name
                    ),
                    vec![omplt_source::Diagnostic::note(
                        var.loc,
                        format!("iteration variable '{}' declared here", var.name),
                    )],
                );
                return None;
            }
            let next = P::clone(&analysis.body);
            levels.push(LoopNestLevel { prologue, analysis });
            if lvl + 1 < depth {
                // The next level must be the sole statement of the body.
                cur = peel_singleton_compound(&next);
            }
        }
        Some(levels)
    }

    // ---------------- transformation directives ----------------

    fn act_on_unroll(
        &mut self,
        clauses: Vec<P<OMPClause>>,
        associated: P<Stmt>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        let pragma =
            OMPDirective::new(OMPDirectiveKind::Unroll, clauses.clone(), None, loc).pragma_text();
        let mut d = OMPDirective::new(OMPDirectiveKind::Unroll, clauses, None, loc);

        let has_full = d.has_full_clause();
        let partial = d.partial_clause().map(|f| f.cloned());
        if has_full && partial.is_some() {
            self.diags
                .error(loc, "'full' and 'partial' clauses are mutually exclusive");
        }

        let levels = self.collect_loop_nest(&associated, 1, "#pragma omp unroll");
        if let Some(levels) = levels {
            let analysis = &levels[0].analysis;
            if has_full && analysis.const_trip_count().is_none() {
                self.diags.error(
                    loc,
                    "loop to be fully unrolled must have a constant trip count (is the bound a constant?)",
                );
            }
            // The shadow AST exists exactly when a `partial` clause makes
            // the directive potentially consumable (paper §2.2); it is kept
            // in IrBuilder mode too for the consumer-side diagnostics
            // ("for the moment we rely on the existing diagnostic", §3.1).
            if let Some(factor_expr) = &partial {
                let factor = factor_expr
                    .as_ref()
                    .and_then(|e| self.positive_const(e, "partial"))
                    // bare `partial`: "the current implementation uses the
                    // unroll factor of two" (paper §2.2)
                    .unwrap_or(2);
                let transformed = {
                    let mut sm = self.sm.borrow_mut();
                    transform_unroll_partial(&self.ctx, &mut sm, analysis, factor, &pragma)
                };
                // Prologue of an inner transformed loop must stay in front.
                let transformed = wrap_with_prologue(&levels[0].prologue, transformed, loc);
                count_transformed_nodes(&transformed);
                d.transformed = Some(transformed);
            }
        }

        // IrBuilder mode additionally wraps the literal loop (paper §3.1).
        let associated = self.maybe_wrap_canonical(associated, "#pragma omp unroll");
        d.associated = Some(associated);
        Stmt::new(StmtKind::OMP(P::new(d)), loc)
    }

    fn act_on_tile(
        &mut self,
        clauses: Vec<P<OMPClause>>,
        associated: P<Stmt>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        let pragma =
            OMPDirective::new(OMPDirectiveKind::Tile, clauses.clone(), None, loc).pragma_text();
        let mut d = OMPDirective::new(OMPDirectiveKind::Tile, clauses, None, loc);
        let Some(size_exprs) = d.sizes_clause().map(<[_]>::to_vec) else {
            self.diags
                .error(loc, "'#pragma omp tile' requires a 'sizes' clause");
            d.associated = Some(associated);
            return Stmt::new(StmtKind::OMP(P::new(d)), loc);
        };
        let sizes: Vec<u64> = size_exprs
            .iter()
            .filter_map(|e| self.positive_const(e, "sizes"))
            .collect();
        if sizes.len() == size_exprs.len() {
            if let Some(levels) =
                self.collect_loop_nest(&associated, sizes.len(), "#pragma omp tile")
            {
                let transformed = {
                    let mut sm = self.sm.borrow_mut();
                    transform_tile(&self.ctx, &mut sm, &levels, &sizes, &pragma)
                };
                // Tile always stands in for its generated nest (it may
                // always be consumed).
                count_transformed_nodes(&transformed);
                d.transformed = Some(transformed);
            }
        }
        let associated = self.maybe_wrap_canonical(associated, "#pragma omp tile");
        d.associated = Some(associated);
        Stmt::new(StmtKind::OMP(P::new(d)), loc)
    }

    /// `#pragma omp interchange [permutation(σ)]` — swaps (or arbitrarily
    /// permutes) a perfect loop nest. Like tile, interchange always stands
    /// in for its generated nest via the shadow AST; legality against the
    /// dependence graph is checked by `omplt-analysis` (`--analyze`), not
    /// here — Sema only validates the permutation itself.
    fn act_on_interchange(
        &mut self,
        clauses: Vec<P<OMPClause>>,
        associated: P<Stmt>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        let pragma = OMPDirective::new(OMPDirectiveKind::Interchange, clauses.clone(), None, loc)
            .pragma_text();
        let mut d = OMPDirective::new(OMPDirectiveKind::Interchange, clauses, None, loc);

        // permutation(σ): 1-based loop positions; without the clause the
        // directive swaps the two outermost loops (OpenMP 6.0 §7.6).
        let perm: Option<Vec<usize>> = match d.permutation_clause().map(<[_]>::to_vec) {
            None => Some(vec![1, 0]),
            Some(es) => {
                let vals: Vec<u64> = es
                    .iter()
                    .filter_map(|e| self.positive_const(e, "permutation"))
                    .collect();
                if vals.len() != es.len() {
                    None
                } else if vals.len() < 2 {
                    self.diags
                        .error(loc, "'permutation' clause must name at least two loops");
                    None
                } else {
                    let n = vals.len();
                    let mut seen = vec![false; n];
                    let mut ok = true;
                    for (e, &v) in es.iter().zip(&vals) {
                        if v as usize > n || seen[v as usize - 1] {
                            self.diags.error(
                                e.loc,
                                format!("'permutation' arguments must be a permutation of 1..{n}"),
                            );
                            ok = false;
                            break;
                        }
                        seen[v as usize - 1] = true;
                    }
                    ok.then(|| vals.iter().map(|&v| v as usize - 1).collect())
                }
            }
        };

        if let Some(perm) = perm {
            if let Some(levels) =
                self.collect_loop_nest(&associated, perm.len(), "#pragma omp interchange")
            {
                let transformed = {
                    let mut sm = self.sm.borrow_mut();
                    transform_interchange(&self.ctx, &mut sm, &levels, &perm, &pragma)
                };
                let transformed =
                    self.wrap_transformed_tail_canonical(transformed, "#pragma omp interchange");
                count_transformed_nodes(&transformed);
                omplt_trace::count("sema.transform.interchange", 1);
                d.transformed = Some(transformed);
            }
        }
        let associated = self.maybe_wrap_canonical(associated, "#pragma omp interchange");
        d.associated = Some(associated);
        Stmt::new(StmtKind::OMP(P::new(d)), loc)
    }

    /// `#pragma omp reverse` — runs the iterations of one canonical loop in
    /// the opposite order. Legality (the loop must carry no dependence) is
    /// the dependence engine's job.
    fn act_on_reverse(
        &mut self,
        clauses: Vec<P<OMPClause>>,
        associated: P<Stmt>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        let pragma =
            OMPDirective::new(OMPDirectiveKind::Reverse, clauses.clone(), None, loc).pragma_text();
        let mut d = OMPDirective::new(OMPDirectiveKind::Reverse, clauses, None, loc);
        if let Some(levels) = self.collect_loop_nest(&associated, 1, "#pragma omp reverse") {
            let transformed = {
                let mut sm = self.sm.borrow_mut();
                transform_reverse(&self.ctx, &mut sm, &levels[0].analysis, &pragma)
            };
            let transformed =
                self.wrap_transformed_tail_canonical(transformed, "#pragma omp reverse");
            let transformed = wrap_with_prologue(&levels[0].prologue, transformed, loc);
            count_transformed_nodes(&transformed);
            omplt_trace::count("sema.transform.reverse", 1);
            d.transformed = Some(transformed);
        }
        let associated = self.maybe_wrap_canonical(associated, "#pragma omp reverse");
        d.associated = Some(associated);
        Stmt::new(StmtKind::OMP(P::new(d)), loc)
    }

    /// `#pragma omp fuse` — fuses a sequence of sibling canonical loops
    /// into one. Unequal trip counts are handled by guarding each body;
    /// the dependence engine rejects fusions that would introduce a
    /// negative-distance dependence.
    fn act_on_fuse(
        &mut self,
        clauses: Vec<P<OMPClause>>,
        associated: P<Stmt>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        let pragma =
            OMPDirective::new(OMPDirectiveKind::Fuse, clauses.clone(), None, loc).pragma_text();
        let mut d = OMPDirective::new(OMPDirectiveKind::Fuse, clauses, None, loc);

        // The associated statement is a *loop sequence*: a compound whose
        // statements each resolve to a canonical loop (possibly through a
        // nested transformation directive standing in for its result).
        let stmts: Vec<P<Stmt>> = match &associated.kind {
            StmtKind::Compound(ss) => ss.clone(),
            _ => vec![P::clone(&associated)],
        };
        let mut loops: Vec<LoopNestLevel> = Vec::with_capacity(stmts.len());
        let mut ok = true;
        for s in &stmts {
            match self.collect_loop_nest(s, 1, "#pragma omp fuse") {
                Some(mut lv) => loops.push(lv.pop().unwrap()),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && loops.len() < 2 {
            self.diags.error(
                loc,
                "'#pragma omp fuse' requires a sequence of at least two loops",
            );
            ok = false;
        }
        if ok {
            let transformed = {
                let mut sm = self.sm.borrow_mut();
                transform_fuse(&self.ctx, &mut sm, &loops, &pragma)
            };
            let transformed = self.wrap_transformed_tail_canonical(transformed, "#pragma omp fuse");
            count_transformed_nodes(&transformed);
            omplt_trace::count("sema.transform.fuse", 1);
            d.transformed = Some(transformed);
        }
        // The associated compound is not a single canonical loop; the
        // IrBuilder path consumes the shadow AST (whose tail IS wrapped).
        d.associated = Some(associated);
        Stmt::new(StmtKind::OMP(P::new(d)), loc)
    }

    /// In IrBuilder mode, wraps the *trailing loop* of a freshly built
    /// transformed compound in `OMPCanonicalLoop`, so a consuming directive
    /// (`#pragma omp for` over `interchange`/`reverse`/`fuse`) can emit the
    /// generated loop through `emit_loop_construct` like any literal loop.
    fn wrap_transformed_tail_canonical(&mut self, t: P<Stmt>, consumer: &str) -> P<Stmt> {
        if self.mode != OpenMpCodegenMode::IrBuilder {
            return t;
        }
        match &t.kind {
            StmtKind::Compound(stmts) if !stmts.is_empty() => {
                let mut stmts = stmts.clone();
                let last = stmts.pop().unwrap();
                stmts.push(self.wrap_transformed_tail_canonical(last, consumer));
                let loc = t.loc;
                Stmt::new(StmtKind::Compound(stmts), loc)
            }
            StmtKind::For { .. } => self.maybe_wrap_canonical(t, consumer),
            _ => t,
        }
    }

    // ---------------- loop-associated directives ----------------

    fn act_on_loop_directive(
        &mut self,
        kind: OMPDirectiveKind,
        clauses: Vec<P<OMPClause>>,
        associated: P<Stmt>,
        loc: SourceLocation,
    ) -> P<Stmt> {
        let mut d = OMPDirective::new(kind, clauses, None, loc);
        let consumer = format!("#pragma omp {}", kind.name());
        let depth = d.collapse_depth();
        for c in &d.clauses {
            for e in omplt_ast::visitor::clause_exprs(c) {
                if matches!(c.kind, OMPClauseKind::Collapse(_)) {
                    self.positive_const(e, "collapse");
                }
            }
        }

        let levels = self.collect_loop_nest(&associated, depth, &consumer);
        if let Some(levels) = &levels {
            if self.mode == OpenMpCodegenMode::Classic {
                let helpers = self.build_loop_helpers(levels, loc);
                omplt_trace::count("sema.shadow.helper_nodes", helpers.node_count() as u64);
                d.loop_helpers = Some(helpers);
            }
        }

        // IrBuilder mode: wrap the associated literal loop in the
        // OMPCanonicalLoop meta node.
        let associated = self.maybe_wrap_canonical(associated, &consumer);

        // Worksharing and taskloop regions are outlined → CapturedStmt
        // (loop transformations must NOT capture; paper §2.1).
        let associated = if kind.captures_associated() {
            Stmt::new(
                StmtKind::Captured(build_omp_captured_stmt(&self.ctx, associated)),
                loc,
            )
        } else {
            associated
        };
        d.associated = Some(associated);
        Stmt::new(StmtKind::OMP(P::new(d)), loc)
    }

    /// In IrBuilder mode, wraps a *literal* loop in `OMPCanonicalLoop`.
    /// Nested directives (transformation stacking) are left alone — their
    /// own Sema pass already wrapped the innermost literal loop.
    fn maybe_wrap_canonical(&mut self, stmt: P<Stmt>, consumer: &str) -> P<Stmt> {
        if self.mode != OpenMpCodegenMode::IrBuilder {
            return stmt;
        }
        match &stmt.kind {
            StmtKind::For { .. } | StmtKind::CxxForRange(_) => {
                match build_canonical_loop(&self.ctx, self.diags, &stmt, consumer) {
                    Some((node, _)) => {
                        omplt_trace::count(
                            "sema.canonical.meta_items",
                            omplt_ast::OMPCanonicalLoop::META_NODE_COUNT as u64,
                        );
                        let loc = stmt.loc;
                        Stmt::new(StmtKind::OMPCanonicalLoop(node), loc)
                    }
                    None => stmt,
                }
            }
            _ => stmt,
        }
    }

    // ---------------- classic helper bundle ----------------

    /// Builds the `OMPLoopDirective` shadow helper bundle — "up to 30 shadow
    /// AST statements … plus 6 for each loop" (paper §1.2). All nodes are
    /// real expression trees; classic CodeGen emits from them.
    pub fn build_loop_helpers(
        &mut self,
        levels: &[LoopNestLevel],
        loc: SourceLocation,
    ) -> P<LoopDirectiveHelpers> {
        let ctx = &self.ctx;
        let szt = ctx.size_t();
        let lit = |v: i128| ctx.int_lit(v, P::clone(&szt), loc);

        // Captured trip counts (".capture_expr." — see the paper's
        // diagnostics example) and the total iteration space.
        let mut capture_decls = Vec::with_capacity(levels.len());
        for l in levels {
            let tc = l
                .analysis
                .distance_expr_with_start(ctx, P::clone(&l.analysis.lb));
            let tc = ctx.int_convert(tc, &szt);
            capture_decls.push(ctx.make_implicit_var(
                ctx.fresh_name(".capture_expr."),
                P::clone(&szt),
                Some(tc),
                loc,
            ));
        }
        let mut num_iterations = ctx.read_var(&capture_decls[0], loc);
        for cd in &capture_decls[1..] {
            num_iterations = ctx.binary(
                BinOp::Mul,
                num_iterations,
                ctx.read_var(cd, loc),
                P::clone(&szt),
                loc,
            );
        }

        let iv = ctx.make_implicit_var(".omp.iv", P::clone(&szt), None, loc);
        let lb = ctx.make_implicit_var(".omp.lb", P::clone(&szt), None, loc);
        let ub = ctx.make_implicit_var(".omp.ub", P::clone(&szt), None, loc);
        let stride = ctx.make_implicit_var(".omp.stride", P::clone(&szt), None, loc);
        let is_last = ctx.make_implicit_var(".omp.is_last", ctx.int(), None, loc);

        let last_iteration = ctx.binary(
            BinOp::Sub,
            P::clone(&num_iterations),
            lit(1),
            P::clone(&szt),
            loc,
        );
        let precondition = ctx.binary(
            BinOp::Lt,
            lit(0),
            P::clone(&num_iterations),
            ctx.bool_ty(),
            loc,
        );
        let init = ctx.assign(ctx.decl_ref(&iv, loc), lit(0), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&iv, loc),
            P::clone(&num_iterations),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.assign(
            ctx.decl_ref(&iv, loc),
            ctx.binary(
                BinOp::Add,
                ctx.read_var(&iv, loc),
                lit(1),
                P::clone(&szt),
                loc,
            ),
            loc,
        );
        let workshare_init = ctx.assign(ctx.decl_ref(&iv, loc), ctx.read_var(&lb, loc), loc);
        let workshare_cond = ctx.binary(
            BinOp::Le,
            ctx.read_var(&iv, loc),
            ctx.read_var(&ub, loc),
            ctx.bool_ty(),
            loc,
        );
        let ensure_upper_bound = ctx.assign(
            ctx.decl_ref(&ub, loc),
            ctx.min_expr(
                ctx.read_var(&ub, loc),
                P::clone(&last_iteration),
                P::clone(&szt),
                loc,
            ),
            loc,
        );
        let next_lower_bound = ctx.assign(
            ctx.decl_ref(&lb, loc),
            ctx.binary(
                BinOp::Add,
                ctx.read_var(&lb, loc),
                ctx.read_var(&stride, loc),
                P::clone(&szt),
                loc,
            ),
            loc,
        );
        let next_upper_bound = ctx.assign(
            ctx.decl_ref(&ub, loc),
            ctx.binary(
                BinOp::Add,
                ctx.read_var(&ub, loc),
                ctx.read_var(&stride, loc),
                P::clone(&szt),
                loc,
            ),
            loc,
        );

        // Per-loop helpers: recover each counter from the logical IV.
        let mut loops = Vec::with_capacity(levels.len());
        for (k, l) in levels.iter().enumerate() {
            let a = &l.analysis;
            // idx_k = (iv / Π_{j>k} tc_j) % tc_k
            let mut divisor: Option<P<Expr>> = None;
            for cd in capture_decls.iter().skip(k + 1) {
                let r = ctx.read_var(cd, loc);
                divisor = Some(match divisor {
                    None => r,
                    Some(d) => ctx.binary(BinOp::Mul, d, r, P::clone(&szt), loc),
                });
            }
            let mut idx = ctx.read_var(&iv, loc);
            if let Some(d) = divisor {
                idx = ctx.binary(BinOp::Div, idx, d, P::clone(&szt), loc);
            }
            // The outermost counter needs no `% tc_0`: iv < Π tc_j implies
            // iv / Π_{j>0} tc_j < tc_0 already. Skipping it keeps the
            // single-loop (depth-1) index a plain affine function of the
            // logical IV, which the bytecode widening pass can analyze.
            if k > 0 {
                idx = ctx.binary(
                    BinOp::Rem,
                    idx,
                    ctx.read_var(&capture_decls[k], loc),
                    P::clone(&szt),
                    loc,
                );
            }
            let update_val = a.user_value_expr(ctx, P::clone(&a.lb), idx);
            let update = ctx.assign(ctx.decl_ref(&a.iter_var, loc), update_val, loc);

            let init_k = ctx.assign(ctx.decl_ref(&a.iter_var, loc), P::clone(&a.lb), loc);
            let final_idx = ctx.read_var(&capture_decls[k], loc);
            let final_val = a.user_value_expr(ctx, P::clone(&a.lb), final_idx);
            let final_k = ctx.assign(ctx.decl_ref(&a.iter_var, loc), final_val, loc);
            let private_counter = ctx.make_implicit_var(
                format!(".omp.priv.{}", a.iter_var.name),
                P::clone(&a.iter_var.ty),
                None,
                loc,
            );
            loops.push(PerLoopHelpers {
                counter: P::clone(&a.iter_var),
                private_counter,
                init: init_k,
                update,
                final_value: final_k,
                step: P::clone(&a.step),
            });
        }

        P::new(LoopDirectiveHelpers {
            iteration_variable: iv,
            num_iterations,
            last_iteration: P::clone(&last_iteration),
            calc_last_iteration: last_iteration,
            precondition,
            init,
            cond,
            inc,
            lower_bound: lb,
            upper_bound: ub,
            stride,
            is_last_iter_variable: is_last,
            workshare_init,
            workshare_cond,
            ensure_upper_bound,
            next_lower_bound,
            next_upper_bound,
            loops,
            capture_decls,
        })
    }
}

/// Unwraps `{ single-stmt }` compounds (perfect-nest navigation).
fn peel_singleton_compound(s: &P<Stmt>) -> P<Stmt> {
    match &s.kind {
        StmtKind::Compound(stmts) if stmts.len() == 1 => peel_singleton_compound(&stmts[0]),
        _ => P::clone(s),
    }
}

/// Re-wraps a transformed statement with a leading prologue.
/// Records the size of a freshly built transformed (shadow) subtree — the
/// other half of the paper's §2 representation cost next to the helper
/// bundle counted in `act_on_loop_directive`.
fn count_transformed_nodes(t: &P<Stmt>) {
    if omplt_trace::active() {
        let s = omplt_ast::stmt_stats(t);
        omplt_trace::count(
            "sema.shadow.transformed_nodes",
            (s.visible_stmts + s.visible_exprs) as u64,
        );
    }
}

fn wrap_with_prologue(prologue: &[P<Stmt>], t: P<Stmt>, loc: SourceLocation) -> P<Stmt> {
    if prologue.is_empty() {
        return t;
    }
    let mut stmts: Vec<P<Stmt>> = prologue.to_vec();
    stmts.push(t);
    Stmt::new(StmtKind::Compound(stmts), loc)
}

/// Statistics helper: the shadow-node count of a helper bundle plus the
/// capture declarations (used by the representation-comparison experiment).
pub fn helpers_node_count(h: &LoopDirectiveHelpers) -> usize {
    h.node_count()
}

/// Re-export for the paper's C1 experiment.
pub use omplt_ast::OMPCanonicalLoop as _CanonicalForStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::Sema;
    use omplt_ast::Decl;
    use omplt_source::{DiagnosticsEngine, SourceManager};
    use std::cell::RefCell;

    fn mk_loop(s: &Sema, lb: i128, ub: i128, step: i128, body: Option<P<Stmt>>) -> P<Stmt> {
        let ctx = &s.ctx;
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(lb, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(ub, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(step, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: body.unwrap_or_else(|| Stmt::new(StmtKind::Null, loc)),
            },
            loc,
        )
    }

    fn with_sema<R>(mode: OpenMpCodegenMode, f: impl FnOnce(&mut Sema) -> R) -> (R, Vec<String>) {
        let diags = DiagnosticsEngine::new();
        let sm = RefCell::new(SourceManager::new());
        let mut sema = Sema::new(&diags, &sm, mode, true);
        sema.scopes.push();
        let r = f(&mut sema);
        let msgs = diags.all().iter().map(|d| d.message.clone()).collect();
        (r, msgs)
    }

    fn unroll_clause(s: &Sema, partial: Option<i128>) -> P<OMPClause> {
        let loc = SourceLocation::INVALID;
        OMPClause::new(
            OMPClauseKind::Partial(partial.map(|v| s.ctx.int_lit(v, s.ctx.int(), loc))),
            loc,
        )
    }

    #[test]
    fn unroll_partial_builds_shadow_ast() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let c = unroll_clause(s, Some(2));
            s.act_on_omp_directive(
                OMPDirectiveKind::Unroll,
                vec![c],
                Some(lp),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        assert!(
            d.get_transformed_stmt().is_some(),
            "partial unroll must build shadow AST"
        );
    }

    #[test]
    fn unroll_full_has_no_shadow_ast() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let c = OMPClause::new(OMPClauseKind::Full, SourceLocation::INVALID);
            s.act_on_omp_directive(
                OMPDirectiveKind::Unroll,
                vec![c],
                Some(lp),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        assert!(
            d.get_transformed_stmt().is_none(),
            "full unroll leaves no generated loop"
        );
    }

    #[test]
    fn consuming_full_unroll_is_diagnosed() {
        // #pragma omp for over #pragma omp unroll full → C4.
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let full = OMPClause::new(OMPClauseKind::Full, SourceLocation::INVALID);
            let inner = s.act_on_omp_directive(
                OMPDirectiveKind::Unroll,
                vec![full],
                Some(lp),
                SourceLocation::INVALID,
            );
            s.act_on_omp_directive(
                OMPDirectiveKind::For,
                vec![],
                Some(inner),
                SourceLocation::INVALID,
            )
        });
        assert!(
            msgs.iter().any(|m| m.contains("does not generate a loop")),
            "{msgs:?}"
        );
    }

    #[test]
    fn consuming_partial_unroll_reanalyzes_generated_loop() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let c = unroll_clause(s, Some(2));
            let inner = s.act_on_omp_directive(
                OMPDirectiveKind::Unroll,
                vec![c],
                Some(lp),
                SourceLocation::INVALID,
            );
            s.act_on_omp_directive(
                OMPDirectiveKind::ParallelFor,
                vec![],
                Some(inner),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        assert!(
            d.loop_helpers.is_some(),
            "classic mode builds the helper bundle"
        );
        // associated is CapturedStmt wrapping the inner unroll directive
        let StmtKind::Captured(_) = &d.associated.as_ref().unwrap().kind else {
            panic!("worksharing must capture its region");
        };
    }

    #[test]
    fn tile_requires_sizes() {
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            s.act_on_omp_directive(
                OMPDirectiveKind::Tile,
                vec![],
                Some(lp),
                SourceLocation::INVALID,
            )
        });
        assert!(
            msgs.iter().any(|m| m.contains("requires a 'sizes'")),
            "{msgs:?}"
        );
    }

    #[test]
    fn tile_depth_2_collects_nested_loops() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let inner = mk_loop(s, 0, 8, 1, None);
            let outer = mk_loop(s, 0, 16, 1, Some(inner));
            let loc = SourceLocation::INVALID;
            let sizes = OMPClause::new(
                OMPClauseKind::Sizes(vec![
                    s.ctx.int_lit(4, s.ctx.int(), loc),
                    s.ctx.int_lit(2, s.ctx.int(), loc),
                ]),
                loc,
            );
            s.act_on_omp_directive(OMPDirectiveKind::Tile, vec![sizes], Some(outer), loc)
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        let t = d.get_transformed_stmt().unwrap();
        assert_eq!(crate::transform::count_generated_loops(t), 4);
    }

    #[test]
    fn insufficient_nest_depth_is_diagnosed() {
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 8, 1, None); // body is NullStmt, not a loop
            let loc = SourceLocation::INVALID;
            let sizes = OMPClause::new(
                OMPClauseKind::Sizes(vec![
                    s.ctx.int_lit(4, s.ctx.int(), loc),
                    s.ctx.int_lit(2, s.ctx.int(), loc),
                ]),
                loc,
            );
            s.act_on_omp_directive(OMPDirectiveKind::Tile, vec![sizes], Some(lp), loc)
        });
        assert!(
            msgs.iter().any(|m| m.contains("must be a for loop")),
            "{msgs:?}"
        );
    }

    #[test]
    fn irbuilder_mode_wraps_canonical_loop() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::IrBuilder, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            s.act_on_omp_directive(
                OMPDirectiveKind::Unroll,
                vec![unroll_clause(s, Some(2))],
                Some(lp),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        assert!(
            matches!(
                d.associated.as_ref().unwrap().kind,
                StmtKind::OMPCanonicalLoop(_)
            ),
            "IrBuilder mode must wrap the literal loop"
        );
    }

    #[test]
    fn classic_mode_helper_bundle_size_vs_canonical() {
        // The 36-vs-3 comparison (paper §3: "reduced from the 36 shadow AST
        // nodes required by OMPLoopDirective" to 3 meta items).
        let (count, _) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let stmt = s.act_on_omp_directive(
                OMPDirectiveKind::For,
                vec![],
                Some(lp),
                SourceLocation::INVALID,
            );
            let StmtKind::OMP(d) = &stmt.kind else {
                panic!()
            };
            d.loop_helpers.as_ref().unwrap().node_count()
        });
        assert_eq!(count, 17 + 6, "one loop: nest-wide 17 + 6 per-loop helpers");
        assert!(count > 7 * omplt_ast::OMPCanonicalLoop::META_NODE_COUNT);
    }

    #[test]
    fn wrong_clause_on_directive_is_diagnosed() {
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let loc = SourceLocation::INVALID;
            let sizes = OMPClause::new(
                OMPClauseKind::Sizes(vec![s.ctx.int_lit(4, s.ctx.int(), loc)]),
                loc,
            );
            s.act_on_omp_directive(OMPDirectiveKind::For, vec![sizes], Some(lp), loc)
        });
        assert!(msgs.iter().any(|m| m.contains("not valid on")), "{msgs:?}");
    }

    #[test]
    fn interchange_default_swaps_two_loops() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let inner = mk_loop(s, 0, 8, 1, None);
            let outer = mk_loop(s, 0, 16, 1, Some(inner));
            s.act_on_omp_directive(
                OMPDirectiveKind::Interchange,
                vec![],
                Some(outer),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        let t = d
            .get_transformed_stmt()
            .expect("interchange builds shadow AST");
        assert_eq!(crate::transform::count_generated_loops(t), 2);
    }

    #[test]
    fn interchange_permutation_must_be_valid() {
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let inner = mk_loop(s, 0, 8, 1, None);
            let outer = mk_loop(s, 0, 16, 1, Some(inner));
            let loc = SourceLocation::INVALID;
            let perm = OMPClause::new(
                OMPClauseKind::Permutation(vec![
                    s.ctx.int_lit(1, s.ctx.int(), loc),
                    s.ctx.int_lit(3, s.ctx.int(), loc),
                ]),
                loc,
            );
            s.act_on_omp_directive(OMPDirectiveKind::Interchange, vec![perm], Some(outer), loc)
        });
        assert!(
            msgs.iter().any(|m| m.contains("permutation of 1..2")),
            "{msgs:?}"
        );
    }

    #[test]
    fn interchange_permutation_on_wrong_directive_is_diagnosed() {
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let loc = SourceLocation::INVALID;
            let perm = OMPClause::new(
                OMPClauseKind::Permutation(vec![
                    s.ctx.int_lit(2, s.ctx.int(), loc),
                    s.ctx.int_lit(1, s.ctx.int(), loc),
                ]),
                loc,
            );
            s.act_on_omp_directive(OMPDirectiveKind::Tile, vec![perm], Some(lp), loc)
        });
        assert!(msgs.iter().any(|m| m.contains("not valid on")), "{msgs:?}");
    }

    #[test]
    fn reverse_builds_shadow_ast() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            s.act_on_omp_directive(
                OMPDirectiveKind::Reverse,
                vec![],
                Some(lp),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        let t = d.get_transformed_stmt().expect("reverse builds shadow AST");
        assert_eq!(crate::transform::count_generated_loops(t), 1);
    }

    #[test]
    fn fuse_requires_two_loops() {
        let (_, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let lp = mk_loop(s, 0, 10, 1, None);
            let loc = SourceLocation::INVALID;
            let compound = Stmt::new(StmtKind::Compound(vec![lp]), loc);
            s.act_on_omp_directive(OMPDirectiveKind::Fuse, vec![], Some(compound), loc)
        });
        assert!(
            msgs.iter().any(|m| m.contains("at least two loops")),
            "{msgs:?}"
        );
    }

    #[test]
    fn fuse_builds_single_guarded_loop() {
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let a = mk_loop(s, 0, 10, 1, None);
            let b = mk_loop(s, 0, 6, 1, None);
            let loc = SourceLocation::INVALID;
            let compound = Stmt::new(StmtKind::Compound(vec![a, b]), loc);
            s.act_on_omp_directive(OMPDirectiveKind::Fuse, vec![], Some(compound), loc)
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        let t = d.get_transformed_stmt().expect("fuse builds shadow AST");
        assert_eq!(crate::transform::count_generated_loops(t), 1);
    }

    #[test]
    fn consuming_interchange_reanalyzes_generated_loop() {
        // #pragma omp for over #pragma omp interchange: the worksharing
        // directive associates with the *generated* (permuted) outer loop.
        let (stmt, msgs) = with_sema(OpenMpCodegenMode::Classic, |s| {
            let inner = mk_loop(s, 0, 8, 1, None);
            let outer = mk_loop(s, 0, 16, 1, Some(inner));
            let ic = s.act_on_omp_directive(
                OMPDirectiveKind::Interchange,
                vec![],
                Some(outer),
                SourceLocation::INVALID,
            );
            s.act_on_omp_directive(
                OMPDirectiveKind::For,
                vec![],
                Some(ic),
                SourceLocation::INVALID,
            )
        });
        assert!(msgs.is_empty(), "{msgs:?}");
        let StmtKind::OMP(d) = &stmt.kind else {
            panic!()
        };
        assert!(d.loop_helpers.is_some());
    }

    #[test]
    fn openmp_disabled_passes_through() {
        let diags = DiagnosticsEngine::new();
        let sm = RefCell::new(SourceManager::new());
        let mut sema = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, false);
        sema.scopes.push();
        let lp = mk_loop(&sema, 0, 4, 1, None);
        let r = sema.act_on_omp_directive(
            OMPDirectiveKind::ParallelFor,
            vec![],
            Some(P::clone(&lp)),
            SourceLocation::INVALID,
        );
        assert!(
            P::ptr_eq(&r, &lp),
            "disabled OpenMP must return the bare statement"
        );
    }
}
