//! Range-based for-loop de-sugaring (paper Fig. lst:rangeloop): Sema builds
//! the `CXXForRangeStmt` with its equivalent helper statements —
//! `__range`/`__begin`/`__end` declarations, the `__begin != __end`
//! condition, the `++__begin` increment, and the per-iteration loop-user-
//! variable binding.

use crate::sema::Sema;
use omplt_ast::{
    BinOp, CastKind, CxxForRangeData, Decl, Expr, ExprKind, Stmt, StmtKind, Type, TypeKind, UnOp,
    VarDecl, VarKind, P,
};
use omplt_source::SourceLocation;

impl Sema<'_> {
    /// Builds `for (T [&]name : range) body-to-come`; returns the de-sugared
    /// data with a placeholder body — the parser parses the body inside the
    /// returned loop-variable scope and finishes via
    /// [`Sema::act_on_range_for_end`].
    ///
    /// The range must be an array lvalue (our container model); `elem_ty` is
    /// the declared element type (checked against the array).
    pub fn act_on_range_for_begin(
        &mut self,
        name: &str,
        elem_ty: Option<P<Type>>,
        by_ref: bool,
        range: P<Expr>,
        loc: SourceLocation,
    ) -> Option<RangeForParts> {
        let TypeKind::Array(arr_elem, len) = &range.ty.kind else {
            self.diags.error(
                range.loc,
                format!(
                    "cannot iterate over non-array type '{}'",
                    range.ty.spelling()
                ),
            );
            return None;
        };
        let (arr_elem, len) = (P::clone(arr_elem), *len);
        if let Some(t) = &elem_ty {
            if **t != *arr_elem {
                self.diags.error(
                    loc,
                    format!(
                        "loop variable type '{}' does not match element type '{}'",
                        t.spelling(),
                        arr_elem.spelling()
                    ),
                );
            }
        }
        let ptr_ty = self.ctx.pointer_to(P::clone(&arr_elem));

        // auto &&__range = Container;  (modeled as the decayed pointer)
        let decayed = Expr::rvalue(
            ExprKind::ImplicitCast(CastKind::ArrayToPointerDecay, range),
            P::clone(&ptr_ty),
            loc,
        );
        let range_var =
            self.ctx
                .make_implicit_var("__range", P::clone(&ptr_ty), Some(decayed), loc);
        // auto __begin = std::begin(__range);
        let begin_var = self.ctx.make_implicit_var(
            "__begin",
            P::clone(&ptr_ty),
            Some(self.ctx.read_var(&range_var, loc)),
            loc,
        );
        // auto __end = std::end(__range);  == __range + N
        let end_init = self.ctx.binary(
            BinOp::Add,
            self.ctx.read_var(&range_var, loc),
            self.ctx.int_lit(len as i128, self.ctx.size_t(), loc),
            P::clone(&ptr_ty),
            loc,
        );
        let end_var = self
            .ctx
            .make_implicit_var("__end", P::clone(&ptr_ty), Some(end_init), loc);

        // __begin != __end
        let cond = self.ctx.binary(
            BinOp::Ne,
            self.ctx.read_var(&begin_var, loc),
            self.ctx.read_var(&end_var, loc),
            self.ctx.bool_ty(),
            loc,
        );
        // ++__begin
        let inc = self.ctx.unary(
            UnOp::PreInc,
            self.ctx.decl_ref(&begin_var, loc),
            P::clone(&ptr_ty),
            loc,
        );
        // T [&]name = *__begin;
        let deref = P::new(Expr {
            kind: ExprKind::Unary(UnOp::Deref, self.ctx.read_var(&begin_var, loc)),
            ty: P::clone(&arr_elem),
            category: omplt_ast::ValueCategory::LValue,
            loc,
        });
        let deref = if by_ref {
            deref
        } else {
            // by-value copies the element
            let t = P::clone(&arr_elem);
            Expr::rvalue(
                ExprKind::ImplicitCast(CastKind::LValueToRValue, deref),
                t,
                loc,
            )
        };
        let loop_var = P::new(VarDecl {
            id: self.ctx.fresh_decl_id(),
            name: name.to_string(),
            ty: arr_elem,
            init: Some(deref),
            loc,
            kind: VarKind::Local,
            implicit: false,
            by_ref,
            used: std::cell::Cell::new(false),
        });
        self.scopes.push();
        self.scopes.declare(Decl::Var(P::clone(&loop_var)));
        Some(RangeForParts {
            range_var,
            begin_var,
            end_var,
            cond,
            inc,
            loop_var,
            loc,
        })
    }

    /// Completes the range-for once the body is parsed (pops the loop-var
    /// scope).
    pub fn act_on_range_for_end(&mut self, parts: RangeForParts, body: P<Stmt>) -> P<Stmt> {
        self.scopes.pop();
        let loc = parts.loc;
        let mk_decl = |v: &P<VarDecl>| Stmt::new(StmtKind::Decl(vec![Decl::Var(P::clone(v))]), loc);
        let data = CxxForRangeData {
            range_stmt: mk_decl(&parts.range_var),
            begin_stmt: mk_decl(&parts.begin_var),
            end_stmt: mk_decl(&parts.end_var),
            cond: parts.cond,
            inc: parts.inc,
            loop_var_stmt: mk_decl(&parts.loop_var),
            begin_var: parts.begin_var,
            end_var: parts.end_var,
            loop_var: parts.loop_var,
            body,
        };
        Stmt::new(StmtKind::CxxForRange(P::new(data)), loc)
    }

    /// Builds an explicit C-style cast.
    pub fn act_on_cast(&mut self, to: P<Type>, e: P<Expr>, loc: SourceLocation) -> P<Expr> {
        let e = self.rvalue(e);
        if *e.ty == *to {
            return e;
        }
        let kind = match (&e.ty.kind, &to.kind) {
            (TypeKind::Int { .. } | TypeKind::Bool, TypeKind::Int { .. } | TypeKind::Bool) => {
                CastKind::IntegralCast
            }
            (TypeKind::Int { .. } | TypeKind::Bool, TypeKind::Float | TypeKind::Double) => {
                CastKind::IntegralToFloating
            }
            (TypeKind::Float | TypeKind::Double, TypeKind::Int { .. } | TypeKind::Bool) => {
                CastKind::FloatingToIntegral
            }
            (TypeKind::Float | TypeKind::Double, TypeKind::Float | TypeKind::Double) => {
                CastKind::FloatingCast
            }
            (TypeKind::Pointer(_), TypeKind::Pointer(_)) => CastKind::NoOp,
            (TypeKind::Pointer(_), TypeKind::Int { .. }) => CastKind::PointerToIntegral,
            (TypeKind::Int { .. }, TypeKind::Pointer(_)) => CastKind::IntegralToPointer,
            _ => {
                self.diags.error(
                    loc,
                    format!(
                        "invalid cast from '{}' to '{}'",
                        e.ty.spelling(),
                        to.spelling()
                    ),
                );
                CastKind::NoOp
            }
        };
        P::new(Expr {
            kind: ExprKind::ExplicitCast(kind, e),
            ty: to,
            category: omplt_ast::ValueCategory::RValue,
            loc,
        })
    }
}

/// Intermediate state between `act_on_range_for_begin` and `_end`.
pub struct RangeForParts {
    range_var: P<VarDecl>,
    begin_var: P<VarDecl>,
    end_var: P<VarDecl>,
    cond: P<Expr>,
    inc: P<Expr>,
    loop_var: P<VarDecl>,
    loc: SourceLocation,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::OpenMpCodegenMode;
    use omplt_source::{DiagnosticsEngine, SourceManager};
    use std::cell::RefCell;

    #[test]
    fn desugars_array_range_for() {
        let diags = DiagnosticsEngine::new();
        let sm = RefCell::new(SourceManager::new());
        let mut s = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
        s.scopes.push();
        let loc = SourceLocation::INVALID;
        let arr_ty = Type::new(TypeKind::Array(s.ctx.double_ty(), 8));
        let arr = s.act_on_var_decl("data", arr_ty, None, false, loc);
        let range = s.ctx.decl_ref(&arr, loc);
        let parts = s
            .act_on_range_for_begin("v", Some(s.ctx.double_ty()), true, range, loc)
            .expect("desugar");
        // loop variable is in scope for the body
        let body_ref = s.act_on_decl_ref("v", loc);
        assert!(body_ref.as_decl_ref().is_some());
        let body = Stmt::new(StmtKind::Expr(body_ref), loc);
        let stmt = s.act_on_range_for_end(parts, body);
        assert!(!diags.has_errors(), "{:?}", diags.all());
        let StmtKind::CxxForRange(d) = &stmt.kind else {
            panic!()
        };
        assert_eq!(d.begin_var.name, "__begin");
        assert_eq!(d.end_var.name, "__end");
        assert!(d.loop_var.by_ref);
        assert_eq!(d.loop_var.ty.spelling(), "double");
        // loop variable is out of scope after
        s.act_on_decl_ref("v", loc);
        assert!(diags.has_errors());
    }

    #[test]
    fn element_type_mismatch_diagnosed() {
        let diags = DiagnosticsEngine::new();
        let sm = RefCell::new(SourceManager::new());
        let mut s = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
        s.scopes.push();
        let loc = SourceLocation::INVALID;
        let arr_ty = Type::new(TypeKind::Array(s.ctx.double_ty(), 4));
        let arr = s.act_on_var_decl("a", arr_ty, None, false, loc);
        let range = s.ctx.decl_ref(&arr, loc);
        let parts = s.act_on_range_for_begin("v", Some(s.ctx.int()), false, range, loc);
        assert!(parts.is_some());
        assert!(diags.has_errors());
        if let Some(p) = parts {
            let body = Stmt::new(StmtKind::Null, loc);
            s.act_on_range_for_end(p, body);
        }
    }

    #[test]
    fn non_array_range_rejected() {
        let diags = DiagnosticsEngine::new();
        let sm = RefCell::new(SourceManager::new());
        let mut s = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
        s.scopes.push();
        let loc = SourceLocation::INVALID;
        let x = s.act_on_var_decl("x", s.ctx.int(), None, false, loc);
        let range = s.ctx.decl_ref(&x, loc);
        assert!(s
            .act_on_range_for_begin("v", None, false, range, loc)
            .is_none());
        assert!(diags.has_errors());
    }
}
