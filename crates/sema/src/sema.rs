//! The semantic analyzer. The parser pushes syntax into these `act_on_*`
//! entry points (Clang's "pushed to Sema to create an AST node" control
//! flow, paper Fig. 1); Sema type-checks, inserts implicit nodes
//! (conversions, decay), and owns the OpenMP directive handling in
//! `omp_sema`.

use crate::scope::ScopeStack;
use omplt_ast::{
    ASTContext, BinOp, CastKind, Decl, Expr, ExprKind, FunctionDecl, Stmt, StmtKind, Type,
    TypeKind, UnOp, VarDecl, VarKind, P,
};
use omplt_source::{DiagnosticsEngine, SourceLocation, SourceManager};
use std::cell::RefCell;

/// Which OpenMP lowering the pipeline uses — Clang's
/// `-fopenmp-enable-irbuilder` flag (paper §1.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OpenMpCodegenMode {
    /// Shadow-AST representation + classic CodeGen (paper §2).
    #[default]
    Classic,
    /// `OMPCanonicalLoop` + OpenMPIRBuilder (paper §3).
    IrBuilder,
}

/// The Sema layer state.
pub struct Sema<'a> {
    /// AST allocation context.
    pub ctx: ASTContext,
    /// Diagnostics sink shared with all layers.
    pub diags: &'a DiagnosticsEngine,
    /// Source manager (mutable: transformed-location creation).
    pub sm: &'a RefCell<SourceManager>,
    /// Name lookup scopes.
    pub scopes: ScopeStack,
    /// Selected OpenMP lowering.
    pub mode: OpenMpCodegenMode,
    /// Whether OpenMP pragmas are honored (`-fopenmp`); when false they
    /// parse but lower to their associated statements.
    pub openmp: bool,
    /// The function currently being analyzed (for `return` checking).
    pub current_fn: Option<P<FunctionDecl>>,
}

impl<'a> Sema<'a> {
    /// Creates a Sema over shared diagnostics and source manager.
    pub fn new(
        diags: &'a DiagnosticsEngine,
        sm: &'a RefCell<SourceManager>,
        mode: OpenMpCodegenMode,
        openmp: bool,
    ) -> Sema<'a> {
        Sema {
            ctx: ASTContext::new(),
            diags,
            sm,
            scopes: ScopeStack::new(),
            mode,
            openmp,
            current_fn: None,
        }
    }

    /// An error-recovery expression (type `int`, value 0).
    pub fn error_expr(&self, loc: SourceLocation) -> P<Expr> {
        self.ctx.int_lit(0, self.ctx.int(), loc)
    }

    // ---------------- declarations ----------------

    /// Declares a local variable, converting the initializer.
    pub fn act_on_var_decl(
        &mut self,
        name: &str,
        ty: P<Type>,
        init: Option<P<Expr>>,
        by_ref: bool,
        loc: SourceLocation,
    ) -> P<VarDecl> {
        let init = init.map(|e| {
            if by_ref {
                // Reference binding: keep the lvalue (no decay/conversion).
                e
            } else {
                self.convert_for_init(e, &ty)
            }
        });
        let var = P::new(VarDecl {
            id: self.ctx.fresh_decl_id(),
            name: name.to_string(),
            ty,
            init,
            loc,
            kind: if self.scopes.depth() == 1 {
                VarKind::Global
            } else {
                VarKind::Local
            },
            implicit: false,
            by_ref,
            used: std::cell::Cell::new(false),
        });
        if self.scopes.declare(Decl::Var(P::clone(&var))).is_some() {
            self.diags.error(loc, format!("redefinition of '{name}'"));
        }
        var
    }

    /// Starts a function: declares it, pushes the parameter scope.
    pub fn act_on_function_start(
        &mut self,
        name: &str,
        ret: P<Type>,
        params: Vec<(String, P<Type>, SourceLocation)>,
        loc: SourceLocation,
    ) -> P<FunctionDecl> {
        let param_decls: Vec<P<VarDecl>> = params
            .iter()
            .map(|(n, t, l)| {
                P::new(VarDecl {
                    id: self.ctx.fresh_decl_id(),
                    name: n.clone(),
                    ty: P::clone(t),
                    init: None,
                    loc: *l,
                    kind: VarKind::Param,
                    implicit: false,
                    by_ref: false,
                    used: std::cell::Cell::new(false),
                })
            })
            .collect();
        let fn_ty = Type::new(TypeKind::Function {
            ret,
            params: params.iter().map(|(_, t, _)| P::clone(t)).collect(),
        });
        // Re-declaration with a body is a definition of a prior prototype.
        let func = if let Some(prev) = self.scopes.lookup_fn(name).cloned() {
            if *prev.ty != *fn_ty {
                self.diags
                    .error(loc, format!("conflicting types for '{name}'"));
            }
            prev
        } else {
            let f = P::new(FunctionDecl {
                id: self.ctx.fresh_decl_id(),
                name: name.to_string(),
                ty: fn_ty,
                params: param_decls.clone(),
                body: RefCell::new(None),
                loc,
            });
            self.scopes.declare(Decl::Function(P::clone(&f)));
            f
        };
        self.scopes.push();
        for p in &func.params {
            self.scopes.declare(Decl::Var(P::clone(p)));
        }
        self.current_fn = Some(P::clone(&func));
        func
    }

    /// Finishes a function definition (or prototype when `body` is `None`).
    pub fn act_on_function_end(&mut self, func: &P<FunctionDecl>, body: Option<P<Stmt>>) {
        if let Some(b) = body {
            if func.is_definition() {
                self.diags
                    .error(func.loc, format!("redefinition of '{}'", func.name));
            }
            *func.body.borrow_mut() = Some(b);
        }
        self.scopes.pop();
        self.current_fn = None;
    }

    // ---------------- expressions ----------------

    /// Resolves a name to a variable reference (with array decay deferred to
    /// the use site).
    pub fn act_on_decl_ref(&mut self, name: &str, loc: SourceLocation) -> P<Expr> {
        match self.scopes.lookup_var(name) {
            Some(v) => self.ctx.decl_ref(&P::clone(v), loc),
            None => {
                self.diags
                    .error(loc, format!("use of undeclared identifier '{name}'"));
                self.error_expr(loc)
            }
        }
    }

    /// Loads an rvalue out of `e` if it is an lvalue (inserting
    /// `LValueToRValue`), and decays arrays/functions.
    pub fn rvalue(&self, e: P<Expr>) -> P<Expr> {
        let loc = e.loc;
        if let TypeKind::Array(elem, _) = &e.ty.kind {
            let pty = self.ctx.pointer_to(P::clone(elem));
            return Expr::rvalue(
                ExprKind::ImplicitCast(CastKind::ArrayToPointerDecay, e),
                pty,
                loc,
            );
        }
        if e.is_lvalue() {
            let ty = P::clone(&e.ty);
            return Expr::rvalue(ExprKind::ImplicitCast(CastKind::LValueToRValue, e), ty, loc);
        }
        e
    }

    /// Converts `e` to `to` (for initialization/assignment/arguments).
    pub fn convert_for_init(&self, e: P<Expr>, to: &P<Type>) -> P<Expr> {
        let e = self.rvalue(e);
        self.implicit_convert(e, to)
    }

    /// Inserts an implicit conversion node when types differ.
    pub fn implicit_convert(&self, e: P<Expr>, to: &P<Type>) -> P<Expr> {
        if *e.ty == **to {
            return e;
        }
        let loc = e.loc;
        let kind = match (&e.ty.kind, &to.kind) {
            (TypeKind::Int { .. } | TypeKind::Bool, TypeKind::Int { .. }) => CastKind::IntegralCast,
            (TypeKind::Int { .. } | TypeKind::Bool, TypeKind::Float | TypeKind::Double) => {
                CastKind::IntegralToFloating
            }
            (TypeKind::Float | TypeKind::Double, TypeKind::Int { .. }) => {
                CastKind::FloatingToIntegral
            }
            (TypeKind::Float | TypeKind::Double, TypeKind::Float | TypeKind::Double) => {
                CastKind::FloatingCast
            }
            (TypeKind::Int { .. }, TypeKind::Bool) => CastKind::IntegralToBoolean,
            (TypeKind::Float | TypeKind::Double, TypeKind::Bool) => CastKind::IntegralToBoolean,
            (TypeKind::Pointer(_), TypeKind::Pointer(_)) => CastKind::NoOp,
            (TypeKind::Pointer(_), TypeKind::Bool) => CastKind::IntegralToBoolean,
            _ => {
                self.diags.error(
                    loc,
                    format!(
                        "cannot convert '{}' to '{}'",
                        e.ty.spelling(),
                        to.spelling()
                    ),
                );
                CastKind::NoOp
            }
        };
        Expr::rvalue(ExprKind::ImplicitCast(kind, e), P::clone(to), loc)
    }

    /// The common type of the usual arithmetic conversions.
    fn common_arith_type(&self, a: &P<Type>, b: &P<Type>) -> P<Type> {
        fn rank(t: &Type) -> u32 {
            match &t.kind {
                TypeKind::Double => 100,
                TypeKind::Float => 90,
                TypeKind::Int { width, signed } => 10 + width.bits() * 2 + (!signed) as u32,
                TypeKind::Bool => 1,
                _ => 0,
            }
        }
        // Integer promotion: everything below int promotes to int.
        let promote = |t: &P<Type>| -> P<Type> {
            match &t.kind {
                TypeKind::Bool => self.ctx.int(),
                TypeKind::Int { width, .. } if width.bits() < 32 => self.ctx.int(),
                _ => P::clone(t),
            }
        };
        let (a, b) = (promote(a), promote(b));
        if rank(&a) >= rank(&b) {
            a
        } else {
            b
        }
    }

    /// Builds a type-checked binary operation.
    pub fn act_on_binary(
        &mut self,
        op: BinOp,
        lhs: P<Expr>,
        rhs: P<Expr>,
        loc: SourceLocation,
    ) -> P<Expr> {
        if op.is_assignment() {
            if !lhs.is_lvalue() {
                self.diags.error(loc, "expression is not assignable");
                return self.error_expr(loc);
            }
            let lty = P::clone(&lhs.ty);
            // Compound pointer arithmetic (p += n) keeps the pointer type.
            let rhs = if lty.is_pointer() && op != BinOp::Assign {
                self.rvalue(rhs)
            } else {
                self.convert_for_init(rhs, &lty)
            };
            return self.ctx.binary(op, lhs, rhs, lty, loc);
        }
        match op {
            BinOp::Comma => {
                let rty = P::clone(&rhs.ty);
                let rhs = self.rvalue(rhs);
                let ty = P::clone(&rhs.ty);
                let _ = rty;
                self.ctx.binary(op, self.rvalue(lhs), rhs, ty, loc)
            }
            BinOp::LAnd | BinOp::LOr => {
                let l = self.to_bool(lhs);
                let r = self.to_bool(rhs);
                self.ctx.binary(op, l, r, self.ctx.bool_ty(), loc)
            }
            _ if op.is_comparison() => {
                let (l, r) = self.arith_operands(lhs, rhs, loc);
                self.ctx.binary(op, l, r, self.ctx.bool_ty(), loc)
            }
            BinOp::Add | BinOp::Sub => {
                let l = self.rvalue(lhs);
                let r = self.rvalue(rhs);
                // Pointer arithmetic: p ± n, p - q.
                if l.ty.is_pointer() && r.ty.is_integer() {
                    let ty = P::clone(&l.ty);
                    return self.ctx.binary(op, l, r, ty, loc);
                }
                if op == BinOp::Sub && l.ty.is_pointer() && r.ty.is_pointer() {
                    return self.ctx.binary(op, l, r, self.ctx.ptrdiff_t(), loc);
                }
                if op == BinOp::Add && l.ty.is_integer() && r.ty.is_pointer() {
                    let ty = P::clone(&r.ty);
                    return self.ctx.binary(op, r, l, ty, loc);
                }
                let (l, r, ty) = self.converted_arith(l, r, loc);
                self.ctx.binary(op, l, r, ty, loc)
            }
            _ => {
                let l = self.rvalue(lhs);
                let r = self.rvalue(rhs);
                let (l, r, ty) = self.converted_arith(l, r, loc);
                self.ctx.binary(op, l, r, ty, loc)
            }
        }
    }

    fn arith_operands(
        &mut self,
        lhs: P<Expr>,
        rhs: P<Expr>,
        loc: SourceLocation,
    ) -> (P<Expr>, P<Expr>) {
        let l = self.rvalue(lhs);
        let r = self.rvalue(rhs);
        if l.ty.is_pointer() || r.ty.is_pointer() {
            return (l, r); // pointer comparisons compare addresses
        }
        let (l, r, _) = self.converted_arith(l, r, loc);
        (l, r)
    }

    fn converted_arith(
        &mut self,
        l: P<Expr>,
        r: P<Expr>,
        loc: SourceLocation,
    ) -> (P<Expr>, P<Expr>, P<Type>) {
        if !l.ty.is_arithmetic() || !r.ty.is_arithmetic() {
            self.diags
                .error(loc, "invalid operands to binary expression");
            let ty = self.ctx.int();
            return (self.error_expr(loc), self.error_expr(loc), ty);
        }
        let ty = self.common_arith_type(&l.ty, &r.ty);
        (
            self.implicit_convert(l, &ty),
            self.implicit_convert(r, &ty),
            ty,
        )
    }

    /// Converts a controlling expression to `bool`.
    pub fn to_bool(&self, e: P<Expr>) -> P<Expr> {
        let e = self.rvalue(e);
        self.implicit_convert(e, &self.ctx.bool_ty())
    }

    /// Builds a type-checked unary operation.
    pub fn act_on_unary(&mut self, op: UnOp, sub: P<Expr>, loc: SourceLocation) -> P<Expr> {
        match op {
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                if !sub.is_lvalue() {
                    self.diags.error(loc, "expression is not assignable");
                    return self.error_expr(loc);
                }
                let ty = P::clone(&sub.ty);
                self.ctx.unary(op, sub, ty, loc)
            }
            UnOp::Deref => {
                let sub = self.rvalue(sub);
                match sub.ty.pointee() {
                    Some(p) => {
                        let pty = P::clone(p);
                        Expr::lvalue(ExprKind::Unary(op, sub), pty, loc)
                    }
                    None => {
                        self.diags
                            .error(loc, "indirection requires pointer operand");
                        self.error_expr(loc)
                    }
                }
            }
            UnOp::AddrOf => {
                if !sub.is_lvalue() {
                    self.diags
                        .error(loc, "cannot take the address of an rvalue");
                    return self.error_expr(loc);
                }
                let ty = self.ctx.pointer_to(P::clone(&sub.ty));
                self.ctx.unary(op, sub, ty, loc)
            }
            UnOp::LNot => {
                let b = self.to_bool(sub);
                self.ctx.unary(op, b, self.ctx.bool_ty(), loc)
            }
            UnOp::Plus | UnOp::Minus | UnOp::BitNot => {
                let sub = self.rvalue(sub);
                if !sub.ty.is_arithmetic() {
                    self.diags.error(loc, "invalid operand to unary expression");
                    return self.error_expr(loc);
                }
                let ty = self.common_arith_type(&sub.ty, &self.ctx.int());
                let sub = self.implicit_convert(sub, &ty);
                self.ctx.unary(op, sub, ty, loc)
            }
        }
    }

    /// Builds a type-checked call.
    pub fn act_on_call(&mut self, name: &str, args: Vec<P<Expr>>, loc: SourceLocation) -> P<Expr> {
        let Some(callee) = self.scopes.lookup_fn(name).cloned() else {
            self.diags
                .error(loc, format!("call to undeclared function '{name}'"));
            return self.error_expr(loc);
        };
        let TypeKind::Function { ret, params } = &callee.ty.kind else {
            unreachable!()
        };
        let (ret, params) = (P::clone(ret), params.clone());
        if args.len() != params.len() {
            self.diags.error(
                loc,
                format!(
                    "'{name}' expects {} argument(s), {} given",
                    params.len(),
                    args.len()
                ),
            );
            return self.error_expr(loc);
        }
        let args: Vec<P<Expr>> = args
            .into_iter()
            .zip(&params)
            .map(|(a, p)| self.convert_for_init(a, p))
            .collect();
        Expr::rvalue(ExprKind::Call { callee, args }, ret, loc)
    }

    /// Builds `base[index]` (an lvalue of the element type).
    pub fn act_on_subscript(
        &mut self,
        base: P<Expr>,
        index: P<Expr>,
        loc: SourceLocation,
    ) -> P<Expr> {
        let base = self.rvalue(base); // decays arrays
        let index = self.rvalue(index);
        let Some(elem) = base.ty.pointee().map(P::clone) else {
            self.diags
                .error(loc, "subscripted value is not an array or pointer");
            return self.error_expr(loc);
        };
        if !index.ty.is_integral_or_bool() {
            self.diags.error(loc, "array subscript is not an integer");
            return self.error_expr(loc);
        }
        Expr::lvalue(ExprKind::ArraySubscript(base, index), elem, loc)
    }

    /// Builds `c ? t : f`.
    pub fn act_on_conditional(
        &mut self,
        c: P<Expr>,
        t: P<Expr>,
        f: P<Expr>,
        loc: SourceLocation,
    ) -> P<Expr> {
        let c = self.to_bool(c);
        let t = self.rvalue(t);
        let f = self.rvalue(f);
        let ty = if *t.ty == *f.ty {
            P::clone(&t.ty)
        } else if t.ty.is_arithmetic() && f.ty.is_arithmetic() {
            self.common_arith_type(&t.ty, &f.ty)
        } else {
            self.diags
                .error(loc, "incompatible operand types in conditional expression");
            self.ctx.int()
        };
        let t = self.implicit_convert(t, &ty);
        let f = self.implicit_convert(f, &ty);
        P::new(Expr {
            kind: ExprKind::Conditional(c, t, f),
            ty,
            category: omplt_ast::ValueCategory::RValue,
            loc,
        })
    }

    /// Builds a `return` statement, converting to the return type.
    pub fn act_on_return(&mut self, e: Option<P<Expr>>, loc: SourceLocation) -> P<Stmt> {
        let ret_ty = self.current_fn.as_ref().map(|f| f.return_type());
        let e = match (e, ret_ty) {
            (Some(e), Some(rt)) if !rt.is_void() => Some(self.convert_for_init(e, &rt)),
            (Some(e), _) => {
                self.diags
                    .error(loc, "void function should not return a value");
                let _ = e;
                None
            }
            (None, Some(rt)) if !rt.is_void() => {
                self.diags
                    .error(loc, "non-void function should return a value");
                None
            }
            (None, _) => None,
        };
        Stmt::new(StmtKind::Return(e), loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_sema<R>(f: impl FnOnce(&mut Sema) -> R) -> (R, usize) {
        let diags = DiagnosticsEngine::new();
        let sm = RefCell::new(SourceManager::new());
        let mut sema = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
        sema.scopes.push(); // function scope for local declarations
        let r = f(&mut sema);
        let n = diags.num_errors();
        (r, n)
    }

    #[test]
    fn arithmetic_conversion_int_double() {
        let ((ty, has_cast), errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let i = s.ctx.int_lit(1, s.ctx.int(), loc);
            let d = Expr::rvalue(ExprKind::FloatingLiteral(2.5), s.ctx.double_ty(), loc);
            let e = s.act_on_binary(BinOp::Add, i, d, loc);
            let has_cast = matches!(
                &e.kind,
                ExprKind::Binary(_, l, _) if matches!(l.kind, ExprKind::ImplicitCast(CastKind::IntegralToFloating, _))
            );
            (e.ty.spelling(), has_cast)
        });
        assert_eq!(errs, 0);
        assert_eq!(ty, "double");
        assert!(has_cast);
    }

    #[test]
    fn assignment_requires_lvalue() {
        let (_, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let l = s.ctx.int_lit(1, s.ctx.int(), loc);
            let r = s.ctx.int_lit(2, s.ctx.int(), loc);
            s.act_on_binary(BinOp::Assign, l, r, loc)
        });
        assert_eq!(errs, 1);
    }

    #[test]
    fn undeclared_identifier_is_diagnosed() {
        let (_, errs) = with_sema(|s| s.act_on_decl_ref("ghost", SourceLocation::INVALID));
        assert_eq!(errs, 1);
    }

    #[test]
    fn var_decl_and_lookup() {
        let (name, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let init = s.ctx.int_lit(3, s.ctx.int(), loc);
            s.act_on_var_decl("x", s.ctx.int(), Some(init), false, loc);
            let r = s.act_on_decl_ref("x", loc);
            r.as_decl_ref().unwrap().name.clone()
        });
        assert_eq!(errs, 0);
        assert_eq!(name, "x");
    }

    #[test]
    fn redefinition_is_diagnosed() {
        let (_, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            s.act_on_var_decl("x", s.ctx.int(), None, false, loc);
            s.act_on_var_decl("x", s.ctx.int(), None, false, loc);
        });
        assert_eq!(errs, 1);
    }

    #[test]
    fn array_decays_in_subscript() {
        let (ty, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let arr_ty = Type::new(TypeKind::Array(s.ctx.double_ty(), 8));
            let a = s.act_on_var_decl("a", arr_ty, None, false, loc);
            let base = s.ctx.decl_ref(&a, loc);
            let idx = s.ctx.int_lit(2, s.ctx.int(), loc);
            let e = s.act_on_subscript(base, idx, loc);
            assert!(e.is_lvalue());
            e.ty.spelling()
        });
        assert_eq!(errs, 0);
        assert_eq!(ty, "double");
    }

    #[test]
    fn pointer_difference_is_ptrdiff() {
        let (ty, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let pty = s.ctx.pointer_to(s.ctx.double_ty());
            let p = s.act_on_var_decl("p", P::clone(&pty), None, false, loc);
            let q = s.act_on_var_decl("q", pty, None, false, loc);
            let e = s.act_on_binary(
                BinOp::Sub,
                s.ctx.decl_ref(&p, loc),
                s.ctx.decl_ref(&q, loc),
                loc,
            );
            e.ty.spelling()
        });
        assert_eq!(errs, 0);
        assert_eq!(ty, "long");
    }

    #[test]
    fn call_arity_checked() {
        let (_, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let f = s.act_on_function_start(
                "f",
                s.ctx.void(),
                vec![("x".into(), s.ctx.int(), loc)],
                loc,
            );
            s.act_on_function_end(&f, None);
            s.act_on_call("f", vec![], loc)
        });
        assert_eq!(errs, 1);
    }

    #[test]
    fn return_type_mismatch_diagnosed() {
        let (_, errs) = with_sema(|s| {
            let loc = SourceLocation::INVALID;
            let f = s.act_on_function_start("v", s.ctx.void(), vec![], loc);
            let lit = s.ctx.int_lit(1, s.ctx.int(), loc);
            let r = s.act_on_return(Some(lit), loc);
            s.act_on_function_end(&f, Some(r));
        });
        assert_eq!(errs, 1);
    }
}
