//! OpenMP *canonical loop form* analysis (OpenMP 5.1 §4.4.1), shared by both
//! representations:
//!
//! ```text
//! for (init-expr; test-expr; incr-expr) structured-block
//! ```
//!
//! with `init-expr` of the form `var = lb` (or a declaration), `test-expr`
//! relating `var` to an invariant bound with `< <= > >= !=`, and `incr-expr`
//! one of `++var`, `var++`, `--var`, `var--`, `var += s`, `var -= s`,
//! `var = var + s`, `var = var - s`.
//!
//! The analysis produces everything Sema needs for either representation:
//! the trip-count ("distance") expression over an **unsigned** logical
//! counter of the iteration variable's width — the paper's rule; see the
//! `INT32_MIN..INT32_MAX` discussion in §3.1 — and the expression mapping a
//! logical iteration number back to the user variable's value.

use omplt_ast::{
    ASTContext, BinOp, CastKind, Decl, Expr, ExprKind, Stmt, StmtKind, Type, UnOp, VarDecl, P,
};
use omplt_source::{DiagnosticsEngine, SourceLocation};

/// Iteration direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopDirection {
    /// Counting up (`<`, `<=`, or `!=` with positive step).
    Up,
    /// Counting down (`>`, `>=`, or `!=` with negative step).
    Down,
}

/// Everything Sema learned about one canonical loop.
#[derive(Debug)]
pub struct CanonicalLoopAnalysis {
    /// The loop iteration variable (paper terminology).
    pub iter_var: P<VarDecl>,
    /// Whether the init-statement *declares* the variable (vs. assigns it).
    pub declares_var: bool,
    /// Lower bound (initial value) expression.
    pub lb: P<Expr>,
    /// The bound the condition tests against.
    pub ub: P<Expr>,
    /// Comparison used in the test (normalized so `iter_var` is on the LHS).
    pub relop: BinOp,
    /// Step magnitude expression (always positive; direction is separate).
    pub step: P<Expr>,
    /// Direction of iteration.
    pub direction: LoopDirection,
    /// The loop body.
    pub body: P<Stmt>,
    /// Location of the `for` keyword.
    pub loc: SourceLocation,
    /// The unsigned logical-iteration-counter type (paper §3.1: unsigned,
    /// same precision as the iteration variable).
    pub logical_ty: P<Type>,
}

impl CanonicalLoopAnalysis {
    /// Builds the **distance function** body expression: the loop trip
    /// count as a value of [`CanonicalLoopAnalysis::logical_ty`].
    ///
    /// For an upward loop with exclusive bound:
    /// `lb < ub ? (unsigned)(ub - lb - 1) / step + 1 : 0`
    /// (computed in the unsigned type so the `INT32_MIN..INT32_MAX` case —
    /// 2³²−2 iterations — is representable; paper §3.1).
    pub fn distance_expr(&self, ctx: &ASTContext) -> P<Expr> {
        // Current (start) value of the iteration variable.
        let start = ctx.read_var(&self.iter_var, self.loc);
        self.distance_expr_with_start(ctx, start)
    }

    /// Like [`CanonicalLoopAnalysis::distance_expr`], but with an explicit
    /// start-value expression (the shadow-AST transforms use the loop's
    /// lower bound directly, since the transformed AST replaces the loop and
    /// its variable declaration).
    pub fn distance_expr_with_start(&self, ctx: &ASTContext, start: P<Expr>) -> P<Expr> {
        let loc = self.loc;
        let uty = P::clone(&self.logical_ty);
        let var_ty = P::clone(&self.iter_var.ty);
        let bound = P::clone(&self.ub);

        // Normalize to a strict "distance > 0" test and an inclusive span.
        // span = (up)  bound - start   (exclusive) or bound - start + 1
        //        (down) start - bound  (exclusive) or start - bound + 1
        let (hi, lo) = match self.direction {
            LoopDirection::Up => (bound, start),
            LoopDirection::Down => (start, bound),
        };
        let strict = matches!(self.relop, BinOp::Lt | BinOp::Gt | BinOp::Ne);

        // nonempty = lo < hi   (or lo <= hi for inclusive bounds)
        let cmp_op = if strict { BinOp::Lt } else { BinOp::Le };
        let nonempty = ctx.binary(cmp_op, P::clone(&lo), P::clone(&hi), ctx.bool_ty(), loc);

        // raw = (unsigned)(hi - lo); for inclusive bounds the span is
        // raw + 1 iterations of step 1 — folded into the +1 below by using
        // `raw - 1 + 1 = raw` (exclusive) vs `raw + 1` (inclusive):
        //   iterations = (raw - (strict ? 1 : 0)) / step + 1
        // Pointer difference yields ptrdiff_t (element count, C semantics).
        let diff_ty = if var_ty.is_pointer() {
            ctx.ptrdiff_t()
        } else {
            P::clone(&var_ty)
        };
        let diff = ctx.binary(BinOp::Sub, hi, lo, diff_ty, loc);
        let raw = to_unsigned(ctx, diff, &uty);
        let adjusted = if strict {
            ctx.binary(
                BinOp::Sub,
                raw,
                ctx.int_lit(1, P::clone(&uty), loc),
                P::clone(&uty),
                loc,
            )
        } else {
            raw
        };
        let step_u = to_unsigned(ctx, P::clone(&self.step), &uty);
        let divided = ctx.binary(BinOp::Div, adjusted, step_u, P::clone(&uty), loc);
        let plus1 = ctx.binary(
            BinOp::Add,
            divided,
            ctx.int_lit(1, P::clone(&uty), loc),
            P::clone(&uty),
            loc,
        );
        let zero = ctx.int_lit(0, P::clone(&uty), loc);
        P::new(Expr {
            kind: ExprKind::Conditional(nonempty, plus1, zero),
            ty: uty,
            category: omplt_ast::ValueCategory::RValue,
            loc,
        })
    }

    /// Builds the **loop user value function** body expression: the value of
    /// the iteration variable for logical iteration `logical` (an expression
    /// of the logical type), given `start` — the by-value-captured start
    /// value (paper §3.1: `__begin` is "captured by-value so at any time it
    /// will contain the start value").
    pub fn user_value_expr(&self, ctx: &ASTContext, start: P<Expr>, logical: P<Expr>) -> P<Expr> {
        let loc = self.loc;
        let var_ty = P::clone(&self.iter_var.ty);
        // offset = logical * step. For integer variables the multiply
        // happens in the variable's type; for pointer variables (iterator
        // loops) it stays in the logical type and `ptr + n` scales by the
        // element size (C semantics, implemented by codegen).
        let mul_ty = if var_ty.is_pointer() {
            P::clone(&self.logical_ty)
        } else {
            P::clone(&var_ty)
        };
        let step_in = ctx.int_convert(P::clone(&self.step), &mul_ty);
        let logical_in = ctx.int_convert(logical, &mul_ty);
        let offset = ctx.binary(BinOp::Mul, logical_in, step_in, mul_ty, loc);
        let op = match self.direction {
            LoopDirection::Up => BinOp::Add,
            LoopDirection::Down => BinOp::Sub,
        };
        ctx.binary(op, start, offset, var_ty, loc)
    }

    /// Constant trip count, when lb/ub/step are all constants.
    ///
    /// The count is computed in **checked unsigned arithmetic**, mirroring
    /// the paper's rule (§3.1, claim C5) that the logical iteration counter
    /// is *unsigned*: the full `i64` range (`lb = i64::MIN`, `ub = i64::MAX`,
    /// strict, step 1) yields `u64::MAX` exactly, while a count that does
    /// not fit `u64` (the same range inclusive) returns `None` rather than
    /// truncating. A non-positive step also returns `None`: `analyze_for`
    /// rejects constant zero steps and folds negative ones into the loop
    /// direction, so such a value only reaches here through a hand-built
    /// analysis — refusing is safer than fabricating a count from a clamp.
    pub fn const_trip_count(&self) -> Option<u64> {
        let lb = self.lb.eval_const_int()?;
        let ub = self.ub.eval_const_int()?;
        let step = self.step.eval_const_int()?;
        if step <= 0 {
            return None;
        }
        let strict = matches!(self.relop, BinOp::Lt | BinOp::Gt | BinOp::Ne);
        let (hi, lo) = match self.direction {
            LoopDirection::Up => (ub, lb),
            LoopDirection::Down => (lb, ub),
        };
        // `eval_const_int` values are arbitrary i128; the subtraction itself
        // must be checked before moving to unsigned math.
        let diff = hi.checked_sub(lo)?;
        if diff < 0 || (strict && diff == 0) {
            return Some(0);
        }
        let span = (diff as u128) + u128::from(!strict);
        let count = (span - 1) / (step as u128) + 1;
        u64::try_from(count).ok()
    }
}

fn to_unsigned(_ctx: &ASTContext, e: P<Expr>, uty: &P<Type>) -> P<Expr> {
    if *e.ty == **uty {
        return e;
    }
    let loc = e.loc;
    P::new(Expr {
        kind: ExprKind::ImplicitCast(CastKind::IntegralCast, e),
        ty: P::clone(uty),
        category: omplt_ast::ValueCategory::RValue,
        loc,
    })
}

/// Analyzes `stmt` as an OpenMP canonical loop; reports diagnostics through
/// `diags` and returns `None` on malformed loops. `directive_name` is used
/// in messages (e.g. `"#pragma omp unroll"`).
pub fn analyze_canonical_loop(
    ctx: &ASTContext,
    diags: &DiagnosticsEngine,
    stmt: &P<Stmt>,
    directive_name: &str,
) -> Option<CanonicalLoopAnalysis> {
    let stmt = stmt.strip_to_loop();
    match &stmt.kind {
        StmtKind::For {
            init,
            cond,
            inc,
            body,
        } => analyze_for(
            ctx,
            diags,
            stmt.loc,
            init.as_ref(),
            cond.as_ref(),
            inc.as_ref(),
            body,
            directive_name,
        ),
        StmtKind::CxxForRange(d) => {
            // The de-sugared begin/end/cond/inc follow the canonical pattern
            // by construction (Sema built them); analyze the pointer loop.
            // `__end - __begin` is a pointer difference — C semantics
            // (element count) are implemented by codegen, so the distance
            // expression works unchanged (the paper's "ptrdiff_t for
            // pointers and most iterators").
            let iter_var = P::clone(&d.begin_var);
            let lb = d.begin_var.init.clone()?;
            let ub = ctx.read_var(&d.end_var, stmt.loc);
            Some(CanonicalLoopAnalysis {
                logical_ty: ctx.size_t(),
                iter_var,
                declares_var: true,
                lb,
                ub,
                relop: BinOp::Ne,
                step: ctx.int_lit(1, ctx.size_t(), stmt.loc),
                direction: LoopDirection::Up,
                body: P::clone(&d.body),
                loc: stmt.loc,
            })
        }
        _ => {
            diags.error(
                stmt.loc,
                format!("statement after '{directive_name}' must be a for loop"),
            );
            None
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_for(
    ctx: &ASTContext,
    diags: &DiagnosticsEngine,
    loc: SourceLocation,
    init: Option<&P<Stmt>>,
    cond: Option<&P<Expr>>,
    inc: Option<&P<Expr>>,
    body: &P<Stmt>,
    directive_name: &str,
) -> Option<CanonicalLoopAnalysis> {
    // ---- init-expr ----
    let (iter_var, lb, declares_var) = match init {
        Some(s) => match &s.kind {
            StmtKind::Decl(decls) => match decls.as_slice() {
                [Decl::Var(v)] if v.init.is_some() => (
                    P::clone(v),
                    v.init.clone().expect("guard checked init"),
                    true,
                ),
                _ => {
                    diags.error(
                        s.loc,
                        format!(
                            "initialization clause of OpenMP for loop is not in canonical form ('var = init' or 'T var = init') for '{directive_name}'"
                        ),
                    );
                    return None;
                }
            },
            StmtKind::Expr(e) => match &e.ignore_wrappers().kind {
                ExprKind::Binary(BinOp::Assign, lhs, rhs) => match lhs.as_decl_ref() {
                    Some(v) => (P::clone(v), P::clone(rhs), false),
                    None => {
                        diags.error(e.loc, "canonical loop init must assign a variable");
                        return None;
                    }
                },
                _ => {
                    diags.error(
                        e.loc,
                        "initialization clause of OpenMP for loop is not in canonical form",
                    );
                    return None;
                }
            },
            _ => {
                diags.error(
                    s.loc,
                    "initialization clause of OpenMP for loop is not in canonical form",
                );
                return None;
            }
        },
        None => {
            diags.error(
                loc,
                format!("'{directive_name}' loop requires an init clause"),
            );
            return None;
        }
    };
    if !iter_var.ty.is_integer() && !iter_var.ty.is_pointer() {
        diags.error(
            iter_var.loc,
            format!(
                "variable '{}' must be of integer or pointer type in OpenMP canonical loop",
                iter_var.name
            ),
        );
        return None;
    }

    // ---- test-expr ----
    let Some(cond) = cond else {
        diags.error(loc, format!("'{directive_name}' loop requires a condition"));
        return None;
    };
    let (relop, ub, var_on_left) = match &cond.ignore_wrappers().kind {
        ExprKind::Binary(op, l, r) if op.is_comparison() && *op != BinOp::Eq => {
            if refers_to(l, &iter_var) {
                (*op, P::clone(r), true)
            } else if refers_to(r, &iter_var) {
                (*op, P::clone(l), false)
            } else {
                diags.error(
                    cond.loc,
                    format!(
                        "condition of OpenMP for loop must test iteration variable '{}'",
                        iter_var.name
                    ),
                );
                return None;
            }
        }
        _ => {
            diags.error(
                cond.loc,
                "condition of OpenMP for loop is not in canonical form",
            );
            return None;
        }
    };
    // Normalize `ub (op) var` to `var (op') ub`.
    let relop = if var_on_left {
        relop
    } else {
        match relop {
            BinOp::Lt => BinOp::Gt,
            BinOp::Gt => BinOp::Lt,
            BinOp::Le => BinOp::Ge,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    };
    if refers_to_anywhere(&ub, &iter_var) {
        diags.error(
            cond.loc,
            "loop bound must be invariant in the iteration variable",
        );
        return None;
    }

    // ---- incr-expr ----
    let Some(inc) = inc else {
        diags.error(
            loc,
            format!("'{directive_name}' loop requires an increment"),
        );
        return None;
    };
    let (step, step_negative) = match &inc.ignore_wrappers().kind {
        ExprKind::Unary(op, sub) if sub.as_decl_ref().is_some_and(|v| v.id == iter_var.id) => {
            match op {
                UnOp::PreInc | UnOp::PostInc => {
                    (ctx.int_lit(1, P::clone(&iter_var.ty), inc.loc), false)
                }
                UnOp::PreDec | UnOp::PostDec => {
                    (ctx.int_lit(1, P::clone(&iter_var.ty), inc.loc), true)
                }
                _ => {
                    diags.error(
                        inc.loc,
                        "increment clause of OpenMP for loop is not in canonical form",
                    );
                    return None;
                }
            }
        }
        ExprKind::Binary(op, l, r)
            if matches!(op, BinOp::AddAssign | BinOp::SubAssign)
                && l.as_decl_ref().is_some_and(|v| v.id == iter_var.id) =>
        {
            (P::clone(r), *op == BinOp::SubAssign)
        }
        ExprKind::Binary(BinOp::Assign, l, r)
            if l.as_decl_ref().is_some_and(|v| v.id == iter_var.id) =>
        {
            // var = var + s | var = var - s | var = s + var
            match &r.ignore_wrappers().kind {
                ExprKind::Binary(BinOp::Add, a, b) => {
                    if refers_to(a, &iter_var) {
                        (P::clone(b), false)
                    } else if refers_to(b, &iter_var) {
                        (P::clone(a), false)
                    } else {
                        diags.error(
                            inc.loc,
                            "increment clause of OpenMP for loop is not in canonical form",
                        );
                        return None;
                    }
                }
                ExprKind::Binary(BinOp::Sub, a, b) if refers_to(a, &iter_var) => {
                    (P::clone(b), true)
                }
                _ => {
                    diags.error(
                        inc.loc,
                        "increment clause of OpenMP for loop is not in canonical form",
                    );
                    return None;
                }
            }
        }
        _ => {
            diags.error(
                inc.loc,
                "increment clause of OpenMP for loop is not in canonical form",
            );
            return None;
        }
    };
    if refers_to_anywhere(&step, &iter_var) {
        diags.error(
            inc.loc,
            "loop step must be invariant in the iteration variable",
        );
        return None;
    }

    // Fold the sign: a negative constant step flips the direction.
    let (step, step_negative) = match step.eval_const_int() {
        Some(v) if v < 0 => (
            ctx.int_lit(-v, P::clone(&step.ty), step.loc),
            !step_negative,
        ),
        Some(0) => {
            diags.error(inc.loc, "loop step must be non-zero");
            return None;
        }
        _ => (step, step_negative),
    };

    let direction = match (relop, step_negative) {
        (BinOp::Lt | BinOp::Le, false) => LoopDirection::Up,
        (BinOp::Gt | BinOp::Ge, true) => LoopDirection::Down,
        (BinOp::Ne, false) => LoopDirection::Up,
        (BinOp::Ne, true) => LoopDirection::Down,
        _ => {
            diags.error(
                cond.loc,
                "direction of condition and increment of OpenMP for loop disagree",
            );
            return None;
        }
    };

    // ---- structured block: no break out of the loop ----
    if has_loop_break(body) {
        diags.error(
            body.loc,
            "break statement cannot be used in an OpenMP for loop",
        );
        return None;
    }

    let logical_ty = ctx.unsigned_of_same_width(&iter_var.ty);
    Some(CanonicalLoopAnalysis {
        iter_var,
        declares_var,
        lb,
        ub,
        relop,
        step,
        direction,
        body: P::clone(body),
        loc,
        logical_ty,
    })
}

/// Is `e` (modulo wrappers) exactly a reference to `var`?
fn refers_to(e: &P<Expr>, var: &P<VarDecl>) -> bool {
    e.as_decl_ref().is_some_and(|v| v.id == var.id)
}

/// Does `e` reference `var` anywhere?
fn refers_to_anywhere(e: &P<Expr>, var: &P<VarDecl>) -> bool {
    struct Finder<'a> {
        var: &'a P<VarDecl>,
        found: bool,
    }
    impl omplt_ast::visitor::StmtVisitor for Finder<'_> {
        fn visit_expr(&mut self, e: &P<Expr>) {
            if let ExprKind::DeclRef(v) = &e.kind {
                if v.id == self.var.id {
                    self.found = true;
                }
            }
            omplt_ast::visitor::walk_expr(self, e);
        }
    }
    let mut f = Finder { var, found: false };
    omplt_ast::visitor::StmtVisitor::visit_expr(&mut f, e);
    f.found
}

/// Finds a `break` that would leave the associated loop (nested loops hide
/// their own breaks).
fn has_loop_break(body: &P<Stmt>) -> bool {
    struct Finder {
        found: bool,
        depth: usize,
    }
    impl omplt_ast::visitor::StmtVisitor for Finder {
        fn visit_stmt(&mut self, s: &P<Stmt>) {
            match &s.kind {
                StmtKind::Break if self.depth == 0 => self.found = true,
                StmtKind::For { .. }
                | StmtKind::While { .. }
                | StmtKind::DoWhile { .. }
                | StmtKind::CxxForRange(_) => {
                    self.depth += 1;
                    omplt_ast::visitor::walk_stmt(self, s);
                    self.depth -= 1;
                }
                _ => omplt_ast::visitor::walk_stmt(self, s),
            }
        }
    }
    let mut f = Finder {
        found: false,
        depth: 0,
    };
    omplt_ast::visitor::StmtVisitor::visit_stmt(&mut f, body);
    f.found
}

/// Searches the loop-control expressions of `analysis` (lower bound, upper
/// bound, step) for a reference to one of `outer_ivs`, returning the
/// referenced variable and the location of the offending reference.
///
/// Loop nests consumed by `tile` and `collapse` must be **rectangular**
/// (OpenMP 5.1 §4.4.2: `tile` is not defined for non-rectangular nests):
/// the trip count of every loop is evaluated *before* the nest runs, so an
/// inner bound depending on an outer iteration variable would read the
/// variable out of scope and silently miscompile.
pub fn find_nonrectangular_ref(
    analysis: &CanonicalLoopAnalysis,
    outer_ivs: &[P<VarDecl>],
) -> Option<(P<VarDecl>, SourceLocation)> {
    struct Finder<'a> {
        outer: &'a [P<VarDecl>],
        hit: Option<(P<VarDecl>, SourceLocation)>,
    }
    impl omplt_ast::StmtVisitor for Finder<'_> {
        fn visit_expr(&mut self, e: &P<Expr>) {
            if self.hit.is_some() {
                return;
            }
            if let Some(v) = e.as_decl_ref() {
                if let Some(o) = self.outer.iter().find(|o| o.id == v.id) {
                    self.hit = Some((P::clone(o), e.loc));
                    return;
                }
            }
            omplt_ast::walk_expr(self, e);
        }
    }
    let mut f = Finder {
        outer: outer_ivs,
        hit: None,
    };
    for e in [&analysis.lb, &analysis.ub, &analysis.step] {
        omplt_ast::StmtVisitor::visit_expr(&mut f, e);
    }
    f.hit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_loop(ctx: &ASTContext, lb: i128, ub: i128, step: i128, relop: BinOp) -> P<Stmt> {
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(lb, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            relop,
            ctx.read_var(&i, loc),
            ctx.int_lit(ub, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = if step >= 0 {
            ctx.binary(
                BinOp::AddAssign,
                ctx.decl_ref(&i, loc),
                ctx.int_lit(step, ctx.int(), loc),
                ctx.int(),
                loc,
            )
        } else {
            ctx.binary(
                BinOp::SubAssign,
                ctx.decl_ref(&i, loc),
                ctx.int_lit(-step, ctx.int(), loc),
                ctx.int(),
                loc,
            )
        };
        Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        )
    }

    fn analyze(ctx: &ASTContext, s: &P<Stmt>) -> Option<CanonicalLoopAnalysis> {
        let diags = DiagnosticsEngine::new();
        let r = analyze_canonical_loop(ctx, &diags, s, "#pragma omp for");
        if r.is_none() {
            assert!(diags.has_errors(), "analysis failed without a diagnostic");
        }
        r
    }

    #[test]
    fn paper_example_loop_7_17_3() {
        // for (int i = 7; i < 17; i += 3)  → 4 iterations: 7, 10, 13, 16
        let ctx = ASTContext::new();
        let s = ctx_loop(&ctx, 7, 17, 3, BinOp::Lt);
        let a = analyze(&ctx, &s).unwrap();
        assert_eq!(a.direction, LoopDirection::Up);
        assert_eq!(a.const_trip_count(), Some(4));
        assert_eq!(a.logical_ty.spelling(), "unsigned int");
    }

    #[test]
    fn inclusive_bound() {
        let ctx = ASTContext::new();
        let s = ctx_loop(&ctx, 0, 9, 1, BinOp::Le);
        assert_eq!(analyze(&ctx, &s).unwrap().const_trip_count(), Some(10));
    }

    #[test]
    fn downward_loop() {
        let ctx = ASTContext::new();
        let s = ctx_loop(&ctx, 10, 0, -1, BinOp::Gt);
        let a = analyze(&ctx, &s).unwrap();
        assert_eq!(a.direction, LoopDirection::Down);
        assert_eq!(a.const_trip_count(), Some(10));
    }

    #[test]
    fn empty_loop_has_zero_trip_count() {
        let ctx = ASTContext::new();
        let s = ctx_loop(&ctx, 17, 7, 3, BinOp::Lt);
        assert_eq!(analyze(&ctx, &s).unwrap().const_trip_count(), Some(0));
    }

    #[test]
    fn non_loop_statement_is_diagnosed() {
        let ctx = ASTContext::new();
        let diags = DiagnosticsEngine::new();
        let s = Stmt::new(StmtKind::Null, SourceLocation::INVALID);
        assert!(analyze_canonical_loop(&ctx, &diags, &s, "#pragma omp tile").is_none());
        let msgs = diags.all();
        assert!(msgs[0].message.contains("must be a for loop"));
        assert!(msgs[0].message.contains("#pragma omp tile"));
    }

    #[test]
    fn missing_condition_is_diagnosed() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: None,
                inc: None,
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let diags = DiagnosticsEngine::new();
        assert!(analyze_canonical_loop(&ctx, &diags, &s, "#pragma omp for").is_none());
        assert!(diags.has_errors());
    }

    #[test]
    fn break_in_body_is_rejected() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(9, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Break, loc),
            },
            loc,
        );
        let diags = DiagnosticsEngine::new();
        assert!(analyze_canonical_loop(&ctx, &diags, &s, "#pragma omp for").is_none());
        assert!(diags.all()[0].message.contains("break statement"));
    }

    #[test]
    fn break_in_nested_loop_is_fine() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let inner_break = Stmt::new(StmtKind::Break, loc);
        let inner = Stmt::new(
            StmtKind::While {
                cond: ctx.int_lit(1, ctx.bool_ty(), loc),
                body: inner_break,
            },
            loc,
        );
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(9, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: inner,
            },
            loc,
        );
        let diags = DiagnosticsEngine::new();
        assert!(analyze_canonical_loop(&ctx, &diags, &s, "#pragma omp for").is_some());
    }

    #[test]
    fn int32_extremes_fit_in_unsigned_counter() {
        // for (int i = INT32_MIN; i < INT32_MAX; ++i): the count is
        // INT32_MAX − INT32_MIN = 0xFFFFFFFF, far outside i32 — the paper's
        // motivation for an *unsigned* logical counter of the same width.
        // (The paper's text quotes 0xfffffffe; the exact arithmetic gives
        // 0xffffffff, which still fits — "the trip count will never …
        // exceed the range of an unsigned integer of the same bitwidth".)
        let ctx = ASTContext::new();
        let s = ctx_loop(&ctx, i32::MIN as i128, i32::MAX as i128, 1, BinOp::Lt);
        let a = analyze(&ctx, &s).unwrap();
        assert_eq!(a.const_trip_count(), Some(u32::MAX as u64));
        assert!(a.logical_ty.is_unsigned_int());
    }

    /// A hand-built analysis (the fields are `pub`) with the given constant
    /// bounds/step — the only way to reach `const_trip_count` with a
    /// non-positive step, since `analyze_for` rejects zero and folds
    /// negative steps into the direction.
    fn raw_analysis(lb: i128, ub: i128, step: i128, relop: BinOp) -> CanonicalLoopAnalysis {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let ty = ctx.long_ty();
        let i = ctx.make_var("i", P::clone(&ty), None, loc);
        CanonicalLoopAnalysis {
            iter_var: i,
            declares_var: true,
            lb: ctx.int_lit(lb, P::clone(&ty), loc),
            ub: ctx.int_lit(ub, P::clone(&ty), loc),
            relop,
            step: ctx.int_lit(step, P::clone(&ty), loc),
            direction: LoopDirection::Up,
            body: Stmt::new(StmtKind::Null, loc),
            loc,
            logical_ty: ty,
        }
    }

    /// Regression: a zero or negative constant step used to be silently
    /// clamped to 1 (`.max(1)`), fabricating a trip count for a loop whose
    /// step the analysis cannot vouch for.
    #[test]
    fn zero_or_negative_step_yields_no_trip_count() {
        assert_eq!(raw_analysis(0, 10, 0, BinOp::Lt).const_trip_count(), None);
        assert_eq!(raw_analysis(0, 10, -3, BinOp::Lt).const_trip_count(), None);
        // Positive steps keep working through the same constructor.
        assert_eq!(
            raw_analysis(0, 10, 2, BinOp::Lt).const_trip_count(),
            Some(5)
        );
    }

    /// Regression at the i64 extremes (checked unsigned arithmetic, claim
    /// C5): the full exclusive range is exactly `u64::MAX`; the inclusive
    /// range (2^64 iterations) exceeds u64 and must be `None`, not a
    /// truncated `Some(0)`.
    #[test]
    fn int64_extremes_use_checked_unsigned_arithmetic() {
        let lo = i64::MIN as i128;
        let hi = i64::MAX as i128;
        assert_eq!(
            raw_analysis(lo, hi, 1, BinOp::Lt).const_trip_count(),
            Some(u64::MAX)
        );
        assert_eq!(raw_analysis(lo, hi, 1, BinOp::Le).const_trip_count(), None);
        // One below the overflow point: inclusive up to MAX-1 fits again.
        assert_eq!(
            raw_analysis(lo, hi - 1, 1, BinOp::Le).const_trip_count(),
            Some(u64::MAX)
        );
        // Large steps divide the extreme span correctly.
        assert_eq!(
            raw_analysis(lo, hi, 1 << 32, BinOp::Lt).const_trip_count(),
            Some(1 << 32)
        );
    }

    #[test]
    fn bound_referencing_var_rejected() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        // i < i + 4
        let bound = ctx.binary(
            BinOp::Add,
            ctx.read_var(&i, loc),
            ctx.int_lit(4, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let cond = ctx.binary(BinOp::Lt, ctx.read_var(&i, loc), bound, ctx.bool_ty(), loc);
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let diags = DiagnosticsEngine::new();
        assert!(analyze_canonical_loop(&ctx, &diags, &s, "#pragma omp for").is_none());
        assert!(diags.all().iter().any(|d| d.message.contains("invariant")));
    }
}
