//! # omplt-sema
//!
//! The semantic analyzer (Sema layer of the paper's Fig. 1). The parser
//! pushes syntax at these entry points; Sema type-checks, builds AST nodes
//! (including implicit ones), and implements **both** loop-transformation
//! representations the paper contrasts:
//!
//! * the **shadow-AST** path (paper §2): [`transform`] applies `tile`/`unroll`
//!   on the AST via [`tree_transform::TreeTransform`]-style rebuilding and
//!   stores the result on the directive node, where consuming directives pick
//!   it up with `get_transformed_stmt()`;
//! * the **canonical-loop** path (paper §3): [`canonical`] wraps literal loops
//!   in `OMPCanonicalLoop` nodes carrying the distance function, the loop
//!   user value function and the user-variable reference — the "minimal set
//!   of meta-information that needs to be resolved at the Sema layer".
//!
//! [`loop_analysis`] implements OpenMP's *canonical loop form* check
//! (init/test/incr shape), shared by both paths.

pub mod canonical;
pub mod capture;
pub mod loop_analysis;
pub mod omp_sema;
pub mod range_for;
pub mod scope;
pub mod sema;
pub mod transform;
pub mod tree_transform;

pub use canonical::build_canonical_loop;
pub use capture::{build_omp_captured_stmt, free_variables};
pub use loop_analysis::{
    analyze_canonical_loop, find_nonrectangular_ref, CanonicalLoopAnalysis, LoopDirection,
};
pub use sema::{OpenMpCodegenMode, Sema};
pub use transform::{count_generated_loops, split_prologue, LoopNestLevel};
pub use tree_transform::TreeTransform;
