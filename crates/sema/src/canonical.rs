//! Construction of the `OMPCanonicalLoop` meta node (paper §3.1): wraps a
//! literal loop together with the three Sema-resolved meta-information
//! items — the distance function, the loop user value function, and the
//! user-variable reference.

use crate::capture::build_helper_lambda;
use crate::loop_analysis::{analyze_canonical_loop, CanonicalLoopAnalysis};
use omplt_ast::{ASTContext, Decl, Expr, ExprKind, OMPCanonicalLoop, Stmt, StmtKind, UnOp, P};
use omplt_source::DiagnosticsEngine;

/// Wraps `loop_stmt` in an `OMPCanonicalLoop` node, verifying canonical
/// form. Returns the node plus the analysis (which CodeGen reuses).
///
/// The node "acts like an implicit AST node similar to an implicit cast"
/// and "can be losslessly removed again if the wrapped loop needs to be
/// re-analyzed" — removal is just `strip_to_loop()`.
pub fn build_canonical_loop(
    ctx: &ASTContext,
    diags: &DiagnosticsEngine,
    loop_stmt: &P<Stmt>,
    directive_name: &str,
) -> Option<(P<OMPCanonicalLoop>, CanonicalLoopAnalysis)> {
    let analysis = analyze_canonical_loop(ctx, diags, loop_stmt, directive_name)?;
    let loc = analysis.loc;
    let logical_ty = P::clone(&analysis.logical_ty);

    // --- distance function: [&](logical_ty &Result) { Result = <distance>; }
    let dist_result = ctx.make_implicit_param("Result", P::clone(&logical_ty));
    let dist_body = {
        let assign = ctx.assign(
            ctx.decl_ref(&dist_result, loc),
            analysis.distance_expr(ctx),
            loc,
        );
        Stmt::new(StmtKind::Expr(assign), loc)
    };
    // Captured by reference; evaluated before the loop body runs, so the
    // iteration variable still holds its start value.
    let distance_fn = build_helper_lambda(vec![dist_result], dist_body, &[]);

    // --- loop user value function:
    //     [&, start](auto &Result, logical_ty __i) { Result = start ± __i*step; }
    // For a literal for-loop the user variable IS the iteration variable;
    // for a range-based for it is the element binding (see CXXForRange
    // handling below).
    let logical_param = ctx.make_implicit_param("__i", P::clone(&logical_ty));
    let (loop_var_fn, loop_var_ref) = match &loop_stmt.strip_to_loop().kind {
        StmtKind::CxxForRange(d) => {
            // Result := `T &Val = *(__begin + __i);` — the paper's line 6,
            // re-binding the loop user variable each iteration. `__begin`
            // is captured by value (its start).
            let begin_read = ctx.read_var(&d.begin_var, loc);
            let i_read = ctx.read_var(&logical_param, loc);
            let addr = ctx.binary(
                omplt_ast::BinOp::Add,
                begin_read,
                i_read,
                P::clone(&d.begin_var.ty),
                loc,
            );
            let elem_ty = d
                .begin_var
                .ty
                .pointee()
                .map(P::clone)
                .unwrap_or_else(|| ctx.double_ty());
            let deref = P::new(Expr {
                kind: ExprKind::Unary(UnOp::Deref, addr),
                ty: elem_ty,
                category: omplt_ast::ValueCategory::LValue,
                loc,
            });
            // Re-declare the loop user variable with the new initializer
            // (same DeclId: body references keep working).
            let rebound = P::new(omplt_ast::VarDecl {
                id: d.loop_var.id,
                name: d.loop_var.name.clone(),
                ty: P::clone(&d.loop_var.ty),
                init: Some(deref),
                loc,
                kind: omplt_ast::VarKind::Local,
                implicit: true,
                by_ref: d.loop_var.by_ref,
                used: std::cell::Cell::new(true),
            });
            let body = Stmt::new(StmtKind::Decl(vec![Decl::Var(rebound)]), loc);
            let f = build_helper_lambda(vec![P::clone(&logical_param)], body, &[d.begin_var.id]);
            (f, ctx.decl_ref(&d.loop_var, loc))
        }
        _ => {
            // Literal for-loop: `[&, iter_var](auto &Result, logical __i)
            // { Result = start ± __i * step; }`. Assignments go through the
            // `Result` parameter (CodeGen binds it to the user variable's
            // storage), while *reads* of the iteration variable resolve to
            // its BY-VALUE capture: "at any time it will contain the start
            // value of the loop iteration variable even though it will be
            // modified inside the loop" (§3.1).
            let result_param = ctx.make_implicit_param("Result", P::clone(&analysis.iter_var.ty));
            let start = ctx.read_var(&analysis.iter_var, loc);
            let i_read = ctx.read_var(&logical_param, loc);
            let value = analysis.user_value_expr(ctx, start, i_read);
            let assign = ctx.assign(ctx.decl_ref(&result_param, loc), value, loc);
            let body = Stmt::new(StmtKind::Expr(assign), loc);
            let f = build_helper_lambda(
                vec![result_param, P::clone(&logical_param)],
                body,
                &[analysis.iter_var.id],
            );
            (f, ctx.decl_ref(&analysis.iter_var, loc))
        }
    };

    let node = P::new(OMPCanonicalLoop {
        loop_stmt: P::clone(loop_stmt),
        distance_fn,
        loop_var_fn,
        loop_var_ref,
    });
    Some((node, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ast::{dump_stmt, BinOp, CaptureKind, DumpOptions};
    use omplt_source::SourceLocation;

    fn literal_loop(ctx: &ASTContext) -> P<Stmt> {
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(7, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(17, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(3, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        )
    }

    #[test]
    fn builds_three_meta_items() {
        let ctx = ASTContext::new();
        let diags = DiagnosticsEngine::new();
        let lp = literal_loop(&ctx);
        let (node, analysis) =
            build_canonical_loop(&ctx, &diags, &lp, "#pragma omp unroll").unwrap();
        assert!(!diags.has_errors());
        assert_eq!(analysis.const_trip_count(), Some(4));
        // the wrapped loop is losslessly recoverable
        let s = Stmt::new(
            StmtKind::OMPCanonicalLoop(P::clone(&node)),
            SourceLocation::INVALID,
        );
        assert!(s.strip_to_loop().is_loop());
        // user variable reference points at the iteration variable
        assert_eq!(node.loop_var_ref.as_decl_ref().unwrap().name, "i");
    }

    #[test]
    fn iteration_variable_captured_by_value_in_loop_var_fn() {
        let ctx = ASTContext::new();
        let diags = DiagnosticsEngine::new();
        let lp = literal_loop(&ctx);
        let (node, _) = build_canonical_loop(&ctx, &diags, &lp, "#pragma omp unroll").unwrap();
        let cap = node
            .loop_var_fn
            .captures
            .iter()
            .find(|c| c.var.name == "i")
            .expect("iteration variable must be captured");
        assert_eq!(cap.kind, CaptureKind::ByValue);
    }

    #[test]
    fn dump_matches_paper_fig_ompcanonicalloop() {
        // OMPCanonicalLoop with children: ForStmt, CapturedStmt (distance),
        // CapturedStmt (loop value), DeclRefExpr (user var).
        let ctx = ASTContext::new();
        let diags = DiagnosticsEngine::new();
        let lp = literal_loop(&ctx);
        let (node, _) = build_canonical_loop(&ctx, &diags, &lp, "#pragma omp unroll").unwrap();
        let s = Stmt::new(StmtKind::OMPCanonicalLoop(node), SourceLocation::INVALID);
        let d = dump_stmt(&s, DumpOptions::default());
        assert!(d.starts_with("OMPCanonicalLoop\n"), "{d}");
        assert!(d.contains("|-ForStmt"), "{d}");
        assert_eq!(d.matches("CapturedStmt").count(), 2, "{d}");
        assert!(
            d.contains("`-DeclRefExpr 'int' lvalue Var 'i' 'int'"),
            "{d}"
        );
    }

    #[test]
    fn malformed_loop_produces_no_node() {
        let ctx = ASTContext::new();
        let diags = DiagnosticsEngine::new();
        let s = Stmt::new(StmtKind::Null, SourceLocation::INVALID);
        assert!(build_canonical_loop(&ctx, &diags, &s, "#pragma omp tile").is_none());
        assert!(diags.has_errors());
    }
}
