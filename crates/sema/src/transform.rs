//! Shadow-AST construction for the loop transformation directives
//! (paper §2): the transformation is applied *on the AST*, producing a new
//! loop nest that is stored as the directive's hidden `transformed` child.
//! Consuming directives re-analyze it via `get_transformed_stmt()` "as if it
//! was a literal for-loop".
//!
//! Shapes follow the paper's Fig. lst:transformedast:
//!
//! * **partial unroll** strip-mines over the logical iteration space and
//!   annotates the *inner* loop with a `LoopHintAttr(UnrollCount)` — "no
//!   duplication takes place until [the mid-end LoopUnroll pass]";
//! * **tile** produces floor loops over tile origins and tile loops with
//!   `min(...)` upper bounds for partial tiles ("generates twice as many
//!   loops");
//! * both first capture each trip count into a `.capture_expr.` variable —
//!   the internal name the paper's diagnostics discussion shows leaking
//!   into user-visible messages.
//!
//! Every generated statement carries a *synthetic* location mapped back to
//! the literal loop, so diagnostics attribute to the right source (§2).

use crate::loop_analysis::CanonicalLoopAnalysis;
use omplt_ast::{ASTContext, Attr, BinOp, Decl, Expr, Stmt, StmtKind, UnOp, VarDecl, P};
use omplt_source::{SourceLocation, SourceManager};

/// One level of a collected (possibly already-transformed) loop nest.
pub struct LoopNestLevel {
    /// Statements that must execute before this level's loop (e.g. the
    /// `.capture_expr.` declarations of an inner transformed AST).
    pub prologue: Vec<P<Stmt>>,
    /// The canonical-form analysis of the level's loop.
    pub analysis: CanonicalLoopAnalysis,
}

/// Declares `.capture_expr.` holding the level's trip count.
fn capture_trip_count(
    ctx: &ASTContext,
    a: &CanonicalLoopAnalysis,
    loc: SourceLocation,
) -> (P<VarDecl>, P<Stmt>) {
    let tc = a.distance_expr_with_start(ctx, P::clone(&a.lb));
    let var = ctx.make_implicit_var(
        ctx.fresh_name(".capture_expr."),
        P::clone(&a.logical_ty),
        Some(tc),
        loc,
    );
    let stmt = Stmt::new(StmtKind::Decl(vec![Decl::Var(P::clone(&var))]), loc);
    (var, stmt)
}

/// Re-declares the original iteration variable from a logical iteration
/// number: `T i = lb ± logical * step;`. The declaration reuses the original
/// `DeclId`, so body references keep resolving.
fn materialize_user_var(
    ctx: &ASTContext,
    a: &CanonicalLoopAnalysis,
    logical: P<Expr>,
    loc: SourceLocation,
) -> P<Stmt> {
    let value = a.user_value_expr(ctx, P::clone(&a.lb), logical);
    let rebound = P::new(VarDecl {
        id: a.iter_var.id,
        name: a.iter_var.name.clone(),
        ty: P::clone(&a.iter_var.ty),
        init: Some(value),
        loc,
        kind: omplt_ast::VarKind::Local,
        implicit: true,
        by_ref: a.iter_var.by_ref,
        used: std::cell::Cell::new(true),
    });
    Stmt::new(StmtKind::Decl(vec![Decl::Var(rebound)]), loc)
}

fn make_loop(
    iv: P<VarDecl>,
    cond: P<Expr>,
    inc: P<Expr>,
    body: P<Stmt>,
    loc: SourceLocation,
) -> P<Stmt> {
    Stmt::new(
        StmtKind::For {
            init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(iv)]), loc)),
            cond: Some(cond),
            inc: Some(inc),
            body,
        },
        loc,
    )
}

/// Builds the transformed AST of `#pragma omp unroll partial(factor)`
/// (paper Fig. lst:transformedast):
///
/// ```text
/// {
///   unsigned .capture_expr.N = <trip count>;
///   for (unsigned .unrolled.iv.i = 0; .unrolled.iv.i < .capture_expr.N;
///        .unrolled.iv.i += factor)
///     #pragma clang loop unroll_count(factor)            // LoopHintAttr
///     for (unsigned .unroll_inner.iv.i = .unrolled.iv.i;
///          .unroll_inner.iv.i < .unrolled.iv.i + factor
///            && .unroll_inner.iv.i < .capture_expr.N;
///          ++.unroll_inner.iv.i) {
///       T i = lb ± .unroll_inner.iv.i * step;
///       <body>
///     }
/// }
/// ```
pub fn transform_unroll_partial(
    ctx: &ASTContext,
    sm: &mut SourceManager,
    a: &CanonicalLoopAnalysis,
    factor: u64,
    pragma_text: &str,
) -> P<Stmt> {
    let loc = sm.create_transformed_loc(a.loc, pragma_text);
    let uty = P::clone(&a.logical_ty);
    let ulit = |v: i128| ctx.int_lit(v, P::clone(&uty), loc);

    let (tc_var, tc_decl) = capture_trip_count(ctx, a, loc);

    let outer_iv = ctx.make_implicit_var(
        format!(".unrolled.iv.{}", a.iter_var.name),
        P::clone(&uty),
        Some(ulit(0)),
        loc,
    );
    let inner_iv = ctx.make_implicit_var(
        format!(".unroll_inner.iv.{}", a.iter_var.name),
        P::clone(&uty),
        Some(ctx.read_var(&outer_iv, loc)),
        loc,
    );

    // inner loop
    let group_end = ctx.binary(
        BinOp::Add,
        ctx.read_var(&outer_iv, loc),
        ulit(factor as i128),
        P::clone(&uty),
        loc,
    );
    let in_group = ctx.binary(
        BinOp::Lt,
        ctx.read_var(&inner_iv, loc),
        group_end,
        ctx.bool_ty(),
        loc,
    );
    let in_range = ctx.binary(
        BinOp::Lt,
        ctx.read_var(&inner_iv, loc),
        ctx.read_var(&tc_var, loc),
        ctx.bool_ty(),
        loc,
    );
    let inner_cond = ctx.binary(BinOp::LAnd, in_group, in_range, ctx.bool_ty(), loc);
    let inner_inc = ctx.unary(
        UnOp::PreInc,
        ctx.decl_ref(&inner_iv, loc),
        P::clone(&uty),
        loc,
    );
    let inner_body = Stmt::new(
        StmtKind::Compound(vec![
            materialize_user_var(ctx, a, ctx.read_var(&inner_iv, loc), loc),
            P::clone(&a.body),
        ]),
        loc,
    );
    let inner_loop = make_loop(inner_iv, inner_cond, inner_inc, inner_body, loc);
    let hinted = Stmt::new(
        StmtKind::Attributed {
            attrs: vec![Attr::LoopUnrollCount(factor)],
            sub: inner_loop,
        },
        loc,
    );

    // outer (generated) loop — this is what a consuming directive analyzes.
    let outer_cond = ctx.binary(
        BinOp::Lt,
        ctx.read_var(&outer_iv, loc),
        ctx.read_var(&tc_var, loc),
        ctx.bool_ty(),
        loc,
    );
    let outer_inc = ctx.binary(
        BinOp::AddAssign,
        ctx.decl_ref(&outer_iv, loc),
        ulit(factor as i128),
        P::clone(&uty),
        loc,
    );
    let outer_loop = make_loop(outer_iv, outer_cond, outer_inc, hinted, loc);

    Stmt::new(StmtKind::Compound(vec![tc_decl, outer_loop]), loc)
}

/// Builds the transformed AST of `#pragma omp tile sizes(s₀, …, sₙ₋₁)` over
/// a perfect nest of `n` canonical loops — 2n generated loops:
///
/// ```text
/// {
///   <prologues of already-transformed inner levels>
///   unsigned .capture_expr.k = <trip count of level k>;        // ∀k
///   for (unsigned .floor.0.iv.i = 0; < .capture_expr.0; += s₀)
///    …
///     for (unsigned .tile.0.iv.i = .floor.0.iv.i;
///          .tile.0.iv.i < min(.capture_expr.0, .floor.0.iv.i + s₀);
///          ++.tile.0.iv.i)
///      …
///       { T i = lb₀ ± .tile.0.iv.i * step₀; …; <body> }
/// }
/// ```
pub fn transform_tile(
    ctx: &ASTContext,
    sm: &mut SourceManager,
    levels: &[LoopNestLevel],
    sizes: &[u64],
    pragma_text: &str,
) -> P<Stmt> {
    assert_eq!(levels.len(), sizes.len());
    let n = levels.len();
    let loc = sm.create_transformed_loc(levels[0].analysis.loc, pragma_text);

    let mut top: Vec<P<Stmt>> = Vec::new();
    for l in levels {
        top.extend(l.prologue.iter().cloned());
    }
    let mut tc_vars = Vec::with_capacity(n);
    for l in levels {
        let (var, stmt) = capture_trip_count(ctx, &l.analysis, loc);
        top.push(stmt);
        tc_vars.push(var);
    }

    // Floor IVs (shared between the floor loop decl and tile-loop bounds).
    let floor_ivs: Vec<P<VarDecl>> = levels
        .iter()
        .map(|l| {
            ctx.make_implicit_var(
                format!(".floor.iv.{}", l.analysis.iter_var.name),
                P::clone(&l.analysis.logical_ty),
                Some(ctx.int_lit(0, P::clone(&l.analysis.logical_ty), loc)),
                loc,
            )
        })
        .collect();
    let tile_ivs: Vec<P<VarDecl>> = levels
        .iter()
        .zip(&floor_ivs)
        .map(|(l, f)| {
            ctx.make_implicit_var(
                format!(".tile.iv.{}", l.analysis.iter_var.name),
                P::clone(&l.analysis.logical_ty),
                Some(ctx.read_var(f, loc)),
                loc,
            )
        })
        .collect();

    // Innermost body: materialize every original variable, then the body.
    let mut body_stmts: Vec<P<Stmt>> = Vec::with_capacity(n + 1);
    for (l, tiv) in levels.iter().zip(&tile_ivs) {
        body_stmts.push(materialize_user_var(
            ctx,
            &l.analysis,
            ctx.read_var(tiv, loc),
            loc,
        ));
    }
    body_stmts.push(P::clone(&levels[n - 1].analysis.body));
    let mut current = Stmt::new(StmtKind::Compound(body_stmts), loc);

    // Tile loops, innermost-out.
    for k in (0..n).rev() {
        let a = &levels[k].analysis;
        let uty = P::clone(&a.logical_ty);
        let size = ctx.int_lit(sizes[k] as i128, P::clone(&uty), loc);
        let tile_end = ctx.binary(
            BinOp::Add,
            ctx.read_var(&floor_ivs[k], loc),
            size,
            P::clone(&uty),
            loc,
        );
        let bound = ctx.min_expr(
            ctx.read_var(&tc_vars[k], loc),
            tile_end,
            P::clone(&uty),
            loc,
        );
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&tile_ivs[k], loc),
            bound,
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.unary(UnOp::PreInc, ctx.decl_ref(&tile_ivs[k], loc), uty, loc);
        current = make_loop(P::clone(&tile_ivs[k]), cond, inc, current, loc);
    }
    // Floor loops, innermost-out.
    for k in (0..n).rev() {
        let a = &levels[k].analysis;
        let uty = P::clone(&a.logical_ty);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&floor_ivs[k], loc),
            ctx.read_var(&tc_vars[k], loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&floor_ivs[k], loc),
            ctx.int_lit(sizes[k] as i128, P::clone(&uty), loc),
            uty,
            loc,
        );
        current = make_loop(P::clone(&floor_ivs[k]), cond, inc, current, loc);
    }

    top.push(current);
    Stmt::new(StmtKind::Compound(top), loc)
}

/// Builds the transformed AST of `#pragma omp interchange
/// permutation(p₀+1, …, pₙ₋₁+1)` over a perfect nest of `n` canonical
/// loops. `perm` is 0-based: position `k` of the generated nest runs the
/// *original* level `perm[k]`.
///
/// ```text
/// {
///   <prologues of already-transformed inner levels>
///   unsigned .capture_expr.k = <trip count of level k>;        // ∀k
///   for (unsigned .permuted.iv.j = 0; < .capture_expr.{perm[0]}; ++)
///     for (unsigned .permuted.iv.i = 0; < .capture_expr.{perm[1]}; ++)
///       { T i = lb₀ ± .permuted.iv.i * step₀; …; <body> }
/// }
/// ```
///
/// Every generated loop runs the full logical iteration space of its
/// original level, so the nest stays rectangular and re-analyzable.
pub fn transform_interchange(
    ctx: &ASTContext,
    sm: &mut SourceManager,
    levels: &[LoopNestLevel],
    perm: &[usize],
    pragma_text: &str,
) -> P<Stmt> {
    assert_eq!(levels.len(), perm.len());
    let n = levels.len();
    let loc = sm.create_transformed_loc(levels[0].analysis.loc, pragma_text);

    let mut top: Vec<P<Stmt>> = Vec::new();
    for l in levels {
        top.extend(l.prologue.iter().cloned());
    }
    let mut tc_vars = Vec::with_capacity(n);
    for l in levels {
        let (var, stmt) = capture_trip_count(ctx, &l.analysis, loc);
        top.push(stmt);
        tc_vars.push(var);
    }

    // One logical IV per *original* level (indexed like `levels`).
    let ivs: Vec<P<VarDecl>> = levels
        .iter()
        .map(|l| {
            ctx.make_implicit_var(
                format!(".permuted.iv.{}", l.analysis.iter_var.name),
                P::clone(&l.analysis.logical_ty),
                Some(ctx.int_lit(0, P::clone(&l.analysis.logical_ty), loc)),
                loc,
            )
        })
        .collect();

    // Innermost body: materialize every original variable, then the body.
    let mut body_stmts: Vec<P<Stmt>> = Vec::with_capacity(n + 1);
    for (l, iv) in levels.iter().zip(&ivs) {
        body_stmts.push(materialize_user_var(
            ctx,
            &l.analysis,
            ctx.read_var(iv, loc),
            loc,
        ));
    }
    body_stmts.push(P::clone(&levels[n - 1].analysis.body));
    let mut current = Stmt::new(StmtKind::Compound(body_stmts), loc);

    // Loops in permuted order, innermost-out.
    for &k in perm.iter().rev() {
        let a = &levels[k].analysis;
        let uty = P::clone(&a.logical_ty);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&ivs[k], loc),
            ctx.read_var(&tc_vars[k], loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.unary(UnOp::PreInc, ctx.decl_ref(&ivs[k], loc), uty, loc);
        current = make_loop(P::clone(&ivs[k]), cond, inc, current, loc);
    }

    top.push(current);
    Stmt::new(StmtKind::Compound(top), loc)
}

/// Builds the transformed AST of `#pragma omp reverse`:
///
/// ```text
/// {
///   unsigned .capture_expr.N = <trip count>;
///   for (unsigned .reversed.iv.i = 0; .reversed.iv.i < N; ++.reversed.iv.i)
///     { T i = lb ± (N - 1 - .reversed.iv.i) * step; <body> }
/// }
/// ```
pub fn transform_reverse(
    ctx: &ASTContext,
    sm: &mut SourceManager,
    a: &CanonicalLoopAnalysis,
    pragma_text: &str,
) -> P<Stmt> {
    let loc = sm.create_transformed_loc(a.loc, pragma_text);
    let uty = P::clone(&a.logical_ty);
    let ulit = |v: i128| ctx.int_lit(v, P::clone(&uty), loc);

    let (tc_var, tc_decl) = capture_trip_count(ctx, a, loc);

    let iv = ctx.make_implicit_var(
        format!(".reversed.iv.{}", a.iter_var.name),
        P::clone(&uty),
        Some(ulit(0)),
        loc,
    );

    // logical' = N - 1 - iv
    let n_minus_1 = ctx.binary(
        BinOp::Sub,
        ctx.read_var(&tc_var, loc),
        ulit(1),
        P::clone(&uty),
        loc,
    );
    let mirrored = ctx.binary(
        BinOp::Sub,
        n_minus_1,
        ctx.read_var(&iv, loc),
        P::clone(&uty),
        loc,
    );
    let body = Stmt::new(
        StmtKind::Compound(vec![
            materialize_user_var(ctx, a, mirrored, loc),
            P::clone(&a.body),
        ]),
        loc,
    );

    let cond = ctx.binary(
        BinOp::Lt,
        ctx.read_var(&iv, loc),
        ctx.read_var(&tc_var, loc),
        ctx.bool_ty(),
        loc,
    );
    let inc = ctx.unary(UnOp::PreInc, ctx.decl_ref(&iv, loc), P::clone(&uty), loc);
    let lp = make_loop(iv, cond, inc, body, loc);

    Stmt::new(StmtKind::Compound(vec![tc_decl, lp]), loc)
}

/// Builds the transformed AST of `#pragma omp fuse` over `m` sibling
/// canonical loops:
///
/// ```text
/// {
///   <prologues of already-transformed loops>
///   unsigned .capture_expr.k = <trip count of loop k>;          // ∀k
///   unsigned .fuse.max.iv = max(.capture_expr.0, …);
///   for (unsigned .fused.iv = 0; .fused.iv < .fuse.max.iv; ++.fused.iv) {
///     if (.fused.iv < .capture_expr.0) { T i = …; <body₀> }
///     if (.fused.iv < .capture_expr.1) { T j = …; <body₁> }
///   }
/// }
/// ```
///
/// Guarding each body keeps fusion correct for unequal trip counts (the
/// guards fold away when the counts match).
pub fn transform_fuse(
    ctx: &ASTContext,
    sm: &mut SourceManager,
    loops: &[LoopNestLevel],
    pragma_text: &str,
) -> P<Stmt> {
    assert!(loops.len() >= 2);
    let loc = sm.create_transformed_loc(loops[0].analysis.loc, pragma_text);
    let uty = P::clone(&loops[0].analysis.logical_ty);
    let ulit = |v: i128| ctx.int_lit(v, P::clone(&uty), loc);

    let mut top: Vec<P<Stmt>> = Vec::new();
    for l in loops {
        top.extend(l.prologue.iter().cloned());
    }
    let mut tc_vars = Vec::with_capacity(loops.len());
    for l in loops {
        let (var, stmt) = capture_trip_count(ctx, &l.analysis, loc);
        top.push(stmt);
        tc_vars.push(var);
    }

    // .fuse.max.iv = max over all trip counts (normalized to one logical
    // type — the loops' iteration variables may differ in width).
    let mut max = ctx.int_convert(ctx.read_var(&tc_vars[0], loc), &uty);
    for tc in &tc_vars[1..] {
        let tc_read = ctx.int_convert(ctx.read_var(tc, loc), &uty);
        max = ctx.max_expr(max, tc_read, P::clone(&uty), loc);
    }
    let max_var = ctx.make_implicit_var(
        ctx.fresh_name(".fuse.max.iv"),
        P::clone(&uty),
        Some(max),
        loc,
    );
    top.push(Stmt::new(
        StmtKind::Decl(vec![Decl::Var(P::clone(&max_var))]),
        loc,
    ));

    let iv = ctx.make_implicit_var(".fused.iv", P::clone(&uty), Some(ulit(0)), loc);

    // One guarded body per fused loop, in source order.
    let mut fused_body: Vec<P<Stmt>> = Vec::with_capacity(loops.len());
    for (l, tc) in loops.iter().zip(&tc_vars) {
        let a = &l.analysis;
        let then = Stmt::new(
            StmtKind::Compound(vec![
                materialize_user_var(ctx, a, ctx.read_var(&iv, loc), loc),
                P::clone(&a.body),
            ]),
            loc,
        );
        let guard = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&iv, loc),
            ctx.int_convert(ctx.read_var(tc, loc), &uty),
            ctx.bool_ty(),
            loc,
        );
        fused_body.push(Stmt::new(
            StmtKind::If {
                cond: guard,
                then,
                els: None,
            },
            loc,
        ));
    }
    let body = Stmt::new(StmtKind::Compound(fused_body), loc);

    let cond = ctx.binary(
        BinOp::Lt,
        ctx.read_var(&iv, loc),
        ctx.read_var(&max_var, loc),
        ctx.bool_ty(),
        loc,
    );
    let inc = ctx.unary(UnOp::PreInc, ctx.decl_ref(&iv, loc), P::clone(&uty), loc);
    top.push(make_loop(iv, cond, inc, body, loc));

    Stmt::new(StmtKind::Compound(top), loc)
}

/// Strips a transformed-AST wrapper into (prologue, loop): a `Compound`
/// whose trailing statement is the generated loop, or a bare loop.
pub fn split_prologue(stmt: &P<Stmt>) -> Option<(Vec<P<Stmt>>, P<Stmt>)> {
    match &stmt.kind {
        StmtKind::Compound(stmts) => {
            let (last, rest) = stmts.split_last()?;
            if !rest.iter().all(|s| matches!(s.kind, StmtKind::Decl(_))) {
                return None;
            }
            if last.strip_to_loop().is_loop() {
                Some((rest.to_vec(), P::clone(last)))
            } else {
                // A transformed AST may carry its own `{ decls; loop }`
                // block inside an enclosing prologue (e.g. `reverse`
                // consuming a tiled loop, whose prologue wraps the
                // reverse-generated compound). Splice the prologues.
                let (inner, lp) = split_prologue(last)?;
                let mut pro = rest.to_vec();
                pro.extend(inner);
                Some((pro, lp))
            }
        }
        _ if stmt.strip_to_loop().is_loop() => Some((Vec::new(), P::clone(stmt))),
        _ => None,
    }
}

/// Counts the generated `for` loops of a transformed AST (test/statistics
/// helper for the paper's "twice as many loops" claim).
pub fn count_generated_loops(stmt: &P<Stmt>) -> usize {
    struct Counter(usize);
    impl omplt_ast::visitor::StmtVisitor for Counter {
        fn visit_stmt(&mut self, s: &P<Stmt>) {
            if matches!(s.kind, StmtKind::For { .. }) {
                self.0 += 1;
            }
            omplt_ast::visitor::walk_stmt(self, s);
        }
    }
    let mut c = Counter(0);
    omplt_ast::visitor::StmtVisitor::visit_stmt(&mut c, stmt);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_analysis::analyze_canonical_loop;
    use omplt_ast::{dump_stmt, print_stmt, DumpOptions};
    use omplt_source::DiagnosticsEngine;

    fn analysis_for(ctx: &ASTContext, lb: i128, ub: i128, step: i128) -> CanonicalLoopAnalysis {
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(lb, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(ub, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(step, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let diags = DiagnosticsEngine::new();
        analyze_canonical_loop(ctx, &diags, &s, "#pragma omp unroll").unwrap()
    }

    fn fresh_sm() -> SourceManager {
        SourceManager::new()
    }

    #[test]
    fn partial_unroll_shape_matches_paper() {
        let ctx = ASTContext::new();
        let mut sm = fresh_sm();
        let a = analysis_for(&ctx, 7, 17, 3);
        let t = transform_unroll_partial(&ctx, &mut sm, &a, 2, "#pragma omp unroll partial(2)");
        let d = dump_stmt(&t, DumpOptions::default());
        // strip-mined outer loop over '.unrolled.iv.i'
        assert!(d.contains(".unrolled.iv.i"), "{d}");
        // inner loop kept, annotated with LoopHintAttr UnrollCount
        assert!(d.contains("AttributedStmt"), "{d}");
        assert!(
            d.contains("LoopHintAttr Implicit loop UnrollCount Numeric"),
            "{d}"
        );
        assert!(d.contains(".unroll_inner.iv.i"), "{d}");
        // trip-count capture with the infamous internal name
        assert!(d.contains(".capture_expr."), "{d}");
        // the inner condition is a conjunction (group end AND trip count)
        assert!(d.contains("BinaryOperator 'bool' '&&'"), "{d}");
    }

    #[test]
    fn partial_unroll_generated_loop_is_canonical() {
        // The generated (outer) loop must be re-analyzable (paper §2.1: the
        // transformed AST "must be an OpenMP canonical loop nest itself").
        let ctx = ASTContext::new();
        let mut sm = fresh_sm();
        let a = analysis_for(&ctx, 0, 10, 1);
        let t = transform_unroll_partial(&ctx, &mut sm, &a, 4, "#pragma omp unroll partial(4)");
        let (prologue, lp) = split_prologue(&t).expect("compound with trailing loop");
        assert_eq!(prologue.len(), 1);
        let diags = DiagnosticsEngine::new();
        let re = analyze_canonical_loop(&ctx, &diags, &lp, "#pragma omp for").unwrap();
        assert!(!diags.has_errors());
        // 10 iterations unrolled by 4 → ⌈10/4⌉ = 3 outer iterations; the
        // trip count is not constant (it reads .capture_expr.) but the
        // analysis succeeds and the direction is up.
        assert_eq!(re.direction, crate::loop_analysis::LoopDirection::Up);
    }

    #[test]
    fn tile_generates_twice_as_many_loops() {
        let ctx = ASTContext::new();
        let mut sm = fresh_sm();
        let outer = analysis_for(&ctx, 0, 32, 1);
        let inner = analysis_for(&ctx, 0, 16, 1);
        let t = transform_tile(
            &ctx,
            &mut sm,
            &[
                LoopNestLevel {
                    prologue: vec![],
                    analysis: outer,
                },
                LoopNestLevel {
                    prologue: vec![],
                    analysis: inner,
                },
            ],
            &[4, 8],
            "#pragma omp tile sizes(4, 8)",
        );
        assert_eq!(count_generated_loops(&t), 4, "tiling 2 loops → 4 loops");
        let text = print_stmt(&t);
        assert!(text.contains(".floor.iv.i"), "{text}");
        assert!(text.contains(".tile.iv.i"), "{text}");
        // partial-tile bound via min(): printed as a conditional
        assert!(text.contains("?"), "{text}");
    }

    #[test]
    fn tile_body_materializes_original_variables() {
        let ctx = ASTContext::new();
        let mut sm = fresh_sm();
        let a = analysis_for(&ctx, 5, 20, 3);
        let t = transform_tile(
            &ctx,
            &mut sm,
            &[LoopNestLevel {
                prologue: vec![],
                analysis: a,
            }],
            &[4],
            "#pragma omp tile sizes(4)",
        );
        let text = print_stmt(&t);
        // `int i = 5 + .tile.iv.i * 3;`
        assert!(text.contains("int i = "), "{text}");
        assert!(text.contains("* 3"), "{text}");
    }

    #[test]
    fn generated_statements_have_synthetic_locations() {
        let ctx = ASTContext::new();
        let mut sm = fresh_sm();
        let a = analysis_for(&ctx, 0, 8, 1);
        let t = transform_unroll_partial(&ctx, &mut sm, &a, 2, "#pragma omp unroll partial(2)");
        assert!(t.loc.is_synthetic());
        let (rep, origin) = sm.map_transformed(t.loc).unwrap();
        assert_eq!(rep, a.loc);
        assert_eq!(origin, "#pragma omp unroll partial(2)");
    }

    #[test]
    fn split_prologue_accepts_bare_loops() {
        let ctx = ASTContext::new();
        let _ = &ctx;
        let loc = SourceLocation::INVALID;
        let lp = Stmt::new(
            StmtKind::For {
                init: None,
                cond: None,
                inc: None,
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let (pro, l) = split_prologue(&lp).unwrap();
        assert!(pro.is_empty());
        assert!(l.is_loop());
    }

    #[test]
    fn split_prologue_splices_nested_transformed_blocks() {
        // `reverse` consuming a tiled loop yields
        // `{ <tile decls>; { <reverse decls>; for } }`; a consumer must see
        // one flat prologue ending in the loop.
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let decl = |name: &str| {
            let v = ctx.make_implicit_var(
                name.to_string(),
                ctx.int_ty(omplt_ast::IntWidth::W32, true),
                None,
                loc,
            );
            Stmt::new(StmtKind::Decl(vec![omplt_ast::Decl::Var(v)]), loc)
        };
        let lp = Stmt::new(
            StmtKind::For {
                init: None,
                cond: None,
                inc: None,
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let inner = Stmt::new(StmtKind::Compound(vec![decl(".inner."), lp]), loc);
        let outer = Stmt::new(StmtKind::Compound(vec![decl(".outer."), inner]), loc);
        let (pro, l) = split_prologue(&outer).unwrap();
        assert_eq!(pro.len(), 2);
        assert!(l.is_loop());
    }
}
