//! `TreeTransform`: rebuilds AST subtrees with changes applied — "creates
//! copies of AST subtrees with some changes applied; its primary use is
//! template instantiation" (paper §1.3). Here it provides declaration
//! substitution, which the shadow-AST transforms and tests use.
//!
//! Because the AST is immutable (`Rc` subtrees), untouched branches are
//! shared rather than copied.

use omplt_ast::{CxxForRangeData, Decl, DeclId, Expr, ExprKind, Stmt, StmtKind, VarDecl, P};
use std::collections::HashMap;

/// Rebuilds trees substituting variable references.
pub struct TreeTransform {
    /// `DeclId` → replacement expression for every reference.
    subst: HashMap<DeclId, P<Expr>>,
}

impl TreeTransform {
    /// Creates a transform with the given substitution map.
    pub fn new(subst: HashMap<DeclId, P<Expr>>) -> TreeTransform {
        TreeTransform { subst }
    }

    /// Substitutes one variable.
    pub fn substituting(var: &P<VarDecl>, replacement: P<Expr>) -> TreeTransform {
        let mut m = HashMap::new();
        m.insert(var.id, replacement);
        TreeTransform::new(m)
    }

    /// Rebuilds an expression.
    pub fn transform_expr(&self, e: &P<Expr>) -> P<Expr> {
        let kind = match &e.kind {
            ExprKind::DeclRef(v) => {
                if let Some(rep) = self.subst.get(&v.id) {
                    return P::clone(rep);
                }
                return P::clone(e);
            }
            ExprKind::IntegerLiteral(_)
            | ExprKind::FloatingLiteral(_)
            | ExprKind::BoolLiteral(_)
            | ExprKind::StringLiteral(_)
            | ExprKind::SizeOf(_) => return P::clone(e),
            ExprKind::Unary(op, s) => ExprKind::Unary(*op, self.transform_expr(s)),
            ExprKind::Binary(op, l, r) => {
                ExprKind::Binary(*op, self.transform_expr(l), self.transform_expr(r))
            }
            ExprKind::Call { callee, args } => ExprKind::Call {
                callee: P::clone(callee),
                args: args.iter().map(|a| self.transform_expr(a)).collect(),
            },
            ExprKind::ImplicitCast(k, s) => ExprKind::ImplicitCast(*k, self.transform_expr(s)),
            ExprKind::ExplicitCast(k, s) => ExprKind::ExplicitCast(*k, self.transform_expr(s)),
            ExprKind::Paren(s) => ExprKind::Paren(self.transform_expr(s)),
            ExprKind::ArraySubscript(b, i) => {
                ExprKind::ArraySubscript(self.transform_expr(b), self.transform_expr(i))
            }
            ExprKind::Conditional(c, t, f) => ExprKind::Conditional(
                self.transform_expr(c),
                self.transform_expr(t),
                self.transform_expr(f),
            ),
            ExprKind::ConstantExpr { value, sub } => ExprKind::ConstantExpr {
                value: *value,
                sub: self.transform_expr(sub),
            },
        };
        P::new(Expr {
            kind,
            ty: P::clone(&e.ty),
            category: e.category,
            loc: e.loc,
        })
    }

    /// Rebuilds a statement.
    pub fn transform_stmt(&self, s: &P<Stmt>) -> P<Stmt> {
        let kind = match &s.kind {
            StmtKind::Compound(stmts) => {
                StmtKind::Compound(stmts.iter().map(|c| self.transform_stmt(c)).collect())
            }
            StmtKind::Decl(decls) => StmtKind::Decl(
                decls
                    .iter()
                    .map(|d| match d {
                        Decl::Var(v) => Decl::Var(self.transform_var_decl(v)),
                        other => other.clone(),
                    })
                    .collect(),
            ),
            StmtKind::Expr(e) => StmtKind::Expr(self.transform_expr(e)),
            StmtKind::If { cond, then, els } => StmtKind::If {
                cond: self.transform_expr(cond),
                then: self.transform_stmt(then),
                els: els.as_ref().map(|e| self.transform_stmt(e)),
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.transform_expr(cond),
                body: self.transform_stmt(body),
            },
            StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
                body: self.transform_stmt(body),
                cond: self.transform_expr(cond),
            },
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => StmtKind::For {
                init: init.as_ref().map(|i| self.transform_stmt(i)),
                cond: cond.as_ref().map(|c| self.transform_expr(c)),
                inc: inc.as_ref().map(|i| self.transform_expr(i)),
                body: self.transform_stmt(body),
            },
            StmtKind::CxxForRange(d) => StmtKind::CxxForRange(P::new(CxxForRangeData {
                range_stmt: self.transform_stmt(&d.range_stmt),
                begin_stmt: self.transform_stmt(&d.begin_stmt),
                end_stmt: self.transform_stmt(&d.end_stmt),
                cond: self.transform_expr(&d.cond),
                inc: self.transform_expr(&d.inc),
                loop_var_stmt: self.transform_stmt(&d.loop_var_stmt),
                begin_var: P::clone(&d.begin_var),
                end_var: P::clone(&d.end_var),
                loop_var: P::clone(&d.loop_var),
                body: self.transform_stmt(&d.body),
            })),
            StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| self.transform_expr(e))),
            StmtKind::Break | StmtKind::Continue | StmtKind::Null => return P::clone(s),
            StmtKind::Attributed { attrs, sub } => StmtKind::Attributed {
                attrs: attrs.clone(),
                sub: self.transform_stmt(sub),
            },
            // Captured regions and directives are rebuilt shallowly: their
            // bodies were already Sema-processed; substitution inside them
            // is not needed by the current transforms.
            StmtKind::Captured(_) | StmtKind::OMP(_) | StmtKind::OMPCanonicalLoop(_) => {
                return P::clone(s)
            }
        };
        P::new(Stmt { kind, loc: s.loc })
    }

    fn transform_var_decl(&self, v: &P<VarDecl>) -> P<VarDecl> {
        match &v.init {
            Some(init) => {
                let new_init = self.transform_expr(init);
                if P::ptr_eq(&new_init, init) {
                    P::clone(v)
                } else {
                    P::new(VarDecl {
                        id: v.id,
                        name: v.name.clone(),
                        ty: P::clone(&v.ty),
                        init: Some(new_init),
                        loc: v.loc,
                        kind: v.kind,
                        implicit: v.implicit,
                        by_ref: v.by_ref,
                        used: std::cell::Cell::new(v.used.get()),
                    })
                }
            }
            None => P::clone(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ast::{ASTContext, BinOp};
    use omplt_source::SourceLocation;

    #[test]
    fn substitutes_decl_refs() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let x = ctx.make_var("x", ctx.int(), None, loc);
        let e = ctx.binary(
            BinOp::Add,
            ctx.read_var(&x, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let tt = TreeTransform::substituting(&x, ctx.int_lit(41, ctx.int(), loc));
        let t = tt.transform_expr(&e);
        assert_eq!(t.eval_const_int(), Some(42));
    }

    #[test]
    fn untouched_subtrees_are_shared() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let x = ctx.make_var("x", ctx.int(), None, loc);
        let lit = ctx.int_lit(5, ctx.int(), loc);
        let tt = TreeTransform::substituting(&x, ctx.int_lit(0, ctx.int(), loc));
        let t = tt.transform_expr(&lit);
        assert!(
            P::ptr_eq(&t, &lit),
            "unchanged nodes must be shared, not cloned"
        );
    }

    #[test]
    fn statements_rebuild_recursively() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let x = ctx.make_var("x", ctx.int(), None, loc);
        let body = Stmt::new(
            StmtKind::Expr(ctx.binary(
                BinOp::Mul,
                ctx.read_var(&x, loc),
                ctx.int_lit(2, ctx.int(), loc),
                ctx.int(),
                loc,
            )),
            loc,
        );
        let s = Stmt::new(StmtKind::Compound(vec![body]), loc);
        let tt = TreeTransform::substituting(&x, ctx.int_lit(3, ctx.int(), loc));
        let t = tt.transform_stmt(&s);
        let StmtKind::Compound(inner) = &t.kind else {
            panic!()
        };
        let StmtKind::Expr(e) = &inner[0].kind else {
            panic!()
        };
        assert_eq!(e.eval_const_int(), Some(6));
    }
}
