//! `fuse_loops` — the OpenMPIRBuilder implementation of `#pragma omp fuse`:
//! fuses a sequence of sibling canonical loops into one.
//!
//! The fused loop runs `max(tc_0 … tc_{n-1})` iterations; each original body
//! region is guarded by `iv < tc_k`, so the fusion stays correct for unequal
//! trip counts (the guards fold away when the counts are provably equal).
//! The original control skeletons are abandoned, as in `tile_loops`.

use crate::canonical_loop::{create_canonical_loop_skeleton, CanonicalLoopInfo};
use crate::tile::{retarget_region_exits, rewrite_region_uses};
use omplt_ir::{CmpPred, IrBuilder, Terminator, Value};

/// Fuses a sequence of sibling canonical loops (first → last in program
/// order) into a single canonical loop.
///
/// Trip counts of all loops must be defined in (or before) the first loop's
/// preheader, and no side-effecting code may sit between the loops —
/// guaranteed by the front-end, which only fuses adjacent members of a loop
/// sequence.
///
/// Returns the generated loop.
pub fn fuse_loops(b: &mut IrBuilder<'_>, loops: &[CanonicalLoopInfo]) -> CanonicalLoopInfo {
    omplt_trace::count("ompirb.fuse", 1);
    let n = loops.len();
    assert!(n >= 2, "fuse_loops requires at least two loops");

    let first = loops[0];
    let last = loops[n - 1];
    let ty = first.ty;

    // Snapshot every body region before creating new blocks.
    let regions: Vec<Vec<omplt_ir::BlockId>> =
        loops.iter().map(|l| l.body_region(b.func())).collect();

    // 1. max trip count, computed in the first loop's preheader.
    let saved_ip = b.insert_block();
    b.set_insert_point(first.preheader);
    let tcs: Vec<Value> = loops
        .iter()
        .map(|l| b.int_resize(l.trip_count, ty, false))
        .collect();
    let mut tc_max = tcs[0];
    for &tc in &tcs[1..] {
        let lt = b.cmp(CmpPred::Ult, tc_max, tc);
        tc_max = b.select(lt, tc, tc_max);
    }

    // 2. The fused skeleton.
    let mut fused = create_canonical_loop_skeleton(b, tc_max, "fuse", false);

    // 3. Guard chain in the fused body: for each original loop,
    //    `if (iv < tc_k) body_k`, joining behind the guard.
    let mut current = fused.body;
    for (k, l) in loops.iter().enumerate() {
        let join = b.create_block(&format!("omp_fuse.join{k}"));
        b.set_insert_point(current);
        let in_range = b.cmp(CmpPred::Ult, fused.iv(), tcs[k]);
        // A constant-true guard still needs a structural branch; force the
        // conditional form so every region keeps a single entry edge shape.
        b.cond_br(in_range, l.body, join);
        retarget_region_exits(b, &regions[k], l.latch, join);
        rewrite_region_uses(b, &regions[k], &[(l.iv(), fused.iv())]);
        current = join;
    }
    b.set_insert_point(current);
    b.br(fused.latch);

    // 4. Entry/exit stitching: the first loop's preheader feeds the fused
    //    loop; the construct continues at the last loop's `after` block.
    b.func_mut().block_mut(first.preheader).term = Some(Terminator::Br {
        target: fused.preheader,
        loop_md: None,
    });
    let orphan_after = fused.after;
    b.func_mut().block_mut(orphan_after).term = Some(Terminator::Unreachable);
    fused.after = last.after;
    b.func_mut().block_mut(fused.exit).term = Some(Terminator::Br {
        target: last.after,
        loop_md: None,
    });

    b.set_insert_point(saved_ip);
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, Function, Inst, IrType, Module};

    /// `for i in 0..A { s0(i) }  for j in 0..B { s1(j) }`
    fn build_sequence(f: &mut Function, m: &mut Module) -> (CanonicalLoopInfo, CanonicalLoopInfo) {
        let s0 = m.intern("s0");
        let s1 = m.intern("s1");
        let mut b = IrBuilder::new(f);
        let l0 = create_canonical_loop(&mut b, Value::Arg(0), "a", |b, i| {
            b.call(s0, vec![i], IrType::Void);
        });
        let l1 = create_canonical_loop(&mut b, Value::Arg(1), "b", |b, j| {
            b.call(s1, vec![j], IrType::Void);
        });
        b.ret(None);
        (l0, l1)
    }

    #[test]
    fn fused_loop_keeps_skeleton_invariants() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (l0, l1) = build_sequence(&mut f, &mut m);
        let after = l1.after;
        let fused = {
            let mut b = IrBuilder::new(&mut f);
            fuse_loops(&mut b, &[l0, l1])
        };
        fused.assert_ok(&f);
        assert_verified(&f);
        assert_eq!(
            fused.after, after,
            "construct continues after the last loop"
        );
    }

    #[test]
    fn both_bodies_are_reachable_and_guarded() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (l0, l1) = build_sequence(&mut f, &mut m);
        let fused = {
            let mut b = IrBuilder::new(&mut f);
            fuse_loops(&mut b, &[l0, l1])
        };
        let region = fused.body_region(&f);
        assert!(region.contains(&l0.body), "first body spliced in");
        assert!(region.contains(&l1.body), "second body spliced in");
        // Two guards compare the fused IV against the loops' trip counts.
        let guards = region
            .iter()
            .flat_map(|&bb| f.block(bb).insts.clone())
            .filter(|&i| {
                matches!(
                    f.inst(i),
                    Inst::Cmp { pred: CmpPred::Ult, lhs, .. } if *lhs == fused.iv()
                )
            })
            .count();
        assert_eq!(guards, 2, "one range guard per fused loop");
    }

    #[test]
    fn body_uses_are_rewritten_to_the_fused_iv() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (l0, l1) = build_sequence(&mut f, &mut m);
        let (old_i, old_j) = (l0.iv(), l1.iv());
        let fused = {
            let mut b = IrBuilder::new(&mut f);
            fuse_loops(&mut b, &[l0, l1])
        };
        let mut calls = 0;
        for bb in fused.body_region(&f) {
            for &iid in &f.block(bb).insts {
                if let Inst::Call { args, .. } = f.inst(iid) {
                    calls += 1;
                    assert_eq!(args[0], fused.iv());
                    assert!(!args.contains(&old_i) && !args.contains(&old_j));
                }
            }
        }
        assert_eq!(calls, 2, "both bodies survive fusion");
    }
}
