//! `create_static_workshare_loop` / `create_dynamic_workshare_loop` — apply
//! the worksharing-loop construct to a canonical loop (paper §3.2:
//! "`createWorkshareLoop` … implements the worksharing-loop construct" on a
//! `CanonicalLoopInfo` handle).
//!
//! Static schedules bracket the loop with `__kmpc_for_static_init` /
//! `__kmpc_for_static_fini` and re-bound the logical iteration space to the
//! calling thread's chunk. Dynamic, guided, and runtime schedules wrap the
//! loop in the dispatch protocol: `__kmpc_dispatch_init_8`, a `while
//! (__kmpc_dispatch_next_8(…))` head that re-bounds the canonical loop to
//! each claimed chunk, and `__kmpc_dispatch_fini_8` on exhaustion. Both
//! compose after tile/unroll because they only consume the skeleton handle.

use crate::canonical_loop::{create_canonical_loop_skeleton, CanonicalLoopInfo};
use omplt_ir::{BlockId, CmpPred, Function, Inst, IrBuilder, IrType, Module, Terminator, Value};

/// Which worksharing scheme to apply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorksharingScheme {
    /// `schedule(static)` — one contiguous block per thread.
    StaticUnchunked,
    /// `schedule(static, chunk)` — round-robin chunks of the given size.
    StaticChunked(Value),
    /// `schedule(dynamic[, chunk])` — first-come-first-served chunks.
    DynamicChunked(Value),
    /// `schedule(guided[, chunk])` — exponentially shrinking chunks.
    GuidedChunked(Value),
    /// `schedule(runtime)` — resolved from `OMP_SCHEDULE` by the runtime.
    Runtime,
}

/// kmp schedule-type constants (subset).
const SCHED_STATIC: i64 = 34;
const SCHED_STATIC_CHUNKED: i64 = 33;
const SCHED_DYNAMIC_CHUNKED: i64 = 35;
const SCHED_GUIDED_CHUNKED: i64 = 36;
const SCHED_RUNTIME: i64 = 37;

/// Applies static worksharing to `cli`.
///
/// Must be called directly after the loop was created, while `cli.after` is
/// still empty: chunked scheduling wraps the loop in an outer chunk loop and
/// returns the new continuation block where code after the construct must be
/// emitted (for the unchunked scheme this is simply `cli.after`).
pub fn create_static_workshare_loop(
    b: &mut IrBuilder<'_>,
    m: &mut Module,
    cli: &mut CanonicalLoopInfo,
    scheme: WorksharingScheme,
) -> BlockId {
    omplt_trace::count("ompirb.workshare.static", 1);
    let gtid_fn = m.declare_extern("__kmpc_global_thread_num", vec![], IrType::I32);
    let init_fn = m.declare_extern(
        "__kmpc_for_static_init",
        vec![
            IrType::I32, // gtid
            IrType::I32, // schedule type
            IrType::Ptr, // plastiter
            IrType::Ptr, // plower
            IrType::Ptr, // pupper
            IrType::Ptr, // pstride
            IrType::I64, // incr
            IrType::I64, // chunk
        ],
        IrType::Void,
    );
    let fini_fn = m.declare_extern("__kmpc_for_static_fini", vec![IrType::I32], IrType::Void);

    match scheme {
        WorksharingScheme::StaticUnchunked => apply_unchunked(b, cli, gtid_fn, init_fn, fini_fn),
        WorksharingScheme::StaticChunked(chunk) => {
            apply_chunked(b, cli, chunk, gtid_fn, init_fn, fini_fn)
        }
        WorksharingScheme::DynamicChunked(_)
        | WorksharingScheme::GuidedChunked(_)
        | WorksharingScheme::Runtime => {
            panic!("dispatch schedules go through create_dynamic_workshare_loop")
        }
    }
}

/// Emits the init call and loads the resulting bounds. Returns
/// `(gtid, lb, ub, stride)` as `i64` values (except `gtid`: `i32`).
fn emit_static_init(
    b: &mut IrBuilder<'_>,
    cli: &CanonicalLoopInfo,
    sched: i64,
    chunk: Value,
    gtid_fn: omplt_ir::SymbolId,
    init_fn: omplt_ir::SymbolId,
) -> (Value, Value, Value, Value) {
    let gtid = b.call(gtid_fn, vec![], IrType::I32);
    let plast = b.alloca(IrType::I32, 1, ".omp.is_last");
    let plb = b.alloca(IrType::I64, 1, ".omp.lb");
    let pub_ = b.alloca(IrType::I64, 1, ".omp.ub");
    let pstride = b.alloca(IrType::I64, 1, ".omp.stride");
    let tc64 = b.int_resize(cli.trip_count, IrType::I64, false);
    b.store(Value::i32(0), plast);
    b.store(Value::i64(0), plb);
    let last = b.sub(tc64, Value::i64(1));
    b.store(last, pub_);
    b.store(Value::i64(1), pstride);
    let chunk64 = b.int_resize(chunk, IrType::I64, false);
    b.call(
        init_fn,
        vec![
            gtid,
            Value::i32(sched as i32),
            plast,
            plb,
            pub_,
            pstride,
            Value::i64(1),
            chunk64,
        ],
        IrType::Void,
    );
    let lb = b.load(IrType::I64, plb);
    let ub = b.load(IrType::I64, pub_);
    let stride = b.load(IrType::I64, pstride);
    (gtid, lb, ub, stride)
}

/// Shifts the body's view of the IV by `offset` (in the IV type): prepends
/// `shifted = iv + offset` to the body entry and rewrites all other body
/// uses of the IV.
fn shift_body_iv(b: &mut IrBuilder<'_>, cli: &CanonicalLoopInfo, offset: Value) {
    let region = cli.body_region(b.func());
    let func = b.func_mut();
    let shifted = func.prepend_inst(
        cli.body,
        Inst::Bin {
            op: omplt_ir::BinOpKind::Add,
            lhs: cli.iv(),
            rhs: offset,
        },
    );
    let shifted_id = match shifted {
        Value::Inst(id) => id,
        _ => unreachable!(),
    };
    for bb in region {
        let insts = func.block(bb).insts.clone();
        for iid in insts {
            if iid == shifted_id {
                continue;
            }
            func.inst_mut(iid)
                .map_operands(|v| if v == cli.iv() { shifted } else { v });
        }
        if let Some(t) = func.block_mut(bb).term.as_mut() {
            t.map_operands(|v| if v == cli.iv() { shifted } else { v });
        }
    }
}

fn apply_unchunked(
    b: &mut IrBuilder<'_>,
    cli: &mut CanonicalLoopInfo,
    gtid_fn: omplt_ir::SymbolId,
    init_fn: omplt_ir::SymbolId,
    fini_fn: omplt_ir::SymbolId,
) -> BlockId {
    let saved = b.insert_block();

    b.set_insert_point(cli.preheader);
    let (gtid, lb, ub, _stride) =
        emit_static_init(b, cli, SCHED_STATIC, Value::i64(0), gtid_fn, init_fn);
    // span = ub + 1 - lb  (0 when the thread got an empty range: ub = lb - 1)
    let ubp1 = b.add(ub, Value::i64(1));
    let span = b.sub(ubp1, lb);
    let span_n = b.int_resize(span, cli.ty, false);
    cli.set_trip_count(b.func_mut(), span_n);

    let lb_n = b.int_resize(lb, cli.ty, false);
    shift_body_iv(b, cli, lb_n);

    b.set_insert_point(cli.exit);
    b.call(fini_fn, vec![gtid], IrType::Void);

    b.set_insert_point(saved);
    cli.after
}

fn apply_chunked(
    b: &mut IrBuilder<'_>,
    cli: &mut CanonicalLoopInfo,
    chunk: Value,
    gtid_fn: omplt_ir::SymbolId,
    init_fn: omplt_ir::SymbolId,
    fini_fn: omplt_ir::SymbolId,
) -> BlockId {
    // A new setup block takes over every edge into the loop's preheader.
    let setup = b.create_block("omp_ws.setup");
    let pre = cli.preheader;
    let nblocks = b.func().blocks.len();
    for i in 0..nblocks {
        let bb = BlockId(i as u32);
        if bb == setup {
            continue;
        }
        if let Some(t) = b.func_mut().block_mut(bb).term.as_mut() {
            t.map_blocks(|x| if x == pre { setup } else { x });
        }
    }

    b.set_insert_point(setup);
    let (gtid, lb0, _ub0, stride) =
        emit_static_init(b, cli, SCHED_STATIC_CHUNKED, chunk, gtid_fn, init_fn);
    let tc64 = b.int_resize(cli.trip_count, IrType::I64, false);
    let chunk64 = b.int_resize(chunk, IrType::I64, false);
    // Number of chunks this thread executes:
    //   remaining = max(0, tc - lb0);  n_chunks = ceildiv(remaining, stride)
    let rem_raw = b.sub(tc64, lb0);
    let has_any = b.cmp(omplt_ir::CmpPred::Ult, lb0, tc64);
    let rem = b.select(has_any, rem_raw, Value::i64(0));
    let remm1 = b.sub(rem, Value::i64(1));
    let d = b.udiv(remm1, stride);
    let dp1 = b.add(d, Value::i64(1));
    let zero = Value::i64(0);
    let is_zero = b.cmp(omplt_ir::CmpPred::Eq, rem, zero);
    let n_chunks = b.select(is_zero, zero, dp1);

    // Outer chunk loop wrapping the canonical loop.
    let outer = create_canonical_loop_skeleton(b, n_chunks, "ws_chunks", false);
    b.func_mut().block_mut(setup).term = Some(Terminator::Br {
        target: outer.preheader,
        loop_md: None,
    });

    // Per-chunk bounds in the outer body, then enter the original loop.
    b.set_insert_point(outer.body);
    let off = b.mul(outer.iv(), stride);
    let chunk_start = b.add(lb0, off);
    let left = b.sub(tc64, chunk_start);
    let span64 = b.umin(chunk64, left);
    let span = b.int_resize(span64, cli.ty, false);
    cli.set_trip_count(b.func_mut(), span);
    b.func_mut().block_mut(outer.body).term = Some(Terminator::Br {
        target: pre,
        loop_md: None,
    });

    // The loop's after returns to the chunk latch; execution continues at
    // the outer after.
    b.func_mut().block_mut(cli.after).term = Some(Terminator::Br {
        target: outer.latch,
        loop_md: None,
    });

    let start_n = b.int_resize(chunk_start, cli.ty, false);
    shift_body_iv(b, cli, start_n);

    b.set_insert_point(outer.exit);
    b.call(fini_fn, vec![gtid], IrType::Void);

    b.set_insert_point(outer.after);
    outer.after
}

/// Handle to a dispatch (dynamic/guided/runtime) worksharing loop: the
/// blocks of the `init → while(next) → chunk → fini` protocol wrapped
/// around the canonical loop, plus the wrapped loop's entry/continuation so
/// [`DispatchLoopInfo::check`] can verify the stitching.
#[derive(Clone, Copy, Debug)]
pub struct DispatchLoopInfo {
    /// Takes over the canonical loop's incoming edges; calls
    /// `__kmpc_dispatch_init_8`.
    pub setup: BlockId,
    /// Dispatch head: calls `__kmpc_dispatch_next_8` and branches to
    /// `chunk_setup` (got a chunk) or `fini` (exhausted).
    pub head: BlockId,
    /// Loads the claimed bounds, re-bounds the canonical loop, and enters
    /// its preheader.
    pub chunk_setup: BlockId,
    /// Calls `__kmpc_dispatch_fini_8`; leaves to `after`.
    pub fini: BlockId,
    /// Continuation: code after the construct is emitted here.
    pub after: BlockId,
    /// The wrapped canonical loop's preheader (entered from `chunk_setup`).
    pub inner_preheader: BlockId,
    /// The wrapped canonical loop's after block (branches back to `head`).
    pub inner_after: BlockId,
    init_sym: omplt_ir::SymbolId,
    next_sym: omplt_ir::SymbolId,
    fini_sym: omplt_ir::SymbolId,
}

impl DispatchLoopInfo {
    /// Re-validates the dispatch-loop skeleton invariants, returning one
    /// message per violation (the `--verify-each` hook for dispatch loops,
    /// mirroring [`CanonicalLoopInfo::check`]).
    pub fn check(&self, func: &Function) -> Vec<String> {
        let mut errs = Vec::new();
        let calls = |bb: BlockId, sym: omplt_ir::SymbolId| {
            func.block(bb)
                .insts
                .iter()
                .any(|&i| matches!(func.inst(i), Inst::Call { callee, .. } if callee.0 == sym))
        };
        if !calls(self.setup, self.init_sym) {
            errs.push("setup must call __kmpc_dispatch_init_8".into());
        }
        match &func.block(self.setup).term {
            Some(Terminator::Br { target, .. }) if *target == self.head => {}
            other => errs.push(format!("setup must branch to the head, got {other:?}")),
        }
        if !calls(self.head, self.next_sym) {
            errs.push("head must call __kmpc_dispatch_next_8".into());
        }
        match &func.block(self.head).term {
            Some(Terminator::CondBr {
                then_bb, else_bb, ..
            }) => {
                if *then_bb != self.chunk_setup {
                    errs.push(format!(
                        "head true edge must enter chunk setup, goes to {then_bb:?}"
                    ));
                }
                if *else_bb != self.fini {
                    errs.push(format!(
                        "head false edge must leave to fini, goes to {else_bb:?}"
                    ));
                }
            }
            other => errs.push(format!(
                "head must end in a conditional branch, got {other:?}"
            )),
        }
        match &func.block(self.chunk_setup).term {
            Some(Terminator::Br { target, .. }) if *target == self.inner_preheader => {}
            other => errs.push(format!(
                "chunk setup must enter the wrapped loop's preheader, got {other:?}"
            )),
        }
        match &func.block(self.inner_after).term {
            Some(Terminator::Br { target, .. }) if *target == self.head => {}
            other => errs.push(format!(
                "wrapped loop's after must branch back to the head, got {other:?}"
            )),
        }
        if !calls(self.fini, self.fini_sym) {
            errs.push("fini must call __kmpc_dispatch_fini_8".into());
        }
        match &func.block(self.fini).term {
            Some(Terminator::Br { target, .. }) if *target == self.after => {}
            other => errs.push(format!("fini must branch to after, got {other:?}")),
        }
        errs
    }

    /// Panicking wrapper around [`DispatchLoopInfo::check`].
    pub fn assert_ok(&self, func: &Function) {
        let errs = self.check(func);
        assert!(
            errs.is_empty(),
            "dispatch loop '{:?}' violates skeleton invariants:\n  {}",
            self.head,
            errs.join("\n  ")
        );
    }
}

/// Applies a dispatch schedule (dynamic/guided/runtime) to `cli`:
///
/// ```text
///  setup:        __kmpc_dispatch_init_8(gtid, sched, 0, tc-1, 1, chunk)
///  head:         while (__kmpc_dispatch_next_8(gtid, &last?, &lb, &ub, &st))
///  chunk_setup:    re-bound the canonical loop to [lb, ub], shift its IV
///                  <canonical loop runs, then returns to head>
///  fini:         __kmpc_dispatch_fini_8(gtid)
///  after:        continuation
/// ```
///
/// Same calling convention as [`create_static_workshare_loop`]: apply while
/// `cli.after` is still empty; code after the construct goes to the returned
/// info's `after` block. Composes after tile/unroll (§3.2) because only the
/// skeleton handle is consumed.
pub fn create_dynamic_workshare_loop(
    b: &mut IrBuilder<'_>,
    m: &mut Module,
    cli: &mut CanonicalLoopInfo,
    scheme: WorksharingScheme,
) -> DispatchLoopInfo {
    omplt_trace::count("ompirb.workshare.dynamic", 1);
    let (sched, chunk) = match scheme {
        WorksharingScheme::DynamicChunked(c) => (SCHED_DYNAMIC_CHUNKED, c),
        WorksharingScheme::GuidedChunked(c) => (SCHED_GUIDED_CHUNKED, c),
        // The runtime reads OMP_SCHEDULE; the chunk argument is ignored.
        WorksharingScheme::Runtime => (SCHED_RUNTIME, Value::i64(0)),
        WorksharingScheme::StaticUnchunked | WorksharingScheme::StaticChunked(_) => {
            panic!("static schedules go through create_static_workshare_loop")
        }
    };
    let gtid_fn = m.declare_extern("__kmpc_global_thread_num", vec![], IrType::I32);
    let init_fn = m.declare_extern(
        "__kmpc_dispatch_init_8",
        vec![
            IrType::I32, // gtid
            IrType::I32, // schedule type
            IrType::I64, // lower bound
            IrType::I64, // upper bound (inclusive)
            IrType::I64, // stride
            IrType::I64, // chunk
        ],
        IrType::Void,
    );
    let next_fn = m.declare_extern(
        "__kmpc_dispatch_next_8",
        vec![
            IrType::I32,
            IrType::Ptr,
            IrType::Ptr,
            IrType::Ptr,
            IrType::Ptr,
        ],
        IrType::I32,
    );
    let fini_fn = m.declare_extern("__kmpc_dispatch_fini_8", vec![IrType::I32], IrType::Void);

    // The setup block takes over every edge into the loop's preheader.
    let setup = b.create_block("omp_ws.dispatch.setup");
    let pre = cli.preheader;
    let nblocks = b.func().blocks.len();
    for i in 0..nblocks {
        let bb = BlockId(i as u32);
        if bb == setup {
            continue;
        }
        if let Some(t) = b.func_mut().block_mut(bb).term.as_mut() {
            t.map_blocks(|x| if x == pre { setup } else { x });
        }
    }
    let head = b.create_block("omp_ws.dispatch.head");
    let chunk_setup = b.create_block("omp_ws.dispatch.chunk");
    let fini = b.create_block("omp_ws.dispatch.fini");
    let after = b.create_block("omp_ws.dispatch.after");

    b.set_insert_point(setup);
    let gtid = b.call(gtid_fn, vec![], IrType::I32);
    let plast = b.alloca(IrType::I32, 1, ".omp.is_last");
    let plb = b.alloca(IrType::I64, 1, ".omp.lb");
    let pub_ = b.alloca(IrType::I64, 1, ".omp.ub");
    let pstride = b.alloca(IrType::I64, 1, ".omp.stride");
    let tc64 = b.int_resize(cli.trip_count, IrType::I64, false);
    let last = b.sub(tc64, Value::i64(1));
    let chunk64 = b.int_resize(chunk, IrType::I64, false);
    b.call(
        init_fn,
        vec![
            gtid,
            Value::i32(sched as i32),
            Value::i64(0),
            last,
            Value::i64(1),
            chunk64,
        ],
        IrType::Void,
    );
    b.br(head);

    b.set_insert_point(head);
    let got = b.call(next_fn, vec![gtid, plast, plb, pub_, pstride], IrType::I32);
    let more = b.cmp(CmpPred::Ne, got, Value::i32(0));
    b.cond_br(more, chunk_setup, fini);

    // Re-bound the canonical loop to the claimed chunk [lb, ub].
    b.set_insert_point(chunk_setup);
    let lb = b.load(IrType::I64, plb);
    let ub = b.load(IrType::I64, pub_);
    let ubp1 = b.add(ub, Value::i64(1));
    let span = b.sub(ubp1, lb);
    let span_n = b.int_resize(span, cli.ty, false);
    let lb_n = b.int_resize(lb, cli.ty, false);
    cli.set_trip_count(b.func_mut(), span_n);
    b.br(pre);
    shift_body_iv(b, cli, lb_n);

    // The canonical loop's continuation loops back for the next chunk.
    b.func_mut().block_mut(cli.after).term = Some(Terminator::Br {
        target: head,
        loop_md: None,
    });

    b.set_insert_point(fini);
    b.call(fini_fn, vec![gtid], IrType::Void);
    b.br(after);

    b.set_insert_point(after);
    DispatchLoopInfo {
        setup,
        head,
        chunk_setup,
        fini,
        after,
        inner_preheader: pre,
        inner_after: cli.after,
        init_sym: init_fn,
        next_sym: next_fn,
        fini_sym: fini_fn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, Function};

    fn one_loop(f: &mut Function, m: &mut Module) -> CanonicalLoopInfo {
        let sink = m.intern("sink");
        let mut b = IrBuilder::new(f);
        create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
            b.call(sink, vec![i], IrType::Void);
        })
    }

    #[test]
    fn unchunked_brackets_with_runtime_calls() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let mut cli = one_loop(&mut f, &mut m);
        let cont = {
            let mut b = IrBuilder::new(&mut f);
            b.set_insert_point(cli.after);
            let cont = create_static_workshare_loop(
                &mut b,
                &mut m,
                &mut cli,
                WorksharingScheme::StaticUnchunked,
            );
            b.set_insert_point(cont);
            b.ret(None);
            cont
        };
        assert_eq!(cont, cli.after);
        cli.assert_ok(&f);
        assert_verified(&f);
        let init = m.lookup_symbol("__kmpc_for_static_init").unwrap();
        let fini = m.lookup_symbol("__kmpc_for_static_fini").unwrap();
        let calls = |bb: BlockId, sym| {
            f.block(bb)
                .insts
                .iter()
                .any(|&i| matches!(f.inst(i), Inst::Call { callee, .. } if callee.0 == sym))
        };
        assert!(
            calls(cli.preheader, init),
            "init call must be in the preheader"
        );
        assert!(calls(cli.exit, fini), "fini call must be in the exit");
    }

    #[test]
    fn unchunked_patches_trip_count_to_span() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let mut cli = one_loop(&mut f, &mut m);
        let orig_tc = cli.trip_count;
        {
            let mut b = IrBuilder::new(&mut f);
            b.set_insert_point(cli.after);
            create_static_workshare_loop(
                &mut b,
                &mut m,
                &mut cli,
                WorksharingScheme::StaticUnchunked,
            );
        }
        assert_ne!(
            cli.trip_count, orig_tc,
            "trip count must become the thread's span"
        );
    }

    #[test]
    fn body_iv_is_shifted_by_lower_bound() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let mut cli = one_loop(&mut f, &mut m);
        {
            let mut b = IrBuilder::new(&mut f);
            b.set_insert_point(cli.after);
            create_static_workshare_loop(
                &mut b,
                &mut m,
                &mut cli,
                WorksharingScheme::StaticUnchunked,
            );
        }
        // The sink call must use the shifted value, not the raw phi.
        let first = f.block(cli.body).insts[0];
        assert!(
            matches!(f.inst(first), Inst::Bin { op: omplt_ir::BinOpKind::Add, lhs, .. } if *lhs == cli.iv()),
            "body must start with the IV shift"
        );
        for &iid in &f.block(cli.body).insts[1..] {
            if let Inst::Call { args, .. } = f.inst(iid) {
                assert!(!args.contains(&cli.iv()), "raw IV leaked into the body");
            }
        }
    }

    #[test]
    fn chunked_wraps_in_outer_chunk_loop() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let mut cli = one_loop(&mut f, &mut m);
        let cont = {
            let mut b = IrBuilder::new(&mut f);
            b.set_insert_point(cli.after);
            let cont = create_static_workshare_loop(
                &mut b,
                &mut m,
                &mut cli,
                WorksharingScheme::StaticChunked(Value::i64(8)),
            );
            b.set_insert_point(cont);
            b.ret(None);
            cont
        };
        assert_ne!(
            cont, cli.after,
            "chunked scheme must return a new continuation"
        );
        cli.assert_ok(&f);
        assert_verified(&f);
    }

    fn dispatch_over_one_loop(scheme: WorksharingScheme) -> (Module, Function, DispatchLoopInfo) {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let mut cli = one_loop(&mut f, &mut m);
        let dli = {
            let mut b = IrBuilder::new(&mut f);
            b.set_insert_point(cli.after);
            let dli = create_dynamic_workshare_loop(&mut b, &mut m, &mut cli, scheme);
            b.ret(None);
            dli
        };
        cli.assert_ok(&f);
        assert_verified(&f);
        (m, f, dli)
    }

    #[test]
    fn dynamic_builds_the_dispatch_skeleton() {
        for scheme in [
            WorksharingScheme::DynamicChunked(Value::i64(2)),
            WorksharingScheme::GuidedChunked(Value::i64(1)),
            WorksharingScheme::Runtime,
        ] {
            let (_m, f, dli) = dispatch_over_one_loop(scheme);
            dli.assert_ok(&f);
        }
    }

    #[test]
    fn dispatch_setup_takes_over_entry_edges() {
        // All edges that used to reach the loop's preheader must now go
        // through the dispatch setup block, so init runs before any chunk.
        let (_m, f, dli) = dispatch_over_one_loop(WorksharingScheme::DynamicChunked(Value::i64(4)));
        for (i, data) in f.blocks.iter().enumerate() {
            let bb = BlockId(i as u32);
            if bb == dli.chunk_setup {
                continue; // the one legitimate edge into the re-bound loop
            }
            if let Some(t) = &data.term {
                assert!(
                    !t.successors().contains(&dli.inner_preheader),
                    "stray edge from {bb:?} into the inner preheader bypasses dispatch init"
                );
            }
        }
    }

    #[test]
    fn dispatch_check_reports_broken_back_edge() {
        let (_m, mut f, dli) = dispatch_over_one_loop(WorksharingScheme::Runtime);
        assert!(dli.check(&f).is_empty());
        // Sever the chunk-exhausted back edge: the loop would run one chunk.
        f.block_mut(dli.inner_after).term = Some(Terminator::Br {
            target: dli.fini,
            loop_md: None,
        });
        let errs = dli.check(&f);
        assert!(
            errs.iter().any(|e| e.contains("head")),
            "check must flag the missing back edge to the head, got {errs:?}"
        );
    }
}
