//! # omplt-ompirb — the OpenMPIRBuilder
//!
//! The paper's second contribution (§3): a front-end-agnostic builder for
//! OpenMP constructs on top of the plain [`omplt_ir::IrBuilder`], so that the
//! heavy lowering can be shared between front-ends (Clang and Flang in the
//! paper; `omplt-codegen` and the direct-IR tests/benches here).
//!
//! * [`CanonicalLoopInfo`] — a handle to a loop emitted as the fixed
//!   **skeleton** of the paper's Fig. "createCanonicalLoop": explicit
//!   preheader / header / cond / body / latch / exit / after blocks, an
//!   identifiable induction variable (a phi starting at 0 with step 1) and an
//!   identifiable trip count, *without* requiring ScalarEvolution-style
//!   analysis. [`CanonicalLoopInfo::assert_ok`] re-validates the invariants.
//! * [`create_canonical_loop`] — emits the skeleton and calls back into the
//!   front-end for the body ("callback-ception").
//! * [`tile_loops`] — tiles a perfect nest of N canonical loops into 2N.
//! * [`collapse_loops`] — fuses a nest into a single canonical loop.
//! * [`interchange_loops`] — permutes a perfect nest of canonical loops.
//! * [`reverse_loop`] — runs one canonical loop's iterations in the
//!   opposite order by mirroring the logical IV.
//! * [`fuse_loops`] — fuses a sequence of *sibling* canonical loops into
//!   one, guarding each body for unequal trip counts.
//! * [`unroll_loop_full`] / [`unroll_loop_partial`] / [`unroll_loop_heuristic`]
//!   — the three modes of the `unroll` directive; partial unrolling tiles by
//!   the factor and annotates the inner loop with unroll metadata, deferring
//!   duplication to the mid-end `LoopUnroll` pass, exactly as in the paper.
//! * [`create_static_workshare_loop`] — applies a `schedule(static)`
//!   worksharing scheme by bounding the loop with `__kmpc_for_static_init`
//!   chunk bounds.
//! * [`create_dynamic_workshare_loop`] — applies a dispatch schedule
//!   (`dynamic` / `guided` / `runtime`) by wrapping the loop in the
//!   `__kmpc_dispatch_init_8` → `while (__kmpc_dispatch_next_8)` →
//!   `__kmpc_dispatch_fini_8` protocol; [`DispatchLoopInfo::check`]
//!   re-validates the wrapper's invariants under `--verify-each`.
//! * [`create_parallel`] — outlining-based `parallel` region construction via
//!   `__kmpc_fork_call`.

pub mod canonical_loop;
pub mod collapse;
pub mod fuse;
pub mod interchange;
pub mod parallel;
pub mod reverse;
pub mod tile;
pub mod unroll;
pub mod workshare;

pub use canonical_loop::{
    create_canonical_loop, create_canonical_loop_skeleton, CanonicalLoopInfo,
};
pub use collapse::collapse_loops;
pub use fuse::fuse_loops;
pub use interchange::interchange_loops;
pub use parallel::{create_parallel, OutlinedFn};
pub use reverse::reverse_loop;
pub use tile::tile_loops;
pub use unroll::{unroll_loop_full, unroll_loop_heuristic, unroll_loop_partial};
pub use workshare::{
    create_dynamic_workshare_loop, create_static_workshare_loop, DispatchLoopInfo,
    WorksharingScheme,
};
