//! `create_parallel` — emits the runtime calls of a `parallel` construct
//! around an already-outlined function, following Clang's "early outlining"
//! design (paper §1): the front-end outlines the region body into a separate
//! function (via the `CapturedStmt` machinery) and the directive's code
//! generation reduces to a `__kmpc_fork_call`.

use omplt_ir::{IrBuilder, IrType, Module, SymbolId, Value};

/// Handle to an outlined parallel-region function.
///
/// Calling convention (matching the classic kmpc ABI shape):
/// `void outlined(i32 global_tid, i32 bound_tid, ptr cap0, ptr cap1, …)` —
/// one pointer per captured variable, passed by reference.
#[derive(Clone, Copy, Debug)]
pub struct OutlinedFn {
    /// The outlined function's symbol.
    pub sym: SymbolId,
    /// Number of captured-variable pointer parameters.
    pub num_captures: usize,
}

/// Emits `[__kmpc_push_num_threads(n);] __kmpc_fork_call(fn, nargs, caps…)`
/// at the current insertion point.
pub fn create_parallel(
    b: &mut IrBuilder<'_>,
    m: &mut Module,
    outlined: OutlinedFn,
    capture_ptrs: Vec<Value>,
    num_threads: Option<Value>,
) {
    omplt_trace::count("ompirb.parallel", 1);
    assert_eq!(
        outlined.num_captures,
        capture_ptrs.len(),
        "capture count must match the outlined function's signature"
    );
    if let Some(nt) = num_threads {
        let push = m.declare_extern("__kmpc_push_num_threads", vec![IrType::I32], IrType::I32);
        let nt32 = b.int_resize(nt, IrType::I32, true);
        b.call(push, vec![nt32], IrType::Void);
    }
    let fork = m.declare_extern(
        "__kmpc_fork_call",
        vec![IrType::Ptr, IrType::I32],
        IrType::Void,
    );
    let mut args = vec![
        Value::FuncRef(outlined.sym),
        Value::i32(capture_ptrs.len() as i32),
    ];
    args.extend(capture_ptrs);
    b.call(fork, args, IrType::Void);
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{assert_verified, Function, Inst};

    #[test]
    fn emits_fork_call_with_captures() {
        let mut m = Module::new();
        let outlined_sym = m.intern("main.omp_outlined.0");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let cap = b.alloca(IrType::I64, 1, "x");
            create_parallel(
                &mut b,
                &mut m,
                OutlinedFn {
                    sym: outlined_sym,
                    num_captures: 1,
                },
                vec![cap],
                None,
            );
            b.ret(Some(Value::i32(0)));
        }
        assert_verified(&f);
        let fork = m.lookup_symbol("__kmpc_fork_call").unwrap();
        let has_fork = f.insts.iter().any(|i| {
            matches!(i, Inst::Call { callee, args, .. }
                if callee.0 == fork
                    && matches!(args[0], Value::FuncRef(s) if s == outlined_sym)
                    && args[1] == Value::i32(1))
        });
        assert!(has_fork);
    }

    #[test]
    fn num_threads_pushes_before_fork() {
        let mut m = Module::new();
        let outlined_sym = m.intern("o");
        let mut f = Function::new("main", vec![], IrType::Void);
        {
            let mut b = IrBuilder::new(&mut f);
            create_parallel(
                &mut b,
                &mut m,
                OutlinedFn {
                    sym: outlined_sym,
                    num_captures: 0,
                },
                vec![],
                Some(Value::i32(3)),
            );
            b.ret(None);
        }
        let push = m.lookup_symbol("__kmpc_push_num_threads").unwrap();
        let fork = m.lookup_symbol("__kmpc_fork_call").unwrap();
        let order: Vec<_> = f
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Call { callee, .. } => Some(callee.0),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![push, fork]);
    }

    #[test]
    #[should_panic(expected = "capture count")]
    fn capture_mismatch_panics() {
        let mut m = Module::new();
        let sym = m.intern("o");
        let mut f = Function::new("main", vec![], IrType::Void);
        let mut b = IrBuilder::new(&mut f);
        create_parallel(
            &mut b,
            &mut m,
            OutlinedFn {
                sym,
                num_captures: 2,
            },
            vec![],
            None,
        );
    }
}
