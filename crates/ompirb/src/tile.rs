//! `tile_loops` — the OpenMPIRBuilder implementation of `#pragma omp tile`
//! (paper §3.2): consumes N nested [`CanonicalLoopInfo`] handles and returns
//! **2N** new ones (the *floor* loops iterating over tiles, then the *tile*
//! loops iterating inside a tile), relocating the original body region and
//! rewriting its uses of the original induction variables.
//!
//! The original loops' control blocks are abandoned (they become
//! unreachable; `SimplifyCfg` erases them later) — "the function may either
//! modify and return the input canonical loops, or abandon the old handles
//! and create new loops using the skeleton" (paper §3.2); this
//! implementation, like LLVM's, does the latter.

use crate::canonical_loop::{create_canonical_loop_skeleton, CanonicalLoopInfo};
use omplt_ir::{BlockId, CmpPred, IrBuilder, Terminator, Value};

/// Tiles a perfect nest of canonical loops.
///
/// `loops` are ordered outermost → innermost; `sizes[i]` is the tile size
/// for `loops[i]` (any integer type; resized to the loop's IV type).
/// Trip-count values of all loops must be defined in (or before) the
/// outermost preheader — guaranteed by the front-end, which evaluates every
/// distance function before emitting the nest (rectangular nests only, as
/// OpenMP requires).
///
/// Returns the 2N generated loops: `[floor_0 … floor_{N-1}, tile_0 …
/// tile_{N-1}]`, each satisfying the skeleton invariants.
pub fn tile_loops(
    b: &mut IrBuilder<'_>,
    loops: &[CanonicalLoopInfo],
    sizes: &[Value],
) -> Vec<CanonicalLoopInfo> {
    omplt_trace::count("ompirb.tile", 1);
    let n = loops.len();
    assert!(n >= 1, "tile_loops requires at least one loop");
    assert_eq!(n, sizes.len(), "one tile size per loop");

    let outermost = loops[0];
    let innermost = loops[n - 1];

    // Snapshot the original body region before creating new blocks.
    let orig_body_entry = innermost.body;
    let orig_latch = innermost.latch;
    let orig_region = innermost.body_region(b.func());

    // 1. Floor trip counts, computed in the outermost preheader:
    //    floor_tc = tc == 0 ? 0 : (tc - 1) / size + 1   (overflow-safe ceildiv)
    let saved_ip = b.insert_block();
    b.set_insert_point(outermost.preheader);
    let mut floor_tcs = Vec::with_capacity(n);
    let mut sizes_typed = Vec::with_capacity(n);
    for (l, &size) in loops.iter().zip(sizes) {
        let size = b.int_resize(size, l.ty, false);
        let tc = l.trip_count;
        let is_zero = b.cmp(CmpPred::Eq, tc, Value::int(l.ty, 0));
        let tcm1 = b.sub(tc, Value::int(l.ty, 1));
        let d = b.udiv(tcm1, size);
        let dp1 = b.add(d, Value::int(l.ty, 1));
        let ftc = b.select(is_zero, Value::int(l.ty, 0), dp1);
        floor_tcs.push(ftc);
        sizes_typed.push(size);
    }

    // 2. Create the 2N free-floating skeletons.
    let mut chain: Vec<CanonicalLoopInfo> = Vec::with_capacity(2 * n);
    for (i, &ftc) in floor_tcs.iter().enumerate() {
        chain.push(create_canonical_loop_skeleton(
            b,
            ftc,
            &format!("floor{i}"),
            false,
        ));
    }
    for i in 0..n {
        // Placeholder trip count; patched below once the floor IV exists.
        let mut tile = create_canonical_loop_skeleton(
            b,
            Value::int(loops[i].ty, 0),
            &format!("tile{i}"),
            false,
        );
        // Tile span = min(size, tc - floor_iv * size), computed in the tile
        // loop's own preheader (dominated by every floor header).
        b.set_insert_point(tile.preheader);
        let start = b.mul(chain[i].iv(), sizes_typed[i]);
        let rem = b.sub(loops[i].trip_count, start);
        let span = b.umin(sizes_typed[i], rem);
        tile.set_trip_count(b.func_mut(), span);
        chain.push(tile);
    }

    // 3. Nest the chain: each loop's body enters the next loop; each inner
    //    `after` returns to the enclosing latch.
    for k in 0..2 * n - 1 {
        let (a, c) = (chain[k], chain[k + 1]);
        b.func_mut().block_mut(a.body).term = Some(Terminator::Br {
            target: c.preheader,
            loop_md: None,
        });
        b.func_mut().block_mut(c.after).term = Some(Terminator::Br {
            target: a.latch,
            loop_md: None,
        });
    }

    // 4. Splice the original body region into the innermost tile loop.
    let tile_last = chain[2 * n - 1];
    b.func_mut().block_mut(tile_last.body).term = Some(Terminator::Br {
        target: orig_body_entry,
        loop_md: None,
    });
    retarget_region_exits(b, &orig_region, orig_latch, tile_last.latch);

    // 5. Entry and exit edges: the outermost original preheader now feeds
    //    the first floor loop. The original `after` block — still the
    //    *unterminated continuation point* of the whole construct — becomes
    //    the first floor loop's `after`, so consumers keep emitting there.
    b.func_mut().block_mut(outermost.preheader).term = Some(Terminator::Br {
        target: chain[0].preheader,
        loop_md: None,
    });
    let orphan_after = chain[0].after;
    b.func_mut().block_mut(orphan_after).term = Some(Terminator::Unreachable);
    chain[0].after = outermost.after;
    b.func_mut().block_mut(chain[0].exit).term = Some(Terminator::Br {
        target: outermost.after,
        loop_md: None,
    });

    // 6. Rewrite uses of the original IVs inside the body region:
    //    iv_i := floor_iv_i * size_i + tile_iv_i
    b.set_insert_point(tile_last.body);
    let replacements: Vec<(Value, Value)> = (0..n)
        .map(|i| {
            let scaled = b.mul(chain[i].iv(), sizes_typed[i]);
            let v = b.add(scaled, chain[n + i].iv());
            (loops[i].iv(), v)
        })
        .collect();
    rewrite_region_uses(b, &orig_region, &replacements);

    b.set_insert_point(saved_ip);
    chain
}

/// Rewrites every branch in `region` that targets `old_latch` to `new_latch`.
pub(crate) fn retarget_region_exits(
    b: &mut IrBuilder<'_>,
    region: &[BlockId],
    old_latch: BlockId,
    new_latch: BlockId,
) {
    for &bb in region {
        if let Some(t) = b.func_mut().block_mut(bb).term.as_mut() {
            t.map_blocks(|x| if x == old_latch { new_latch } else { x });
        }
    }
}

/// Replaces value uses in `region` according to `replacements`.
pub(crate) fn rewrite_region_uses(
    b: &mut IrBuilder<'_>,
    region: &[BlockId],
    replacements: &[(Value, Value)],
) {
    let func = b.func_mut();
    for &bb in region {
        let insts = func.block(bb).insts.clone();
        for iid in insts {
            // Skip the replacement-producing instructions themselves (they
            // live in the new tile body block, not the original region, so
            // no aliasing is possible — but guard anyway).
            func.inst_mut(iid).map_operands(|v| remap(v, replacements));
        }
        if let Some(t) = func.block_mut(bb).term.as_mut() {
            t.map_operands(|v| remap(v, replacements));
        }
    }
}

fn remap(v: Value, replacements: &[(Value, Value)]) -> Value {
    for &(from, to) in replacements {
        if v == from {
            return to;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, BinOpKind, Function, Inst, IrType, Module};

    /// Builds `for i in 0..A { for j in 0..B { sink(i, j) } }` and returns
    /// the two loop handles.
    fn build_nest(f: &mut Function, m: &mut Module) -> (CanonicalLoopInfo, CanonicalLoopInfo) {
        let sink = m.intern("sink");
        let mut b = IrBuilder::new(f);
        let mut inner = None;
        let outer = create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
            inner = Some(create_canonical_loop(b, Value::Arg(1), "j", |b, j| {
                b.call(sink, vec![i, j], IrType::Void);
            }));
        });
        b.ret(None);
        (outer, inner.unwrap())
    }

    #[test]
    fn produces_2n_loops_with_valid_skeletons() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let tiled = {
            let mut b = IrBuilder::new(&mut f);
            tile_loops(&mut b, &[outer, inner], &[Value::i64(4), Value::i64(4)])
        };
        assert_eq!(
            tiled.len(),
            4,
            "tiling N loops generates twice as many (paper §1.1)"
        );
        for cli in &tiled {
            cli.assert_ok(&f);
        }
        assert_verified(&f);
    }

    #[test]
    fn single_loop_tiling_strip_mines() {
        let mut m = Module::new();
        let sink = m.intern("s");
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = {
            let mut b = IrBuilder::new(&mut f);
            let cli = create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
                b.call(sink, vec![i], IrType::Void);
            });
            b.ret(None);
            cli
        };
        let tiled = {
            let mut b = IrBuilder::new(&mut f);
            tile_loops(&mut b, &[cli], &[Value::i64(2)])
        };
        assert_eq!(tiled.len(), 2);
        for t in &tiled {
            t.assert_ok(&f);
        }
        assert_verified(&f);
        // floor loop's body leads (transitively) into the tile preheader
        assert_eq!(f.successors(tiled[0].body), vec![tiled[1].preheader]);
        // tile loop's after returns to the floor latch
        assert_eq!(f.successors(tiled[1].after), vec![tiled[0].latch]);
    }

    #[test]
    fn tile_trip_count_is_min_of_size_and_remainder() {
        // Structural check: the tile loop's cond compares against a value
        // computed from a select (our umin lowering) in its preheader.
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let tiled = {
            let mut b = IrBuilder::new(&mut f);
            tile_loops(&mut b, &[outer, inner], &[Value::i64(3), Value::i64(5)])
        };
        for t in &tiled[2..] {
            let has_select = f
                .block(t.preheader)
                .insts
                .iter()
                .any(|&i| matches!(f.inst(i), Inst::Select { .. }));
            assert!(
                has_select,
                "tile preheader must compute min(size, remainder)"
            );
        }
    }

    #[test]
    fn original_iv_uses_are_rewritten() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let old_ivs = [outer.iv(), inner.iv()];
        let tiled = {
            let mut b = IrBuilder::new(&mut f);
            tile_loops(&mut b, &[outer, inner], &[Value::i64(4), Value::i64(4)])
        };
        // The sink call must no longer reference the original phis.
        let tile_inner = tiled[3];
        let region = tile_inner.body_region(&f);
        for bb in region {
            for &iid in &f.block(bb).insts {
                if let Inst::Call { args, .. } = f.inst(iid) {
                    for a in args {
                        assert!(!old_ivs.contains(a), "stale IV use survived tiling");
                    }
                }
            }
        }
    }

    #[test]
    fn floor_tcs_are_ceildiv_guarded_against_zero() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let pre = outer.preheader;
        let before = f.block(pre).insts.len();
        let _ = {
            let mut b = IrBuilder::new(&mut f);
            tile_loops(&mut b, &[outer, inner], &[Value::i64(4), Value::i64(4)])
        };
        // ceildiv computations landed in the outermost preheader
        assert!(f.block(pre).insts.len() > before);
        let has_div = f.block(pre).insts.iter().any(|&i| {
            matches!(
                f.inst(i),
                Inst::Bin {
                    op: BinOpKind::UDiv,
                    ..
                }
            )
        });
        assert!(has_div, "floor trip count must divide by the tile size");
    }
}
