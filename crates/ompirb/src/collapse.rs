//! `collapse_loops` — fuses a perfect nest of canonical loops into a single
//! canonical loop whose logical iteration space is the product of the
//! originals (the OpenMP `collapse(n)` clause; paper §3.2 lists
//! `collapseLoops` among the CanonicalLoopInfo consumers).

use crate::canonical_loop::{create_canonical_loop_skeleton, CanonicalLoopInfo};
use crate::tile::{retarget_region_exits, rewrite_region_uses};
use omplt_ir::{IrBuilder, IrType, Terminator, Value};

/// Collapses `loops` (outermost → innermost) into one canonical loop.
///
/// The collapsed trip count is computed in the outermost preheader as the
/// product of the individual trip counts (widened to `i64`); the original
/// induction variables are recovered inside the body via division/remainder
/// chains, exactly as the OpenMP runtime numbers logical iterations.
pub fn collapse_loops(b: &mut IrBuilder<'_>, loops: &[CanonicalLoopInfo]) -> CanonicalLoopInfo {
    omplt_trace::count("ompirb.collapse", 1);
    let n = loops.len();
    assert!(n >= 1, "collapse_loops requires at least one loop");
    if n == 1 {
        return loops[0];
    }
    let outermost = loops[0];
    let innermost = loops[n - 1];

    let orig_body_entry = innermost.body;
    let orig_latch = innermost.latch;
    let orig_region = innermost.body_region(b.func());

    // Product trip count (in i64: the collapsed space can exceed any single
    // loop's type; the paper's "logical iteration counter" is normalized).
    let saved_ip = b.insert_block();
    b.set_insert_point(outermost.preheader);
    let mut wide_tcs = Vec::with_capacity(n);
    let mut total = Value::i64(1);
    for l in loops {
        let w = b.int_resize(l.trip_count, IrType::I64, false);
        total = b.mul(total, w);
        wide_tcs.push(w);
    }

    let mut collapsed = create_canonical_loop_skeleton(b, total, "collapsed", false);

    // Stitch: preheader of the nest → collapsed loop. The original `after`
    // (still the unterminated continuation point) becomes the collapsed
    // loop's `after`.
    b.func_mut().block_mut(outermost.preheader).term = Some(Terminator::Br {
        target: collapsed.preheader,
        loop_md: None,
    });
    let orphan_after = collapsed.after;
    b.func_mut().block_mut(orphan_after).term = Some(Terminator::Unreachable);
    collapsed.after = outermost.after;
    b.func_mut().block_mut(collapsed.exit).term = Some(Terminator::Br {
        target: outermost.after,
        loop_md: None,
    });
    b.func_mut().block_mut(collapsed.body).term = Some(Terminator::Br {
        target: orig_body_entry,
        loop_md: None,
    });
    retarget_region_exits(b, &orig_region, orig_latch, collapsed.latch);

    // Recover original IVs: iterating row-major, the innermost varies
    // fastest:  iv_{n-1} = I % tc_{n-1};  I /= tc_{n-1};  …
    b.set_insert_point(collapsed.body);
    let mut replacements = Vec::with_capacity(n);
    let mut rest = collapsed.iv();
    for i in (0..n).rev() {
        let wide_iv = if i == 0 {
            rest
        } else {
            b.urem(rest, wide_tcs[i])
        };
        let narrow = b.int_resize(wide_iv, loops[i].ty, false);
        replacements.push((loops[i].iv(), narrow));
        if i != 0 {
            rest = b.udiv(rest, wide_tcs[i]);
        }
    }
    rewrite_region_uses(b, &orig_region, &replacements);

    b.set_insert_point(saved_ip);
    collapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, Function, Inst, Module};

    fn build_nest(
        f: &mut Function,
        m: &mut Module,
        trips: (Value, Value),
    ) -> (CanonicalLoopInfo, CanonicalLoopInfo) {
        let sink = m.intern("sink");
        let mut b = IrBuilder::new(f);
        let mut inner = None;
        let outer = create_canonical_loop(&mut b, trips.0, "i", |b, i| {
            inner = Some(create_canonical_loop(b, trips.1, "j", |b, j| {
                b.call(sink, vec![i, j], IrType::Void);
            }));
        });
        b.ret(None);
        (outer, inner.unwrap())
    }

    #[test]
    fn collapsed_loop_is_canonical_and_verifies() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m, (Value::Arg(0), Value::Arg(1)));
        let coll = {
            let mut b = IrBuilder::new(&mut f);
            collapse_loops(&mut b, &[outer, inner])
        };
        coll.assert_ok(&f);
        assert_verified(&f);
    }

    #[test]
    fn trip_count_is_the_product() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m, (Value::i64(6), Value::i64(7)));
        let coll = {
            let mut b = IrBuilder::new(&mut f);
            collapse_loops(&mut b, &[outer, inner])
        };
        // 6*7 folds to a constant trip count.
        assert_eq!(coll.trip_count.as_const_int(), Some(42));
    }

    #[test]
    fn body_uses_div_rem_recovery() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m, (Value::Arg(0), Value::Arg(1)));
        let coll = {
            let mut b = IrBuilder::new(&mut f);
            collapse_loops(&mut b, &[outer, inner])
        };
        let insts = &f.block(coll.body).insts;
        let has_rem = insts.iter().any(|&i| {
            matches!(
                f.inst(i),
                Inst::Bin {
                    op: omplt_ir::BinOpKind::URem,
                    ..
                }
            )
        });
        let has_div = insts.iter().any(|&i| {
            matches!(
                f.inst(i),
                Inst::Bin {
                    op: omplt_ir::BinOpKind::UDiv,
                    ..
                }
            )
        });
        assert!(has_rem && has_div);
    }

    #[test]
    fn single_loop_collapse_is_identity() {
        let mut m = Module::new();
        let sink = m.intern("s");
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = {
            let mut b = IrBuilder::new(&mut f);
            let cli = create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
                b.call(sink, vec![i], IrType::Void);
            });
            b.ret(None);
            cli
        };
        let coll = {
            let mut b = IrBuilder::new(&mut f);
            collapse_loops(&mut b, &[cli])
        };
        assert_eq!(coll.header, cli.header);
    }
}
