//! The three unroll modes of `#pragma omp unroll` (paper §2.2/§3.2):
//!
//! * **full** — no generated loop remains, so nothing can associate with the
//!   result; we only attach `llvm.loop.unroll.full` metadata and let the
//!   mid-end `LoopUnroll` pass do the duplication.
//! * **heuristic** (no clause) — `llvm.loop.unroll.enable`; the pass picks
//!   the factor with its profitability heuristic ("the LoopUnroll pass can
//!   apply profitability heuristics to determine an appropriate factor").
//! * **partial(f)** — two cases, exactly as the paper describes:
//!   - not consumed by another directive → cheapest to defer entirely:
//!     attach `llvm.loop.unroll.count(f)` *without even tiling the loop
//!     beforehand*;
//!   - consumed (a generated loop is required) → tile by the factor and mark
//!     the inner tile loop for unrolling; the returned **floor loop** is the
//!     generated loop the consuming directive associates with. Its iteration
//!     count is observable (e.g. `taskloop` task counts), which is why the
//!     factor cannot be left to the heuristic in this case.

use crate::canonical_loop::CanonicalLoopInfo;
use crate::tile::tile_loops;
use omplt_ir::{IrBuilder, UnrollHint, Value};

/// Fully unrolls `cli` (deferred to the mid-end pass via metadata).
pub fn unroll_loop_full(b: &mut IrBuilder<'_>, cli: &CanonicalLoopInfo) {
    omplt_trace::count("ompirb.unroll", 1);
    let mut md = cli.metadata(b.func()).unwrap_or_default();
    md.unroll = Some(UnrollHint::Full);
    cli.set_metadata(b.func_mut(), md);
}

/// Lets the mid-end decide whether/how much to unroll.
pub fn unroll_loop_heuristic(b: &mut IrBuilder<'_>, cli: &CanonicalLoopInfo) {
    omplt_trace::count("ompirb.unroll", 1);
    let mut md = cli.metadata(b.func()).unwrap_or_default();
    md.unroll = Some(UnrollHint::Enable);
    cli.set_metadata(b.func_mut(), md);
}

/// Partially unrolls `cli` by `factor`.
///
/// When `need_unrolled_cli` is true, returns the generated (floor) loop for
/// consumption by an enclosing directive; otherwise returns `None` and the
/// whole transformation is deferred to the mid-end.
pub fn unroll_loop_partial(
    b: &mut IrBuilder<'_>,
    cli: &CanonicalLoopInfo,
    factor: u64,
    need_unrolled_cli: bool,
) -> Option<CanonicalLoopInfo> {
    omplt_trace::count("ompirb.unroll", 1);
    assert!(factor >= 1, "unroll factor must be positive");
    if !need_unrolled_cli {
        let mut md = cli.metadata(b.func()).unwrap_or_default();
        md.unroll = Some(UnrollHint::Count(factor));
        cli.set_metadata(b.func_mut(), md);
        return None;
    }
    // Strip-mine by the factor; fully unroll the inner (≤ factor iterations).
    let tiled = tile_loops(b, &[*cli], &[Value::int(cli.ty, factor as i64)]);
    let (floor, tile) = (tiled[0], tiled[1]);
    let mut md = tile.metadata(b.func()).unwrap_or_default();
    md.unroll = Some(UnrollHint::Count(factor));
    tile.set_metadata(b.func_mut(), md);
    Some(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, Function, IrType, Module};

    fn one_loop(f: &mut Function, m: &mut Module) -> CanonicalLoopInfo {
        let sink = m.intern("sink");
        let mut b = IrBuilder::new(f);
        let cli = create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
            b.call(sink, vec![i], IrType::Void);
        });
        b.ret(None);
        cli
    }

    #[test]
    fn full_attaches_metadata_only() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = one_loop(&mut f, &mut m);
        let nblocks = f.blocks.len();
        {
            let mut b = IrBuilder::new(&mut f);
            unroll_loop_full(&mut b, &cli);
        }
        assert_eq!(
            f.blocks.len(),
            nblocks,
            "full unroll must not restructure the IR"
        );
        assert_eq!(cli.metadata(&f).unwrap().unroll, Some(UnrollHint::Full));
        cli.assert_ok(&f);
    }

    #[test]
    fn heuristic_attaches_enable() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = one_loop(&mut f, &mut m);
        {
            let mut b = IrBuilder::new(&mut f);
            unroll_loop_heuristic(&mut b, &cli);
        }
        assert_eq!(cli.metadata(&f).unwrap().unroll, Some(UnrollHint::Enable));
    }

    #[test]
    fn partial_without_consumer_defers_entirely() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = one_loop(&mut f, &mut m);
        let nblocks = f.blocks.len();
        let r = {
            let mut b = IrBuilder::new(&mut f);
            unroll_loop_partial(&mut b, &cli, 4, false)
        };
        assert!(r.is_none());
        assert_eq!(
            f.blocks.len(),
            nblocks,
            "deferred partial unroll must not tile"
        );
        assert_eq!(cli.metadata(&f).unwrap().unroll, Some(UnrollHint::Count(4)));
    }

    #[test]
    fn partial_with_consumer_tiles_and_returns_floor_loop() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = one_loop(&mut f, &mut m);
        let floor = {
            let mut b = IrBuilder::new(&mut f);
            unroll_loop_partial(&mut b, &cli, 2, true)
        }
        .expect("consumer requires a generated loop");
        floor.assert_ok(&f);
        assert_verified(&f);
        // The floor loop itself carries no unroll metadata; the inner tile
        // loop (reached through the floor body) does.
        assert!(floor.metadata(&f).is_none_or(|m| m.unroll.is_none()));
    }
}
