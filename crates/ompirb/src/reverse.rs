//! `reverse_loop` — the OpenMPIRBuilder implementation of
//! `#pragma omp reverse`: runs the iterations of one canonical loop in the
//! opposite order.
//!
//! Unlike tiling, reversal keeps the original skeleton ("the function may
//! either modify and return the input canonical loops, or abandon the old
//! handles", paper §3.2 — this one modifies): the logical induction variable
//! still counts 0, 1, …, tc-1, but every use of it inside the body region is
//! rewritten to the mirrored value `(tc - 1) - iv`, computed in a fresh block
//! spliced between `cond` and the old body entry.

use crate::canonical_loop::CanonicalLoopInfo;
use crate::tile::rewrite_region_uses;
use omplt_ir::{IrBuilder, Value};

/// Reverses the iteration order of `cli`.
///
/// Returns an updated handle whose `body` is the new mirror-computation
/// block; all other blocks (and the trip count) are unchanged, so the loop
/// still satisfies every skeleton invariant and remains composable with
/// worksharing, tiling and unrolling.
pub fn reverse_loop(b: &mut IrBuilder<'_>, cli: &CanonicalLoopInfo) -> CanonicalLoopInfo {
    omplt_trace::count("ompirb.reverse", 1);

    // Snapshot the body region before creating the mirror block.
    let orig_region = cli.body_region(b.func());

    // mirror block: rev = (tc - 1) - iv
    let saved_ip = b.insert_block();
    let mirror = b.create_block("omp_reverse.body");
    b.set_insert_point(mirror);
    let tcm1 = b.sub(cli.trip_count, Value::int(cli.ty, 1));
    let rev = b.sub(tcm1, cli.iv());
    b.br(cli.body);

    // cond's true edge now enters the mirror block.
    if let Some(t) = b.func_mut().block_mut(cli.cond).term.as_mut() {
        t.map_blocks(|x| if x == cli.body { mirror } else { x });
    }

    // Body uses of the logical IV see the mirrored value. The latch is not
    // part of the region, so the increment keeps stepping the real counter.
    rewrite_region_uses(b, &orig_region, &[(cli.iv(), rev)]);

    b.set_insert_point(saved_ip);
    CanonicalLoopInfo {
        body: mirror,
        ..*cli
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, BinOpKind, Function, Inst, IrType, Module};

    fn build_loop(f: &mut Function, m: &mut Module) -> CanonicalLoopInfo {
        let sink = m.intern("sink");
        let mut b = IrBuilder::new(f);
        let cli = create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
            b.call(sink, vec![i], IrType::Void);
        });
        b.ret(None);
        cli
    }

    #[test]
    fn reversed_loop_keeps_skeleton_invariants() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = build_loop(&mut f, &mut m);
        let rev = {
            let mut b = IrBuilder::new(&mut f);
            reverse_loop(&mut b, &cli)
        };
        rev.assert_ok(&f);
        assert_verified(&f);
        assert_eq!(rev.trip_count, cli.trip_count, "trip count is unchanged");
    }

    #[test]
    fn body_uses_are_rewritten_to_mirrored_iv() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = build_loop(&mut f, &mut m);
        let old_iv = cli.iv();
        let rev = {
            let mut b = IrBuilder::new(&mut f);
            reverse_loop(&mut b, &cli)
        };
        // The sink call must no longer reference the raw phi…
        let mut saw_call = false;
        for bb in rev.body_region(&f) {
            for &iid in &f.block(bb).insts {
                if let Inst::Call { args, .. } = f.inst(iid) {
                    saw_call = true;
                    assert!(!args.contains(&old_iv), "stale IV use survived reversal");
                }
            }
        }
        assert!(saw_call);
        // …and the mirror block computes (tc - 1) - iv with two subtractions.
        let subs = f
            .block(rev.body)
            .insts
            .iter()
            .filter(|&&i| {
                matches!(
                    f.inst(i),
                    Inst::Bin {
                        op: BinOpKind::Sub,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(subs, 2, "mirror block computes (tc - 1) - iv");
    }

    #[test]
    fn latch_still_increments_the_real_counter() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = build_loop(&mut f, &mut m);
        let rev = {
            let mut b = IrBuilder::new(&mut f);
            reverse_loop(&mut b, &cli)
        };
        let has_incr = f.block(rev.latch).insts.iter().any(|&i| {
            matches!(
                f.inst(i),
                Inst::Bin { op: BinOpKind::Add, lhs, rhs }
                    if *lhs == rev.iv() && rhs.is_one_int()
            )
        });
        assert!(has_incr, "reversal must not touch the latch increment");
    }
}
