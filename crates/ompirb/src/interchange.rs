//! `interchange_loops` — the OpenMPIRBuilder implementation of
//! `#pragma omp interchange`: permutes a perfect nest of canonical loops.
//!
//! Like `tile_loops`, this abandons the original control skeletons and
//! creates fresh ones ("abandon the old handles and create new loops using
//! the skeleton", paper §3.2): N new skeletons are nested in permuted order,
//! the innermost body region is spliced in, and each use of an original
//! induction variable is rewritten to the new loop now running that
//! dimension.

use crate::canonical_loop::{create_canonical_loop_skeleton, CanonicalLoopInfo};
use crate::tile::{retarget_region_exits, rewrite_region_uses};
use omplt_ir::{IrBuilder, Terminator, Value};

/// Permutes a perfect nest of canonical loops.
///
/// `loops` are ordered outermost → innermost; `perm[k]` names (0-based) the
/// original loop that position `k` of the generated nest runs, so
/// `perm = [1, 0]` swaps a 2-deep nest. Trip counts of all loops must be
/// defined in (or before) the outermost preheader — guaranteed by the
/// front-end for rectangular nests, which evaluates every distance function
/// up front.
///
/// Returns the N generated loops, outermost first.
pub fn interchange_loops(
    b: &mut IrBuilder<'_>,
    loops: &[CanonicalLoopInfo],
    perm: &[usize],
) -> Vec<CanonicalLoopInfo> {
    omplt_trace::count("ompirb.interchange", 1);
    let n = loops.len();
    assert!(n >= 2, "interchange_loops requires a nest of at least two");
    assert_eq!(n, perm.len(), "permutation must cover every loop");
    {
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "perm must be a permutation of 0..n");
            seen[p] = true;
        }
    }

    let outermost = loops[0];
    let innermost = loops[n - 1];
    let orig_body_entry = innermost.body;
    let orig_latch = innermost.latch;
    let orig_region = innermost.body_region(b.func());

    // 1. New skeletons, nested in permuted order: position k runs loop
    //    perm[k]'s iteration space.
    let saved_ip = b.insert_block();
    let mut chain: Vec<CanonicalLoopInfo> = Vec::with_capacity(n);
    for (k, &p) in perm.iter().enumerate() {
        chain.push(create_canonical_loop_skeleton(
            b,
            loops[p].trip_count,
            &format!("interchange{k}"),
            false,
        ));
    }
    for k in 0..n - 1 {
        let (a, c) = (chain[k], chain[k + 1]);
        b.func_mut().block_mut(a.body).term = Some(Terminator::Br {
            target: c.preheader,
            loop_md: None,
        });
        b.func_mut().block_mut(c.after).term = Some(Terminator::Br {
            target: a.latch,
            loop_md: None,
        });
    }

    // 2. Splice the original body region into the new innermost loop.
    let inner_new = chain[n - 1];
    b.func_mut().block_mut(inner_new.body).term = Some(Terminator::Br {
        target: orig_body_entry,
        loop_md: None,
    });
    retarget_region_exits(b, &orig_region, orig_latch, inner_new.latch);

    // 3. Entry/exit stitching (same as tile_loops): the old preheader feeds
    //    the new outermost loop; the construct still continues at the old
    //    `after` block.
    b.func_mut().block_mut(outermost.preheader).term = Some(Terminator::Br {
        target: chain[0].preheader,
        loop_md: None,
    });
    let orphan_after = chain[0].after;
    b.func_mut().block_mut(orphan_after).term = Some(Terminator::Unreachable);
    chain[0].after = outermost.after;
    b.func_mut().block_mut(chain[0].exit).term = Some(Terminator::Br {
        target: outermost.after,
        loop_md: None,
    });

    // 4. Each original IV is now produced by the chain position running
    //    that dimension.
    let replacements: Vec<(Value, Value)> = perm
        .iter()
        .enumerate()
        .map(|(k, &p)| (loops[p].iv(), chain[k].iv()))
        .collect();
    rewrite_region_uses(b, &orig_region, &replacements);

    b.set_insert_point(saved_ip);
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_loop::create_canonical_loop;
    use omplt_ir::{assert_verified, Function, Inst, IrType, Module};

    fn build_nest(f: &mut Function, m: &mut Module) -> (CanonicalLoopInfo, CanonicalLoopInfo) {
        let sink = m.intern("sink");
        let mut b = IrBuilder::new(f);
        let mut inner = None;
        let outer = create_canonical_loop(&mut b, Value::Arg(0), "i", |b, i| {
            inner = Some(create_canonical_loop(b, Value::Arg(1), "j", |b, j| {
                b.call(sink, vec![i, j], IrType::Void);
            }));
        });
        b.ret(None);
        (outer, inner.unwrap())
    }

    #[test]
    fn swap_produces_valid_nest_with_swapped_trip_counts() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let swapped = {
            let mut b = IrBuilder::new(&mut f);
            interchange_loops(&mut b, &[outer, inner], &[1, 0])
        };
        assert_eq!(swapped.len(), 2);
        for cli in &swapped {
            cli.assert_ok(&f);
        }
        assert_verified(&f);
        // The new outer loop runs the old inner iteration space.
        assert_eq!(swapped[0].trip_count, Value::Arg(1));
        assert_eq!(swapped[1].trip_count, Value::Arg(0));
    }

    #[test]
    fn body_uses_map_to_the_new_dimension_owners() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let (old_i, old_j) = (outer.iv(), inner.iv());
        let swapped = {
            let mut b = IrBuilder::new(&mut f);
            interchange_loops(&mut b, &[outer, inner], &[1, 0])
        };
        // sink(i, j): i is now produced by the new *inner* loop, j by the
        // new *outer* loop.
        let mut saw_call = false;
        for bb in swapped[1].body_region(&f) {
            for &iid in &f.block(bb).insts {
                if let Inst::Call { args, .. } = f.inst(iid) {
                    saw_call = true;
                    assert_eq!(args[0], swapped[1].iv(), "i runs in the new inner loop");
                    assert_eq!(args[1], swapped[0].iv(), "j runs in the new outer loop");
                    assert!(!args.contains(&old_i) && !args.contains(&old_j));
                }
            }
        }
        assert!(saw_call);
    }

    #[test]
    fn construct_continues_at_the_original_after_block() {
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64, IrType::I64], IrType::Void);
        let (outer, inner) = build_nest(&mut f, &mut m);
        let after = outer.after;
        let swapped = {
            let mut b = IrBuilder::new(&mut f);
            interchange_loops(&mut b, &[outer, inner], &[1, 0])
        };
        assert_eq!(swapped[0].after, after);
        assert_eq!(f.successors(swapped[0].exit), vec![after]);
    }
}
