//! Widening-pass tests: hand-built canonical loops lowered through
//! `compile_module_with`, executed on the VM at several widths, and compared
//! against the scalar (width-0) lowering of the *same module* — the scalar
//! bytecode is itself differentially pinned against the interpreter, so
//! equality here extends the oracle chain to the vector tier.

use omplt_interp::RuntimeConfig;
use omplt_ir::{CmpPred, Function, IrBuilder, IrType, LoopMetadata, Module, Value};
use omplt_vm::{compile_module, compile_module_with, disasm, verify_module, VmEngine, VmModule};

fn simd_md() -> LoopMetadata {
    LoopMetadata {
        vectorize_enable: true,
        ..LoopMetadata::default()
    }
}

/// `main`: `long a[n], b[n]` (allocas), `b[i] = i*3 + 1`, then `reps`
/// repetitions of the simd loop
/// `for (i = 0; i < n; i++) { a[i] = b[i]*k + a[i]; sum += b[i]; }`,
/// returning `sum*1000 + a[probe]`. `reps > 1` re-enters the vector
/// preamble through the outer loop's backedge.
fn saxpy_like(n: i64, k: i64, probe: i64, reps: i64, md: LoopMetadata) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", vec![], IrType::I64);
    {
        let mut b = IrBuilder::new(&mut f);
        let a_arr = b.alloca(IrType::I64, n as u64, "a");
        let b_arr = b.alloca(IrType::I64, n as u64, "b");
        let iv = b.alloca(IrType::I64, 1, "i");
        let sum = b.alloca(IrType::I64, 1, "sum");

        // init: b[i] = i*3 + 1; a[i] = i  (plain scalar loop, no metadata)
        b.store(Value::i64(0), iv);
        let init_hdr = b.create_block("init.hdr");
        let init_body = b.create_block("init.body");
        let loop_pre = b.create_block("loop.pre");
        b.br(init_hdr);
        b.set_insert_point(init_hdr);
        let i0 = b.load(IrType::I64, iv);
        let c0 = b.cmp(CmpPred::Slt, i0, Value::i64(n));
        b.cond_br(c0, init_body, loop_pre);
        b.set_insert_point(init_body);
        let i1 = b.load(IrType::I64, iv);
        let v3 = b.mul(i1, Value::i64(3));
        let v = b.add(v3, Value::i64(1));
        let bp = b.gep(b_arr, i1, 8);
        b.store(v, bp);
        let ap = b.gep(a_arr, i1, 8);
        b.store(i1, ap);
        let i2 = b.add(i1, Value::i64(1));
        b.store(i2, iv);
        b.br(init_hdr);

        // outer repeat loop around the simd loop
        b.set_insert_point(loop_pre);
        let rep = b.alloca(IrType::I64, 1, "rep");
        b.store(Value::i64(0), rep);
        b.store(Value::i64(0), sum);
        let outer_hdr = b.create_block("outer.hdr");
        let outer_body = b.create_block("outer.body");
        let outer_latch = b.create_block("outer.latch");
        let hdr = b.create_block("simd.hdr");
        let body = b.create_block("simd.body");
        let exit = b.create_block("exit");
        b.br(outer_hdr);
        b.set_insert_point(outer_hdr);
        let r0 = b.load(IrType::I64, rep);
        let rc = b.cmp(CmpPred::Slt, r0, Value::i64(reps));
        b.cond_br(rc, outer_body, exit);
        b.set_insert_point(outer_body);
        b.store(Value::i64(0), iv);
        b.br(hdr);
        b.set_insert_point(hdr);
        let i3 = b.load(IrType::I64, iv);
        let c1 = b.cmp(CmpPred::Slt, i3, Value::i64(n));
        b.cond_br(c1, body, outer_latch);
        b.set_insert_point(body);
        let i4 = b.load(IrType::I64, iv);
        let bp2 = b.gep(b_arr, i4, 8);
        let bv = b.load(IrType::I64, bp2);
        let ap2 = b.gep(a_arr, i4, 8);
        let av = b.load(IrType::I64, ap2);
        let prod = b.mul(bv, Value::i64(k));
        let nv = b.add(prod, av);
        b.store(nv, ap2);
        let s0 = b.load(IrType::I64, sum);
        let s1 = b.add(s0, bv);
        b.store(s1, sum);
        let i5 = b.add(i4, Value::i64(1));
        b.store(i5, iv);
        b.br_with_md(hdr, md);

        b.set_insert_point(outer_latch);
        let r1 = b.load(IrType::I64, rep);
        let r2 = b.add(r1, Value::i64(1));
        b.store(r2, rep);
        b.br(outer_hdr);

        b.set_insert_point(exit);
        let sv = b.load(IrType::I64, sum);
        let pp = b.gep(a_arr, Value::i64(probe), 8);
        let pv = b.load(IrType::I64, pp);
        let sk = b.mul(sv, Value::i64(1000));
        let r = b.add(sk, pv);
        b.ret(Some(r));
    }
    m.add_function(f);
    m
}

fn run(code: &VmModule, m: &Module) -> i64 {
    let out = VmEngine::new(m, code, RuntimeConfig::default())
        .expect("vm init")
        .run_main()
        .expect("run");
    out.exit_code
}

/// Runs `f` under a fresh trace session and returns the counters it ticked.
fn counters_of<T>(f: impl FnOnce() -> T) -> (T, std::collections::BTreeMap<String, u64>) {
    let s = omplt_trace::Session::begin();
    let out = f();
    (out, s.finish().counters)
}

fn disasm_all(code: &VmModule) -> String {
    code.funcs.iter().map(disasm).collect()
}

#[test]
fn widened_saxpy_matches_scalar_at_every_width() {
    for (n, reps) in [
        (0i64, 1i64),
        (1, 1),
        (3, 1),
        (4, 1),
        (7, 1),
        (8, 1),
        (17, 3),
        (64, 2),
    ] {
        let probe = (n - 1).max(0);
        let m = saxpy_like(n, 5, probe, reps, simd_md());
        let scalar = compile_module(&m).expect("scalar compiles");
        assert!(verify_module(&scalar).is_empty());
        let want = run(&scalar, &m);
        for w in [2u8, 4, 8] {
            let vec = compile_module_with(&m, w).expect("vector compiles");
            assert!(
                verify_module(&vec).is_empty(),
                "width {w} bytecode must verify"
            );
            let got = run(&vec, &m);
            assert_eq!(
                got, want,
                "n={n} reps={reps} width={w} diverged from scalar oracle"
            );
        }
    }
}

#[test]
fn widened_loop_emits_vector_ops_and_counts() {
    let m = saxpy_like(64, 5, 63, 1, simd_md());
    let (code, counters) = counters_of(|| compile_module_with(&m, 4).expect("compiles"));
    let text = disasm_all(&code);
    assert!(text.contains("vload"), "unit-stride loads widen:\n{text}");
    assert!(text.contains("vstore"), "unit-stride stores widen:\n{text}");
    assert!(text.contains("vreduce"), "sum reduction widens:\n{text}");
    assert!(text.contains("viota"), "lane vector present:\n{text}");
    assert_eq!(counters.get("vm.simd.widened_loops"), Some(&1));
    assert_eq!(counters.get("vm.simd.refused"), Some(&0));
}

#[test]
fn unannotated_loop_stays_scalar() {
    let m = saxpy_like(64, 5, 63, 1, LoopMetadata::default());
    let code = compile_module_with(&m, 4).expect("compiles");
    let text = disasm_all(&code);
    assert!(
        !text.contains("vload") && !text.contains("viota"),
        "no vector ops without llvm.loop.vectorize.enable:\n{text}"
    );
}

#[test]
fn epilogue_iterations_are_counted() {
    // n = 7, width 4: one vector chunk (lanes 0-3) + 3 scalar iterations.
    let m = saxpy_like(7, 5, 6, 1, simd_md());
    let code = compile_module_with(&m, 4).expect("compiles");
    let ((), counters) = counters_of(|| {
        run(&code, &m);
    });
    assert_eq!(counters.get("vm.simd.epilogue_iters"), Some(&3));
}

/// `for (i = 0; i < n; i++) a[i+1] = a[i] + 1` — loop-carried distance 1:
/// must be refused outright (clamp would be 1 < 2).
#[test]
fn carried_dependence_is_refused_not_miscompiled() {
    let n = 40i64;
    let mut m = Module::new();
    let mut f = Function::new("main", vec![], IrType::I64);
    {
        let mut b = IrBuilder::new(&mut f);
        let a_arr = b.alloca(IrType::I64, (n + 1) as u64, "a");
        let iv = b.alloca(IrType::I64, 1, "i");
        b.store(Value::i64(0), iv);
        let first = b.gep(a_arr, Value::i64(0), 8);
        b.store(Value::i64(1), first);
        let hdr = b.create_block("hdr");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.br(hdr);
        b.set_insert_point(hdr);
        let i0 = b.load(IrType::I64, iv);
        let c = b.cmp(CmpPred::Slt, i0, Value::i64(n));
        b.cond_br(c, body, exit);
        b.set_insert_point(body);
        let i1 = b.load(IrType::I64, iv);
        let src = b.gep(a_arr, i1, 8);
        let sv = b.load(IrType::I64, src);
        let nv = b.add(sv, Value::i64(1));
        let ip1 = b.add(i1, Value::i64(1));
        let dst = b.gep(a_arr, ip1, 8);
        b.store(nv, dst);
        let i2 = b.add(i1, Value::i64(1));
        b.store(i2, iv);
        b.br_with_md(hdr, simd_md());
        b.set_insert_point(exit);
        let last = b.gep(a_arr, Value::i64(n), 8);
        let lv = b.load(IrType::I64, last);
        b.ret(Some(lv));
    }
    m.add_function(f);

    let scalar = compile_module(&m).expect("scalar compiles");
    let want = run(&scalar, &m);
    assert_eq!(want, n + 1, "recurrence propagates left to right");

    let (code, counters) = counters_of(|| compile_module_with(&m, 4).expect("compiles"));
    assert_eq!(counters.get("vm.simd.refused"), Some(&1));
    assert_eq!(counters.get("vm.simd.widened_loops"), Some(&0));
    let text = disasm_all(&code);
    assert!(!text.contains("viota"), "refused loop must stay scalar");
    assert_eq!(run(&code, &m), want);
}

/// `a[i+2] = a[i] + 1` — flow dependence of distance 2: each chunk may
/// cover at most 2 lanes, so the width clamps to 2 instead of refusing.
#[test]
fn dependence_distance_clamps_width() {
    let n = 32i64;
    let build = |md: LoopMetadata| {
        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::I64);
        {
            let mut b = IrBuilder::new(&mut f);
            let a_arr = b.alloca(IrType::I64, (n + 2) as u64, "a");
            let iv = b.alloca(IrType::I64, 1, "i");
            // a[j] = j for all n+2 entries.
            b.store(Value::i64(0), iv);
            let ih = b.create_block("init.hdr");
            let ib = b.create_block("init.body");
            let pre = b.create_block("pre");
            b.br(ih);
            b.set_insert_point(ih);
            let j0 = b.load(IrType::I64, iv);
            let jc = b.cmp(CmpPred::Slt, j0, Value::i64(n + 2));
            b.cond_br(jc, ib, pre);
            b.set_insert_point(ib);
            let j1 = b.load(IrType::I64, iv);
            let jp = b.gep(a_arr, j1, 8);
            b.store(j1, jp);
            let j2 = b.add(j1, Value::i64(1));
            b.store(j2, iv);
            b.br(ih);
            b.set_insert_point(pre);
            b.store(Value::i64(0), iv);
            let hdr = b.create_block("hdr");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.br(hdr);
            b.set_insert_point(hdr);
            let i0 = b.load(IrType::I64, iv);
            let c = b.cmp(CmpPred::Slt, i0, Value::i64(n));
            b.cond_br(c, body, exit);
            b.set_insert_point(body);
            let i1 = b.load(IrType::I64, iv);
            let src = b.gep(a_arr, i1, 8);
            let sv = b.load(IrType::I64, src);
            let nv = b.add(sv, Value::i64(1));
            let ip2 = b.add(i1, Value::i64(2));
            let dst = b.gep(a_arr, ip2, 8);
            b.store(nv, dst);
            let i2 = b.add(i1, Value::i64(1));
            b.store(i2, iv);
            b.br_with_md(hdr, md);
            b.set_insert_point(exit);
            // Fold the whole array into the exit value.
            b.store(Value::i64(0), iv);
            let sh = b.create_block("sum.hdr");
            let sb = b.create_block("sum.body");
            let done = b.create_block("done");
            let sum = b.alloca(IrType::I64, 1, "sum");
            b.store(Value::i64(0), sum);
            b.br(sh);
            b.set_insert_point(sh);
            let k0 = b.load(IrType::I64, iv);
            let kc = b.cmp(CmpPred::Slt, k0, Value::i64(n));
            b.cond_br(kc, sb, done);
            b.set_insert_point(sb);
            let k1 = b.load(IrType::I64, iv);
            let kp = b.gep(a_arr, k1, 8);
            let kv = b.load(IrType::I64, kp);
            let s0 = b.load(IrType::I64, sum);
            let mixed = b.mul(s0, Value::i64(3));
            let s1 = b.add(mixed, kv);
            b.store(s1, sum);
            let k2 = b.add(k1, Value::i64(1));
            b.store(k2, iv);
            b.br(sh);
            b.set_insert_point(done);
            let fin = b.load(IrType::I64, sum);
            b.ret(Some(fin));
        }
        m.add_function(f);
        m
    };

    let m = build(simd_md());
    let scalar = compile_module(&m).expect("scalar compiles");
    let want = run(&scalar, &m);
    let (code, counters) = counters_of(|| compile_module_with(&m, 8).expect("compiles"));
    assert_eq!(counters.get("vm.simd.widened_loops"), Some(&1));
    let text = disasm_all(&code);
    assert!(
        text.contains(".x2") && !text.contains(".x8"),
        "width must clamp to the dependence distance 2:\n{text}"
    );
    assert_eq!(run(&code, &m), want, "clamped loop diverged");
}

/// `simdlen(2)` caps the width below the CLI request.
#[test]
fn simdlen_clause_caps_width() {
    let md = LoopMetadata {
        vectorize_enable: true,
        simdlen: 2,
        ..LoopMetadata::default()
    };
    let m = saxpy_like(32, 3, 31, 1, md);
    let code = compile_module_with(&m, 8).expect("compiles");
    let text = disasm_all(&code);
    assert!(
        !text.contains("x8"),
        "simdlen(2) must override --vector-width=8:\n{text}"
    );
    let scalar = compile_module(&m).expect("scalar");
    assert_eq!(run(&code, &m), run(&scalar, &m));
}

/// Retired-op acceptance: width 4 must cut dynamic retired ops by ≥2× on
/// the dense saxpy kernel.
#[test]
fn width_four_halves_retired_ops() {
    let m = saxpy_like(4096, 7, 4095, 20, simd_md());
    let scalar = compile_module(&m).expect("scalar");
    let vec = compile_module_with(&m, 4).expect("vector");
    let retired = |code: &VmModule| {
        counters_of(|| {
            run(code, &m);
        })
        .1
        .get("vm.ops.retired")
        .copied()
        .expect("vm.ops.retired counted")
    };
    let s = retired(&scalar);
    let v = retired(&vec);
    assert!(
        v * 2 <= s,
        "expected >=2x retired-op cut at width 4: scalar={s} vector={v}"
    );
}
