//! Golden-diagnostic tests for the bytecode verifier: one per rejection
//! class, scalar (undefined register, out-of-bounds jump, type mismatch)
//! and vector (lane count, width mismatch, undefined vector register,
//! lane out of range, element-class mismatch).
//!
//! Each test lowers a small, *valid* IR function through the real bytecode
//! compiler, asserts the verifier accepts it, then hand-corrupts one op and
//! asserts the verifier rejects it with the exact rendered diagnostic —
//! the strings here are the contract `--verify-each` users see.

use omplt_ir::{BinOpKind, CmpPred, Function, IrBuilder, IrType, Module, Value};
use omplt_vm::{compile_module, compile_module_with, verify_function, Op, RegClass, VmModule};

/// A small straight-line function exercising alloca/store/load/arith/ret.
/// The add's result is returned so the peephole pass cannot delete it.
fn sample() -> (Module, VmModule) {
    let mut m = Module::new();
    let mut f = Function::new("main", vec![], IrType::I64);
    {
        let mut b = IrBuilder::new(&mut f);
        let p = b.alloca(IrType::I64, 4, "buf");
        b.store(Value::i64(7), p);
        let v = b.load(IrType::I64, p);
        let w = b.bin(BinOpKind::Add, v, Value::i64(35));
        b.store(w, p);
        b.ret(Some(w));
    }
    m.add_function(f);
    let code = compile_module(&m).expect("compiles");
    assert!(
        omplt_vm::verify_module(&code).is_empty(),
        "uncorrupted bytecode must verify"
    );
    (m, code)
}

/// Renders every error for one corrupted function.
fn rendered(code: &VmModule) -> Vec<String> {
    verify_function(&code.funcs[0], code.funcs.len())
        .iter()
        .map(|e| e.to_string())
        .collect()
}

#[test]
fn undefined_register_golden() {
    let (_m, mut code) = sample();
    let f = &mut code.funcs[0];
    // Corruption: make some op read a brand-new register nothing ever
    // writes. Appending a register keeps every other op's semantics intact,
    // so the *only* complaint must be the definite-init violation.
    let fresh = f.num_regs;
    f.num_regs += 1;
    f.reg_class.push(RegClass::Int);
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::Bin { .. }))
        .expect("sample has an add");
    if let Op::Bin { rhs, .. } = &mut f.ops[at] {
        *rhs = fresh;
    }
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!(
            "@main: op {at}: read of register r{fresh} before any write"
        )]
    );
}

#[test]
fn jump_out_of_bounds_golden() {
    let (_m, mut code) = sample();
    let f = &mut code.funcs[0];
    // Corruption: retarget the final Ret into a wild Jmp past the end.
    let at = f.ops.len() - 1;
    assert!(matches!(f.ops[at], Op::Ret { .. }));
    f.ops[at] = Op::Jmp { target: 9999 };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!("@main: op {at}: jump target 9999 out of bounds")]
    );
}

#[test]
fn type_mismatch_golden() {
    let (_m, mut code) = sample();
    let f = &mut code.funcs[0];
    // Corruption: flip the add's type to f64 while its registers stay in
    // the int class — an int-register float operation.
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::Bin { .. }))
        .expect("sample has an add");
    let (dst, lhs, rhs) = match f.ops[at] {
        Op::Bin { dst, lhs, rhs, .. } => (dst, lhs, rhs),
        _ => unreachable!(),
    };
    f.ops[at] = Op::Bin {
        op: BinOpKind::FAdd,
        ty: IrType::F64,
        dst,
        lhs,
        rhs,
    };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![
            format!("@main: op {at}: type mismatch: float op fadd with int destination r{dst}"),
            format!("@main: op {at}: type mismatch: float op fadd with int lhs r{lhs}"),
            format!("@main: op {at}: type mismatch: float op fadd with int rhs r{rhs}"),
        ]
    );
}

// ---------------------------------------------------------------------------
// Vector-tier rejection classes. Each test lowers a small *widenable*
// canonical loop through the real widening pass (`compile_module_with` at
// width 4), asserts the vector bytecode verifies clean, then hand-corrupts
// one vector op and pins the exact rendered rejection — the same strings the
// serde fuzz leg relies on being produced instead of a panic.

/// `main`: `long a[19]`, `for (i=0;i<19;i++) { a[i] += 5; sum += a[i]; }`,
/// returns `sum`. Widens at width 4 (19 = 4 lanes × 4 + 3 epilogue) and the
/// reduction materializes a `vreduce`, so every vector op class the tests
/// corrupt is present.
fn vector_sample() -> VmModule {
    let mut m = Module::new();
    let mut f = Function::new("main", vec![], IrType::I64);
    {
        let mut b = IrBuilder::new(&mut f);
        let arr = b.alloca(IrType::I64, 19, "a");
        let iv = b.alloca(IrType::I64, 1, "i");
        let sum = b.alloca(IrType::I64, 1, "sum");
        b.store(Value::i64(0), iv);
        b.store(Value::i64(0), sum);
        let hdr = b.create_block("hdr");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.br(hdr);
        b.set_insert_point(hdr);
        let i0 = b.load(IrType::I64, iv);
        let c = b.cmp(CmpPred::Slt, i0, Value::i64(19));
        b.cond_br(c, body, exit);
        b.set_insert_point(body);
        let i1 = b.load(IrType::I64, iv);
        let p = b.gep(arr, i1, 8);
        let v = b.load(IrType::I64, p);
        let v2 = b.bin(BinOpKind::Add, v, Value::i64(5));
        b.store(v2, p);
        let s0 = b.load(IrType::I64, sum);
        let s1 = b.bin(BinOpKind::Add, s0, v2);
        b.store(s1, sum);
        let i2 = b.bin(BinOpKind::Add, i1, Value::i64(1));
        b.store(i2, iv);
        b.br_with_md(
            hdr,
            omplt_ir::LoopMetadata {
                vectorize_enable: true,
                ..Default::default()
            },
        );
        b.set_insert_point(exit);
        let r = b.load(IrType::I64, sum);
        b.ret(Some(r));
    }
    m.add_function(f);
    let code = compile_module_with(&m, 4).expect("compiles");
    assert!(
        code.funcs[0]
            .ops
            .iter()
            .any(|op| matches!(op, Op::VLoad { .. })),
        "sample must actually widen"
    );
    assert!(
        omplt_vm::verify_module(&code).is_empty(),
        "uncorrupted vector bytecode must verify"
    );
    code
}

#[test]
fn vector_lane_count_golden() {
    let mut code = vector_sample();
    let f = &mut code.funcs[0];
    // Corruption: a lane count outside 2..=MAX_LANES. The op also no longer
    // matches its destination's static width, so both complaints fire.
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::VLoad { .. }))
        .expect("sample has a vload");
    let dst = match &mut f.ops[at] {
        Op::VLoad { dst, w, .. } => {
            *w = 9;
            *dst
        }
        _ => unreachable!(),
    };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![
            format!("@main: op {at}: bad lane count 9 (must be 2..=8)"),
            format!("@main: op {at}: vload destination v{dst} has width 4 but op uses 9 lanes"),
        ]
    );
}

#[test]
fn vector_width_mismatch_golden() {
    let mut code = vector_sample();
    let f = &mut code.funcs[0];
    // Corruption: a legal lane count that disagrees with the register's
    // declared width — lane counts are part of the type, not a runtime knob.
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::VLoad { .. }))
        .expect("sample has a vload");
    let dst = match &mut f.ops[at] {
        Op::VLoad { dst, w, .. } => {
            *w = 2;
            *dst
        }
        _ => unreachable!(),
    };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!(
            "@main: op {at}: vload destination v{dst} has width 4 but op uses 2 lanes"
        )]
    );
}

#[test]
fn undefined_vector_register_golden() {
    let mut code = vector_sample();
    let f = &mut code.funcs[0];
    // Corruption: a vbin operand is redirected to a brand-new vector
    // register nothing ever writes — the vector file shares the scalar
    // file's definite-init dataflow.
    let fresh = f.num_vregs;
    f.num_vregs += 1;
    f.vreg_class.push(RegClass::Int);
    f.vreg_width.push(4);
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::VBin { .. }))
        .expect("sample has a vbin");
    if let Op::VBin { rhs, .. } = &mut f.ops[at] {
        *rhs = fresh;
    }
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!(
            "@main: op {at}: read of vector register v{fresh} before any write"
        )]
    );
}

#[test]
fn vector_lane_out_of_range_golden() {
    let mut code = vector_sample();
    let f = &mut code.funcs[0];
    // Corruption: the reduction becomes a single-lane extract past the end
    // of its source register. `vreduce` and `vextract` share dst/src shape
    // (scalar dst, vector src, same class), so the only complaint is the
    // lane bound.
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::VReduce { .. }))
        .expect("sample has a vreduce");
    let (dst, src) = match f.ops[at] {
        Op::VReduce { dst, src, .. } => (dst, src),
        _ => unreachable!(),
    };
    f.ops[at] = Op::VExtract { dst, src, lane: 7 };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!(
            "@main: op {at}: lane 7 out of range for v{src} of width 4"
        )]
    );
}

#[test]
fn vector_class_mismatch_golden() {
    let mut code = vector_sample();
    let f = &mut code.funcs[0];
    // Corruption: flip a vload's element type to f64 while its destination
    // stays in the int vector class.
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::VLoad { .. }))
        .expect("sample has a vload");
    let dst = match &mut f.ops[at] {
        Op::VLoad { dst, ty, .. } => {
            *ty = IrType::F64;
            *dst
        }
        _ => unreachable!(),
    };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!(
            "@main: op {at}: type mismatch: vector load of double into int v{dst}"
        )]
    );
}
