//! Golden-diagnostic tests for the bytecode verifier: one per rejection
//! class (undefined register, out-of-bounds jump, type mismatch).
//!
//! Each test lowers a small, *valid* IR function through the real bytecode
//! compiler, asserts the verifier accepts it, then hand-corrupts one op and
//! asserts the verifier rejects it with the exact rendered diagnostic —
//! the strings here are the contract `--verify-each` users see.

use omplt_ir::{BinOpKind, Function, IrBuilder, IrType, Module, Value};
use omplt_vm::{compile_module, verify_function, Op, RegClass, VmModule};

/// A small straight-line function exercising alloca/store/load/arith/ret.
/// The add's result is returned so the peephole pass cannot delete it.
fn sample() -> (Module, VmModule) {
    let mut m = Module::new();
    let mut f = Function::new("main", vec![], IrType::I64);
    {
        let mut b = IrBuilder::new(&mut f);
        let p = b.alloca(IrType::I64, 4, "buf");
        b.store(Value::i64(7), p);
        let v = b.load(IrType::I64, p);
        let w = b.bin(BinOpKind::Add, v, Value::i64(35));
        b.store(w, p);
        b.ret(Some(w));
    }
    m.add_function(f);
    let code = compile_module(&m).expect("compiles");
    assert!(
        omplt_vm::verify_module(&code).is_empty(),
        "uncorrupted bytecode must verify"
    );
    (m, code)
}

/// Renders every error for one corrupted function.
fn rendered(code: &VmModule) -> Vec<String> {
    verify_function(&code.funcs[0], code.funcs.len())
        .iter()
        .map(|e| e.to_string())
        .collect()
}

#[test]
fn undefined_register_golden() {
    let (_m, mut code) = sample();
    let f = &mut code.funcs[0];
    // Corruption: make some op read a brand-new register nothing ever
    // writes. Appending a register keeps every other op's semantics intact,
    // so the *only* complaint must be the definite-init violation.
    let fresh = f.num_regs;
    f.num_regs += 1;
    f.reg_class.push(RegClass::Int);
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::Bin { .. }))
        .expect("sample has an add");
    if let Op::Bin { rhs, .. } = &mut f.ops[at] {
        *rhs = fresh;
    }
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!(
            "@main: op {at}: read of register r{fresh} before any write"
        )]
    );
}

#[test]
fn jump_out_of_bounds_golden() {
    let (_m, mut code) = sample();
    let f = &mut code.funcs[0];
    // Corruption: retarget the final Ret into a wild Jmp past the end.
    let at = f.ops.len() - 1;
    assert!(matches!(f.ops[at], Op::Ret { .. }));
    f.ops[at] = Op::Jmp { target: 9999 };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![format!("@main: op {at}: jump target 9999 out of bounds")]
    );
}

#[test]
fn type_mismatch_golden() {
    let (_m, mut code) = sample();
    let f = &mut code.funcs[0];
    // Corruption: flip the add's type to f64 while its registers stay in
    // the int class — an int-register float operation.
    let at = f
        .ops
        .iter()
        .position(|op| matches!(op, Op::Bin { .. }))
        .expect("sample has an add");
    let (dst, lhs, rhs) = match f.ops[at] {
        Op::Bin { dst, lhs, rhs, .. } => (dst, lhs, rhs),
        _ => unreachable!(),
    };
    f.ops[at] = Op::Bin {
        op: BinOpKind::FAdd,
        ty: IrType::F64,
        dst,
        lhs,
        rhs,
    };
    let errs = rendered(&code);
    assert_eq!(
        errs,
        vec![
            format!("@main: op {at}: type mismatch: float op fadd with int destination r{dst}"),
            format!("@main: op {at}: type mismatch: float op fadd with int lhs r{lhs}"),
            format!("@main: op {at}: type mismatch: float op fadd with int rhs r{rhs}"),
        ]
    );
}
