//! # omplt-vm
//!
//! A register-based bytecode execution backend for `omplt-ir`, selected with
//! `ompltc --backend=vm` (the tree-walking interpreter in `omplt-interp`
//! stays the default and serves as the semantic oracle).
//!
//! Three layers:
//!
//! * [`compile`] — lowers a verified IR [`omplt_ir::Module`] to flat
//!   bytecode: blocks are linearized in reverse-postorder, SSA values get
//!   virtual registers (phis become edge copies, hot scalar `alloca` slots
//!   are promoted to registers mem2reg-style), a peephole pass
//!   ([`peephole`]) propagates copies, deletes dead ops, and fuses
//!   compare/branch pairs, and a linear-scan pass compacts the register
//!   file.
//! * [`verify`] — a load-time bytecode verifier (register def-before-use,
//!   in-bounds jump targets, type-class-consistent operands) that runs on
//!   every compiled module and again under `--verify-each`.
//! * [`vm`] — the execution engine: a `pc` loop over a dense `#[repr(u8)]`
//!   opcode `match`, unsafe-free, sharing the interpreter's [`omplt_interp::Memory`]
//!   and — via the [`omplt_interp::Engine`] trait — its entire OpenMP runtime
//!   (`__kmpc_fork_call` thread teams, every worksharing schedule, barriers),
//!   so tile/unroll/`nowait` behave identically on both backends.
//!
//! Arithmetic reuses the interpreter's `exec_bin`/`exec_cmp`/`exec_cast`
//! helpers, so results are bit-identical by construction and differential
//! tests can compare observable memory state across backends exactly.

pub mod compile;
pub mod ops;
pub mod peephole;
pub mod regalloc;
pub mod serde;
mod vectorize;
pub mod verify;
pub mod vm;

pub use compile::{compile_module, compile_module_with, CompileError};
pub use ops::{
    disasm, CallTarget, Op, PoolConst, Reg, RegClass, VReg, VecVal, VmFunction, VmModule, MAX_LANES,
};
pub use serde::{decode, encode, DecodeError};
pub use verify::{verify_function, verify_module, VerifyError};
pub use vm::VmEngine;
