//! Load-time bytecode verification.
//!
//! Compiled bytecode is checked before the first op executes (and again
//! under `--verify-each`, after the driver's IR-level passes): the dispatch
//! loop indexes registers, pools, and jump targets without bounds anxiety
//! *because* this pass already proved them in-bounds, every register is
//! written before it is read on every path, and operand register classes
//! match each opcode's contract.
//!
//! Three phases, mirroring how a JVM-style verifier is layered:
//!
//! 1. **Structure** — indices in range, jump targets land on block starts,
//!    every block ends in exactly one terminator. Later phases assume this,
//!    so structural errors short-circuit.
//! 2. **Types** — coarse [`RegClass`] consistency per op (a float add reads
//!    float registers, a load's address register is a pointer, …).
//! 3. **Definite initialization** — forward must-be-defined dataflow over
//!    the block graph: a register read before any write on some path is an
//!    error, not a zero.

use crate::ops::{CallTarget, Op, RegClass, VmFunction, VmModule, MAX_LANES};
use omplt_ir::IrType;

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Op index the error is anchored to.
    pub at: usize,
    /// What is wrong.
    pub what: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}: op {}: {}", self.func, self.at, self.what)
    }
}

/// Verifies every function; returns all errors found.
pub fn verify_module(m: &VmModule) -> Vec<VerifyError> {
    if omplt_trace::active() {
        omplt_trace::count("vm.verify.functions", m.funcs.len() as u64);
    }
    let mut errs = Vec::new();
    if omplt_fault::fire("vm.verify.reject") {
        errs.push(VerifyError {
            func: m
                .funcs
                .first()
                .map_or_else(|| "<empty>".to_string(), |f| f.name.clone()),
            at: 0,
            what: "injected verification failure (fault site 'vm.verify.reject')".to_string(),
        });
    }
    for f in &m.funcs {
        errs.extend(verify_function(f, m.funcs.len()));
    }
    errs
}

/// Verifies one function. `num_funcs` bounds [`CallTarget::Bytecode`]
/// indices (module-level information the function cannot carry itself).
pub fn verify_function(f: &VmFunction, num_funcs: usize) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    structural(f, num_funcs, &mut errs);
    if !errs.is_empty() {
        // Type and dataflow phases index tables this phase just rejected.
        return errs;
    }
    types(f, &mut errs);
    definite_init(f, &mut errs);
    errs
}

fn err(errs: &mut Vec<VerifyError>, f: &VmFunction, at: usize, what: String) {
    errs.push(VerifyError {
        func: f.name.clone(),
        at,
        what,
    });
}

fn structural(f: &VmFunction, num_funcs: usize, errs: &mut Vec<VerifyError>) {
    if f.ops.is_empty() {
        err(errs, f, 0, "empty function body".to_string());
        return;
    }
    if f.reg_class.len() != f.num_regs as usize {
        err(
            errs,
            f,
            0,
            format!(
                "register class table has {} entries for {} registers",
                f.reg_class.len(),
                f.num_regs
            ),
        );
        return;
    }
    if f.vreg_class.len() != f.num_vregs as usize || f.vreg_width.len() != f.num_vregs as usize {
        err(
            errs,
            f,
            0,
            format!(
                "vector register tables have {}/{} entries for {} vector registers",
                f.vreg_class.len(),
                f.vreg_width.len(),
                f.num_vregs
            ),
        );
        return;
    }
    if f.block_starts.first() != Some(&0) {
        err(errs, f, 0, "first block does not start at op 0".to_string());
    }
    if !f.block_starts.windows(2).all(|w| w[0] < w[1]) {
        err(
            errs,
            f,
            0,
            "block starts are not strictly increasing".to_string(),
        );
    }
    if let Some(&last) = f.block_starts.last() {
        if last as usize >= f.ops.len() {
            err(errs, f, 0, format!("block start {last} out of bounds"));
        }
    }
    if !errs.is_empty() {
        return;
    }
    for &p in &f.params {
        if p >= f.num_regs {
            err(errs, f, 0, format!("parameter register r{p} out of range"));
        }
    }
    for (pc, op) in f.ops.iter().enumerate() {
        let check_reg = |errs: &mut Vec<VerifyError>, r: u16| {
            if r >= f.num_regs {
                err(errs, f, pc, format!("register r{r} out of range"));
            }
        };
        if let Some(d) = op.def() {
            check_reg(errs, d);
        }
        let check_vreg = |errs: &mut Vec<VerifyError>, v: u16| {
            if v >= f.num_vregs {
                err(errs, f, pc, format!("vector register v{v} out of range"));
            }
        };
        if let Some(v) = op.vdef() {
            check_vreg(errs, v);
        }
        op.for_each_vuse(|v| check_vreg(errs, v));
        // Argument-pool ranges are validated on the Call op itself; reading
        // the pool for use-collection is guarded below.
        match *op {
            Op::Const { idx, .. } if idx as usize >= f.consts.len() => {
                err(errs, f, pc, format!("constant index {idx} out of range"));
            }
            Op::Call {
                target,
                args_at,
                nargs,
                ..
            } => {
                if target as usize >= f.call_targets.len() {
                    err(errs, f, pc, format!("call target {target} out of range"));
                } else if let CallTarget::Bytecode(i) = f.call_targets[target as usize] {
                    if i as usize >= num_funcs {
                        err(errs, f, pc, format!("call to nonexistent function #{i}"));
                    }
                }
                let lo = args_at as usize;
                let hi = lo + nargs as usize;
                if hi > f.call_args.len() {
                    err(
                        errs,
                        f,
                        pc,
                        format!("call arguments {lo}..{hi} out of range"),
                    );
                } else {
                    for &r in &f.call_args[lo..hi] {
                        check_reg(errs, r);
                    }
                }
            }
            Op::Jmp { target } | Op::BinJmp { target, .. } => check_jump(f, pc, target, errs),
            Op::Br { then_t, else_t, .. } | Op::CmpBr { then_t, else_t, .. } => {
                check_jump(f, pc, then_t, errs);
                check_jump(f, pc, else_t, errs);
            }
            _ => {}
        }
        match *op {
            Op::Call { .. } => {} // argument registers checked above
            other => other.for_each_use(&[], |r| {
                if r >= f.num_regs {
                    err(errs, f, pc, format!("register r{r} out of range"));
                }
            }),
        }
    }
    if !errs.is_empty() {
        return;
    }
    // Every block must end in a terminator, and terminators may appear
    // nowhere else (the dataflow phase walks blocks on that assumption).
    for (b, &s) in f.block_starts.iter().enumerate() {
        let range = f.block_range(s);
        let last = range.end - 1;
        if !f.ops[last].is_terminator() {
            err(
                errs,
                f,
                last,
                format!("block {b} does not end in a terminator"),
            );
        }
        for pc in range.start..last {
            if f.ops[pc].is_terminator() {
                err(
                    errs,
                    f,
                    pc,
                    format!("terminator in the middle of block {b}"),
                );
            }
        }
    }
}

fn check_jump(f: &VmFunction, pc: usize, target: u32, errs: &mut Vec<VerifyError>) {
    if target as usize >= f.ops.len() {
        err(errs, f, pc, format!("jump target {target} out of bounds"));
    } else if f.block_starts.binary_search(&target).is_err() {
        err(
            errs,
            f,
            pc,
            format!("jump target {target} is not a block start"),
        );
    }
}

fn class_name(c: RegClass) -> &'static str {
    match c {
        RegClass::Int => "int",
        RegClass::Float => "float",
        RegClass::Ptr => "ptr",
    }
}

fn types(f: &VmFunction, errs: &mut Vec<VerifyError>) {
    let cls = |r: u16| f.reg_class[r as usize];
    let vcls = |v: u16| f.vreg_class[v as usize];
    let mismatch = |errs: &mut Vec<VerifyError>, pc: usize, what: String| {
        err(errs, f, pc, format!("type mismatch: {what}"));
    };
    // Lane-count discipline: every vector op carries the width it operates
    // at, and that width must match the static width of every vector
    // register it touches — lane counts are part of the type, not a runtime
    // property.
    let lanes = |errs: &mut Vec<VerifyError>, pc: usize, w: u8| {
        if !(2..=MAX_LANES as u8).contains(&w) {
            err(
                errs,
                f,
                pc,
                format!("bad lane count {w} (must be 2..={MAX_LANES})"),
            );
        }
    };
    let vwidth = |errs: &mut Vec<VerifyError>, pc: usize, role: &str, v: u16, w: u8| {
        let have = f.vreg_width[v as usize];
        if have != w {
            err(
                errs,
                f,
                pc,
                format!("{role} v{v} has width {have} but op uses {w} lanes"),
            );
        }
    };
    for (pc, op) in f.ops.iter().enumerate() {
        match *op {
            Op::Const { dst, idx } => {
                let want = f.consts[idx as usize].class();
                if cls(dst) != want {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "constant is {} but destination r{dst} is {}",
                            class_name(want),
                            class_name(cls(dst))
                        ),
                    );
                }
            }
            Op::Mov { dst, src } => {
                if cls(dst) != cls(src) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "mov from {} r{src} to {} r{dst}",
                            class_name(cls(src)),
                            class_name(cls(dst))
                        ),
                    );
                }
            }
            Op::Alloca { dst, .. } => {
                if cls(dst) != RegClass::Ptr {
                    mismatch(errs, pc, format!("alloca destination r{dst} is not ptr"));
                }
            }
            Op::Load { dst, addr, ty } => {
                if ty == IrType::Void {
                    mismatch(errs, pc, "load of void".to_string());
                } else if cls(dst) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!("load of {ty} into {} r{dst}", class_name(cls(dst))),
                    );
                }
                if cls(addr) != RegClass::Ptr {
                    mismatch(errs, pc, format!("load address r{addr} is not ptr"));
                }
            }
            Op::Store { src, addr, ty } => {
                if ty == IrType::Void {
                    mismatch(errs, pc, "store of void".to_string());
                } else if cls(src) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!("store of {ty} from {} r{src}", class_name(cls(src))),
                    );
                }
                if cls(addr) != RegClass::Ptr {
                    mismatch(errs, pc, format!("store address r{addr} is not ptr"));
                }
            }
            Op::Gep {
                dst, base, index, ..
            } => {
                if cls(dst) != RegClass::Ptr {
                    mismatch(errs, pc, format!("gep destination r{dst} is not ptr"));
                }
                if cls(base) != RegClass::Ptr {
                    mismatch(errs, pc, format!("gep base r{base} is not ptr"));
                }
                if cls(index) != RegClass::Int {
                    mismatch(errs, pc, format!("gep index r{index} is not int"));
                }
            }
            Op::Bin {
                op: bop,
                ty,
                dst,
                lhs,
                rhs,
            }
            | Op::BinJmp {
                op: bop,
                ty,
                dst,
                lhs,
                rhs,
                ..
            } => {
                if bop.is_float() {
                    if !ty.is_float() {
                        mismatch(
                            errs,
                            pc,
                            format!("float op {} at type {ty}", bop.mnemonic()),
                        );
                    }
                    for (role, r) in [("destination", dst), ("lhs", lhs), ("rhs", rhs)] {
                        if cls(r) != RegClass::Float {
                            mismatch(
                                errs,
                                pc,
                                format!(
                                    "float op {} with {} {role} r{r}",
                                    bop.mnemonic(),
                                    class_name(cls(r))
                                ),
                            );
                        }
                    }
                } else if ty == IrType::Ptr {
                    // Pointer arithmetic: ptr ± offset.
                    if cls(dst) != RegClass::Ptr || cls(lhs) != RegClass::Ptr {
                        mismatch(
                            errs,
                            pc,
                            "pointer arithmetic on non-ptr registers".to_string(),
                        );
                    }
                    if cls(rhs) == RegClass::Float {
                        mismatch(errs, pc, "pointer arithmetic with float offset".to_string());
                    }
                } else {
                    if ty.is_float() {
                        mismatch(
                            errs,
                            pc,
                            format!("integer op {} at type {ty}", bop.mnemonic()),
                        );
                    }
                    for (role, r) in [("destination", dst), ("lhs", lhs), ("rhs", rhs)] {
                        if cls(r) != RegClass::Int {
                            mismatch(
                                errs,
                                pc,
                                format!(
                                    "integer op {} with {} {role} r{r}",
                                    bop.mnemonic(),
                                    class_name(cls(r))
                                ),
                            );
                        }
                    }
                }
            }
            Op::Cmp {
                pred,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                if cls(dst) != RegClass::Int {
                    mismatch(errs, pc, format!("compare result r{dst} is not int"));
                }
                let want = if pred.is_float() {
                    if !ty.is_float() {
                        mismatch(errs, pc, format!("float compare at type {ty}"));
                    }
                    RegClass::Float
                } else if ty == IrType::Ptr {
                    RegClass::Ptr
                } else {
                    if ty.is_float() {
                        mismatch(errs, pc, format!("integer compare at type {ty}"));
                    }
                    RegClass::Int
                };
                for (role, r) in [("lhs", lhs), ("rhs", rhs)] {
                    if cls(r) != want {
                        mismatch(
                            errs,
                            pc,
                            format!(
                                "compare {role} r{r} is {} (expected {})",
                                class_name(cls(r)),
                                class_name(want)
                            ),
                        );
                    }
                }
            }
            Op::Cast {
                from, to, dst, src, ..
            } => {
                if cls(src) != RegClass::of(from) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "cast source r{src} is {} but operand type is {from}",
                            class_name(cls(src))
                        ),
                    );
                }
                if cls(dst) != RegClass::of(to) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "cast destination r{dst} is {} but result type is {to}",
                            class_name(cls(dst))
                        ),
                    );
                }
            }
            Op::Select {
                dst,
                cond,
                t,
                f: fv,
            } => {
                if cls(cond) != RegClass::Int {
                    mismatch(errs, pc, format!("select condition r{cond} is not int"));
                }
                if cls(t) != cls(dst) || cls(fv) != cls(dst) {
                    mismatch(
                        errs,
                        pc,
                        "select arms disagree with destination".to_string(),
                    );
                }
            }
            Op::Call { ret, dst, .. } => match (ret, dst) {
                (IrType::Void, Some(d)) => {
                    mismatch(errs, pc, format!("void call writes r{d}"));
                }
                (ret, Some(d)) if cls(d) != RegClass::of(ret) => {
                    mismatch(
                        errs,
                        pc,
                        format!("call returning {ret} into {} r{d}", class_name(cls(d))),
                    );
                }
                _ => {}
            },
            Op::Br { cond, .. } => {
                if cls(cond) != RegClass::Int {
                    mismatch(errs, pc, format!("branch condition r{cond} is not int"));
                }
            }
            Op::CmpBr {
                pred, ty, lhs, rhs, ..
            } => {
                let want = if pred.is_float() {
                    if !ty.is_float() {
                        mismatch(errs, pc, format!("float compare at type {ty}"));
                    }
                    RegClass::Float
                } else if ty == IrType::Ptr {
                    RegClass::Ptr
                } else {
                    if ty.is_float() {
                        mismatch(errs, pc, format!("integer compare at type {ty}"));
                    }
                    RegClass::Int
                };
                for (role, r) in [("lhs", lhs), ("rhs", rhs)] {
                    if cls(r) != want {
                        mismatch(
                            errs,
                            pc,
                            format!(
                                "compare {role} r{r} is {} (expected {})",
                                class_name(cls(r)),
                                class_name(want)
                            ),
                        );
                    }
                }
            }
            Op::Ret { src: Some(r) } => {
                if f.ret != IrType::Void && cls(r) != RegClass::of(f.ret) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "return of {} r{r} from function returning {}",
                            class_name(cls(r)),
                            f.ret
                        ),
                    );
                }
            }
            Op::Ret { src: None } | Op::Jmp { .. } | Op::Unreachable => {}
            Op::VMov { dst, src, w } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "vmov destination", dst, w);
                vwidth(errs, pc, "vmov source", src, w);
                if vcls(dst) != vcls(src) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "vmov from {} v{src} to {} v{dst}",
                            class_name(vcls(src)),
                            class_name(vcls(dst))
                        ),
                    );
                }
            }
            Op::VIota { dst, base, w } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "viota destination", dst, w);
                if vcls(dst) != RegClass::Int {
                    mismatch(errs, pc, format!("viota destination v{dst} is not int"));
                }
                if cls(base) != RegClass::Int {
                    mismatch(errs, pc, format!("viota base r{base} is not int"));
                }
            }
            Op::VBroadcast { dst, src, w } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "broadcast destination", dst, w);
                if vcls(dst) != cls(src) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "broadcast of {} r{src} into {} v{dst}",
                            class_name(cls(src)),
                            class_name(vcls(dst))
                        ),
                    );
                }
            }
            Op::VExtract { dst, src, lane } => {
                let have = f.vreg_width[src as usize];
                if lane >= have {
                    err(
                        errs,
                        f,
                        pc,
                        format!("lane {lane} out of range for v{src} of width {have}"),
                    );
                }
                if cls(dst) != vcls(src) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "extract of {} v{src} into {} r{dst}",
                            class_name(vcls(src)),
                            class_name(cls(dst))
                        ),
                    );
                }
            }
            Op::VLoad { dst, addr, ty, w } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "vload destination", dst, w);
                if ty == IrType::Void {
                    mismatch(errs, pc, "vector load of void".to_string());
                } else if vcls(dst) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!("vector load of {ty} into {} v{dst}", class_name(vcls(dst))),
                    );
                }
                if cls(addr) != RegClass::Ptr {
                    mismatch(errs, pc, format!("vector load address r{addr} is not ptr"));
                }
            }
            Op::VStore { src, addr, ty, w } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "vstore source", src, w);
                if ty == IrType::Void {
                    mismatch(errs, pc, "vector store of void".to_string());
                } else if vcls(src) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!("vector store of {ty} from {} v{src}", class_name(vcls(src))),
                    );
                }
                if cls(addr) != RegClass::Ptr {
                    mismatch(errs, pc, format!("vector store address r{addr} is not ptr"));
                }
            }
            Op::VGather {
                dst,
                base,
                idx,
                ty,
                w,
                ..
            } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "gather destination", dst, w);
                vwidth(errs, pc, "gather index", idx, w);
                if ty == IrType::Void {
                    mismatch(errs, pc, "vector gather of void".to_string());
                } else if vcls(dst) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "vector gather of {ty} into {} v{dst}",
                            class_name(vcls(dst))
                        ),
                    );
                }
                if cls(base) != RegClass::Ptr {
                    mismatch(errs, pc, format!("gather base r{base} is not ptr"));
                }
                if vcls(idx) != RegClass::Int {
                    mismatch(errs, pc, format!("gather index v{idx} is not int"));
                }
            }
            Op::VScatter {
                src,
                base,
                idx,
                ty,
                w,
                ..
            } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "scatter source", src, w);
                vwidth(errs, pc, "scatter index", idx, w);
                if ty == IrType::Void {
                    mismatch(errs, pc, "vector scatter of void".to_string());
                } else if vcls(src) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "vector scatter of {ty} from {} v{src}",
                            class_name(vcls(src))
                        ),
                    );
                }
                if cls(base) != RegClass::Ptr {
                    mismatch(errs, pc, format!("scatter base r{base} is not ptr"));
                }
                if vcls(idx) != RegClass::Int {
                    mismatch(errs, pc, format!("scatter index v{idx} is not int"));
                }
            }
            Op::VBin {
                op: bop,
                ty,
                dst,
                lhs,
                rhs,
                w,
            } => {
                lanes(errs, pc, w);
                for (role, v) in [("destination", dst), ("lhs", lhs), ("rhs", rhs)] {
                    vwidth(errs, pc, &format!("vector op {role}"), v, w);
                }
                if ty == IrType::Ptr {
                    mismatch(errs, pc, "vector pointer arithmetic".to_string());
                } else if bop.is_float() {
                    if !ty.is_float() {
                        mismatch(
                            errs,
                            pc,
                            format!("float vector op {} at type {ty}", bop.mnemonic()),
                        );
                    }
                    for (role, v) in [("destination", dst), ("lhs", lhs), ("rhs", rhs)] {
                        if vcls(v) != RegClass::Float {
                            mismatch(
                                errs,
                                pc,
                                format!(
                                    "float vector op {} with {} {role} v{v}",
                                    bop.mnemonic(),
                                    class_name(vcls(v))
                                ),
                            );
                        }
                    }
                } else {
                    if ty.is_float() {
                        mismatch(
                            errs,
                            pc,
                            format!("integer vector op {} at type {ty}", bop.mnemonic()),
                        );
                    }
                    for (role, v) in [("destination", dst), ("lhs", lhs), ("rhs", rhs)] {
                        if vcls(v) != RegClass::Int {
                            mismatch(
                                errs,
                                pc,
                                format!(
                                    "integer vector op {} with {} {role} v{v}",
                                    bop.mnemonic(),
                                    class_name(vcls(v))
                                ),
                            );
                        }
                    }
                }
            }
            Op::VCast {
                from,
                to,
                dst,
                src,
                w,
                ..
            } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "vector cast destination", dst, w);
                vwidth(errs, pc, "vector cast source", src, w);
                if vcls(src) != RegClass::of(from) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "vector cast source v{src} is {} but operand type is {from}",
                            class_name(vcls(src))
                        ),
                    );
                }
                if vcls(dst) != RegClass::of(to) {
                    mismatch(
                        errs,
                        pc,
                        format!(
                            "vector cast destination v{dst} is {} but result type is {to}",
                            class_name(vcls(dst))
                        ),
                    );
                }
            }
            Op::VReduce {
                op: bop,
                ty,
                dst,
                src,
                w,
            } => {
                lanes(errs, pc, w);
                vwidth(errs, pc, "reduce source", src, w);
                if ty == IrType::Ptr {
                    mismatch(errs, pc, "vector reduction of ptr".to_string());
                } else if bop.is_float() != ty.is_float() {
                    mismatch(
                        errs,
                        pc,
                        format!("reduce op {} at type {ty}", bop.mnemonic()),
                    );
                }
                if vcls(src) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!("reduce of {ty} from {} v{src}", class_name(vcls(src))),
                    );
                }
                if cls(dst) != RegClass::of(ty) {
                    mismatch(
                        errs,
                        pc,
                        format!("reduce of {ty} into {} r{dst}", class_name(cls(dst))),
                    );
                }
            }
            Op::VEpi { src } => {
                if cls(src) != RegClass::Int {
                    mismatch(errs, pc, format!("epilogue count r{src} is not int"));
                }
            }
        }
    }
}

/// Forward "definitely assigned" dataflow: a register may only be read if
/// every path from entry wrote it first.
fn definite_init(f: &VmFunction, errs: &mut Vec<VerifyError>) {
    // One dataflow domain covers both files: scalar register r maps to bit
    // r, vector register v to bit num_regs + v.
    let n = f.num_regs as usize;
    let words = (n + f.num_vregs as usize).div_ceil(64).max(1);
    let nb = f.block_starts.len();
    let block_of = |off: u32| -> usize {
        match f.block_starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (b, &s) in f.block_starts.iter().enumerate() {
        let range = f.block_range(s);
        match f.ops[range.end - 1] {
            Op::Jmp { target } | Op::BinJmp { target, .. } => preds[block_of(target)].push(b),
            Op::Br { then_t, else_t, .. } | Op::CmpBr { then_t, else_t, .. } => {
                preds[block_of(then_t)].push(b);
                preds[block_of(else_t)].push(b);
            }
            _ => {}
        }
    }

    let top = vec![u64::MAX; words];
    let mut entry_set = vec![0u64; words];
    for &p in &f.params {
        entry_set[p as usize / 64] |= 1 << (p as usize % 64);
    }
    // in[b] = (params if entry) ∩ over preds out[p]; out[b] = in[b] ∪ defs.
    let mut in_set: Vec<Vec<u64>> = vec![top.clone(); nb];
    in_set[0] = entry_set.clone();
    let mut out_set: Vec<Vec<u64>> = vec![top.clone(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            // Entry starts with exactly the parameters (a backedge into the
            // entry can only add registers already defined on every path, so
            // joining it would be a no-op). Unreachable blocks keep ⊤ and
            // are skipped by the report pass.
            let inn = if b == 0 {
                entry_set.clone()
            } else if preds[b].is_empty() {
                top.clone()
            } else {
                let mut inn = top.clone();
                for &p in &preds[b] {
                    for (w, &o) in inn.iter_mut().zip(&out_set[p]) {
                        *w &= o;
                    }
                }
                inn
            };
            let mut out = inn.clone();
            let range = f.block_range(f.block_starts[b]);
            for op in &f.ops[range.clone()] {
                if let Some(d) = op.def() {
                    out[d as usize / 64] |= 1 << (d as usize % 64);
                }
                if let Some(v) = op.vdef() {
                    let bit = n + v as usize;
                    out[bit / 64] |= 1 << (bit % 64);
                }
            }
            if inn != in_set[b] {
                in_set[b] = inn;
                changed = true;
            }
            if out != out_set[b] {
                out_set[b] = out;
                changed = true;
            }
        }
    }

    // Report: re-walk each reachable block with its settled in-set.
    for (b, &s) in f.block_starts.iter().enumerate() {
        if b != 0 && preds[b].is_empty() {
            continue; // unreachable code is not checked
        }
        let mut defined = in_set[b].clone();
        let range = f.block_range(s);
        for pc in range {
            let op = f.ops[pc];
            op.for_each_use(&f.call_args, |r| {
                if defined[r as usize / 64] & (1 << (r as usize % 64)) == 0 {
                    err(
                        errs,
                        f,
                        pc,
                        format!("read of register r{r} before any write"),
                    );
                }
            });
            op.for_each_vuse(|v| {
                let bit = n + v as usize;
                if defined[bit / 64] & (1 << (bit % 64)) == 0 {
                    err(
                        errs,
                        f,
                        pc,
                        format!("read of vector register v{v} before any write"),
                    );
                }
            });
            if let Some(d) = op.def() {
                defined[d as usize / 64] |= 1 << (d as usize % 64);
            }
            if let Some(v) = op.vdef() {
                let bit = n + v as usize;
                defined[bit / 64] |= 1 << (bit % 64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::PoolConst;
    use omplt_interp::RtVal;

    fn tiny() -> VmFunction {
        VmFunction {
            name: "t".into(),
            params: vec![],
            num_regs: 2,
            reg_class: vec![RegClass::Int, RegClass::Int],
            num_vregs: 0,
            vreg_class: vec![],
            vreg_width: vec![],
            ops: vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Mov { dst: 1, src: 0 },
                Op::Ret { src: Some(1) },
            ],
            consts: vec![PoolConst::Val(RtVal::I(7))],
            call_args: vec![],
            call_targets: vec![],
            block_starts: vec![0],
            ret: IrType::I64,
        }
    }

    #[test]
    fn clean_function_verifies() {
        assert!(verify_function(&tiny(), 1).is_empty());
    }

    #[test]
    fn undefined_register_is_reported() {
        let mut f = tiny();
        f.ops[1] = Op::Mov { dst: 1, src: 1 }; // r1 read before any write
        let errs = verify_function(&f, 1);
        assert_eq!(errs.len(), 1);
        assert!(errs[0]
            .what
            .contains("read of register r1 before any write"));
    }

    #[test]
    fn out_of_bounds_jump_is_reported() {
        let mut f = tiny();
        f.ops[2] = Op::Jmp { target: 99 };
        let errs = verify_function(&f, 1);
        assert!(errs
            .iter()
            .any(|e| e.what.contains("jump target 99 out of bounds")));
    }

    #[test]
    fn class_mismatch_is_reported() {
        let mut f = tiny();
        f.reg_class[1] = RegClass::Float;
        let errs = verify_function(&f, 1);
        assert!(errs.iter().any(|e| e.what.contains("type mismatch")));
    }

    fn vtiny() -> VmFunction {
        VmFunction {
            name: "v".into(),
            params: vec![],
            num_regs: 2,
            reg_class: vec![RegClass::Int, RegClass::Int],
            num_vregs: 2,
            vreg_class: vec![RegClass::Int, RegClass::Int],
            vreg_width: vec![4, 4],
            ops: vec![
                Op::Const { dst: 0, idx: 0 },
                Op::VBroadcast {
                    dst: 0,
                    src: 0,
                    w: 4,
                },
                Op::VMov {
                    dst: 1,
                    src: 0,
                    w: 4,
                },
                Op::VExtract {
                    dst: 1,
                    src: 1,
                    lane: 3,
                },
                Op::Ret { src: Some(1) },
            ],
            consts: vec![PoolConst::Val(RtVal::I(7))],
            call_args: vec![],
            call_targets: vec![],
            block_starts: vec![0],
            ret: IrType::I64,
        }
    }

    #[test]
    fn clean_vector_function_verifies() {
        assert!(verify_function(&vtiny(), 1).is_empty());
    }

    #[test]
    fn bad_lane_count_is_reported() {
        let mut f = vtiny();
        f.ops[1] = Op::VBroadcast {
            dst: 0,
            src: 0,
            w: 16,
        };
        let errs = verify_function(&f, 1);
        assert!(
            errs.iter().any(|e| e.what.contains("bad lane count 16")),
            "{errs:?}"
        );
    }

    #[test]
    fn lane_width_mismatch_is_reported() {
        let mut f = vtiny();
        f.ops[2] = Op::VMov {
            dst: 1,
            src: 0,
            w: 2,
        };
        let errs = verify_function(&f, 1);
        assert!(
            errs.iter()
                .any(|e| e.what.contains("has width 4 but op uses 2 lanes")),
            "{errs:?}"
        );
    }

    #[test]
    fn scalar_vector_class_mix_is_reported() {
        let mut f = vtiny();
        f.vreg_class[0] = RegClass::Float; // int broadcast into float vreg
        let errs = verify_function(&f, 1);
        assert!(
            errs.iter()
                .any(|e| e.what.contains("broadcast of int r0 into float v0")),
            "{errs:?}"
        );
    }

    #[test]
    fn uninitialized_vector_register_is_reported() {
        let mut f = vtiny();
        f.ops[1] = Op::VMov {
            dst: 0,
            src: 0,
            w: 4,
        }; // v0 read before any write
        let errs = verify_function(&f, 1);
        assert!(
            errs.iter().any(|e| e
                .what
                .contains("read of vector register v0 before any write")),
            "{errs:?}"
        );
    }

    #[test]
    fn vector_register_out_of_range_is_reported() {
        let mut f = vtiny();
        f.ops[2] = Op::VMov {
            dst: 9,
            src: 0,
            w: 4,
        };
        let errs = verify_function(&f, 1);
        assert!(
            errs.iter()
                .any(|e| e.what.contains("vector register v9 out of range")),
            "{errs:?}"
        );
    }

    #[test]
    fn diverging_paths_must_both_define() {
        // entry: br r0 ? L3 : L4 — only the then-path defines r1; the join
        // reads it.
        let f = VmFunction {
            name: "t".into(),
            params: vec![0],
            num_regs: 2,
            reg_class: vec![RegClass::Int, RegClass::Int],
            num_vregs: 0,
            vreg_class: vec![],
            vreg_width: vec![],
            ops: vec![
                Op::Br {
                    cond: 0,
                    then_t: 1,
                    else_t: 3,
                },
                Op::Const { dst: 1, idx: 0 },
                Op::Jmp { target: 3 },
                Op::Ret { src: Some(1) },
            ],
            consts: vec![PoolConst::Val(RtVal::I(7))],
            call_args: vec![],
            call_targets: vec![],
            block_starts: vec![0, 1, 3],
            ret: IrType::I64,
        };
        let errs = verify_function(&f, 1);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0]
            .what
            .contains("read of register r1 before any write"));
    }
}
