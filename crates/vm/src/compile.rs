//! IR → bytecode lowering.
//!
//! The interpreter's per-instruction overheads — `Option<RtVal>` frame slots,
//! operand re-`match`ing, recursive `value_type` queries, per-block phi
//! scans — are all paid at *compile* time here instead:
//!
//! * Blocks are linearized in reverse-postorder; branch targets become
//!   instruction offsets.
//! * Every SSA value gets a virtual register; phis are eliminated into edge
//!   copies (with parallel-copy temporaries on multi-phi edges, and critical
//!   edges from conditional branches split via trampoline blocks).
//! * Non-escaping scalar `alloca` slots — the locals C frontends emit for
//!   every variable — are promoted to registers (mem2reg-style), turning the
//!   hottest loads/stores into register moves.
//! * Distinct constants are loaded once in an entry prologue, not per use.
//! * A peephole pass ([`crate::peephole`]) then propagates copies, deletes
//!   dead ops, and fuses compare/branch pairs, and a linear-scan pass
//!   ([`crate::regalloc`]) compacts the register file.

use crate::ops::{CallTarget, Op, PoolConst, Reg, RegClass, VmFunction, VmModule};
use crate::peephole;
use crate::regalloc;
use crate::vectorize;
use omplt_interp::RtVal;
use omplt_ir::{BlockId, Function, Inst, InstId, IrType, Module, Terminator, Value};
use std::collections::{HashMap, HashSet};

/// Why a function could not be lowered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The function needs more than `u16::MAX` registers.
    TooManyRegs {
        /// Function name.
        func: String,
    },
    /// Some table exceeded its encoding width (op stream, constant pool,
    /// call-target table, allocation size, GEP element size).
    TooLarge {
        /// Function name.
        func: String,
        /// Which table overflowed.
        what: String,
    },
    /// Structurally invalid IR reached the lowerer (the IR verifier should
    /// have rejected it earlier).
    Malformed {
        /// Function name.
        func: String,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TooManyRegs { func } => {
                write!(f, "@{func}: register file exceeds 65535 registers")
            }
            CompileError::TooLarge { func, what } => {
                write!(f, "@{func}: {what} exceeds its encoding width")
            }
            CompileError::Malformed { func, what } => write!(f, "@{func}: malformed IR: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles every function of `m` to bytecode. Function order (and therefore
/// [`CallTarget::Bytecode`] indices) follows module order, and call
/// resolution uses the same precedence as the interpreter: module-defined
/// functions first, then runtime shims.
pub fn compile_module(m: &Module) -> Result<VmModule, CompileError> {
    compile_module_with(m, 0)
}

/// [`compile_module`] with the widening pass enabled: `vector_width >= 2`
/// converts eligible `simd`-annotated innermost loops to lane-parallel
/// vector ops at that width (clamped by `safelen`/`simdlen` and dependence
/// distances); `0` or `1` disables the pass entirely.
pub fn compile_module_with(m: &Module, vector_width: u8) -> Result<VmModule, CompileError> {
    let _span = omplt_trace::span("vm.compile");
    omplt_fault::panic_if_armed("vm.panic");
    // First name occurrence wins, matching `Module::function`.
    let mut fn_index: HashMap<&str, u32> = HashMap::new();
    for (i, f) in m.functions.iter().enumerate() {
        fn_index.entry(f.name.as_str()).or_insert(i as u32);
    }
    let mut funcs = Vec::with_capacity(m.functions.len());
    let mut promoted_total = 0u64;
    let mut removed_total = 0u64;
    let mut stats = vectorize::PlanStats::default();
    for f in &m.functions {
        let (vf, promoted, removed) = compile_function(m, f, &fn_index, vector_width, &mut stats)?;
        promoted_total += promoted as u64;
        removed_total += removed as u64;
        funcs.push(vf);
    }
    let vm = VmModule { funcs };
    if omplt_trace::active() {
        omplt_trace::count("vm.compile.functions", vm.funcs.len() as u64);
        omplt_trace::count("vm.compile.ops", vm.num_ops() as u64);
        omplt_trace::count("vm.compile.promoted", promoted_total);
        omplt_trace::count("vm.compile.peephole.removed", removed_total);
        // Emitted only when the pass ran, so width-0 counter documents stay
        // byte-identical to the pre-simd era.
        if vector_width >= 2 {
            omplt_trace::count("vm.simd.widened_loops", stats.widened);
            omplt_trace::count("vm.simd.refused", stats.refused);
        }
    }
    Ok(vm)
}

/// Dedup key for constant-pool entries (`RtVal` holds an `f64`, so the pool
/// itself cannot be a hash key; floats key by bit pattern).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ConstKey {
    Int(i64),
    Float(u64),
    PtrZero,
    Global(u32),
    Fn(u32),
}

/// Maps a constant-like [`Value`] to its dedup key and pool entry. `Undef`
/// lowers to the zero of its class — same observable behaviour as the
/// interpreter (`F(0.0)` for floats, zero bits otherwise).
pub(crate) fn const_of(v: Value) -> Option<(ConstKey, PoolConst)> {
    match v {
        Value::Inst(_) | Value::Arg(_) => None,
        Value::ConstInt { val, .. } => Some((ConstKey::Int(val), PoolConst::Val(RtVal::I(val)))),
        Value::ConstFloat { bits, .. } => Some((
            ConstKey::Float(bits),
            PoolConst::Val(RtVal::F(f64::from_bits(bits))),
        )),
        Value::Global(s) => Some((ConstKey::Global(s.0), PoolConst::Global(s))),
        Value::FuncRef(s) => Some((ConstKey::Fn(s.0), PoolConst::FnPtr(s))),
        Value::Undef(ty) => Some(if ty.is_float() {
            (
                ConstKey::Float(0f64.to_bits()),
                PoolConst::Val(RtVal::F(0.0)),
            )
        } else if ty == IrType::Ptr {
            (ConstKey::PtrZero, PoolConst::Val(RtVal::P(0)))
        } else {
            (ConstKey::Int(0), PoolConst::Val(RtVal::I(0)))
        }),
    }
}

/// Finds the scalar `alloca`s that can live in a register: one element, word
/// or smaller, and used *only* as the direct address of same-typed loads and
/// stores (never as a stored value, call argument, GEP base, or any other
/// operand — those escape the slot and force it to stay in guest memory).
fn promotable_allocas(f: &Function, rpo: &[BlockId]) -> HashSet<InstId> {
    let mut candidates: HashMap<InstId, IrType> = HashMap::new();
    for &bb in rpo {
        for &iid in &f.block(bb).insts {
            if let Inst::Alloca { ty, count: 1, .. } = f.inst(iid) {
                if *ty != IrType::Void && (1..=8).contains(&ty.size()) {
                    candidates.insert(iid, *ty);
                }
            }
        }
    }
    if candidates.is_empty() {
        return HashSet::new();
    }
    let disqualify = |candidates: &mut HashMap<InstId, IrType>, v: Value| {
        if let Value::Inst(id) = v {
            candidates.remove(&id);
        }
    };
    for &bb in rpo {
        for &iid in &f.block(bb).insts {
            match f.inst(iid) {
                Inst::Load { ty, ptr } => {
                    if let Value::Inst(a) = ptr {
                        if candidates.get(a).is_some_and(|aty| aty != ty) {
                            candidates.remove(a);
                        }
                    }
                }
                Inst::Store { val, ptr } => {
                    disqualify(&mut candidates, *val);
                    if let Value::Inst(a) = ptr {
                        if candidates
                            .get(a)
                            .is_some_and(|aty| *aty != f.value_type(*val))
                        {
                            candidates.remove(a);
                        }
                    }
                }
                other => {
                    for v in other.operands() {
                        disqualify(&mut candidates, v);
                    }
                }
            }
        }
        if let Some(t) = &f.block(bb).term {
            match t {
                Terminator::CondBr { cond, .. } => disqualify(&mut candidates, *cond),
                Terminator::Ret(Some(v)) => disqualify(&mut candidates, *v),
                _ => {}
            }
        }
    }
    candidates.into_keys().collect()
}

/// Jump-target placeholder, patched once every block offset is known.
enum Fixup {
    /// `Jmp` at this op index targets the given IR block.
    Jmp(usize, BlockId),
    /// `Br` at this op index: the true (`then`) or false arm targets the
    /// given IR block directly (no trampoline needed).
    BrArm(usize, bool, BlockId),
}

pub(crate) struct FuncCompiler<'a> {
    m: &'a Module,
    pub(crate) f: &'a Function,
    fn_index: &'a HashMap<&'a str, u32>,
    pub(crate) promoted: HashMap<InstId, Reg>,
    pub(crate) vreg_class: Vec<RegClass>,
    pub(crate) inst_reg: HashMap<InstId, Reg>,
    pub(crate) const_reg: HashMap<ConstKey, Reg>,
    pub(crate) pool: Vec<PoolConst>,
    pool_idx: HashMap<ConstKey, u16>,
    pub(crate) ops: Vec<Op>,
    call_args: Vec<Reg>,
    call_targets: Vec<CallTarget>,
    target_idx: HashMap<CallTarget, u16>,
    block_starts: Vec<u32>,
    block_off: Vec<Option<u32>>,
    fixups: Vec<Fixup>,
    /// Vector register classes (one per vector register).
    pub(crate) vv_class: Vec<RegClass>,
    /// Vector register widths, parallel to `vv_class`.
    pub(crate) vv_width: Vec<u8>,
    /// Widened-loop latch blocks mapped to their *scalar* header offset:
    /// the backedge must re-enter the scalar epilogue loop, not the vector
    /// preamble the header's block offset points at.
    pub(crate) latch_redirect: HashMap<u32, u32>,
}

impl<'a> FuncCompiler<'a> {
    pub(crate) fn err_large(&self, what: &str) -> CompileError {
        CompileError::TooLarge {
            func: self.f.name.clone(),
            what: what.to_string(),
        }
    }

    pub(crate) fn new_vreg(&mut self, class: RegClass) -> Result<Reg, CompileError> {
        if self.vreg_class.len() >= u16::MAX as usize {
            return Err(CompileError::TooManyRegs {
                func: self.f.name.clone(),
            });
        }
        let r = self.vreg_class.len() as Reg;
        self.vreg_class.push(class);
        Ok(r)
    }

    /// Interns a constant: pool entry plus the prologue-loaded register.
    fn const_vreg(&mut self, key: ConstKey, entry: PoolConst) -> Result<Reg, CompileError> {
        if let Some(&r) = self.const_reg.get(&key) {
            return Ok(r);
        }
        if self.pool.len() >= u16::MAX as usize {
            return Err(self.err_large("constant pool"));
        }
        let idx = self.pool.len() as u16;
        self.pool.push(entry);
        self.pool_idx.insert(key, idx);
        let r = self.new_vreg(entry.class())?;
        self.const_reg.insert(key, r);
        Ok(r)
    }

    /// Allocates a vector register of the given class and lane width.
    pub(crate) fn new_vvreg(&mut self, class: RegClass, w: u8) -> Result<Reg, CompileError> {
        if self.vv_class.len() >= u16::MAX as usize {
            return Err(CompileError::TooManyRegs {
                func: self.f.name.clone(),
            });
        }
        let r = self.vv_class.len() as Reg;
        self.vv_class.push(class);
        self.vv_width.push(w);
        Ok(r)
    }

    /// A constant register usable *after* the prologue has been emitted:
    /// reuses the prologue-loaded register when the pool already holds the
    /// constant, otherwise appends a pool entry and materializes it with an
    /// `Op::Const` at the current emission point. Callers must ensure that
    /// point dominates every use (the widener only calls this from a loop
    /// preamble).
    pub(crate) fn inline_const(
        &mut self,
        key: ConstKey,
        entry: PoolConst,
    ) -> Result<Reg, CompileError> {
        if let Some(&r) = self.const_reg.get(&key) {
            return Ok(r);
        }
        if self.pool.len() >= u16::MAX as usize {
            return Err(self.err_large("constant pool"));
        }
        let idx = self.pool.len() as u16;
        self.pool.push(entry);
        let dst = self.new_vreg(entry.class())?;
        self.ops.push(Op::Const { dst, idx });
        Ok(dst)
    }

    /// The register holding `v` (instruction result, argument, or
    /// prologue-loaded constant).
    pub(crate) fn reg_of(&mut self, v: Value) -> Result<Reg, CompileError> {
        match v {
            Value::Inst(id) => {
                self.inst_reg
                    .get(&id)
                    .copied()
                    .ok_or_else(|| CompileError::Malformed {
                        func: self.f.name.clone(),
                        what: format!("use of void or promoted value %{}", id.0),
                    })
            }
            Value::Arg(i) => {
                if (i as usize) < self.f.params.len() {
                    Ok(i as Reg)
                } else {
                    Err(CompileError::Malformed {
                        func: self.f.name.clone(),
                        what: format!("argument {i} out of range"),
                    })
                }
            }
            other => {
                let (key, entry) = const_of(other).expect("non-ssa value is a constant");
                self.const_vreg(key, entry)
            }
        }
    }

    pub(crate) fn mark_block_start(&mut self) {
        self.block_starts.push(self.ops.len() as u32);
    }

    /// The phi copies needed on the edge `pred → succ`:
    /// `(phi register, source value)` pairs, in phi order.
    fn edge_pairs(
        &mut self,
        pred: BlockId,
        succ: BlockId,
    ) -> Result<Vec<(Reg, Reg)>, CompileError> {
        let mut pairs = Vec::new();
        for &iid in &self.f.block(succ).insts {
            let Inst::Phi { incoming, .. } = self.f.inst(iid) else {
                break;
            };
            let Some((_, val)) = incoming.iter().find(|(b, _)| *b == pred) else {
                return Err(CompileError::Malformed {
                    func: self.f.name.clone(),
                    what: format!("phi %{} has no edge for predecessor {}", iid.0, pred.0),
                });
            };
            let val = *val;
            let dst = self.inst_reg[&iid];
            let src = self.reg_of(val)?;
            pairs.push((dst, src));
        }
        Ok(pairs)
    }

    /// Emits the copies for one edge with simultaneous-assignment semantics:
    /// multi-phi edges go through fresh temporaries (a phi source may itself
    /// be another phi's destination), single copies move directly.
    fn emit_edge_moves(&mut self, pairs: &[(Reg, Reg)]) -> Result<(), CompileError> {
        match pairs {
            [] => {}
            &[(dst, src)] => {
                if dst != src {
                    self.ops.push(Op::Mov { dst, src });
                }
            }
            many => {
                let mut temps = Vec::with_capacity(many.len());
                for &(dst, src) in many {
                    let t = self.new_vreg(self.vreg_class[dst as usize])?;
                    self.ops.push(Op::Mov { dst: t, src });
                    temps.push((dst, t));
                }
                for (dst, t) in temps {
                    self.ops.push(Op::Mov { dst, src: t });
                }
            }
        }
        Ok(())
    }

    fn emit_inst(&mut self, iid: InstId, inst: &Inst) -> Result<(), CompileError> {
        match inst {
            Inst::Phi { .. } => {} // eliminated into edge copies
            Inst::Alloca { ty, count, .. } => {
                if let Some(&slot) = self.promoted.get(&iid) {
                    // A fresh alloca is zero-initialized; re-executing the
                    // op (alloca inside a loop) must reset the slot too.
                    let (key, entry) = const_of(Value::Undef(*ty)).expect("undef is a constant");
                    let src = self.const_vreg(key, entry)?;
                    self.ops.push(Op::Mov { dst: slot, src });
                } else {
                    let bytes = ty.size().max(1) * (*count).max(1);
                    let bytes = u32::try_from(bytes).map_err(|_| self.err_large("alloca size"))?;
                    let dst = self.inst_reg[&iid];
                    self.ops.push(Op::Alloca { dst, bytes });
                }
            }
            Inst::Load { ty, ptr } => {
                let dst = self.inst_reg[&iid];
                if let Value::Inst(a) = ptr {
                    if let Some(&slot) = self.promoted.get(a) {
                        self.ops.push(Op::Mov { dst, src: slot });
                        return Ok(());
                    }
                }
                let addr = self.reg_of(*ptr)?;
                self.ops.push(Op::Load { dst, addr, ty: *ty });
            }
            Inst::Store { val, ptr } => {
                let src = self.reg_of(*val)?;
                if let Value::Inst(a) = ptr {
                    if let Some(&slot) = self.promoted.get(a) {
                        self.ops.push(Op::Mov { dst: slot, src });
                        return Ok(());
                    }
                }
                let ty = self.f.value_type(*val);
                let addr = self.reg_of(*ptr)?;
                self.ops.push(Op::Store { src, addr, ty });
            }
            Inst::Gep {
                ptr,
                index,
                elem_size,
            } => {
                let elem_size =
                    u32::try_from(*elem_size).map_err(|_| self.err_large("gep element size"))?;
                let dst = self.inst_reg[&iid];
                let base = self.reg_of(*ptr)?;
                let index = self.reg_of(*index)?;
                self.ops.push(Op::Gep {
                    dst,
                    base,
                    index,
                    elem_size,
                });
            }
            Inst::Bin { op, lhs, rhs } => {
                let ty = self.f.value_type(*lhs);
                let dst = self.inst_reg[&iid];
                let lhs = self.reg_of(*lhs)?;
                let rhs = self.reg_of(*rhs)?;
                self.ops.push(Op::Bin {
                    op: *op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                });
            }
            Inst::Cmp { pred, lhs, rhs } => {
                let ty = self.f.value_type(*lhs);
                let dst = self.inst_reg[&iid];
                let lhs = self.reg_of(*lhs)?;
                let rhs = self.reg_of(*rhs)?;
                self.ops.push(Op::Cmp {
                    pred: *pred,
                    ty,
                    dst,
                    lhs,
                    rhs,
                });
            }
            Inst::Cast { op, val, to } => {
                let from = self.f.value_type(*val);
                let dst = self.inst_reg[&iid];
                let src = self.reg_of(*val)?;
                self.ops.push(Op::Cast {
                    op: *op,
                    from,
                    to: *to,
                    dst,
                    src,
                });
            }
            Inst::Select { cond, t, f: fv } => {
                let dst = self.inst_reg[&iid];
                let cond = self.reg_of(*cond)?;
                let t = self.reg_of(*t)?;
                let fv = self.reg_of(*fv)?;
                self.ops.push(Op::Select {
                    dst,
                    cond,
                    t,
                    f: fv,
                });
            }
            Inst::Call { callee, args, ty } => {
                // Same precedence as the interpreter: module functions
                // shadow runtime shims, resolved once here.
                let name = self.m.symbol_name(callee.0);
                let target = match self.fn_index.get(name) {
                    Some(&i) => CallTarget::Bytecode(i),
                    None => CallTarget::Runtime(callee.0),
                };
                let target = match self.target_idx.get(&target) {
                    Some(&i) => i,
                    None => {
                        if self.call_targets.len() >= u16::MAX as usize {
                            return Err(self.err_large("call-target table"));
                        }
                        let i = self.call_targets.len() as u16;
                        self.call_targets.push(target);
                        self.target_idx.insert(target, i);
                        i
                    }
                };
                let args_at = u32::try_from(self.call_args.len())
                    .map_err(|_| self.err_large("call-argument pool"))?;
                let nargs =
                    u16::try_from(args.len()).map_err(|_| self.err_large("argument count"))?;
                for a in args {
                    let r = self.reg_of(*a)?;
                    self.call_args.push(r);
                }
                let dst = if *ty == IrType::Void {
                    None
                } else {
                    Some(self.inst_reg[&iid])
                };
                self.ops.push(Op::Call {
                    target,
                    args_at,
                    nargs,
                    ret: *ty,
                    dst,
                });
            }
        }
        Ok(())
    }

    fn emit_terminator(&mut self, bb: BlockId, term: &Terminator) -> Result<(), CompileError> {
        match term {
            Terminator::Br { target, .. } => {
                // A widened loop's latch re-enters the *scalar* copy of the
                // header (already emitted — headers precede latches in RPO);
                // the header's block offset points at the vector preamble,
                // which must run only on loop entry.
                if let Some(&off) = self.latch_redirect.get(&bb.0) {
                    self.ops.push(Op::Jmp { target: off });
                    return Ok(());
                }
                let pairs = self.edge_pairs(bb, *target)?;
                self.emit_edge_moves(&pairs)?;
                self.fixups.push(Fixup::Jmp(self.ops.len(), *target));
                self.ops.push(Op::Jmp { target: 0 });
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
                ..
            } => {
                let cond = self.reg_of(*cond)?;
                let then_pairs = self.edge_pairs(bb, *then_bb)?;
                let else_pairs = self.edge_pairs(bb, *else_bb)?;
                let br_at = self.ops.len();
                self.ops.push(Op::Br {
                    cond,
                    then_t: 0,
                    else_t: 0,
                });
                // Critical-edge split: an edge that needs copies gets a
                // trampoline block right after the branch.
                for (is_then, succ, pairs) in
                    [(true, *then_bb, then_pairs), (false, *else_bb, else_pairs)]
                {
                    if pairs.is_empty() {
                        self.fixups.push(Fixup::BrArm(br_at, is_then, succ));
                    } else {
                        let tramp = self.ops.len() as u32;
                        self.mark_block_start();
                        self.emit_edge_moves(&pairs)?;
                        self.fixups.push(Fixup::Jmp(self.ops.len(), succ));
                        self.ops.push(Op::Jmp { target: 0 });
                        if let Op::Br { then_t, else_t, .. } = &mut self.ops[br_at] {
                            if is_then {
                                *then_t = tramp;
                            } else {
                                *else_t = tramp;
                            }
                        }
                    }
                }
            }
            Terminator::Ret(v) => {
                let src = match v {
                    Some(v) => Some(self.reg_of(*v)?),
                    None => None,
                };
                self.ops.push(Op::Ret { src });
            }
            Terminator::Unreachable => self.ops.push(Op::Unreachable),
        }
        Ok(())
    }

    fn patch_fixups(&mut self) -> Result<(), CompileError> {
        for fix in std::mem::take(&mut self.fixups) {
            let (at, block) = match fix {
                Fixup::Jmp(at, b) | Fixup::BrArm(at, _, b) => (at, b),
            };
            let off = self.block_off[block.0 as usize].ok_or_else(|| CompileError::Malformed {
                func: self.f.name.clone(),
                what: format!("branch to unreachable block {}", block.0),
            })?;
            match (&mut self.ops[at], fix) {
                (Op::Jmp { target }, Fixup::Jmp(..)) => *target = off,
                (Op::Br { then_t, .. }, Fixup::BrArm(_, true, _)) => *then_t = off,
                (Op::Br { else_t, .. }, Fixup::BrArm(_, false, _)) => *else_t = off,
                _ => unreachable!("fixup does not match its op"),
            }
        }
        Ok(())
    }
}

/// Lowers one function; returns the compiled body plus the numbers of
/// promoted `alloca` slots and peephole-removed ops (for the
/// `vm.compile.promoted` / `vm.compile.peephole.removed` counters).
fn compile_function(
    m: &Module,
    f: &Function,
    fn_index: &HashMap<&str, u32>,
    vector_width: u8,
    stats: &mut vectorize::PlanStats,
) -> Result<(VmFunction, usize, usize), CompileError> {
    let rpo = f.reverse_postorder();
    let promoted_set = promotable_allocas(f, &rpo);
    let plans = if vector_width >= 2 {
        vectorize::plan_loops(f, &promoted_set, vector_width, stats)
    } else {
        HashMap::new()
    };
    let mut c = FuncCompiler {
        m,
        f,
        fn_index,
        promoted: HashMap::new(),
        vreg_class: Vec::new(),
        inst_reg: HashMap::new(),
        const_reg: HashMap::new(),
        pool: Vec::new(),
        pool_idx: HashMap::new(),
        ops: Vec::new(),
        call_args: Vec::new(),
        call_targets: Vec::new(),
        target_idx: HashMap::new(),
        block_starts: Vec::new(),
        block_off: vec![None; f.blocks.len()],
        fixups: Vec::new(),
        vv_class: Vec::new(),
        vv_width: Vec::new(),
        latch_redirect: HashMap::new(),
    };

    // Virtual registers: arguments first (frame entry copies them in).
    for &p in &f.params {
        c.new_vreg(RegClass::of(p))?;
    }
    let params: Vec<Reg> = (0..f.params.len() as u16).collect();

    // Then one per SSA value (promoted allocas get their slot register; the
    // pointer they used to produce never materializes).
    for &bb in &rpo {
        for &iid in &f.block(bb).insts {
            let inst = f.inst(iid);
            if let Inst::Alloca { ty, .. } = inst {
                if promoted_set.contains(&iid) {
                    let slot = c.new_vreg(RegClass::of(*ty))?;
                    c.promoted.insert(iid, slot);
                    continue;
                }
            }
            let ty = inst.result_type(|v| f.value_type(v));
            if ty != IrType::Void {
                let r = c.new_vreg(RegClass::of(ty))?;
                c.inst_reg.insert(iid, r);
            }
        }
    }

    // Pre-intern every constant any reachable instruction, phi edge, or
    // terminator mentions, so the prologue can be emitted *first* (as the
    // head of the entry block) and no offsets ever need shifting.
    for &bb in &rpo {
        for &iid in &f.block(bb).insts {
            if c.promoted.contains_key(&iid) {
                // Promoted alloca re-zeroing needs the zero of its class.
                if let Inst::Alloca { ty, .. } = f.inst(iid) {
                    let (key, entry) = const_of(Value::Undef(*ty)).expect("undef is a constant");
                    c.const_vreg(key, entry)?;
                }
                continue;
            }
            for v in f.inst(iid).operands() {
                if let Some((key, entry)) = const_of(v) {
                    c.const_vreg(key, entry)?;
                }
            }
        }
        let term_val = match &f.block(bb).term {
            Some(Terminator::CondBr { cond, .. }) => Some(*cond),
            Some(Terminator::Ret(Some(v))) => Some(*v),
            _ => None,
        };
        if let Some((key, entry)) = term_val.and_then(const_of) {
            c.const_vreg(key, entry)?;
        }
    }

    // Emission. The prologue belongs to the entry block: block offset 0
    // covers it, so a backedge into the entry re-runs the (idempotent)
    // constant loads — liveness-based intervals keep those registers from
    // being reused across any such edge.
    for (i, &bb) in rpo.iter().enumerate() {
        c.block_off[bb.0 as usize] = Some(c.ops.len() as u32);
        c.mark_block_start();
        if i == 0 {
            let mut loads: Vec<(u16, Reg)> = c
                .const_reg
                .iter()
                .map(|(key, &reg)| (c.pool_idx[key], reg))
                .collect();
            loads.sort_unstable();
            for (idx, dst) in loads {
                c.ops.push(Op::Const { dst, idx });
            }
        }
        if let Some(plan) = plans.get(&bb.0) {
            // Vector preamble + main loop + exit combine, then the scalar
            // copy of the loop as its epilogue. The block offset recorded
            // above points at the preamble, so entry edges run it; the
            // latch's backedge is redirected past it (`latch_redirect`).
            vectorize::emit_vector_loop(&mut c, plan)?;
            c.mark_block_start();
        }
        for &iid in &f.block(bb).insts {
            c.emit_inst(iid, f.inst(iid))?;
        }
        let term = f
            .block(bb)
            .term
            .as_ref()
            .ok_or_else(|| CompileError::Malformed {
                func: f.name.clone(),
                what: format!("unterminated block {}", f.block(bb).name),
            })?;
        c.emit_terminator(bb, term)?;
    }
    c.patch_fixups()?;

    if c.ops.len() > u32::MAX as usize {
        return Err(c.err_large("op stream"));
    }

    let mut vf = VmFunction {
        name: f.name.clone(),
        params,
        num_regs: c.vreg_class.len() as u16,
        reg_class: c.vreg_class,
        num_vregs: c.vv_class.len() as u16,
        vreg_class: c.vv_class,
        vreg_width: c.vv_width,
        ops: c.ops,
        consts: c.pool,
        call_args: c.call_args,
        call_targets: c.call_targets,
        block_starts: c.block_starts,
        ret: f.ret,
    };
    let removed = peephole::optimize(&mut vf);
    regalloc::allocate(&mut vf);
    Ok((vf, c.promoted.len(), removed))
}
