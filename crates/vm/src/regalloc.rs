//! Linear-scan register allocation over the virtual registers the lowerer
//! emits (one per SSA value, argument, constant, and phi-copy temporary).
//!
//! There is no spilling — the frame's register file is heap-allocated and
//! `u16`-indexed, so "allocation" here means *compaction*: block-level
//! liveness builds one conservative, hole-free live interval per virtual
//! register, and a classic linear scan then reuses register numbers whose
//! intervals have expired. Smaller register files mean smaller frames and a
//! hotter cache in the dispatch loop.
//!
//! Intervals are extended to every block boundary the value is live across,
//! which is what makes backedges safe: a value live around a loop (including
//! a loop whose header is the entry block's constant prologue) covers the
//! whole loop body, so re-executed defs can never clobber it.

use crate::ops::{Op, Reg, RegClass, VmFunction};

/// A dense bitset over virtual registers (shared with the peephole pass).
#[derive(Clone, PartialEq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= (other & !mask)`; returns true if anything changed.
    fn union_minus(&mut self, other: &BitSet, mask: &BitSet) -> bool {
        let mut changed = false;
        for ((w, &o), &m) in self.words.iter_mut().zip(&other.words).zip(&mask.words) {
            let new = *w | (o & !m);
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    fn union(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            let new = *w | o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// `(start, end)` op index ranges of every block, in block order.
pub(crate) fn block_ranges(f: &VmFunction) -> Vec<(usize, usize)> {
    let nb = f.block_starts.len();
    (0..nb)
        .map(|b| {
            let start = f.block_starts[b] as usize;
            let end = if b + 1 < nb {
                f.block_starts[b + 1] as usize
            } else {
                f.ops.len()
            };
            (start, end)
        })
        .collect()
}

/// Successor block indices, read off each block's terminator op.
pub(crate) fn successors(f: &VmFunction, ranges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let block_of = |off: u32| -> usize {
        match f.block_starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); ranges.len()];
    for (s, &(_, end)) in succs.iter_mut().zip(ranges) {
        match f.ops[end - 1] {
            Op::Jmp { target } | Op::BinJmp { target, .. } => s.push(block_of(target)),
            Op::Br { then_t, else_t, .. } | Op::CmpBr { then_t, else_t, .. } => {
                s.push(block_of(then_t));
                s.push(block_of(else_t));
            }
            _ => {}
        }
    }
    succs
}

/// Block-level backward liveness to fixpoint over `n` registers; returns
/// `(live_in, live_out)` per block. Ops for which `skip` returns true are
/// treated as absent (the peephole pass masks deleted ops this way; register
/// allocation passes `|_| false`).
pub(crate) fn liveness(
    f: &VmFunction,
    n: usize,
    ranges: &[(usize, usize)],
    succs: &[Vec<usize>],
    skip: impl Fn(usize) -> bool,
) -> (Vec<BitSet>, Vec<BitSet>) {
    let nb = ranges.len();
    // Per-block gen_set (upward-exposed uses) and kill (defs).
    let mut gen_set: Vec<BitSet> = Vec::with_capacity(nb);
    let mut kill: Vec<BitSet> = Vec::with_capacity(nb);
    for &(start, end) in ranges {
        let mut g = BitSet::new(n);
        let mut k = BitSet::new(n);
        for pc in start..end {
            if skip(pc) {
                continue;
            }
            let op = f.ops[pc];
            op.for_each_use(&f.call_args, |r| {
                if !k.contains(r as usize) {
                    g.insert(r as usize);
                }
            });
            if let Some(d) = op.def() {
                k.insert(d as usize);
            }
        }
        gen_set.push(g);
        kill.push(k);
    }

    // live_in = gen_set ∪ (live_out − kill).
    let mut live_in: Vec<BitSet> = vec![BitSet::new(n); nb];
    let mut live_out: Vec<BitSet> = vec![BitSet::new(n); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            for &s in &succs[b] {
                let inn = live_in[s].clone();
                changed |= live_out[b].union(&inn);
            }
            let out = live_out[b].clone();
            changed |= live_in[b].union_minus(&out, &kill[b]);
            changed |= live_in[b].union(&gen_set[b]);
        }
    }
    (live_in, live_out)
}

/// Rewrites `f` in place so registers are compactly numbered and reused
/// where live intervals permit; updates `num_regs`, `reg_class`, `params`,
/// `call_args`, and every op.
pub fn allocate(f: &mut VmFunction) {
    let n = f.num_regs as usize;
    if n == 0 || f.ops.is_empty() {
        return;
    }
    let nb = f.block_starts.len();
    let ranges = block_ranges(f);
    let succs = successors(f, &ranges);
    let (live_in, live_out) = liveness(f, n, &ranges, &succs, |_| false);

    // Conservative hole-free intervals: cover every def/use position plus
    // every block boundary the value is live across.
    const UNSET: usize = usize::MAX;
    fn touch(start: &mut [usize], end: &mut [usize], v: usize, pos: usize) {
        if start[v] == UNSET || pos < start[v] {
            start[v] = pos;
        }
        if pos > end[v] {
            end[v] = pos;
        }
    }
    let mut start = vec![UNSET; n];
    let mut end = vec![0usize; n];
    for &p in &f.params {
        touch(&mut start, &mut end, p as usize, 0);
    }
    for (pc, op) in f.ops.iter().enumerate() {
        if let Some(d) = op.def() {
            touch(&mut start, &mut end, d as usize, pc);
        }
        op.for_each_use(&f.call_args, |r| {
            touch(&mut start, &mut end, r as usize, pc)
        });
    }
    for b in 0..nb {
        let (bs, be) = ranges[b];
        for v in live_in[b].iter_ones() {
            touch(&mut start, &mut end, v, bs);
        }
        for v in live_out[b].iter_ones() {
            touch(&mut start, &mut end, v, be - 1);
        }
    }

    // Linear scan with per-class free pools. Registers never share even when
    // intervals merely touch (strict `<` expiry) — a cheap safety margin.
    let mut order: Vec<usize> = (0..n).filter(|&v| start[v] != UNSET).collect();
    order.sort_unstable_by_key(|&v| (start[v], v));
    let mut assign: Vec<Reg> = vec![0; n];
    let mut phys_class: Vec<RegClass> = Vec::new();
    let mut free: [Vec<Reg>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let class_idx = |c: RegClass| match c {
        RegClass::Int => 0usize,
        RegClass::Float => 1,
        RegClass::Ptr => 2,
    };
    let mut active: Vec<(usize, Reg, usize)> = Vec::new(); // (end, phys, class idx)
    for &v in &order {
        active.retain(|&(e, phys, ci)| {
            if e < start[v] {
                free[ci].push(phys);
                false
            } else {
                true
            }
        });
        let ci = class_idx(f.reg_class[v]);
        let phys = match free[ci].pop() {
            Some(p) => p,
            None => {
                let p = phys_class.len() as Reg;
                phys_class.push(f.reg_class[v]);
                p
            }
        };
        assign[v] = phys;
        active.push((end[v], phys, ci));
    }

    // Rename everything.
    for op in &mut f.ops {
        op.map_regs(|r| assign[r as usize]);
    }
    for r in &mut f.call_args {
        *r = assign[*r as usize];
    }
    for p in &mut f.params {
        *p = assign[*p as usize];
    }
    f.num_regs = phys_class.len() as u16;
    f.reg_class = phys_class;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Op, PoolConst, VmFunction};
    use omplt_interp::RtVal;
    use omplt_ir::{BinOpKind, IrType};

    fn linear_fn(ops: Vec<Op>, num_regs: u16, classes: Vec<RegClass>) -> VmFunction {
        VmFunction {
            name: "t".into(),
            params: vec![],
            num_regs,
            reg_class: classes,
            num_vregs: 0,
            vreg_class: vec![],
            vreg_width: vec![],
            ops,
            consts: vec![PoolConst::Val(RtVal::I(1))],
            call_args: vec![],
            call_targets: vec![],
            block_starts: vec![0],
            ret: IrType::I64,
        }
    }

    #[test]
    fn disjoint_intervals_share_a_register() {
        // r0 dies before r1 is born; both Int → same physical register.
        let mut f = linear_fn(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 1,
                    lhs: 0,
                    rhs: 0,
                },
                Op::Const { dst: 2, idx: 0 },
                Op::Ret { src: Some(2) },
            ],
            3,
            vec![RegClass::Int; 3],
        );
        allocate(&mut f);
        assert!(f.num_regs < 3, "expected reuse, got {} regs", f.num_regs);
    }

    #[test]
    fn classes_never_mix() {
        let mut f = linear_fn(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Cast {
                    op: omplt_ir::CastOp::SiToFp,
                    from: IrType::I64,
                    to: IrType::F64,
                    dst: 1,
                    src: 0,
                },
                Op::Ret { src: Some(0) },
            ],
            2,
            vec![RegClass::Int, RegClass::Float],
        );
        allocate(&mut f);
        assert_eq!(f.reg_class.len(), f.num_regs as usize);
        let classes: std::collections::HashSet<_> = f.reg_class.iter().collect();
        assert_eq!(classes.len(), 2, "Int and Float must stay distinct");
    }

    #[test]
    fn loop_carried_value_is_not_clobbered() {
        // Block 0: define r0, r1. Block 1 (loop): r1 += r0, branch back or
        // out. r0 must keep its register across the backedge.
        let mut f = linear_fn(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Const { dst: 1, idx: 0 },
                Op::Jmp { target: 3 },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 1,
                    lhs: 1,
                    rhs: 0,
                },
                Op::Cmp {
                    pred: omplt_ir::CmpPred::Slt,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 1,
                    rhs: 0,
                },
                Op::Br {
                    cond: 2,
                    then_t: 3,
                    else_t: 6,
                },
                Op::Ret { src: Some(1) },
            ],
            3,
            vec![RegClass::Int; 3],
        );
        f.block_starts = vec![0, 3, 6];
        allocate(&mut f);
        // r0 (loop-invariant) and r2 (cmp result, loop-local) must differ:
        // r0 is live across the whole loop.
        let a0 = match f.ops[0] {
            Op::Const { dst, .. } => dst,
            _ => unreachable!(),
        };
        let a2 = match f.ops[4] {
            Op::Cmp { dst, .. } => dst,
            _ => unreachable!(),
        };
        assert_ne!(a0, a2, "loop-carried register reused inside the loop");
    }
}
