//! The widening pass: converts innermost `#pragma omp simd` loop bodies to
//! lane-parallel vector bytecode at a configurable width.
//!
//! Layering mirrors a classic inner-loop vectorizer split into *planning*
//! (pure analysis over the IR, before any bytecode exists) and *emission*
//! (interleaved with [`crate::compile`]'s normal block walk):
//!
//! * [`plan_loops`] pattern-matches canonical counted loops whose latch
//!   carries `llvm.loop.vectorize.enable` metadata, classifies every
//!   promoted stack slot the body touches (induction variable, integer
//!   reduction, written-before-read temporary, loop-invariant), derives the
//!   linear form `coeff·iv + sym + k` of every memory index, and applies a
//!   distance-based dependence test. A loop-carried dependence with
//!   distance `d` clamps the width to `d` (`safelen` semantics); anything
//!   the analysis cannot prove safe *refuses* the loop — it stays scalar
//!   and `vm.simd.refused` ticks. Never miscompile, always fall back.
//! * [`emit_vector_loop`] emits, at the loop-header offset: a preamble
//!   (accumulator init, trip-count guard), the vector main loop, and an
//!   exit block (horizontal reduces, last-lane extracts, `VEpi` epilogue
//!   accounting) that falls through to the untouched scalar loop, which
//!   runs the remaining `trip mod width` iterations.
//!
//! Floating-point reductions are refused on purpose: lane-partial sums
//! reassociate the reduction, and the VM is held byte-identical to the
//! scalar interpreter oracle by the backend-differential harness. Integer
//! (wrapping) add/mul are associative, so those widen.

use crate::compile::{const_of, CompileError, ConstKey, FuncCompiler};
use crate::ops::{Op, PoolConst, Reg, RegClass, VReg, MAX_LANES};
use omplt_interp::RtVal;
use omplt_ir::{BinOpKind, BlockId, CmpPred, Function, Inst, InstId, IrType, Terminator, Value};
use std::collections::{HashMap, HashSet};

/// Per-module widening statistics, reported as `vm.simd.*` counters.
#[derive(Default)]
pub(crate) struct PlanStats {
    /// Loops converted to vector form.
    pub widened: u64,
    /// `simd`-annotated loops the legality analysis rejected.
    pub refused: u64,
}

/// What a promoted stack slot does inside the loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotRole {
    /// The loop counter: reads map to the scalar chunk base (addresses) or
    /// a `VIota` lane vector (data); the increment store is elided.
    Iv,
    /// Integer `s = s ⊕ expr` accumulator: lanes accumulate into a vector
    /// register initialized to the identity, combined by `VReduce` on exit.
    Reduction(BinOpKind),
    /// Written before read each iteration: lanes are independent; the exit
    /// extracts lane `w-1` so the slot holds the last iteration's value.
    WriteFirst,
    /// Never stored inside the loop: reads broadcast the scalar register.
    Invariant,
}

/// A loop the planner approved for widening.
pub(crate) struct LoopPlan {
    /// Loop header (the block whose bytecode offset gains the preamble).
    pub header: BlockId,
    /// Latch block (its `Br` backedge is redirected past the preamble).
    pub latch: BlockId,
    /// Body blocks, header-successor through latch, in chain order.
    chain: Vec<BlockId>,
    /// The induction variable's promoted `alloca`.
    iv_slot: InstId,
    /// Induction variable type (`I32`/`I64`).
    iv_ty: IrType,
    /// Header comparison predicate (`Slt`/`Ult`/`Sle`/`Ule`).
    pred: CmpPred,
    /// Loop bound value (loop-invariant by construction).
    bound: Value,
    /// Chosen width after all clamps (2..=[`MAX_LANES`]).
    width: u8,
    /// Slot classification; sorted vectors keep emission deterministic.
    reductions: Vec<(InstId, BinOpKind)>,
    write_first: Vec<InstId>,
    roles: HashMap<InstId, SlotRole>,
    /// Single-store write-first slots: slot -> stored value (see
    /// [`Planner::wf_value`]).
    wf_value: HashMap<InstId, Value>,
}

/// Finds and legality-checks every widenable loop of `f`. Keys are header
/// block ids. `width` is the CLI request; `simdlen`/`safelen` metadata and
/// dependence distances clamp it per loop.
pub(crate) fn plan_loops(
    f: &Function,
    promoted: &HashSet<InstId>,
    width: u8,
    stats: &mut PlanStats,
) -> HashMap<u32, LoopPlan> {
    let preds = f.predecessors();
    let mut plans: HashMap<u32, LoopPlan> = HashMap::new();
    for (b, block) in f.blocks.iter().enumerate() {
        let Some(Terminator::Br {
            target: header,
            loop_md: Some(md),
        }) = &block.term
        else {
            continue;
        };
        if !md.vectorize_enable {
            continue;
        }
        let latch = BlockId(b as u32);
        let requested = if md.simdlen != 0 {
            width.min(md.simdlen)
        } else {
            width
        };
        let requested = if md.safelen != 0 {
            requested.min(md.safelen)
        } else {
            requested
        };
        let requested = requested.min(MAX_LANES as u8);
        match try_plan(f, &preds, promoted, *header, latch, requested) {
            Some(plan) if !plans.contains_key(&plan.header.0) => {
                stats.widened += 1;
                plans.insert(plan.header.0, plan);
            }
            _ => stats.refused += 1,
        }
    }
    plans
}

/// The slot a load/store address resolves to, if it is a promoted alloca.
fn slot_of(promoted: &HashSet<InstId>, f: &Function, ptr: Value) -> Option<InstId> {
    if let Value::Inst(id) = ptr {
        if promoted.contains(&id) && matches!(f.inst(id), Inst::Alloca { .. }) {
            return Some(id);
        }
    }
    None
}

/// The root a memory access's base pointer resolves to. Distinct globals
/// never alias; everything else only compares equal to itself, and any
/// store forces unequal non-global bases to refuse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BaseKey {
    Global(u32),
    /// An `alloca` outside the loop: a fresh allocation, distinct from
    /// every global and every other alloca.
    Alloca(u32),
    Arg(u32),
    /// Non-alloca instruction defined outside the loop.
    OutInst(u32),
    /// Load of a loop-invariant promoted pointer slot.
    Slot(u32),
}

impl BaseKey {
    /// Two *different* base keys provably never overlap only when both
    /// name whole objects (globals / fresh allocations); pointer-valued
    /// args, slots, and arbitrary expressions may alias anything.
    fn distinct_objects(a: BaseKey, b: BaseKey) -> bool {
        matches!(a, BaseKey::Global(_) | BaseKey::Alloca(_))
            && matches!(b, BaseKey::Global(_) | BaseKey::Alloca(_))
    }
}

/// A single symbolic addend in a linear index form (loop-invariant by
/// construction; equal syms cancel in distance computations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SymKey {
    Arg(u32),
    OutInst(u32),
    Slot(u32),
}

/// `index = coeff·iv + sym + k`.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Lin {
    coeff: i64,
    sym: Option<SymKey>,
    k: i64,
}

/// One analyzed memory access (through a `Gep`, not a promoted slot).
struct Access {
    /// Textual position within the flattened body (for the direction test).
    pos: usize,
    is_store: bool,
    base: BaseKey,
    /// `None` = opaque (non-affine) index: gather-only.
    lin: Option<Lin>,
    elem_size: u64,
    /// Accessed scalar size in bytes.
    ty_size: u64,
}

struct Planner<'a> {
    f: &'a Function,
    promoted: &'a HashSet<InstId>,
    /// All instructions inside the loop (header + chain).
    loop_insts: HashSet<InstId>,
    /// Slots with at least one store inside the loop.
    stored_slots: HashSet<InstId>,
    iv_slot: InstId,
    /// Write-first slots with exactly one store: slot -> stored value.
    /// Loads of such a slot all follow the store, so analyses may look
    /// through them to the stored value (the codegen'd user counter
    /// `i = trunc(iv)` pattern resolves to an affine form this way).
    wf_value: HashMap<InstId, Value>,
}

impl<'a> Planner<'a> {
    fn in_loop(&self, id: InstId) -> bool {
        self.loop_insts.contains(&id)
    }

    /// Linear form of an integer index value, or `None` when non-affine.
    fn lin(&self, v: Value, depth: u8) -> Option<Lin> {
        if depth == 0 {
            return None;
        }
        let sym = |s: SymKey| {
            Some(Lin {
                coeff: 0,
                sym: Some(s),
                k: 0,
            })
        };
        match v {
            Value::ConstInt { val, .. } => Some(Lin {
                coeff: 0,
                sym: None,
                k: val,
            }),
            Value::Arg(i) => sym(SymKey::Arg(i)),
            Value::Inst(id) if !self.in_loop(id) => sym(SymKey::OutInst(id.0)),
            Value::Inst(id) => match self.f.inst(id) {
                Inst::Load { ptr, .. } => {
                    let slot = slot_of(self.promoted, self.f, *ptr)?;
                    if slot == self.iv_slot {
                        Some(Lin {
                            coeff: 1,
                            sym: None,
                            k: 0,
                        })
                    } else if !self.stored_slots.contains(&slot) {
                        sym(SymKey::Slot(slot.0))
                    } else if let Some(&wv) = self.wf_value.get(&slot) {
                        self.lin(wv, depth - 1)
                    } else {
                        None // lane-varying: not a linear form
                    }
                }
                // Width changes preserve the linear form for in-range
                // indices; an index that actually wraps would fault both
                // backends identically long before a chunk spans the wrap.
                Inst::Cast {
                    op: omplt_ir::CastOp::SExt | omplt_ir::CastOp::ZExt | omplt_ir::CastOp::Trunc,
                    val,
                    ..
                } => self.lin(*val, depth - 1),
                Inst::Bin { op, lhs, rhs } => {
                    let combine = |a: Lin, b: Lin, neg: bool| -> Option<Lin> {
                        let s: i64 = if neg { -1 } else { 1 };
                        let sym = match (a.sym, b.sym) {
                            (x, None) => x,
                            (None, Some(y)) if !neg => Some(y),
                            _ => return None, // can't subtract or sum two syms
                        };
                        Some(Lin {
                            coeff: a.coeff.checked_add(s.checked_mul(b.coeff)?)?,
                            sym,
                            k: a.k.checked_add(s.checked_mul(b.k)?)?,
                        })
                    };
                    match op {
                        BinOpKind::Add => combine(
                            self.lin(*lhs, depth - 1)?,
                            self.lin(*rhs, depth - 1)?,
                            false,
                        ),
                        BinOpKind::Sub => {
                            combine(self.lin(*lhs, depth - 1)?, self.lin(*rhs, depth - 1)?, true)
                        }
                        BinOpKind::Mul => {
                            let (a, b) = (self.lin(*lhs, depth - 1)?, self.lin(*rhs, depth - 1)?);
                            // One side must be a pure constant, the other
                            // sym-free (a scaled sym breaks cancellation).
                            let scale = |l: Lin, c: i64| -> Option<Lin> {
                                if l.sym.is_some() {
                                    return None;
                                }
                                Some(Lin {
                                    coeff: l.coeff.checked_mul(c)?,
                                    sym: None,
                                    k: l.k.checked_mul(c)?,
                                })
                            };
                            if a.coeff == 0 && a.sym.is_none() {
                                scale(b, a.k)
                            } else if b.coeff == 0 && b.sym.is_none() {
                                scale(a, b.k)
                            } else {
                                None
                            }
                        }
                        _ => None,
                    }
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Can `v` be re-emitted as a scalar (lane-0) value with `load iv`
    /// mapped to the chunk-base register?
    fn scalar_cloneable(&self, v: Value, depth: u8) -> bool {
        if depth == 0 {
            return false;
        }
        match v {
            Value::Inst(id) if self.in_loop(id) => match self.f.inst(id) {
                Inst::Load { ptr, .. } => match slot_of(self.promoted, self.f, *ptr) {
                    Some(s) => {
                        s == self.iv_slot
                            || !self.stored_slots.contains(&s)
                            || self
                                .wf_value
                                .get(&s)
                                .is_some_and(|&wv| self.scalar_cloneable(wv, depth - 1))
                    }
                    None => false,
                },
                Inst::Bin { lhs, rhs, .. } => {
                    self.scalar_cloneable(*lhs, depth - 1) && self.scalar_cloneable(*rhs, depth - 1)
                }
                Inst::Cast { val, .. } => self.scalar_cloneable(*val, depth - 1),
                Inst::Gep { ptr, index, .. } => {
                    self.scalar_cloneable(*ptr, depth - 1)
                        && self.scalar_cloneable(*index, depth - 1)
                }
                _ => false,
            },
            Value::Inst(_) | Value::Arg(_) => true,
            other => const_of(other).is_some(),
        }
    }

    /// Can `v` be computed as a per-lane vector?
    fn wideable(&self, v: Value, roles: &HashMap<InstId, SlotRole>, depth: u8) -> bool {
        if depth == 0 {
            return false;
        }
        match v {
            Value::Inst(id) if self.in_loop(id) => match self.f.inst(id) {
                Inst::Load { ty, ptr } => match slot_of(self.promoted, self.f, *ptr) {
                    Some(s) => roles.contains_key(&s) || s == self.iv_slot,
                    None => self.mem_load_wideable(*ty, *ptr, roles, depth),
                },
                Inst::Bin { lhs, rhs, .. } => {
                    self.wideable(*lhs, roles, depth - 1) && self.wideable(*rhs, roles, depth - 1)
                }
                Inst::Cast { val, .. } => self.wideable(*val, roles, depth - 1),
                _ => false,
            },
            Value::Inst(_) | Value::Arg(_) => true, // loop-invariant: broadcast
            other => const_of(other).is_some(),
        }
    }

    /// A memory load widens as a unit-stride `VLoad` (scalar-cloneable
    /// address) or a `VGather` (cloneable base, wideable index vector).
    fn mem_load_wideable(
        &self,
        ty: IrType,
        ptr: Value,
        roles: &HashMap<InstId, SlotRole>,
        depth: u8,
    ) -> bool {
        let Value::Inst(gid) = ptr else { return false };
        if !self.in_loop(gid) {
            return false; // loop-invariant address: uniform load, refused
        }
        let Inst::Gep {
            ptr: base,
            index,
            elem_size,
        } = self.f.inst(gid)
        else {
            return false;
        };
        if u32::try_from(*elem_size).is_err() {
            return false;
        }
        match self.lin(*index, 16) {
            Some(l)
                if l.coeff != 0 && l.coeff as i128 * *elem_size as i128 == ty.size() as i128 =>
            {
                // Unit stride: lane-0 address is the scalar Gep clone.
                self.scalar_cloneable(ptr, depth - 1)
            }
            _ => {
                // Gather: affine-non-unit or opaque per-lane indices.
                self.scalar_cloneable(*base, depth - 1) && self.wideable(*index, roles, depth - 1)
            }
        }
    }

    /// Resolves a `Gep` base pointer to its aliasing root.
    fn base_key(&self, v: Value) -> Option<BaseKey> {
        match v {
            Value::Global(s) => Some(BaseKey::Global(s.0)),
            Value::Arg(i) => Some(BaseKey::Arg(i)),
            Value::Inst(id) if !self.in_loop(id) => {
                if matches!(self.f.inst(id), Inst::Alloca { .. }) {
                    Some(BaseKey::Alloca(id.0))
                } else {
                    Some(BaseKey::OutInst(id.0))
                }
            }
            Value::Inst(id) => match self.f.inst(id) {
                Inst::Load { ptr, .. } => {
                    let slot = slot_of(self.promoted, self.f, *ptr)?;
                    if slot != self.iv_slot && !self.stored_slots.contains(&slot) {
                        Some(BaseKey::Slot(slot.0))
                    } else {
                        None
                    }
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// Number of times each instruction's value is used inside the loop.
fn use_counts(f: &Function, blocks: &[BlockId]) -> HashMap<InstId, u32> {
    let mut uses: HashMap<InstId, u32> = HashMap::new();
    let mut tally = |v: Value| {
        if let Value::Inst(id) = v {
            *uses.entry(id).or_insert(0) += 1;
        }
    };
    for &bb in blocks {
        for &iid in &f.block(bb).insts {
            for v in f.inst(iid).operands() {
                tally(v);
            }
        }
        if let Some(t) = &f.block(bb).term {
            match t {
                Terminator::CondBr { cond, .. } => tally(*cond),
                Terminator::Ret(Some(v)) => tally(*v),
                _ => {}
            }
        }
    }
    uses
}

/// Attempts to build a plan for the loop `header`/`latch`. `None` = refuse.
fn try_plan(
    f: &Function,
    preds: &[Vec<BlockId>],
    promoted: &HashSet<InstId>,
    header: BlockId,
    latch: BlockId,
    requested: u8,
) -> Option<LoopPlan> {
    if requested < 2 {
        return None;
    }
    // --- shape: header is a conditional counted-loop test -----------------
    let Some(Terminator::CondBr {
        cond: Value::Inst(cmp_id),
        then_bb,
        ..
    }) = &f.block(header).term
    else {
        return None;
    };
    let Inst::Cmp { pred, lhs, rhs } = f.inst(*cmp_id) else {
        return None;
    };
    if !matches!(
        pred,
        CmpPred::Slt | CmpPred::Ult | CmpPred::Sle | CmpPred::Ule
    ) {
        return None;
    }
    // lhs must load the induction slot.
    let Value::Inst(iv_load) = lhs else {
        return None;
    };
    let Inst::Load { ptr, ty: iv_ty } = f.inst(*iv_load) else {
        return None;
    };
    let iv_slot = slot_of(promoted, f, *ptr)?;
    if !matches!(iv_ty, IrType::I32 | IrType::I64) {
        return None;
    }
    // Header preds: exactly the preheader and the latch.
    let hp = &preds[header.0 as usize];
    if hp.len() != 2 || !hp.contains(&latch) {
        return None;
    }
    // Header holds only promoted-slot loads plus the comparison.
    for &iid in &f.block(header).insts {
        let ok = iid == *cmp_id
            || matches!(f.inst(iid), Inst::Load { ptr, .. }
                        if slot_of(promoted, f, *ptr).is_some());
        if !ok {
            return None;
        }
    }
    // --- shape: straight-line body chain from header to latch -------------
    let mut chain = Vec::new();
    let mut cur = *then_bb;
    loop {
        if cur == header || chain.contains(&cur) || chain.len() > 128 {
            return None;
        }
        let expected_pred = *chain.last().unwrap_or(&header);
        let cp = &preds[cur.0 as usize];
        if cp.len() != 1 || cp[0] != expected_pred {
            return None;
        }
        chain.push(cur);
        match &f.block(cur).term {
            Some(Terminator::Br { target, .. }) if *target == header => {
                if cur != latch {
                    return None; // a different backedge matched first
                }
                break;
            }
            Some(Terminator::Br { target, .. }) => cur = *target,
            _ => return None,
        }
    }

    // --- gather loop contents ---------------------------------------------
    let mut loop_blocks = vec![header];
    loop_blocks.extend(chain.iter().copied());
    let mut loop_insts = HashSet::new();
    for &bb in &loop_blocks {
        for &iid in &f.block(bb).insts {
            loop_insts.insert(iid);
        }
    }
    // Per-slot access lists in textual order; memory accesses positioned.
    let mut order: HashMap<InstId, usize> = HashMap::new();
    let mut stored_slots: HashSet<InstId> = HashSet::new();
    let mut slot_acc: HashMap<InstId, Vec<(usize, bool, InstId)>> = HashMap::new();
    let mut pos = 0usize;
    for &bb in &chain {
        for &iid in &f.block(bb).insts {
            order.insert(iid, pos);
            match f.inst(iid) {
                Inst::Phi { .. }
                | Inst::Call { .. }
                | Inst::Select { .. }
                | Inst::Alloca { .. } => {
                    return None;
                }
                Inst::Load { ptr, .. } => {
                    if let Some(s) = slot_of(promoted, f, *ptr) {
                        slot_acc.entry(s).or_default().push((pos, false, iid));
                    }
                }
                Inst::Store { ptr, val } => {
                    if let Some(s) = slot_of(promoted, f, *ptr) {
                        stored_slots.insert(s);
                        slot_acc.entry(s).or_default().push((pos, true, iid));
                    }
                    // Storing a slot's *address* would have disqualified
                    // promotion already; storing to a non-slot is a memory
                    // store handled below.
                    let _ = val;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    // Header slot loads (bound etc.) mark their slots as read-only users;
    // they never store, so no entry needed beyond the invariant default.

    let mut p = Planner {
        f,
        promoted,
        loop_insts,
        stored_slots,
        iv_slot,
        wf_value: HashMap::new(),
    };

    // --- bound must be loop-invariant and available pre-loop ---------------
    let bound = *rhs;
    match bound {
        Value::Inst(id) if p.in_loop(id) => {
            // Permitted only as a header load of an un-stored slot.
            let Inst::Load { ptr, .. } = f.inst(id) else {
                return None;
            };
            let s = slot_of(promoted, f, *ptr)?;
            if s == iv_slot || p.stored_slots.contains(&s) {
                return None;
            }
        }
        Value::Inst(_) | Value::Arg(_) => {}
        other => {
            const_of(other)?;
        }
    }

    // --- classify slots ----------------------------------------------------
    let uses = use_counts(f, &loop_blocks);
    let mut roles: HashMap<InstId, SlotRole> = HashMap::new();
    roles.insert(iv_slot, SlotRole::Iv);
    // The induction variable: exactly one store, of `load iv + 1`.
    {
        let acc = slot_acc.get(&iv_slot)?;
        let stores: Vec<_> = acc.iter().filter(|(_, st, _)| *st).collect();
        if stores.len() != 1 {
            return None;
        }
        let Inst::Store { val, .. } = f.inst(stores[0].2) else {
            return None;
        };
        let Value::Inst(bid) = val else { return None };
        let Inst::Bin {
            op: BinOpKind::Add,
            lhs,
            rhs,
        } = f.inst(*bid)
        else {
            return None;
        };
        let is_iv_load = |v: Value| match v {
            Value::Inst(l) => matches!(f.inst(l), Inst::Load { ptr, .. }
                                       if slot_of(promoted, f, *ptr) == Some(iv_slot)),
            _ => false,
        };
        let step_one = |v: Value| matches!(v, Value::ConstInt { val: 1, .. });
        if !((is_iv_load(*lhs) && step_one(*rhs)) || (is_iv_load(*rhs) && step_one(*lhs))) {
            return None;
        }
        // The lane vector holds the *pre-increment* iv; a load placed after
        // the increment store would observe iv+1 and must refuse.
        let store_pos = stores[0].0;
        if acc.iter().any(|(pos, st, _)| !*st && *pos > store_pos) {
            return None;
        }
    }
    for (&slot, acc) in &slot_acc {
        if slot == iv_slot {
            continue;
        }
        let any_store = acc.iter().any(|(_, st, _)| *st);
        if !any_store {
            roles.insert(slot, SlotRole::Invariant);
            continue;
        }
        let first_is_store = acc.first().is_some_and(|(_, st, _)| *st);
        if first_is_store {
            roles.insert(slot, SlotRole::WriteFirst);
            let stores: Vec<_> = acc.iter().filter(|(_, st, _)| *st).collect();
            if stores.len() == 1 {
                if let Inst::Store { val, .. } = f.inst(stores[0].2) {
                    p.wf_value.insert(slot, *val);
                }
            }
            continue;
        }
        // Read-before-write: only the integer reduction idiom is legal.
        let loads: Vec<_> = acc.iter().filter(|(_, st, _)| !*st).collect();
        let stores: Vec<_> = acc.iter().filter(|(_, st, _)| *st).collect();
        if loads.len() != 1 || stores.len() != 1 || loads[0].0 > stores[0].0 {
            return None;
        }
        let (load_id, store_id) = (loads[0].2, stores[0].2);
        let Inst::Store { val, .. } = f.inst(store_id) else {
            return None;
        };
        let Value::Inst(bid) = val else { return None };
        let Inst::Bin { op, lhs, rhs } = f.inst(*bid) else {
            return None;
        };
        if !matches!(op, BinOpKind::Add | BinOpKind::Mul) {
            return None; // float reductions reassociate: refuse
        }
        let uses_load = |v: Value| v == Value::Inst(load_id);
        if !(uses_load(*lhs) ^ uses_load(*rhs)) {
            return None;
        }
        if uses.get(&load_id).copied().unwrap_or(0) != 1 || uses.get(bid).copied().unwrap_or(0) != 1
        {
            return None;
        }
        if !f.value_type(*val).is_int() {
            return None;
        }
        roles.insert(slot, SlotRole::Reduction(*op));
    }
    // Slots loaded only in the header (e.g. the bound) are invariant. A
    // header load of a loop-stored slot other than the iv would observe the
    // *previous* iteration's value, which no role models — refuse.
    for &iid in &f.block(header).insts {
        if let Inst::Load { ptr, .. } = f.inst(iid) {
            if let Some(s) = slot_of(promoted, f, *ptr) {
                if s != iv_slot && p.stored_slots.contains(&s) {
                    return None;
                }
                roles.entry(s).or_insert(SlotRole::Invariant);
            }
        }
    }

    // --- memory accesses: linear forms + dependence test -------------------
    let mut accesses: Vec<Access> = Vec::new();
    for &bb in &chain {
        for &iid in &f.block(bb).insts {
            let (is_store, ty, ptr, val) = match f.inst(iid) {
                Inst::Load { ty, ptr } => {
                    if slot_of(promoted, f, *ptr).is_some() {
                        continue;
                    }
                    (false, *ty, *ptr, None)
                }
                Inst::Store { val, ptr } => {
                    if slot_of(promoted, f, *ptr).is_some() {
                        continue;
                    }
                    (true, f.value_type(*val), *ptr, Some(*val))
                }
                _ => continue,
            };
            let Value::Inst(gid) = ptr else { return None };
            if !p.in_loop(gid) {
                return None;
            }
            let Inst::Gep {
                ptr: base,
                index,
                elem_size,
            } = f.inst(gid)
            else {
                return None;
            };
            let base = p.base_key(*base)?;
            let lin = p.lin(*index, 16);
            if !is_store && !p.mem_load_wideable(ty, ptr, &roles, 16) {
                // Every load is widened eagerly at its textual position
                // (ordering against stores), so all must be emittable.
                return None;
            }
            if is_store {
                // Stored value must widen; the address must be affine with
                // a nonzero stride (distinct lanes hit distinct locations).
                let l = lin?;
                if l.coeff == 0 {
                    return None;
                }
                if !p.wideable(val.unwrap(), &roles, 16) || !p.wideable(*index, &roles, 16) {
                    return None;
                }
            }
            accesses.push(Access {
                pos: order[&iid],
                is_store,
                base,
                lin,
                elem_size: *elem_size,
                ty_size: ty.size(),
            });
        }
    }
    let mut clamp = requested as i64;
    for s in accesses.iter().filter(|a| a.is_store) {
        for a in &accesses {
            if std::ptr::eq(s, a) {
                continue;
            }
            if a.base != s.base {
                // Distinct whole objects never alias; any other unequal
                // base pair is unprovable next to a store.
                if BaseKey::distinct_objects(a.base, s.base) {
                    continue;
                }
                return None;
            }
            if a.elem_size != s.elem_size || a.ty_size != s.ty_size {
                return None;
            }
            let (Some(la), Some(ls)) = (a.lin, s.lin) else {
                return None; // opaque access sharing a stored base
            };
            if la.coeff != ls.coeff || la.sym != ls.sym {
                return None;
            }
            let c = ls.coeff;
            if c == 0 {
                return None; // uniform store address
            }
            let num = ls.k - la.k;
            if num % c != 0 {
                continue; // never the same location
            }
            let delta = num / c;
            if delta == 0 {
                continue; // same iteration, textual order preserved per lane
            }
            // Direction test: a dependence whose source executes textually
            // *after* its sink within one vector chunk would be reordered.
            let violated = if a.is_store {
                true // store-store: order matters both ways
            } else {
                (delta > 0 && a.pos < s.pos) || (delta < 0 && s.pos < a.pos)
            };
            if violated {
                clamp = clamp.min(delta.abs());
            }
        }
    }
    if clamp < 2 {
        return None;
    }
    let width = clamp.min(requested as i64) as u8;

    // --- every effectful body value must be emittable ----------------------
    for &bb in &chain {
        for &iid in &f.block(bb).insts {
            if let Inst::Store { val, ptr } = f.inst(iid) {
                if let Some(s) = slot_of(promoted, f, *ptr) {
                    if s == iv_slot {
                        continue;
                    }
                    match roles.get(&s) {
                        Some(SlotRole::Reduction(_)) => {
                            // The non-accumulator operand must widen.
                            let Value::Inst(bid) = val else { return None };
                            let Inst::Bin { lhs, rhs, .. } = f.inst(*bid) else {
                                return None;
                            };
                            for side in [*lhs, *rhs] {
                                let is_acc_load = matches!(side, Value::Inst(l)
                                    if matches!(f.inst(l), Inst::Load { ptr, .. }
                                                if slot_of(promoted, f, *ptr) == Some(s)));
                                if !is_acc_load && !p.wideable(side, &roles, 16) {
                                    return None;
                                }
                            }
                        }
                        Some(SlotRole::WriteFirst) => {
                            if !p.wideable(*val, &roles, 16) {
                                return None;
                            }
                        }
                        _ => return None,
                    }
                }
            }
        }
    }

    let mut reductions: Vec<(InstId, BinOpKind)> = roles
        .iter()
        .filter_map(|(&s, r)| match r {
            SlotRole::Reduction(op) => Some((s, *op)),
            _ => None,
        })
        .collect();
    reductions.sort_by_key(|(s, _)| *s);
    let mut write_first: Vec<InstId> = roles
        .iter()
        .filter_map(|(&s, r)| matches!(r, SlotRole::WriteFirst).then_some(s))
        .collect();
    write_first.sort();

    Some(LoopPlan {
        header,
        latch,
        chain,
        iv_slot,
        iv_ty: *iv_ty,
        pred: *pred,
        bound,
        width,
        reductions,
        write_first,
        roles,
        wf_value: p.wf_value,
    })
}

// ---------------------------------------------------------------- emission

struct Widener<'a, 'b> {
    c: &'a mut FuncCompiler<'b>,
    plan: &'a LoopPlan,
    /// Scalar chunk-base induction register (`iv` of lane 0).
    riv: Reg,
    /// Lane vector `riv + [0, 1, …, w-1]`, refreshed each chunk.
    ivec: VReg,
    /// Accumulator / temporary vector per reduction and write-first slot.
    acc: HashMap<InstId, VReg>,
    /// Scalar clones of loop instructions (per-chunk, lane-0 values).
    scalar_map: HashMap<InstId, Reg>,
    /// Vector values of loop instructions (per-chunk).
    vec_map: HashMap<InstId, VReg>,
    /// Broadcasts of loop-invariant scalar registers (per-chunk).
    bcast: HashMap<Reg, VReg>,
    /// Constants materialized for this loop (preamble-dominated).
    consts: HashMap<ConstKey, Reg>,
    loop_insts: HashSet<InstId>,
}

impl<'a, 'b> Widener<'a, 'b> {
    fn w(&self) -> u8 {
        self.plan.width
    }

    fn int_const(&mut self, v: i64) -> Result<Reg, CompileError> {
        let key = ConstKey::Int(v);
        if let Some(&r) = self.consts.get(&key) {
            return Ok(r);
        }
        let r = self.c.inline_const(key, PoolConst::Val(RtVal::I(v)))?;
        self.consts.insert(key, r);
        Ok(r)
    }

    fn slot_reg(&self, slot: InstId) -> Reg {
        self.c.promoted[&slot]
    }

    /// Scalar (lane-0 / chunk-base) register for `v`, cloning loop
    /// instructions with `load iv` mapped to `riv`.
    fn scalar_of(&mut self, v: Value) -> Result<Reg, CompileError> {
        match v {
            Value::Inst(id) if self.loop_insts.contains(&id) => {
                if let Some(&r) = self.scalar_map.get(&id) {
                    return Ok(r);
                }
                let r = match self.c.f.inst(id).clone() {
                    Inst::Load { ptr, .. } => match self.lookup_slot(ptr) {
                        Some(slot) if slot == self.plan.iv_slot => self.riv,
                        Some(slot) => {
                            if let Some(&wv) = self.plan.wf_value.get(&slot) {
                                // Write-first slot: lane 0 re-derives the
                                // stored value at the chunk base.
                                self.scalar_of(wv)?
                            } else {
                                self.slot_reg(slot)
                            }
                        }
                        None => {
                            return Err(CompileError::Malformed {
                                func: self.c.f.name.clone(),
                                what: "widener cannot scalarize a memory load".into(),
                            })
                        }
                    },
                    Inst::Bin { op, lhs, rhs } => {
                        let ty = self.c.f.value_type(lhs);
                        let l = self.scalar_of(lhs)?;
                        let r2 = self.scalar_of(rhs)?;
                        let dst = self.c.new_vreg(RegClass::of(ty))?;
                        self.c.ops.push(Op::Bin {
                            op,
                            ty,
                            dst,
                            lhs: l,
                            rhs: r2,
                        });
                        dst
                    }
                    Inst::Cast { op, val, to } => {
                        let from = self.c.f.value_type(val);
                        let src = self.scalar_of(val)?;
                        let dst = self.c.new_vreg(RegClass::of(to))?;
                        self.c.ops.push(Op::Cast {
                            op,
                            from,
                            to,
                            dst,
                            src,
                        });
                        dst
                    }
                    Inst::Gep {
                        ptr,
                        index,
                        elem_size,
                    } => {
                        let elem_size = u32::try_from(elem_size)
                            .map_err(|_| self.c.err_large("gep element size"))?;
                        let base = self.scalar_of(ptr)?;
                        let idx = self.scalar_of(index)?;
                        let dst = self.c.new_vreg(RegClass::Ptr)?;
                        self.c.ops.push(Op::Gep {
                            dst,
                            base,
                            index: idx,
                            elem_size,
                        });
                        dst
                    }
                    other => {
                        return Err(CompileError::Malformed {
                            func: self.c.f.name.clone(),
                            what: format!("widener cannot scalarize {other:?}"),
                        })
                    }
                };
                self.scalar_map.insert(id, r);
                Ok(r)
            }
            other => match const_of(other) {
                Some((key, entry)) => {
                    if let Some(&r) = self.consts.get(&key) {
                        return Ok(r);
                    }
                    let r = self.c.inline_const(key, entry)?;
                    self.consts.insert(key, r);
                    Ok(r)
                }
                None => self.c.reg_of(other),
            },
        }
    }

    fn lookup_slot(&self, ptr: Value) -> Option<InstId> {
        if let Value::Inst(id) = ptr {
            if self.c.promoted.contains_key(&id) && matches!(self.c.f.inst(id), Inst::Alloca { .. })
            {
                return Some(id);
            }
        }
        None
    }

    fn broadcast(&mut self, r: Reg, class: RegClass) -> Result<VReg, CompileError> {
        if let Some(&v) = self.bcast.get(&r) {
            return Ok(v);
        }
        let dst = self.c.new_vvreg(class, self.w())?;
        self.c.ops.push(Op::VBroadcast {
            dst,
            src: r,
            w: self.w(),
        });
        self.bcast.insert(r, dst);
        Ok(dst)
    }

    /// Per-lane vector register for `v`.
    fn vec_of(&mut self, v: Value) -> Result<VReg, CompileError> {
        let malformed = |c: &FuncCompiler, what: String| CompileError::Malformed {
            func: c.f.name.clone(),
            what,
        };
        match v {
            Value::Inst(id) if self.loop_insts.contains(&id) => {
                if let Some(&vr) = self.vec_map.get(&id) {
                    return Ok(vr);
                }
                let vr = match self.c.f.inst(id).clone() {
                    Inst::Load { ty, ptr } => match self.lookup_slot(ptr) {
                        Some(slot) if slot == self.plan.iv_slot => self.ivec,
                        Some(slot) => match self.plan.roles.get(&slot) {
                            Some(SlotRole::Reduction(_)) | Some(SlotRole::WriteFirst) => {
                                self.acc[&slot]
                            }
                            _ => {
                                let r = self.slot_reg(slot);
                                self.broadcast(r, RegClass::of(ty))?
                            }
                        },
                        None => self.widen_mem_load(ty, ptr)?,
                    },
                    Inst::Bin { op, lhs, rhs } => {
                        let ty = self.c.f.value_type(lhs);
                        let l = self.vec_of(lhs)?;
                        let r = self.vec_of(rhs)?;
                        let dst = self.c.new_vvreg(RegClass::of(ty), self.w())?;
                        self.c.ops.push(Op::VBin {
                            op,
                            ty,
                            dst,
                            lhs: l,
                            rhs: r,
                            w: self.w(),
                        });
                        dst
                    }
                    Inst::Cast { op, val, to } => {
                        let from = self.c.f.value_type(val);
                        let src = self.vec_of(val)?;
                        let dst = self.c.new_vvreg(RegClass::of(to), self.w())?;
                        self.c.ops.push(Op::VCast {
                            op,
                            from,
                            to,
                            dst,
                            src,
                            w: self.w(),
                        });
                        dst
                    }
                    other => {
                        return Err(malformed(
                            self.c,
                            format!("widener cannot vectorize {other:?}"),
                        ))
                    }
                };
                self.vec_map.insert(id, vr);
                Ok(vr)
            }
            other => {
                let ty = self.c.f.value_type(other);
                let r = self.scalar_of(other)?;
                self.broadcast(r, RegClass::of(ty))
            }
        }
    }

    /// A widened memory load: unit-stride `VLoad` or per-lane `VGather`.
    fn widen_mem_load(&mut self, ty: IrType, ptr: Value) -> Result<VReg, CompileError> {
        let Value::Inst(gid) = ptr else {
            return Err(CompileError::Malformed {
                func: self.c.f.name.clone(),
                what: "widened load without gep address".into(),
            });
        };
        let Inst::Gep {
            ptr: base,
            index,
            elem_size,
        } = self.c.f.inst(gid).clone()
        else {
            return Err(CompileError::Malformed {
                func: self.c.f.name.clone(),
                what: "widened load without gep address".into(),
            });
        };
        let es32 = u32::try_from(elem_size).map_err(|_| self.c.err_large("gep element size"))?;
        if self.unit_stride(ty, Value::Inst(gid)) {
            let addr = self.scalar_of(ptr)?;
            let dst = self.c.new_vvreg(RegClass::of(ty), self.w())?;
            self.c.ops.push(Op::VLoad {
                dst,
                addr,
                ty,
                w: self.w(),
            });
            Ok(dst)
        } else {
            let b = self.scalar_of(base)?;
            let idx = self.vec_of(index)?;
            let dst = self.c.new_vvreg(RegClass::of(ty), self.w())?;
            self.c.ops.push(Op::VGather {
                elem_size: es32,
                dst,
                base: b,
                idx,
                ty,
                w: self.w(),
            });
            Ok(dst)
        }
    }

    /// Re-runs the planner's unit-stride test for one address (the planner
    /// proved emittability; this only picks the instruction form).
    fn unit_stride(&self, ty: IrType, ptr: Value) -> bool {
        let Value::Inst(gid) = ptr else { return false };
        let Inst::Gep {
            index, elem_size, ..
        } = self.c.f.inst(gid)
        else {
            return false;
        };
        let stored: HashSet<InstId> = self
            .plan
            .roles
            .iter()
            .filter(|(_, r)| {
                matches!(
                    r,
                    SlotRole::Iv | SlotRole::Reduction(_) | SlotRole::WriteFirst
                )
            })
            .map(|(&s, _)| s)
            .collect();
        let promoted = self.promoted_set();
        let p = Planner {
            f: self.c.f,
            promoted: &promoted,
            loop_insts: self.loop_insts.clone(),
            stored_slots: stored,
            iv_slot: self.plan.iv_slot,
            wf_value: self.plan.wf_value.clone(),
        };
        matches!(p.lin(*index, 16), Some(l)
            if l.coeff != 0 && l.coeff as i128 * *elem_size as i128 == ty.size() as i128)
    }

    fn promoted_set(&self) -> HashSet<InstId> {
        self.c.promoted.keys().copied().collect()
    }
}

/// Emits the full vector form of one planned loop at the current emission
/// point (the loop header's block offset). Leaves the op stream positioned
/// so the caller emits the scalar loop directly after, and registers the
/// latch redirect that keeps the scalar backedge out of the preamble.
pub(crate) fn emit_vector_loop(c: &mut FuncCompiler, plan: &LoopPlan) -> Result<(), CompileError> {
    let w = plan.width;
    let f = c.f;
    let mut loop_insts: HashSet<InstId> = HashSet::new();
    for &bb in std::iter::once(&plan.header).chain(plan.chain.iter()) {
        for &iid in &f.block(bb).insts {
            loop_insts.insert(iid);
        }
    }
    let iv_reg = c.promoted[&plan.iv_slot];
    let riv = c.new_vreg(RegClass::Int)?;
    let ivec = c.new_vvreg(RegClass::Int, w)?;
    let mut wd = Widener {
        c,
        plan,
        riv,
        ivec,
        acc: HashMap::new(),
        scalar_map: HashMap::new(),
        vec_map: HashMap::new(),
        bcast: HashMap::new(),
        consts: HashMap::new(),
        loop_insts,
    };

    // --- preamble (same bytecode block as the header offset) ---------------
    let w_const = wd.int_const(w as i64)?;
    let wm1_const = wd.int_const(w as i64 - 1)?;
    let le_pred = matches!(plan.pred, CmpPred::Sle | CmpPred::Ule);
    let one_const = if le_pred {
        Some(wd.int_const(1)?)
    } else {
        None
    };
    let bound_reg = wd.scalar_of(plan.bound)?;
    wd.c.ops.push(Op::Mov {
        dst: riv,
        src: iv_reg,
    });
    let n_main = wd.c.new_vreg(RegClass::Int)?;
    wd.c.ops.push(Op::Bin {
        op: BinOpKind::Sub,
        ty: plan.iv_ty,
        dst: n_main,
        lhs: bound_reg,
        rhs: wm1_const,
    });
    for &(slot, op) in &plan.reductions {
        let identity = match op {
            BinOpKind::Mul => 1,
            _ => 0,
        };
        let id_reg = wd.int_const(identity)?;
        let acc = wd.c.new_vvreg(RegClass::Int, w)?;
        wd.c.ops.push(Op::VBroadcast {
            dst: acc,
            src: id_reg,
            w,
        });
        wd.acc.insert(slot, acc);
    }
    for &slot in &plan.write_first {
        let r = wd.slot_reg(slot);
        let class = wd.c.vreg_class[r as usize];
        let acc = wd.c.new_vvreg(class, w)?;
        wd.c.ops.push(Op::VBroadcast {
            dst: acc,
            src: r,
            w,
        });
        wd.acc.insert(slot, acc);
    }
    // Guard: `bound >= w-1` keeps `bound - (w-1)` from wrapping for
    // unsigned loops (and from overflowing near the signed minimum); a
    // failed guard skips straight to the exit combine, which is the
    // identity when zero vector chunks ran.
    let guard_pred = if matches!(plan.pred, CmpPred::Ult | CmpPred::Ule) {
        CmpPred::Uge
    } else {
        CmpPred::Sge
    };
    let guard_at = wd.c.ops.len();
    wd.c.ops.push(Op::CmpBr {
        pred: guard_pred,
        ty: plan.iv_ty,
        lhs: bound_reg,
        rhs: wm1_const,
        then_t: (guard_at + 1) as u32,
        else_t: 0, // patched to vexit
    });

    // --- vcond --------------------------------------------------------------
    let vcond_off = wd.c.ops.len() as u32;
    wd.c.mark_block_start();
    let cnd = wd.c.new_vreg(RegClass::Int)?;
    wd.c.ops.push(Op::Cmp {
        pred: plan.pred,
        ty: plan.iv_ty,
        dst: cnd,
        lhs: riv,
        rhs: n_main,
    });
    let br_at = wd.c.ops.len();
    wd.c.ops.push(Op::Br {
        cond: cnd,
        then_t: (br_at + 1) as u32,
        else_t: 0, // patched to vexit
    });

    // --- vbody --------------------------------------------------------------
    wd.c.mark_block_start();
    wd.c.ops.push(Op::VIota {
        dst: ivec,
        base: riv,
        w,
    });
    // Per-chunk caches start fresh: everything emitted below re-executes
    // each chunk, so chunk-dependent values may not leak across iterations.
    wd.scalar_map.clear();
    wd.vec_map.clear();
    wd.bcast.clear();
    for bb in &plan.chain {
        for &iid in &f.block(*bb).insts {
            // Memory loads widen *eagerly* at their textual position:
            // demand-driven emission could float a load past an aliasing
            // same-iteration store (the dependence test treats distance-0
            // pairs as ordered by position). Arithmetic stays demand-driven.
            if let Inst::Load { ptr, .. } = f.inst(iid) {
                if wd.lookup_slot(*ptr).is_none() {
                    wd.vec_of(Value::Inst(iid))?;
                }
                continue;
            }
            let Inst::Store { val, ptr } = f.inst(iid) else {
                continue;
            };
            let (val, ptr) = (*val, *ptr);
            if let Some(slot) = wd.lookup_slot(ptr) {
                if slot == plan.iv_slot {
                    continue; // increment handled by riv += w
                }
                match plan.roles.get(&slot) {
                    Some(SlotRole::Reduction(op)) => {
                        let Value::Inst(bid) = val else {
                            unreachable!()
                        };
                        let Inst::Bin { lhs, rhs, .. } = f.inst(bid) else {
                            unreachable!()
                        };
                        let is_acc_load = |v: Value| {
                            matches!(v, Value::Inst(l)
                                if matches!(f.inst(l), Inst::Load { ptr, .. }
                                    if wd.lookup_slot(*ptr) == Some(slot)))
                        };
                        let expr = if is_acc_load(*lhs) { *rhs } else { *lhs };
                        let e = wd.vec_of(expr)?;
                        let acc = wd.acc[&slot];
                        let ty = f.value_type(val);
                        wd.c.ops.push(Op::VBin {
                            op: *op,
                            ty,
                            dst: acc,
                            lhs: acc,
                            rhs: e,
                            w,
                        });
                        // The scalar bin/load feeding this store were not
                        // demanded; lanes accumulate independently.
                    }
                    Some(SlotRole::WriteFirst) => {
                        let v = wd.vec_of(val)?;
                        let acc = wd.acc[&slot];
                        // Later reads of this slot in the same chunk load
                        // through `acc`, which now holds the new lanes.
                        wd.c.ops.push(Op::VMov {
                            dst: acc,
                            src: v,
                            w,
                        });
                    }
                    _ => unreachable!("planned store to unclassified slot"),
                }
            } else {
                let ty = f.value_type(val);
                let src = wd.vec_of(val)?;
                if wd.unit_stride(ty, ptr) {
                    let addr = wd.scalar_of(ptr)?;
                    wd.c.ops.push(Op::VStore { src, addr, ty, w });
                } else {
                    let Value::Inst(gid) = ptr else {
                        unreachable!()
                    };
                    let Inst::Gep {
                        ptr: base,
                        index,
                        elem_size,
                    } = f.inst(gid).clone()
                    else {
                        unreachable!()
                    };
                    let es32 =
                        u32::try_from(elem_size).map_err(|_| wd.c.err_large("gep element size"))?;
                    let b = wd.scalar_of(base)?;
                    let idx = wd.vec_of(index)?;
                    wd.c.ops.push(Op::VScatter {
                        elem_size: es32,
                        src,
                        base: b,
                        idx,
                        ty,
                        w,
                    });
                }
            }
        }
    }
    wd.c.ops.push(Op::Bin {
        op: BinOpKind::Add,
        ty: plan.iv_ty,
        dst: riv,
        lhs: riv,
        rhs: w_const,
    });
    wd.c.ops.push(Op::Jmp { target: vcond_off });

    // --- vexit --------------------------------------------------------------
    let vexit_off = wd.c.ops.len() as u32;
    wd.c.mark_block_start();
    for &(slot, op) in &plan.reductions {
        let acc = wd.acc[&slot];
        let slot_reg = wd.slot_reg(slot);
        let red = wd.c.new_vreg(RegClass::Int)?;
        // The slot's int width: reductions were planned on the stored
        // value's type; re-derive it from the slot's alloca.
        let ty = match f.inst(slot) {
            Inst::Alloca { ty, .. } => *ty,
            _ => unreachable!(),
        };
        wd.c.ops.push(Op::VReduce {
            op,
            ty,
            dst: red,
            src: acc,
            w,
        });
        wd.c.ops.push(Op::Bin {
            op,
            ty,
            dst: slot_reg,
            lhs: slot_reg,
            rhs: red,
        });
    }
    for &slot in &plan.write_first {
        let acc = wd.acc[&slot];
        let slot_reg = wd.slot_reg(slot);
        wd.c.ops.push(Op::VExtract {
            dst: slot_reg,
            src: acc,
            lane: w - 1,
        });
    }
    wd.c.ops.push(Op::Mov {
        dst: iv_reg,
        src: riv,
    });
    let epi = wd.c.new_vreg(RegClass::Int)?;
    wd.c.ops.push(Op::Bin {
        op: BinOpKind::Sub,
        ty: plan.iv_ty,
        dst: epi,
        lhs: bound_reg,
        rhs: riv,
    });
    let epi = if let Some(one) = one_const {
        let epi2 = wd.c.new_vreg(RegClass::Int)?;
        wd.c.ops.push(Op::Bin {
            op: BinOpKind::Add,
            ty: plan.iv_ty,
            dst: epi2,
            lhs: epi,
            rhs: one,
        });
        epi2
    } else {
        epi
    };
    wd.c.ops.push(Op::VEpi { src: epi });
    let jmp_at = wd.c.ops.len();
    wd.c.ops.push(Op::Jmp {
        target: (jmp_at + 1) as u32, // falls through to the scalar header
    });
    let scalar_header_off = wd.c.ops.len() as u32;

    // Patch the two forward branches into vexit.
    if let Op::CmpBr { else_t, .. } = &mut wd.c.ops[guard_at] {
        *else_t = vexit_off;
    }
    if let Op::Br { else_t, .. } = &mut wd.c.ops[br_at] {
        *else_t = vexit_off;
    }
    wd.c.latch_redirect.insert(plan.latch.0, scalar_header_off);
    Ok(())
}
